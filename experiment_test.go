package musa

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func intp(i int) *int { return &i }

func archp() *Arch {
	a := DefaultArch()
	return &a
}

// TestExperimentNormalizeValidation drives the one validation path with
// every class of invalid input and checks the typed error that comes back.
// No user input may reach a panicking simulation path.
func TestExperimentNormalizeValidation(t *testing.T) {
	badArch := DefaultArch()
	badArch.CacheLabel = "huge"
	badCore := DefaultArch()
	badCore.CoreType = "quantum"
	negCores := DefaultArch()
	negCores.Cores = -1

	cases := []struct {
		name string
		e    Experiment
		want error
	}{
		{"unknown kind", Experiment{Kind: "warp", App: "hydro", Arch: archp()}, ErrBadKind},
		{"unknown app", Experiment{App: "quake", Arch: archp()}, ErrUnknownApp},
		{"missing app", Experiment{Arch: archp()}, ErrUnknownApp},
		{"unknown sweep app", Experiment{Kind: KindSweep, Apps: []string{"quake"}}, ErrUnknownApp},
		{"node takes App not Apps", Experiment{App: "hydro", Apps: []string{"hydro"}, Arch: archp()}, ErrExperiment},
		{"bad cache label", Experiment{App: "hydro", Arch: &badArch}, ErrBadArch},
		{"bad core type", Experiment{App: "hydro", Arch: &badCore}, ErrBadArch},
		{"negative cores", Experiment{App: "hydro", Arch: &negCores}, ErrBadArch},
		{"missing arch", Experiment{App: "hydro"}, ErrBadArch},
		{"arch and point index", Experiment{App: "hydro", Arch: archp(), PointIndex: intp(0)}, ErrBadArch},
		{"point index out of range", Experiment{App: "hydro", PointIndex: intp(100000)}, ErrBadPoint},
		{"negative point index", Experiment{App: "hydro", PointIndex: intp(-1)}, ErrBadPoint},
		{"sweep point indices out of range", Experiment{Kind: KindSweep, PointIndices: []int{0, 99999}}, ErrBadPoint},
		{"point indices on node", Experiment{App: "hydro", Arch: archp(), PointIndices: []int{0}}, ErrBadPoint},
		{"negative sample", Experiment{App: "hydro", Arch: archp(), Sample: -1}, ErrBadFidelity},
		{"negative warmup", Experiment{App: "hydro", Arch: archp(), Warmup: -1}, ErrBadFidelity},
		{"negative replay rank", Experiment{App: "hydro", Arch: archp(), ReplayRanks: []int{-1}}, ErrBadReplayRanks},
		{"replay rank of one", Experiment{App: "hydro", Arch: archp(), ReplayRanks: []int{1}}, ErrBadReplayRanks},
		{"huge replay rank", Experiment{App: "hydro", Arch: archp(), ReplayRanks: []int{1 << 30}}, ErrBadReplayRanks},
		{"too many replay ranks", Experiment{App: "hydro", Arch: archp(),
			ReplayRanks: []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}}, ErrBadReplayRanks},
		{"unknown network", Experiment{App: "hydro", Arch: archp(), Network: "warpdrive"}, ErrBadNetwork},
		{"full-app rank of one", Experiment{Kind: KindFullApp, App: "hydro", Arch: archp(), Ranks: 1}, ErrBadRanks},
		{"full-app absurd ranks", Experiment{Kind: KindFullApp, App: "hydro", Arch: archp(), Ranks: 1 << 30}, ErrBadRanks},
		{"ranks on node", Experiment{App: "hydro", Arch: archp(), Ranks: 64}, ErrBadRanks},
		{"scaling bad core count", Experiment{Kind: KindScaling, App: "hydro", CoreCounts: []int{0}}, ErrBadCoreCounts},
		{"core counts on node", Experiment{App: "hydro", Arch: archp(), CoreCounts: []int{1}}, ErrBadCoreCounts},
		{"scaling replay ranks", Experiment{Kind: KindScaling, App: "hydro", ReplayRanks: []int{4}}, ErrBadReplayRanks},
		{"unconventional with app", Experiment{Kind: KindUnconventional, App: "hydro"}, ErrExperiment},
		{"unconventional with arch", Experiment{Kind: KindUnconventional, Arch: archp()}, ErrBadArch},
		{"sweep with arch", Experiment{Kind: KindSweep, Arch: archp()}, ErrBadArch},
		{"sweep empty point indices", Experiment{Kind: KindSweep, PointIndices: []int{}}, ErrBadPoint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.e.Normalize()
			if err == nil {
				t.Fatalf("Normalize accepted %+v", tc.e)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrExperiment) {
				t.Fatalf("err = %v does not wrap ErrExperiment", err)
			}
		})
	}
}

func TestExperimentNormalizeDefaults(t *testing.T) {
	ne, err := Experiment{App: "lulesh", Arch: archp()}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ne.Kind != KindNode || ne.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", ne)
	}
	if !reflect.DeepEqual(ne.ReplayRanks, DefaultReplayRanks()) || ne.Network != "mn4" {
		t.Fatalf("replay defaults not applied: ranks=%v network=%q", ne.ReplayRanks, ne.Network)
	}

	// An explicit empty rank list folds into NoReplay; replay lists are
	// sorted and deduplicated; sweeps sort their app and point lists.
	ne, err = Experiment{App: "lulesh", Arch: archp(), ReplayRanks: []int{}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !ne.NoReplay || ne.ReplayRanks != nil || ne.Network != "" {
		t.Fatalf("empty rank list not folded into NoReplay: %+v", ne)
	}
	ne, err = Experiment{Kind: KindSweep, Apps: []string{"spmz", "hydro", "spmz"},
		PointIndices: []int{5, 1, 5}, ReplayRanks: []int{256, 64, 256}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ne.Apps, []string{"hydro", "spmz"}) ||
		!reflect.DeepEqual(ne.PointIndices, []int{1, 5}) ||
		!reflect.DeepEqual(ne.ReplayRanks, []int{64, 256}) {
		t.Fatalf("sweep lists not canonicalized: %+v", ne)
	}

	// A full-app experiment defaults to the paper's 256-rank scale.
	ne, err = Experiment{Kind: KindFullApp, App: "hydro", PointIndex: intp(0)}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ne.Ranks != 256 || ne.Arch == nil || ne.PointIndex != nil {
		t.Fatalf("full-app normalization: %+v", ne)
	}
}

// TestExperimentKeyGolden pins the canonical encoding and the store keys
// byte for byte: a change here is a schema change and must come with a
// SchemaVersion bump (stale caches are refused by the store, not
// misread).
func TestExperimentKeyGolden(t *testing.T) {
	arch := DefaultArch()
	golden := []struct {
		e     Experiment
		canon string
		key   string
	}{
		{
			Experiment{Kind: KindNode, App: "lulesh", Arch: &arch},
			`{"v":3,"kind":"node","app":"lulesh","arch":{"cores":64,"coreType":"medium","freqGHz":2,"vectorBits":128,"cacheLabel":"64M:512K","channels":4},"seed":1,"replayRanks":[64,256],"network":{"LatencyNs":1300,"BandwidthBps":12500000000,"EagerBytes":16384,"CollectiveLatencyNs":900}}`,
			"2e187b7b1c4f5a28cc32507c6ad09424854fe3226e8704ca72712bac9d4ae088",
		},
		{
			Experiment{Kind: KindNode, App: "hydro", Arch: &arch, Sample: 20000, Warmup: 40000, Seed: 7, NoReplay: true},
			`{"v":3,"kind":"node","app":"hydro","arch":{"cores":64,"coreType":"medium","freqGHz":2,"vectorBits":128,"cacheLabel":"64M:512K","channels":4},"sample":20000,"warmup":40000,"seed":7,"noReplay":true}`,
			"17279132465fcd1bfaef54be8f1e65ccfa074f84aea7173d154564ee53647ddf",
		},
		{
			Experiment{Kind: KindSweep, Apps: []string{"spmz", "hydro"}, PointIndices: []int{3, 1, 3},
				ReplayRanks: []int{256, 64}, Network: "hdr200"},
			`{"v":3,"kind":"sweep","apps":["hydro","spmz"],"pointIndices":[1,3],"seed":1,"replayRanks":[64,256],"network":{"LatencyNs":1000,"BandwidthBps":25000000000,"EagerBytes":16384,"CollectiveLatencyNs":700}}`,
			"66dd39087c57ed3a8a4b533dd8cfa879ca94527675dfce04af080042cd891877",
		},
	}
	for i, g := range golden {
		for run := 0; run < 3; run++ {
			b, err := g.e.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != g.canon {
				t.Fatalf("golden %d run %d: canonical encoding drifted:\n got %s\nwant %s", i, run, b, g.canon)
			}
			k, err := g.e.Key()
			if err != nil {
				t.Fatal(err)
			}
			if k != g.key {
				t.Fatalf("golden %d run %d: key drifted: got %s want %s", i, run, k, g.key)
			}
		}
	}
}

// TestExperimentKeyDiscriminates ports the old store.Request key test onto
// the canonical encoding: every semantically distinct request must hash to
// a distinct key, and every normalization alias to the same one.
func TestExperimentKeyDiscriminates(t *testing.T) {
	arch := DefaultArch()
	base := Experiment{App: "lulesh", Arch: &arch, Sample: 1000, Seed: 1}
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Seed 0 normalizes to seed 1.
	zeroSeed := base
	zeroSeed.Seed = 0
	if k, _ := zeroSeed.Key(); k != baseKey {
		t.Fatal("seed 0 must normalize to seed 1")
	}

	otherArch := DefaultArch()
	otherArch.FreqGHz = 2.5
	variants := []Experiment{
		{App: "hydro", Arch: &arch, Sample: 1000, Seed: 1},
		{App: "lulesh", Arch: &otherArch, Sample: 1000, Seed: 1},
		{App: "lulesh", Arch: &arch, Sample: 2000, Seed: 1},
		{App: "lulesh", Arch: &arch, Sample: 1000, Warmup: 1, Seed: 1},
		{App: "lulesh", Arch: &arch, Sample: 1000, Seed: 2},
		{App: "lulesh", Arch: &arch, Sample: 1000, Seed: 1, NoReplay: true},
		{App: "lulesh", Arch: &arch, Sample: 1000, Seed: 1, ReplayRanks: []int{128}},
		{App: "lulesh", Arch: &arch, Sample: 1000, Seed: 1, Network: "hdr200"},
		{Kind: KindFullApp, App: "lulesh", Arch: &arch, Sample: 1000, Seed: 1},
	}
	seen := map[string]bool{baseKey: true}
	for i, v := range variants {
		k, err := v.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if seen[k] {
			t.Fatalf("variant %d collided with another experiment key", i)
		}
		seen[k] = true
	}

	// A node-only request must not be influenced by a stray network name.
	stray := base
	stray.NoReplay = true
	strayNet := stray
	strayNet.Network = "hdr200"
	k1, _ := stray.Key()
	k2, _ := strayNet.Key()
	if k1 != k2 {
		t.Fatal("network name leaked into a node-only experiment key")
	}

	// Rank order and duplicates must not change the key.
	a, b := base, base
	a.ReplayRanks = []int{256, 64}
	b.ReplayRanks = []int{64, 256, 64}
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka != kb {
		t.Fatal("replay rank order/duplicates changed the experiment key")
	}
	// The default replay configuration spelled explicitly is the default.
	if ka != baseKey {
		t.Fatal("explicit default replay ranks hashed differently from the default")
	}
}

// TestExperimentWireDecoding covers the JSON wire form, including the
// legacy "point" alias for "arch".
func TestExperimentWireDecoding(t *testing.T) {
	var e Experiment
	if err := json.Unmarshal([]byte(`{"app":"lulesh","point":{"cores":64,"coreType":"medium","freqGHz":2,"vectorBits":128,"cacheLabel":"64M:512K","channels":4}}`), &e); err != nil {
		t.Fatal(err)
	}
	if e.Arch == nil || e.Arch.CoreType != "medium" {
		t.Fatalf("legacy point alias not decoded: %+v", e)
	}
	if err := json.Unmarshal([]byte(`{"arch":{},"point":{}}`), &e); err == nil || !errors.Is(err, ErrBadArch) {
		t.Fatalf("both arch spellings accepted: %v", err)
	}
	var rt Experiment
	b, err := json.Marshal(Experiment{Kind: KindSweep, Apps: []string{"hydro"}, ReplayRanks: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Kind != KindSweep || len(rt.Apps) != 1 || len(rt.ReplayRanks) != 1 {
		t.Fatalf("round trip lost fields: %+v", rt)
	}
}

// TestSetReplayFlags is the table-driven test of the one CLI replay-flag
// parser shared by musa-dse and musa-serve.
func TestSetReplayFlags(t *testing.T) {
	cases := []struct {
		name      string
		csv       string
		noReplay  bool
		network   string
		wantErr   bool
		wantRanks []int
	}{
		{name: "empty means defaults", csv: "", wantRanks: nil},
		{name: "single", csv: "64", wantRanks: []int{64}},
		{name: "list with spaces", csv: " 64, 256 ", wantRanks: []int{64, 256}},
		{name: "no replay with list kept", csv: "64", noReplay: true, wantRanks: []int{64}},
		{name: "network name passthrough", csv: "", network: "hdr200"},
		{name: "garbage", csv: "64,apple", wantErr: true},
		{name: "negative", csv: "-4", wantErr: true},
		{name: "rank of one", csv: "1", wantErr: true},
		{name: "too large", csv: "1000000000", wantErr: true},
		{name: "too many", csv: "2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e Experiment
			err := e.SetReplayFlags(tc.csv, tc.noReplay, tc.network)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted %q", tc.csv)
				}
				if !errors.Is(err, ErrBadReplayRanks) {
					t.Fatalf("err = %v, want ErrBadReplayRanks", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(e.ReplayRanks, tc.wantRanks) ||
				e.NoReplay != tc.noReplay || e.Network != tc.network {
				t.Fatalf("flags parsed to %+v", e)
			}
		})
	}
}

func TestCacheLabelsInArchError(t *testing.T) {
	bad := DefaultArch()
	bad.CacheLabel = "nope"
	_, err := bad.toPoint()
	if err == nil {
		t.Fatal("bad cache label accepted")
	}
	for _, l := range CacheLabels() {
		if !strings.Contains(err.Error(), l) {
			t.Fatalf("error %q does not list valid label %s", err, l)
		}
	}
}
