package musa

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"musa/internal/apps"
	"musa/internal/dse"
	"musa/internal/obs"
)

// This file is the distributed sweep scheduler: a sweep experiment is split
// into per-(application, annotation-group) shards, each shard is dispatched
// to a musa-serve worker over POST /shard, and the results are merged back
// into the same deterministic (app, arch-label) order the in-process runner
// produces. The local process is the retry and hedge pool: a shard whose
// worker fails, times out or runs past HedgeAfter is re-dispatched in
// process exactly once, and the first result per shard wins, so the merged
// dataset holds exactly one measurement per point either way.

// ErrBadWorker reports an unusable fleet worker URL in ClientOptions.
var ErrBadWorker = errors.New("musa: bad fleet worker URL")

// observeShard records one shard execution into the fleet shard-duration
// histogram. path distinguishes the remote dispatch from the local
// retry/hedge pool, so a dashboard can tell worker latency from fallback
// latency.
func observeShard(path string, start time.Time) {
	obs.DefaultRegistry().Histogram("musa_fleet_shard_seconds",
		"Time to complete one fleet shard, by execution path.", nil,
		obs.L("path", path)).Observe(time.Since(start).Seconds())
}

const (
	defaultShardTimeout = 10 * time.Minute
	capacityProbeWindow = 5 * time.Second
	// maxWorkerSlots clamps an advertised /capacity so a misconfigured
	// worker cannot make the coordinator open hundreds of connections.
	maxWorkerSlots = 16
	// maxRetryAfterWait caps how long a dispatch slot honors a worker's
	// Retry-After hint before giving the shard to the local pool instead: a
	// worker advertising a multi-minute backoff is effectively down for this
	// shard.
	maxRetryAfterWait = 30 * time.Second
)

// retryAfterError reports a worker shedding load with 429 + Retry-After.
// Unlike a transport failure or a 5xx, this is the worker explicitly asking
// to be retried — the dispatch loop honors the hint with one bounded wait
// before falling back to the local pool.
type retryAfterError struct {
	base  string
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("musa: %s/shard: 429 Too Many Requests (retry after %s)", e.base, e.after)
}

// parseRetryAfter reads a Retry-After header as delay seconds; malformed or
// absent values fall back to one second.
func parseRetryAfter(v string) time.Duration {
	if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 {
		return time.Duration(n) * time.Second
	}
	return time.Second
}

// fleet is the validated remote-worker configuration of a Client.
type fleet struct {
	bases      []string // normalized base URLs, no trailing slash
	timeout    time.Duration
	hedgeAfter time.Duration
	httpc      *http.Client
}

// newFleet validates the worker base URLs (http/https with a host) and
// normalizes the dispatch knobs.
func newFleet(workers []string, shardTimeout, hedgeAfter time.Duration) (*fleet, error) {
	f := &fleet{
		timeout:    shardTimeout,
		hedgeAfter: hedgeAfter,
		httpc:      &http.Client{},
	}
	if f.timeout == 0 {
		f.timeout = defaultShardTimeout
	}
	for _, w := range workers {
		u, err := url.Parse(strings.TrimRight(w, "/"))
		if err != nil {
			return nil, fmt.Errorf("%w %q: %v", ErrBadWorker, w, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("%w %q: want http(s)://host[:port]", ErrBadWorker, w)
		}
		f.bases = append(f.bases, u.String())
	}
	return f, nil
}

// capacity probes GET {base}/capacity and returns the advertised concurrent
// job count, clamped to [1, maxWorkerSlots].
func (f *fleet) capacity(ctx context.Context, base string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, capacityProbeWindow)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/capacity", nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("musa: %s/capacity: %s", base, resp.Status)
	}
	var out struct {
		MaxJobs int `json:"maxJobs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil {
		return 0, fmt.Errorf("musa: %s/capacity: %v", base, err)
	}
	if out.MaxJobs < 1 {
		return 1, nil
	}
	return min(out.MaxJobs, maxWorkerSlots), nil
}

// postShard sends one shard sub-experiment to a worker and returns its
// measurements. The request is bounded by the fleet's shard timeout.
func (f *fleet) postShard(ctx context.Context, base string, e Experiment) ([]Measurement, error) {
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	body, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the dispatch span so the worker's request span (and the
	// whole worker-side tree under it) parents into this coordinator trace.
	if hv := obs.SpanFrom(ctx).HeaderValue(); hv != "" {
		req.Header.Set(obs.TraceHeader, hv)
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, &retryAfterError{base: base, after: parseRetryAfter(resp.Header.Get("Retry-After"))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("musa: %s/shard: %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
	}
	var out struct {
		Measurements []Measurement `json:"measurements"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("musa: %s/shard: %v", base, err)
	}
	return out.Measurements, nil
}

// shardJob is one dispatch unit: the points of one (application,
// annotation-group) pair that were not already in the result store.
type shardJob struct {
	app     string
	indices []int             // ascending Table I grid indices
	keys    map[string]string // arch label -> store key, also the expected-point set

	// done guards completion: the first finisher (remote or the local
	// retry/hedge) records the shard's measurements, every later finisher
	// is dropped, so each point is measured exactly once in the merge.
	done atomic.Bool
	// redone guards re-dispatch: a shard is handed to the local pool at
	// most once, whether because its worker failed, timed out, or ran past
	// the hedge deadline.
	redone atomic.Bool
}

// shardQueue is a mutex-guarded FIFO of planned shards. Ring-mode dispatch
// pins one queue per worker at plan time; idle workers (and, past the hedge
// delay, the local pool) steal from the others.
type shardQueue struct {
	mu    sync.Mutex
	items []*shardJob
}

func (q *shardQueue) push(j *shardJob) {
	q.mu.Lock()
	q.items = append(q.items, j)
	q.mu.Unlock()
}

func (q *shardQueue) pop() *shardJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j
}

// planShards groups each application's remaining grid indices into
// per-annotation-group shards (dse.AnnGroup — the grouping under which
// dse.Run shares one annotation pass, so dispatching a whole group keeps a
// remote worker as efficient as the local runner). The plan is
// deterministic and ordered for artifact locality: applications first,
// then memory kind, cores, vector width and cache label — shards that
// share burst traces (same app) and DRAM latency curves (same app and
// memory kind) sit adjacent in the dispatch queue, so consecutive pulls by
// the same worker reuse its freshest artifacts. keyOf maps a unit onto its
// store key; the shard keeps the label->key map both to warm the
// coordinator store and to validate a worker's reply.
//
// With a replica ring configured, ownerOf (nil otherwise) maps a shard onto
// the replica owning its annotation key and the plan orders by owner first:
// ring locality subsumes artifact locality, because the owner is where the
// annotation either already lives or will be replicated to.
func planShards(appNames []string, remaining map[string][]int, keyOf func(app string, i int) string, ownerOf func(*shardJob) string) []*shardJob {
	grid := tableIGrid()
	var out []*shardJob
	for _, app := range appNames {
		groups := map[dse.AnnGroup]*shardJob{}
		for _, i := range remaining[app] {
			gk := grid[i].AnnGroup()
			j := groups[gk]
			if j == nil {
				j = &shardJob{app: app, keys: map[string]string{}}
				groups[gk] = j
				out = append(out, j)
			}
			j.indices = append(j.indices, i)
			j.keys[grid[i].Label()] = keyOf(app, i)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := out[a], out[b]
		if ownerOf != nil {
			if oa, ob := ownerOf(ja), ownerOf(jb); oa != ob {
				return oa < ob
			}
		}
		if ja.app != jb.app {
			return ja.app < jb.app
		}
		ga, gb := grid[ja.indices[0]].AnnGroup(), grid[jb.indices[0]].AnnGroup()
		if ga.Mem != gb.Mem {
			return ga.Mem < gb.Mem
		}
		if ga.Cores != gb.Cores {
			return ga.Cores < gb.Cores
		}
		if ga.Vec != gb.Vec {
			return ga.Vec < gb.Vec
		}
		return ga.Cache < gb.Cache
	})
	return out
}

// shardArtifactKeys lists the content addresses of every artifact a shard's
// worker would otherwise build: the group's shared hit-rate table, one DRAM
// latency curve per distinct channel count, and the burst trace of each
// replayed rank count. The keys match what dse.Run derives on the worker —
// fidelity is normalized identically on both sides.
func shardArtifactKeys(ne Experiment, j *shardJob) []string {
	app, err := apps.ByName(j.app)
	if err != nil {
		return nil // custom applications never reach the fleet
	}
	hash := dse.AppHash(app)
	grid := tableIGrid()
	g := grid[j.indices[0]].AnnGroup()
	keys := []string{dse.HitRateKey(hash, g.CacheGroup(), ne.Sample, ne.Warmup, ne.Seed)}
	chSeen := map[int]bool{}
	for _, i := range j.indices {
		if ch := grid[i].Channels; !chSeen[ch] {
			chSeen[ch] = true
			keys = append(keys, dse.LatencyModelKey(hash, ch, g.Mem, ne.Seed))
		}
	}
	if !ne.NoReplay {
		for _, r := range ne.ReplayRanks {
			keys = append(keys, dse.BurstKey(hash, r, ne.Seed))
		}
	}
	return keys
}

// artifactPushWindow bounds one coordinator-to-worker artifact upload.
const artifactPushWindow = time.Minute

// putArtifact uploads one encoded artifact to a worker's artifact cache.
// unsupported reports that the worker cannot take artifacts at all —
// 503 from -no-artifacts, 404/405/501 from a binary predating the
// endpoint — as opposed to a transient failure (transport error, 5xx
// overload) or a this-blob-only rejection (4xx), neither of which should
// write the whole worker off.
func (f *fleet) putArtifact(ctx context.Context, base, key string, blob []byte) (unsupported bool, err error) {
	ctx, cancel := context.WithTimeout(ctx, artifactPushWindow)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/artifact/"+key, bytes.NewReader(blob))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.httpc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return false, nil
	case http.StatusServiceUnavailable, http.StatusNotFound,
		http.StatusMethodNotAllowed, http.StatusNotImplemented:
		return true, fmt.Errorf("musa: %s/artifact/%s: %s", base, key, resp.Status)
	default:
		return false, fmt.Errorf("musa: %s/artifact/%s: %s", base, key, resp.Status)
	}
}

// pushShardArtifacts ships the shard's locally available artifacts to the
// worker ahead of dispatch, so the worker decodes coordinator-built
// annotations instead of recomputing them per shard. Best effort: a failed
// push just means the worker rebuilds. pushed dedupes per (worker, key)
// across the whole dispatch; a worker that cannot take artifacts at all
// (-no-artifacts answering 503, an older binary answering 404) is marked
// so later shards do not re-upload multi-MB blobs into a guaranteed
// rejection, while transient failures stay retryable on later shards.
func (c *Client) pushShardArtifacts(ctx context.Context, base string, ne Experiment, j *shardJob, pushed *sync.Map) {
	if c.art == nil {
		return
	}
	if _, refused := pushed.Load(base); refused {
		return
	}
	for _, key := range shardArtifactKeys(ne, j) {
		id := base + "\x00" + key
		if _, done := pushed.Load(id); done {
			continue
		}
		blob, ok := c.art.Blob(key)
		if !ok {
			continue
		}
		unsupported, err := c.fleet.putArtifact(ctx, base, key, blob)
		switch {
		case err == nil:
			pushed.Store(id, true)
			c.artifactsPushed.Add(1)
		case unsupported:
			pushed.Store(base, true) // worker takes no artifacts: stop pushing to it
			return
		}
	}
}

// validateShardReply checks a worker's measurements against the shard: one
// measurement per requested point, no strays, no duplicates. A mismatching
// reply is treated like a failed worker and the shard is re-dispatched.
func (j *shardJob) validateShardReply(ms []Measurement) error {
	if len(ms) != len(j.indices) {
		return fmt.Errorf("musa: shard %s: %d measurements for %d points", j.app, len(ms), len(j.indices))
	}
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		label := m.Arch.Label()
		if m.App != j.app {
			return fmt.Errorf("musa: shard %s: stray app %q", j.app, m.App)
		}
		if _, ok := j.keys[label]; !ok {
			return fmt.Errorf("musa: shard %s: stray point %s", j.app, label)
		}
		if seen[label] {
			return fmt.Errorf("musa: shard %s: duplicate point %s", j.app, label)
		}
		seen[label] = true
	}
	return nil
}

// shardExperiment builds the wire sub-experiment of a shard: the normalized
// sweep restricted to the shard's application and points. Every field a
// worker could otherwise default is explicit — seed, replay ranks and
// network come normalized, and an implicit (zero) fidelity is materialized
// to the package defaults the local pool would simulate with — so a worker
// started with its own -sample/-warmup/-replay defaults computes exactly
// the measurements the coordinator expects.
func shardExperiment(ne Experiment, j *shardJob) Experiment {
	// The one defaulting rule the node simulator applies and the artifact
	// keys hash — materialized on the wire so a worker's own defaults
	// never apply.
	sample, warmup := apps.EffectiveFidelity(ne.Sample, ne.Warmup)
	return Experiment{
		Kind: KindSweep, Apps: []string{j.app}, PointIndices: j.indices,
		Sample: sample, Warmup: warmup, Seed: ne.Seed,
		ReplayRanks: ne.ReplayRanks, NoReplay: ne.NoReplay, Network: ne.Network,
		Recompute: ne.Recompute,
	}
}

// fleetEligible reports whether a normalized sweep can be dispatched to the
// fleet: every application must be a built-in (workers cannot resolve this
// client's registered custom profiles).
func (c *Client) fleetEligible(ne Experiment) bool {
	for _, name := range ne.Apps {
		if c.customProfile(name) != nil {
			return false
		}
	}
	return true
}

// runShardLocal executes one shard in process — the retry and hedge path.
// The shard is one annotation group, which dse.Run walks sequentially, so
// parallelism comes from the number of local pool goroutines instead.
func (c *Client) runShardLocal(ctx context.Context, ne Experiment, j *shardJob) ([]Measurement, error) {
	app, err := c.resolveApp(j.app)
	if err != nil {
		return nil, err // unreachable: ne is normalized
	}
	grid := tableIGrid()
	points := make([]dse.ArchPoint, len(j.indices))
	for k, i := range j.indices {
		points[k] = grid[i]
	}
	d := dse.Run(ctx, dse.Options{
		Apps:         []*apps.Profile{app},
		Points:       points,
		SampleInstrs: ne.Sample,
		WarmupInstrs: ne.Warmup,
		Workers:      1,
		Seed:         ne.Seed,
		Replay:       c.replayOf(ne),
		Artifacts:    c.artifacts(),
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(d.Measurements) != len(points) {
		return nil, fmt.Errorf("musa: local shard %s: %d measurements for %d points",
			j.app, len(d.Measurements), len(points))
	}
	c.simulated.Add(int64(len(d.Measurements)))
	return d.Measurements, nil
}

// runSweepFleet is the distributed counterpart of runSweep. The store is
// consulted up front (cached points are never dispatched), the remaining
// points are sharded and spread across the fleet with per-worker bounded
// in-flight requests, and every completed shard — remote or local — is
// checkpointed into the coordinator's store under the same node keys the
// in-process runner writes. On cancellation it returns the partial dataset
// with an error wrapping ctx.Err(), exactly like the in-process path.
func (c *Client) runSweepFleet(ctx context.Context, ne Experiment, watch Observer) (*Result, error) {
	appNames := ne.Apps
	if appNames == nil {
		for _, a := range apps.All() {
			appNames = append(appNames, a.Name)
		}
		sort.Strings(appNames)
	}
	indices := ne.PointIndices
	if indices == nil {
		indices = make([]int, PointCount())
		for i := range indices {
			indices[i] = i
		}
	}
	grid := tableIGrid()
	// keyOf is memoized: the store pre-check and the shard planner both ask
	// for every key, and each derivation is a canonical-JSON marshal + hash.
	// Only runSweepFleet's goroutine calls it, so a plain map suffices.
	keyMemo := make(map[string]string, len(appNames)*len(indices))
	keyOf := func(app string, i int) string {
		mk := app + "\x00" + strconv.Itoa(i)
		if k, ok := keyMemo[mk]; ok {
			return k
		}
		k := nodeKey(ne, app, nil, archOfPoint(grid[i]), nil)
		keyMemo[mk] = k
		return k
	}

	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()

	// Serialized observer delivery and shared result assembly.
	total := len(appNames) * len(indices)
	var resMu sync.Mutex
	var collected []Measurement
	var done, cachedCount int
	var firstErr error
	record := func(ms []Measurement, cached bool, err error) {
		resMu.Lock()
		collected = append(collected, ms...)
		done += len(ms)
		if cached {
			cachedCount += len(ms)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		// Both callbacks run under the lock: the Observer contract promises
		// each is serialized with itself.
		if watch.Measurement != nil {
			for _, m := range ms {
				watch.Measurement(m)
			}
		}
		if watch.Progress != nil && len(ms) > 0 {
			watch.Progress(done, total, cachedCount)
		}
		resMu.Unlock()
	}

	// Store pre-check: known points are served locally and never dispatched.
	_, planSpan := obs.StartSpan(ctx, "fleet.plan",
		obs.AInt("apps", len(appNames)), obs.AInt("points", total))
	remaining := map[string][]int{}
	for _, app := range appNames {
		var hits []Measurement
		for _, i := range indices {
			if c.st != nil && !ne.Recompute {
				if m, ok := c.st.Get(keyOf(app, i)); ok {
					c.storeHits.Add(1)
					hits = append(hits, m)
					continue
				}
				c.storeMisses.Add(1)
			}
			remaining[app] = append(remaining[app], i)
		}
		record(hits, true, nil)
	}

	// With a ring configured over the worker fleet, shards are planned and
	// dispatched by ring ownership: the shard for an annotation group lands
	// on the replica that owns the group's artifact key, so its /simulate
	// traffic, artifact cache and shard execution all converge there.
	rg := c.opts.Ring
	ringMode := rg != nil && rg.Len() > 0 && len(c.fleet.bases) > 0
	var ownerOf func(*shardJob) string
	if ringMode {
		owners := map[*shardJob]string{}
		ownerOf = func(j *shardJob) string {
			if o, ok := owners[j]; ok {
				return o
			}
			o := ""
			if keys := shardArtifactKeys(ne, j); len(keys) > 0 {
				o = rg.Owner(keys[0])
			}
			owners[j] = o
			return o
		}
	}

	shards := planShards(appNames, remaining, keyOf, ownerOf)
	planSpan.SetAttr("shards", fmt.Sprint(len(shards)))
	planSpan.End()
	if len(shards) > 0 {
		// dispatchCtx kills straggler requests (lost hedges, slower
		// duplicates) as soon as every shard has completed once.
		dispatchCtx, cancelDispatch := context.WithCancel(ctx)
		defer cancelDispatch()

		jobs := make(chan *shardJob, len(shards))
		redo := make(chan *shardJob, len(shards))
		// pushed dedupes artifact uploads per (worker, key) for this run.
		var pushed sync.Map

		var remainingShards atomic.Int64
		remainingShards.Store(int64(len(shards)))
		allDone := make(chan struct{})
		complete := func(j *shardJob, ms []Measurement, err error) bool {
			if !j.done.CompareAndSwap(false, true) {
				return false
			}
			var putErr error
			if err == nil && c.st != nil {
				for _, m := range ms {
					if e := c.st.Put(j.keys[m.Arch.Label()], m); e != nil && putErr == nil {
						putErr = e
					}
				}
			}
			record(ms, false, errors.Join(err, putErr))
			if remainingShards.Add(-1) == 0 {
				close(allDone)
			}
			return true
		}
		// redispatch hands a shard to the local pool at most once; redo is
		// buffered for every shard, so this never blocks a worker loop.
		redispatch := func(j *shardJob) {
			if j.redone.CompareAndSwap(false, true) {
				c.redispatched.Add(1)
				// Zero-length marker span: makes every hedge/retry decision
				// visible in the trace timeline at the moment it was taken.
				_, sp := obs.StartSpan(ctx, "fleet.redispatch",
					obs.A("app", j.app), obs.AInt("points", len(j.indices)))
				sp.End()
				redo <- j
			}
		}

		// Probe worker capacities concurrently; an unreachable worker takes
		// no shards this run (its would-be shards just spread elsewhere).
		slots := make([]int, len(c.fleet.bases))
		var probe sync.WaitGroup
		for i, base := range c.fleet.bases {
			probe.Add(1)
			go func() {
				defer probe.Done()
				if n, err := c.fleet.capacity(dispatchCtx, base); err == nil {
					slots[i] = n
				}
			}()
		}
		probe.Wait()
		totalSlots := 0
		for _, n := range slots {
			totalSlots += n
		}

		// Hand out the shards. Without a ring every worker slot competes for
		// the one shared queue; with a ring each shard is pinned at plan time
		// to the reachable worker ranked highest for its annotation key, so
		// the whole tier executes a group where its artifacts live. Shards
		// whose ring order names no reachable worker spill to any worker with
		// slots; with no reachable worker at all everything goes through the
		// shared queue to the local pool.
		queues := make([]*shardQueue, len(c.fleet.bases))
		for i := range queues {
			queues[i] = &shardQueue{}
		}
		if ringMode && totalSlots > 0 {
			baseIndex := make(map[string]int, len(c.fleet.bases))
			for i, b := range c.fleet.bases {
				baseIndex[b] = i
			}
			assign := func(j *shardJob) int {
				if keys := shardArtifactKeys(ne, j); len(keys) > 0 {
					for _, m := range rg.Order(keys[0]) {
						if i, ok := baseIndex[m]; ok && slots[i] > 0 {
							return i
						}
					}
				}
				for i := range c.fleet.bases {
					if slots[i] > 0 {
						return i
					}
				}
				return -1 // unreachable: totalSlots > 0
			}
			for _, j := range shards {
				queues[assign(j)].push(j)
			}
		} else {
			for _, j := range shards {
				jobs <- j
			}
		}
		close(jobs)

		// dispatchOne runs one shard against one worker: hedge timer, span,
		// artifact pre-push, the POST, and — when the worker sheds with 429 —
		// one retry honoring its Retry-After hint before the local fallback.
		dispatchOne := func(base string, j *shardJob) {
			// The hedge timer starts before the artifact pushes: a worker
			// that stalls on PUT bodies must not hold the shard past the
			// hedge deadline unprotected. It also spans the Retry-After wait,
			// so an overloaded worker's backoff never delays the sweep beyond
			// the hedge policy.
			var hedge *time.Timer
			if c.fleet.hedgeAfter > 0 {
				hedge = time.AfterFunc(c.fleet.hedgeAfter, func() { redispatch(j) })
			}
			dctx, dspan := obs.StartSpan(dispatchCtx, "fleet.dispatch",
				obs.A("worker", base), obs.A("app", j.app),
				obs.AInt("points", len(j.indices)))
			dispatchStart := time.Now()
			// Ship the artifacts this shard needs (and the coordinator has)
			// before dispatching it, so the worker reuses instead of
			// rebuilding.
			c.pushShardArtifacts(dctx, base, ne, j, &pushed)
			ms, err := c.fleet.postShard(dctx, base, shardExperiment(ne, j))
			var ra *retryAfterError
			if errors.As(err, &ra) && dispatchCtx.Err() == nil && !j.done.Load() {
				wait := min(ra.after, maxRetryAfterWait)
				dspan.SetAttr("retryAfter", wait.String())
				c.shardRetries.Add(1)
				select {
				case <-time.After(wait):
					ms, err = c.fleet.postShard(dctx, base, shardExperiment(ne, j))
				case <-dispatchCtx.Done():
				}
			}
			if hedge != nil {
				hedge.Stop()
			}
			if err == nil {
				err = j.validateShardReply(ms)
			}
			if err != nil {
				dspan.SetAttr("outcome", "error")
				dspan.End()
				if dispatchCtx.Err() != nil {
					return
				}
				redispatch(j)
				return
			}
			observeShard("remote", dispatchStart)
			if complete(j, ms, nil) {
				dspan.SetAttr("outcome", "won")
				c.remote.Add(int64(len(ms)))
			} else {
				dspan.SetAttr("outcome", "lost")
			}
			dspan.End()
		}

		var wg sync.WaitGroup
		for i, base := range c.fleet.bases {
			for s := 0; s < slots[i]; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if ringMode {
						// Owner-pinned dispatch: drain this worker's own
						// queue (fully populated before the goroutines
						// start), then steal from overloaded peers' queues —
						// a stolen shard still resolves its artifacts through
						// the ring's peer fetch, so stealing costs one
						// transfer, not a rebuild.
						next := func() *shardJob {
							if j := queues[i].pop(); j != nil {
								return j
							}
							for _, q := range queues {
								if j := q.pop(); j != nil {
									return j
								}
							}
							return nil
						}
						for {
							if dispatchCtx.Err() != nil {
								return
							}
							j := next()
							if j == nil {
								return
							}
							if j.done.Load() {
								continue
							}
							dispatchOne(base, j)
						}
					}
					for {
						select {
						case <-dispatchCtx.Done():
							return
						case j, ok := <-jobs:
							if !ok {
								return
							}
							dispatchOne(base, j)
						}
					}
				}()
			}
		}

		// The local pool drains the redo queue; with no reachable worker it
		// is also the primary consumer, so the sweep always completes. With
		// hedging enabled it additionally joins primary consumption after
		// the hedge delay — otherwise shards still queued behind stalled
		// workers would starve (hedge timers only cover picked-up shards).
		primary := jobs
		if totalSlots > 0 {
			primary = nil
		}
		nLocal := c.opts.SweepWorkers
		if nLocal <= 0 {
			nLocal = runtime.GOMAXPROCS(0)
		}
		for w := 0; w < nLocal; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				jobsCh := primary
				var steal bool
				var join <-chan time.Time
				if jobsCh == nil && c.fleet.hedgeAfter > 0 {
					join = time.After(c.fleet.hedgeAfter)
				}
				for {
					var j *shardJob
					// Past the hedge delay in ring mode, the shared jobs
					// channel is empty; undispatched shards sit in the
					// per-worker queues, so joining means stealing there.
					if steal {
						for _, q := range queues {
							if j = q.pop(); j != nil {
								break
							}
						}
						if j == nil {
							steal = false // the queues never refill
						}
					}
					if j == nil {
						select {
						case <-dispatchCtx.Done():
							return
						case <-allDone:
							return
						case <-join:
							jobsCh, join = jobs, nil
							steal = ringMode
							continue
						case j = <-redo:
						case j2, ok := <-jobsCh:
							if !ok {
								jobsCh = nil // closed: stop selecting it
								continue
							}
							j = j2
						}
					}
					if j.done.Load() {
						continue // lost hedge: the remote reply already won
					}
					lctx, lspan := obs.StartSpan(dispatchCtx, "fleet.local-shard",
						obs.A("app", j.app), obs.AInt("points", len(j.indices)))
					localStart := time.Now()
					ms, err := c.runShardLocal(lctx, ne, j)
					if err != nil {
						lspan.SetAttr("outcome", "error")
						lspan.End()
						if dispatchCtx.Err() != nil {
							return
						}
						complete(j, nil, err) // local execution cannot be retried
						continue
					}
					observeShard("local", localStart)
					if complete(j, ms, nil) {
						lspan.SetAttr("outcome", "won")
					} else {
						lspan.SetAttr("outcome", "lost")
					}
					lspan.End()
				}
			}()
		}

		select {
		case <-allDone:
		case <-ctx.Done():
		}
		cancelDispatch()
		wg.Wait()
	}

	resMu.Lock()
	ms := collected
	err := firstErr
	resMu.Unlock()
	_, mergeSpan := obs.StartSpan(ctx, "fleet.merge", obs.AInt("measurements", len(ms)))
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].App != ms[j].App {
			return ms[i].App < ms[j].App
		}
		return ms[i].Arch.Label() < ms[j].Arch.Label()
	})
	mergeSpan.End()
	res := &Result{Kind: KindSweep, Sweep: &Sweep{Measurements: ms}}
	if cerr := ctx.Err(); cerr != nil {
		return res, fmt.Errorf("musa: sweep canceled with %d of the measurements: %w",
			len(ms), errors.Join(cerr, err))
	}
	return res, err
}
