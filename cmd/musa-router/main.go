// musa-router is a thin L7 front door for a ring of musa-serve replicas:
// it derives the content-addressed route key of each request and forwards
// it to the replica the rendezvous ring ranks highest, so duplicate
// requests from many clients converge on one replica's single-flight and
// store regardless of which front door they entered through. The router
// holds no store and runs no simulations — a health prober and a hash are
// its whole state, so any number of routers can run behind one DNS name.
//
// Usage:
//
//	musa-router -addr :8079 -replicas http://h1:8080,http://h2:8080,http://h3:8080
//
// Routing:
//
//	POST /simulate       by the experiment's node store key
//	POST /dse, /shard    by the hash of the canonical sweep encoding
//	GET|PUT /artifact/{key}  by the artifact key itself
//	everything else      to the healthiest replica (ops endpoints, figures)
//
// Replicas that fail a probe or a forward are routed around until they
// pass again; a replica answering 503 from /healthz (draining) or
// overloaded stops receiving new work but keeps its in-flight streams.
// The route-key contract requires this router to run with the same
// default-fidelity flags (-sample, -warmup, -seed, -replay-ranks,
// -network) as every replica.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"musa"
	"musa/internal/obs"
	"musa/internal/ring"
	"musa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-router: ")

	addr := flag.String("addr", ":8079", "listen address")
	replicas := flag.String("replicas", "", "comma-separated musa-serve replica base URLs (required)")
	sample := flag.Int64("sample", 0, "default detailed sample micro-ops — must match the replicas")
	warmup := flag.Int64("warmup", 0, "default warmup micro-ops — must match the replicas")
	seed := flag.Uint64("seed", 1, "default seed — must match the replicas")
	replayRanks := flag.String("replay-ranks", "", "default cluster-stage rank counts — must match the replicas")
	noReplay := flag.Bool("no-replay", false, "default replay disablement — must match the replicas")
	network := flag.String("network", "", "default interconnect model — must match the replicas")
	probeEvery := flag.Duration("probe-interval", 3*time.Second, "healthz probe period per replica")
	flag.Parse()

	members := splitList(*replicas)
	if len(members) == 0 {
		log.Fatal("no replicas: pass -replicas URLS")
	}

	var defaults musa.Experiment
	if err := defaults.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
		log.Fatal(err)
	}
	// The client exists only to derive route keys with the same normalization
	// the replicas apply; it never opens a store or runs a simulation.
	rg := musa.NewRing("", members)
	keyer, err := musa.NewClient(musa.ClientOptions{
		NoArtifacts:  true,
		SampleInstrs: *sample,
		WarmupInstrs: *warmup,
		Seed:         *seed,
		ReplayRanks:  defaults.ReplayRanks,
		NoReplay:     defaults.NoReplay,
		Network:      defaults.Network,
		Ring:         rg,
	})
	if err != nil {
		log.Fatal(err)
	}

	rt := &router{rg: rg, keyer: keyer, httpc: &http.Client{}}
	go rt.probe(*probeEvery)

	srv := &http.Server{Addr: *addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	log.Printf("routing %d replicas on %s", rg.Len(), *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

type router struct {
	rg    *musa.Ring
	keyer *musa.Client
	httpc *http.Client
}

// probe polls every replica's /healthz on a fixed period and feeds the
// result into the ring's health states, which reorder routing preferences
// without changing key ownership.
func (rt *router) probe(every time.Duration) {
	for {
		for _, m := range rt.rg.Members() {
			rt.rg.SetState(m.URL, rt.probeOne(m.URL))
		}
		time.Sleep(every)
	}
}

func (rt *router) probeOne(base string) musa.RingState {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return musa.RingDown
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return musa.RingDown
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&body)
	if st, err := ring.ParseState(body.Status); err == nil {
		return st
	}
	if resp.StatusCode == http.StatusOK {
		return musa.RingOk
	}
	return musa.RingDown
}

// maxRoutedBody bounds a request body the router must buffer to derive its
// route key. Simulation requests are small JSON documents; artifact PUTs
// stream through without buffering.
const maxRoutedBody = 1 << 20

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := ""
	var body []byte
	switch {
	case r.Method == http.MethodPost &&
		(r.URL.Path == "/simulate" || r.URL.Path == "/dse" || r.URL.Path == "/shard"):
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxRoutedBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var e musa.Experiment
		if err := json.Unmarshal(body, &e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if e.Kind == "" {
			if r.URL.Path == "/simulate" {
				e.Kind = musa.KindNode
			} else {
				e.Kind = musa.KindSweep
			}
		}
		if k, err := rt.keyer.RouteKey(e); err == nil {
			key = k
		}
		// A key derivation failure routes by health alone; the replica
		// produces the authoritative validation error.
	case strings.HasPrefix(r.URL.Path, "/artifact/"):
		key = strings.TrimPrefix(r.URL.Path, "/artifact/")
	}
	rt.forward(w, r, key, body)
}

// forward sends the request to the ring's preferred replicas in order,
// skipping members marked down and advancing past transport failures. The
// first replica that answers — whatever its status code — owns the reply.
func (rt *router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	tried := 0
	for _, base := range rt.rg.Order(key) {
		if rt.rg.StateOf(base) == musa.RingDown {
			continue
		}
		tried++
		if rt.forwardTo(w, r, base, body) {
			return
		}
		rt.rg.SetState(base, musa.RingDown)
	}
	if tried == 0 {
		// Every replica is marked down: try them all anyway rather than
		// refusing — the prober may just be behind.
		for _, base := range rt.rg.Order(key) {
			if rt.forwardTo(w, r, base, body) {
				return
			}
		}
	}
	http.Error(w, "no replica reachable", http.StatusBadGateway)
}

// forwardTo proxies one request to one replica, streaming the response
// through with per-chunk flushes so NDJSON progress events reach the
// client incrementally. Returns false only when no response was started —
// a transport failure before any bytes were written — so the caller can
// try the next replica.
func (rt *router) forwardTo(w http.ResponseWriter, r *http.Request, base string, body []byte) bool {
	var reqBody io.Reader = r.Body
	if body != nil {
		reqBody = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), reqBody)
	if err != nil {
		return false
	}
	for _, h := range []string{"Content-Type", "Accept", obs.TraceHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	// The router is the placement decision: the replica executes locally
	// instead of re-routing, even if its membership view disagrees.
	req.Header.Set(serve.RingHopHeader, "1")
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client hung up; the reply is committed
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return true
		}
	}
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
