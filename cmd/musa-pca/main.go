// musa-pca reproduces the paper's principal component analysis (§V-C,
// Fig. 10): the correlation structure between architectural parameters and
// execution time over the 64-core, 2 GHz slice of the design space.
//
// Usage:
//
//	musa-pca [-apps hydro,lulesh] [-sample 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"musa"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-pca: ")

	appsFlag := flag.String("apps", "hydro,lulesh", "applications to analyze")
	sample := flag.Int64("sample", 0, "detailed sample micro-ops (0 = default)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	names := strings.Split(*appsFlag, ",")
	d, err := musa.RunSweep(musa.SweepOptions{
		AppNames:     names,
		SampleInstrs: *sample,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, app := range names {
		res, err := musa.PCA(d, app)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("PCA %s — PC0 explains %.2f%%, PC1 %.2f%% of variance",
				app, res.Explained[0]*100, res.Explained[1]*100),
			"variable", "PC0", "PC1")
		for v, l := range res.Labels {
			t.AddRow(l, res.Loadings[0][v], res.Loadings[1][v])
		}
		if err := t.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
