// musa-pca reproduces the paper's principal component analysis (§V-C,
// Fig. 10): the correlation structure between architectural parameters and
// execution time over the 64-core, 2 GHz slice of the design space. The
// underlying sweep is a KindSweep experiment run through the unified
// musa.Client API.
//
// Usage:
//
//	musa-pca [-apps hydro,lulesh] [-sample 100000] [-cache-dir musa-cache]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"musa"
	"musa/internal/obs"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-pca: ")

	appsFlag := flag.String("apps", "hydro,lulesh", "applications to analyze")
	sample := flag.Int64("sample", 0, "detailed sample micro-ops (0 = default)")
	seed := flag.Uint64("seed", 1, "seed")
	cacheDir := flag.String("cache-dir", "", "result store directory (empty = no persistence)")
	readOnly := flag.Bool("store-readonly", false, "open the result store read-only (share a directory another process is writing)")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	client, err := musa.NewClient(musa.ClientOptions{CacheDir: *cacheDir, StoreReadOnly: *readOnly})
	if err != nil {
		if errors.Is(err, musa.ErrStoreBusy) {
			log.Fatalf("%v\nanother process is writing %s; pass -store-readonly to read from it anyway", err, *cacheDir)
		}
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(obs.DefaultRegistry())

	names := strings.Split(*appsFlag, ",")
	res, err := client.Run(context.Background(), musa.Experiment{
		Kind:   musa.KindSweep,
		Apps:   names,
		Sample: *sample,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, app := range names {
		pca, err := musa.PCA(res.Sweep, app)
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("PCA %s — PC0 explains %.2f%%, PC1 %.2f%% of variance",
				app, pca.Explained[0]*100, pca.Explained[1]*100),
			"variable", "PC0", "PC1")
		for v, l := range pca.Labels {
			t.AddRow(l, pca.Loadings[0][v], pca.Loadings[1][v])
		}
		if err := t.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
