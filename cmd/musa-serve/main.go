// musa-serve exposes the simulation pipeline as an HTTP service backed by
// the content-addressed result store: repeated requests are cache hits,
// duplicate in-flight requests coalesce into one computation, and batch
// sweeps checkpoint incrementally so a restarted server resumes them. The
// handlers decode requests straight into musa.Experiment and execute them
// through one shared musa.Client — the same pipeline (and cache keys) the
// musa-dse CLI uses.
//
// Usage:
//
//	musa-serve -addr :8080 -cache-dir musa-cache
//
// API:
//
//	GET  /apps         the five application models
//	GET  /points       the 864-point Table I design space
//	GET  /capacity     advertised -max-jobs and in-flight jobs (fleet probe)
//	POST /simulate     {"app":"lulesh","pointIndex":42} -> one measurement
//	POST /dse          {"apps":["hydro"],"sample":60000} -> NDJSON stream
//	POST /shard        {"apps":["hydro"],"pointIndices":[0,1]} -> plain JSON
//	GET  /artifact/{key}  one encoded sweep artifact (annotation, latency
//	                      model, burst trace) from the artifact cache
//	PUT  /artifact/{key}  store a pushed artifact (fleet coordinators ship
//	                      these ahead of shards)
//	GET  /figures/{n}  JSON data for figure n (1, 4-11)
//	GET  /figures/4    rank timeline: ?app=lulesh&ranks=64&network=mn4
//	GET  /stats        client counters, store size, artifact-cache counters
//	GET  /metrics      Prometheus text metrics (HTTP, client, store, stages)
//	GET  /debug/trace  recorded spans (NDJSON; ?format=chrome for tracing UIs)
//	GET  /debug/pprof/ runtime profiles (only with -pprof)
//
// Every measurement carries the cluster-level replay metrics (EndToEndNs,
// MPIFraction, ParallelEff per configured rank count) unless -no-replay is
// set or the request opts out.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"musa"
	"musa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "musa-cache", "result store directory")
	readOnly := flag.Bool("store-readonly", false, "open the result store read-only (share a directory a sweep is writing)")
	artifactDir := flag.String("artifact-dir", "", "artifact cache directory (empty = <cache-dir>/artifacts)")
	noArtifacts := flag.Bool("no-artifacts", false, "disable the artifact cache (rebuild every intermediate)")
	lru := flag.Int("lru", 0, "in-memory LRU entries (0 = default)")
	workers := flag.Int("workers", 0, "simulation workers per job (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 2, "concurrently executing simulation jobs")
	sample := flag.Int64("sample", 0, "default detailed sample micro-ops (0 = package default)")
	warmup := flag.Int64("warmup", 0, "default warmup micro-ops (0 = 2x sample)")
	seed := flag.Uint64("seed", 1, "default seed")
	replayRanks := flag.String("replay-ranks", "", "comma-separated cluster-stage rank counts (default 64,256)")
	noReplay := flag.Bool("no-replay", false, "disable the cluster-level MPI replay stage")
	network := flag.String("network", "", "interconnect model: mn4, hdr200 or eth10 (default mn4)")
	pprofFlag := flag.Bool("pprof", false, "expose runtime profiles under GET /debug/pprof/")
	accessLog := flag.Bool("access-log", false, "log one line per completed HTTP request")
	flag.Parse()

	// The replay flags share one parser with musa-dse: SetReplayFlags on a
	// defaults experiment, validated before anything opens.
	var defaults musa.Experiment
	if err := defaults.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
		log.Fatal(err)
	}

	client, err := musa.NewClient(musa.ClientOptions{
		CacheDir:      *cacheDir,
		StoreReadOnly: *readOnly,
		ArtifactCache: *artifactDir,
		NoArtifacts:   *noArtifacts,
		LRUEntries:    *lru,
		SweepWorkers:  *workers,
		MaxJobs:       *maxJobs,
		SampleInstrs:  *sample,
		WarmupInstrs:  *warmup,
		Seed:          *seed,
		ReplayRanks:   defaults.ReplayRanks,
		NoReplay:      defaults.NoReplay,
		Network:       defaults.Network,
	})
	if err != nil {
		if errors.Is(err, musa.ErrStoreBusy) {
			log.Fatalf("%v\nanother process is writing %s; pass -store-readonly to serve from it anyway", err, *cacheDir)
		}
		log.Fatal(err)
	}
	mode := ""
	if client.StoreReadOnly() {
		mode = " (read-only)"
	}
	log.Printf("store %s%s: %d measurements", *cacheDir, mode, client.StoreLen())
	if client.ArtifactsEnabled() {
		log.Printf("artifact cache: %d artifacts", client.ArtifactStats().Entries)
	}
	log.Printf("advertising capacity: %d concurrent jobs (/capacity)", client.MaxJobs())

	var handlerOpts []serve.Option
	if *pprofFlag {
		handlerOpts = append(handlerOpts, serve.WithPprof())
		log.Print("pprof enabled under /debug/pprof/")
	}
	if *accessLog {
		handlerOpts = append(handlerOpts, serve.WithAccessLog(log.New(os.Stderr, "access: ", 0)))
	}
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(serve.New(client), handlerOpts...)}

	// Graceful shutdown: stop accepting, drain in-flight requests (sweeps
	// checkpoint through the store, so killing them loses nothing beyond
	// the points in flight), then close the store.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := client.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Printf("store %s: %d measurements", *cacheDir, client.StoreLen())
}
