// musa-serve exposes the simulation pipeline as an HTTP service backed by
// the content-addressed result store: repeated requests are cache hits,
// duplicate in-flight requests coalesce into one computation, and batch
// sweeps checkpoint incrementally so a restarted server resumes them. The
// handlers decode requests straight into musa.Experiment and execute them
// through one shared musa.Client — the same pipeline (and cache keys) the
// musa-dse CLI uses.
//
// Usage:
//
//	musa-serve -addr :8080 -cache-dir musa-cache
//
// API:
//
//	GET  /apps         the five application models
//	GET  /points       the 864-point Table I design space
//	GET  /capacity     advertised -max-jobs and in-flight jobs (fleet probe)
//	POST /simulate     {"app":"lulesh","pointIndex":42} -> one measurement
//	POST /dse          {"apps":["hydro"],"sample":60000} -> NDJSON stream
//	POST /optimize     {"app":"hydro","optimize":{}} -> NDJSON rung stream
//	POST /shard        {"apps":["hydro"],"pointIndices":[0,1]} -> plain JSON
//	GET  /artifact/{key}  one encoded sweep artifact (annotation, latency
//	                      model, burst trace) from the artifact cache
//	PUT  /artifact/{key}  store a pushed artifact (fleet coordinators ship
//	                      these ahead of shards)
//	GET  /figures/{n}  JSON data for figure n (1, 4-11)
//	GET  /figures/4    rank timeline: ?app=lulesh&ranks=64&network=mn4
//	GET  /stats        client counters, store size, artifact-cache counters
//	GET  /healthz      replica health: ok / draining / overloaded (non-ok is 503)
//	GET  /membership   the replica ring (with -self/-peers)
//	PUT  /membership   replace the ring membership at runtime
//	GET  /metrics      Prometheus text metrics (HTTP, client, store, stages)
//	GET  /debug/trace  recorded spans (NDJSON; ?format=chrome for tracing UIs)
//	GET  /debug/pprof/ runtime profiles (only with -pprof)
//
// Every measurement carries the cluster-level replay metrics (EndToEndNs,
// MPIFraction, ParallelEff per configured rank count) unless -no-replay is
// set or the request opts out.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"musa"
	"musa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "musa-cache", "result store directory")
	readOnly := flag.Bool("store-readonly", false, "open the result store read-only (share a directory a sweep is writing)")
	artifactDir := flag.String("artifact-dir", "", "artifact cache directory (empty = <cache-dir>/artifacts)")
	noArtifacts := flag.Bool("no-artifacts", false, "disable the artifact cache (rebuild every intermediate)")
	lru := flag.Int("lru", 0, "in-memory LRU entries (0 = default)")
	workers := flag.Int("workers", 0, "simulation workers per job (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 2, "concurrently executing simulation jobs")
	sample := flag.Int64("sample", 0, "default detailed sample micro-ops (0 = package default)")
	warmup := flag.Int64("warmup", 0, "default warmup micro-ops (0 = 2x sample)")
	seed := flag.Uint64("seed", 1, "default seed")
	replayRanks := flag.String("replay-ranks", "", "comma-separated cluster-stage rank counts (default 64,256)")
	noReplay := flag.Bool("no-replay", false, "disable the cluster-level MPI replay stage")
	network := flag.String("network", "", "interconnect model: mn4, hdr200 or eth10 (default mn4)")
	pprofFlag := flag.Bool("pprof", false, "expose runtime profiles under GET /debug/pprof/")
	accessLog := flag.Bool("access-log", false, "log one line per completed HTTP request")
	self := flag.String("self", "", "this replica's advertised base URL (enables ring routing, e.g. http://host:8080)")
	peers := flag.String("peers", "", "comma-separated replica base URLs forming the ring (including -self)")
	ringRedirect := flag.Bool("ring-redirect", false, "307-redirect non-owned /simulate requests instead of proxying")
	admit := flag.Int("admit", 0, "max concurrently admitted heavy requests (0 = 4x max-jobs, negative = unlimited)")
	admitQueue := flag.Int("admit-queue", 64, "max heavy requests waiting for admission before shedding with 429")
	memtableBytes := flag.Int("store-memtable-bytes", 0, "LSM memtable flush threshold in bytes (0 = default)")
	blockCacheBytes := flag.Int64("store-block-cache-bytes", 0, "LSM block cache size in bytes (0 = default, negative = disabled)")
	flag.Parse()

	// The replay flags share one parser with musa-dse: SetReplayFlags on a
	// defaults experiment, validated before anything opens.
	var defaults musa.Experiment
	if err := defaults.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
		log.Fatal(err)
	}

	// A ring makes this replica one of several equivalent front doors: it
	// proxies /simulate requests it does not own to their owner and pulls
	// missing artifacts from peers before recomputing. The key-derivation
	// contract requires identical default flags on every replica.
	var rg *musa.Ring
	if *peers != "" {
		if *self == "" {
			log.Fatal("-peers requires -self (this replica's own URL in the ring)")
		}
		rg = musa.NewRing(*self, splitList(*peers))
	}

	client, err := musa.NewClient(musa.ClientOptions{
		CacheDir:             *cacheDir,
		StoreReadOnly:        *readOnly,
		StoreMemtableBytes:   *memtableBytes,
		StoreBlockCacheBytes: *blockCacheBytes,
		ArtifactCache:        *artifactDir,
		NoArtifacts:          *noArtifacts,
		LRUEntries:           *lru,
		SweepWorkers:         *workers,
		MaxJobs:              *maxJobs,
		SampleInstrs:         *sample,
		WarmupInstrs:         *warmup,
		Seed:                 *seed,
		ReplayRanks:          defaults.ReplayRanks,
		NoReplay:             defaults.NoReplay,
		Network:              defaults.Network,
		Ring:                 rg,
	})
	if err != nil {
		if errors.Is(err, musa.ErrStoreBusy) {
			log.Fatalf("%v\nanother process is writing %s; pass -store-readonly to serve from it anyway", err, *cacheDir)
		}
		log.Fatal(err)
	}
	snap := client.Snapshot()
	mode := ""
	if snap.Store.ReadOnly {
		mode = " (read-only)"
	}
	log.Printf("store %s%s: %d measurements", *cacheDir, mode, snap.Store.Len)
	if snap.Artifacts.Enabled {
		log.Printf("artifact cache: %d artifacts", snap.Artifacts.Stats.Entries)
	}
	log.Printf("advertising capacity: %d concurrent jobs (/capacity)", snap.Jobs.Max)

	var handlerOpts []serve.Option
	if *pprofFlag {
		handlerOpts = append(handlerOpts, serve.WithPprof())
		log.Print("pprof enabled under /debug/pprof/")
	}
	if *accessLog {
		handlerOpts = append(handlerOpts, serve.WithAccessLog(log.New(os.Stderr, "access: ", 0)))
	}
	// Admission control defaults on for the binary (the serve library leaves
	// it off): a replica taking public traffic must shed overload with 429 +
	// Retry-After rather than queue unboundedly.
	limit := *admit
	if limit == 0 {
		limit = 4 * snap.Jobs.Max
	}
	if limit > 0 {
		handlerOpts = append(handlerOpts, serve.WithAdmission(limit, *admitQueue))
		log.Printf("admission: %d concurrent, %d queued, then 429", limit, *admitQueue)
	}
	if *ringRedirect {
		handlerOpts = append(handlerOpts, serve.WithRingRedirect())
	}
	if rg != nil {
		log.Printf("ring: self=%s members=%d", rg.Self(), rg.Len())
	}
	svc := serve.New(client)
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(svc, handlerOpts...)}

	// Graceful shutdown: stop accepting, drain in-flight requests (sweeps
	// checkpoint through the store, so killing them loses nothing beyond
	// the points in flight), then close the store.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Draining first: /healthz flips to 503 so routers stop sending
		// work and new heavy requests shed, while Shutdown lets in-flight
		// NDJSON streams run to completion.
		svc.StartDraining()
		log.Print("draining, then shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := client.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
	log.Printf("store %s: %d measurements", *cacheDir, client.Snapshot().Store.Len)
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
