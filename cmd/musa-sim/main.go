// musa-sim runs a single detailed node simulation of one application on one
// architectural configuration and prints the performance, cache and power
// results.
//
// Usage:
//
//	musa-sim -app lulesh -cores 64 -core medium -freq 2.0 -vector 128 \
//	         -cache 64M:512K -channels 4 [-hbm] [-sample 300000] [-ranks 0]
//
// With -ranks N > 0 the full-application replay across N MPI ranks is run
// as well (detailed mode end to end). Both runs are Experiments executed
// through the unified musa.Client API; invalid flags are reported as
// errors, never panics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/obs"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-sim: ")

	appName := flag.String("app", "hydro", "application: hydro, spmz, btmz, spec3d, lulesh")
	cores := flag.Int("cores", 64, "cores per socket (1, 32, 64)")
	coreType := flag.String("core", "medium", "core type: lowend, medium, high, aggressive")
	freq := flag.Float64("freq", 2.0, "clock frequency in GHz")
	vector := flag.Int("vector", 128, "FPU vector width in bits")
	cacheLabel := flag.String("cache", "64M:512K", "cache config: 32M:256K, 64M:512K, 96M:1M")
	channels := flag.Int("channels", 4, "DDR channels")
	hbm := flag.Bool("hbm", false, "use HBM2 instead of DDR4-2333")
	sample := flag.Int64("sample", 0, "detailed sample length in micro-ops (0 = default)")
	warmup := flag.Int64("warmup", 0, "cache warmup length (0 = 2x sample)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	ranks := flag.Int("ranks", 0, "also replay a full run across N MPI ranks")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	client, err := musa.NewClient(musa.ClientOptions{MaxJobs: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(obs.DefaultRegistry())

	arch := musa.Arch{
		Cores: *cores, CoreType: *coreType, FreqGHz: *freq,
		VectorBits: *vector, CacheLabel: *cacheLabel, Channels: *channels, HBM: *hbm,
	}
	ctx := context.Background()

	res, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindNode, App: *appName, Arch: &arch,
		Sample: *sample, Warmup: *warmup, Seed: *seed,
		NoReplay: true, // the optional cluster view runs as its own full-app experiment
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Measurement

	tbl := report.NewTable(fmt.Sprintf("%s on %dx %s @ %.1f GHz, %d-bit SIMD, %s, %dch",
		m.App, *cores, *coreType, *freq, *vector, *cacheLabel, *channels),
		"metric", "value")
	tbl.AddRow("compute time (ms)", m.TimeNs/1e6)
	tbl.AddRow("IPC (sample core)", m.IPC)
	tbl.AddRow("avg active cores", m.ActiveCores)
	tbl.AddRow("L1 MPKI", m.L1MPKI)
	tbl.AddRow("L2 MPKI", m.L2MPKI)
	tbl.AddRow("L3 MPKI", m.L3MPKI)
	tbl.AddRow("DRAM GReq/s", m.GMemReqPerSec/1e9)
	tbl.AddRow("mem latency (ns)", m.MemLatencyNs)
	tbl.AddRow("offered BW (GB/s)", m.OfferedBW/1e9)
	tbl.AddRow("power core+L1 (W)", m.Power.CoreL1)
	tbl.AddRow("power L2+L3 (W)", m.Power.L2L3)
	tbl.AddRow("power memory (W)", m.Power.Memory)
	tbl.AddRow("power total (W)", m.Power.Total())
	tbl.AddRow("energy (J)", m.EnergyJ)
	if err := tbl.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *ranks > 0 {
		fres, err := client.Run(ctx, musa.Experiment{
			Kind: musa.KindFullApp, App: *appName, Arch: &arch,
			Sample: *sample, Warmup: *warmup, Seed: *seed, Ranks: *ranks,
		})
		if err != nil {
			log.Fatal(err)
		}
		full := fres.FullApp
		t2 := report.NewTable(fmt.Sprintf("full application, %d ranks", *ranks), "metric", "value")
		t2.AddRow("makespan (ms)", full.MakespanNs/1e6)
		t2.AddRow("parallel efficiency", full.Replay.AvgParallelEfficiency())
		t2.AddRow("MPI fraction", full.Replay.MPIFraction())
		t2.AddRow("avg node power (W)", full.NodeAvgPowerW)
		t2.AddRow("system energy (J)", full.SystemEnergyJ)
		if err := t2.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
