// musa-dse runs the paper's 864-configuration design space exploration and
// regenerates the evaluation figures (Figs. 1, 5-11, Tables I-II).
//
// Usage:
//
//	musa-dse -list                 # print the Table I design space
//	musa-dse -fig 5                # run the sweep, print one figure
//	musa-dse -all                  # run the sweep, print every figure
//	musa-dse -all -csv -sample 100000 -apps hydro,lulesh
//	musa-dse -all -cache-dir musa-cache   # checkpoint/reuse measurements
//
// The sweep is one KindSweep experiment run through the unified musa.Client
// API. With -cache-dir, every completed measurement is appended to the
// content-addressed result store as it finishes: a killed sweep resumes
// from its checkpoint, and a repeated run over the same points is served
// from the store. -resume=false forces recomputation (still overwriting
// the store). The store is the same one musa-serve uses — keys are the
// canonical experiment encodings — so the CLI and the server share one
// result pipeline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"musa"
	"musa/internal/dse"
	"musa/internal/obs"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-dse: ")

	list := flag.Bool("list", false, "list the design space and exit")
	figure := flag.Int("fig", 0, "figure to regenerate (1, 4, 5, 6, 7, 8, 9, 10, 11)")
	all := flag.Bool("all", false, "regenerate every figure")
	appsFlag := flag.String("apps", "", "comma-separated applications (default all)")
	sample := flag.Int64("sample", 0, "detailed sample micro-ops (0 = default)")
	warmup := flag.Int64("warmup", 0, "warmup micro-ops (0 = 2x sample)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "seed")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	verbose := flag.Bool("v", false, "print client and artifact-cache statistics after the run")
	cacheDir := flag.String("cache-dir", "", "result store directory (empty = no persistence)")
	readOnly := flag.Bool("store-readonly", false, "open the result store read-only (share a directory another process is writing)")
	artifactDir := flag.String("artifact-dir", "", "artifact cache directory (empty = <cache-dir>/artifacts, or in-memory without -cache-dir)")
	noArtifacts := flag.Bool("no-artifacts", false, "disable the artifact cache (rebuild every intermediate)")
	resume := flag.Bool("resume", true, "with -cache-dir, serve already-stored points from the store")
	replayRanks := flag.String("replay-ranks", "", "comma-separated cluster-stage rank counts (default 64,256)")
	noReplay := flag.Bool("no-replay", false, "disable the cluster-level MPI replay stage")
	network := flag.String("network", "", "interconnect model: mn4, hdr200 or eth10 (default mn4)")
	timelineRanks := flag.Int("ranks", 64, "rank count for the -fig 4 timeline")
	optimize := flag.Bool("optimize", false, "run a successive-halving search over the design space instead of figures")
	objectives := flag.String("objectives", "", "optimize: comma-separated objectives from time,energy,edp (default all)")
	maxPower := flag.Float64("max-power", 0, "optimize: average node power cap in watts (0 = unconstrained)")
	eta := flag.Int("eta", 0, "optimize: halving factor, 2-8 (0 = 4)")
	optRungs := flag.Int("opt-rungs", 0, "optimize: fidelity-ladder depth cap (0 = derived)")
	finalists := flag.Int("finalists", 0, "optimize: full-fidelity finalists (0 = max(4, eta+1))")
	minSample := flag.Int64("min-sample", 0, "optimize: cheap-rung sample floor in micro-ops (0 = 2000)")
	memtableBytes := flag.Int("store-memtable-bytes", 0, "LSM memtable flush threshold in bytes (0 = default)")
	blockCacheBytes := flag.Int64("store-block-cache-bytes", 0, "LSM block cache size in bytes (0 = default, negative = disabled)")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		tbl := report.NewTable("Table I design space (864 configurations)", "#", "configuration")
		for i := 0; i < musa.PointCount(); i++ {
			label, err := musa.PointLabel(i)
			if err != nil {
				log.Fatal(err)
			}
			tbl.AddRow(i, label)
		}
		must(tbl.Write(os.Stdout))
		return
	}
	if *figure == 0 && !*all && !*optimize {
		log.Fatal("nothing to do: pass -list, -fig N, -all or -optimize")
	}

	// One sweep experiment feeds every dataset-derived figure; the replay
	// flags are parsed by the shared Experiment helper musa-serve also uses.
	exp := musa.Experiment{
		Kind:      musa.KindSweep,
		Sample:    *sample,
		Warmup:    *warmup,
		Seed:      *seed,
		Recompute: !*resume,
	}
	if err := exp.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
		log.Fatal(err)
	}
	if *appsFlag != "" {
		exp.Apps = strings.Split(*appsFlag, ",")
	}
	if err := exp.Validate(); err != nil {
		log.Fatal(err)
	}

	client, err := musa.NewClient(musa.ClientOptions{
		CacheDir:             *cacheDir,
		StoreReadOnly:        *readOnly,
		StoreMemtableBytes:   *memtableBytes,
		StoreBlockCacheBytes: *blockCacheBytes,
		ArtifactCache:        *artifactDir,
		NoArtifacts:          *noArtifacts,
		SweepWorkers:         *workers,
	})
	if err != nil {
		if errors.Is(err, musa.ErrStoreBusy) {
			log.Fatalf("%v\nanother process is writing %s; pass -store-readonly to read from it anyway", err, *cacheDir)
		}
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(obs.DefaultRegistry())
	if *verbose {
		defer func() {
			printStageBreakdown()
			snap := client.Snapshot()
			st := snap.Stats
			fmt.Fprintf(os.Stderr, "stats: %d requests, %d store hits, %d simulated\n",
				st.Requests, st.StoreHits, st.Simulated)
			as := snap.Artifacts.Stats
			fmt.Fprintf(os.Stderr,
				"artifacts: %d entries; hit-rates %d/%d hit/miss, latency %d/%d, burst %d/%d; %d B read, %d B written\n",
				as.Entries,
				as.HitRates.Hits, as.HitRates.Misses,
				as.LatencyModels.Hits, as.LatencyModels.Misses,
				as.Bursts.Hits, as.Bursts.Misses,
				as.BytesRead, as.BytesWritten)
			if snap.Artifacts.Err != "" {
				fmt.Fprintf(os.Stderr, "artifacts: degraded: %s\n", snap.Artifacts.Err)
			}
		}()
	}

	var watch musa.Observer
	if !*quiet {
		watch.Progress = func(done, total, cached int) {
			if done%200 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d (%d cached)", done, total, cached)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	ctx := context.Background()
	if *optimize {
		// Ask a question instead of sweeping: one KindOptimize experiment
		// recovers the grid optimum at a fraction of the grid's cost.
		app := "lulesh"
		if len(exp.Apps) == 1 {
			app = exp.Apps[0]
		} else if len(exp.Apps) > 1 {
			log.Fatal("-optimize searches one application; pass -apps with a single name")
		}
		oexp := musa.Experiment{
			Kind: musa.KindOptimize, App: app,
			Sample: *sample, Warmup: *warmup, Seed: *seed, Recompute: !*resume,
			Optimize: &musa.OptimizeSpec{
				MaxPowerW: *maxPower, Eta: *eta, Rungs: *optRungs,
				Finalists: *finalists, MinSample: *minSample,
			},
		}
		if *objectives != "" {
			oexp.Optimize.Objectives = strings.Split(*objectives, ",")
		}
		if err := oexp.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
			log.Fatal(err)
		}
		if err := oexp.Validate(); err != nil {
			log.Fatal(err)
		}
		runOptimizeSearch(ctx, client, oexp, *jsonOut, *csv, *quiet)
		return
	}

	// Figures 4 and 11 run their own simulations and ignore the sweep
	// dataset; skip the sweep when nothing else was requested.
	var d *musa.Sweep
	if *all || (*figure != 4 && *figure != 11) {
		res, err := client.RunStream(ctx, exp, watch)
		if err != nil {
			log.Fatal(err)
		}
		d = res.Sweep
	}

	simOpts := musa.SimOptions{SampleInstrs: *sample, WarmupInstrs: *warmup, Seed: *seed}
	for _, n := range musa.FigureNumbers() {
		if !*all && *figure != n {
			continue
		}
		var fig *report.Figure
		var err error
		if n == 4 {
			// The rank timeline honors the -apps (first entry), -ranks
			// and -network flags instead of the sweep dataset.
			timelineApp := "lulesh"
			if len(exp.Apps) > 0 {
				timelineApp = exp.Apps[0]
			}
			var model musa.NetworkModel
			if *network != "" {
				model, err = musa.NetworkByName(*network)
				if err != nil {
					log.Fatal(err)
				}
			}
			fig, err = musa.RankTimeline(timelineApp, *timelineRanks, model, simOpts)
		} else {
			fig, err = musa.Figure(d, n, simOpts)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			must(fig.WriteJSON(os.Stdout))
			continue
		}
		for _, t := range fig.Tables {
			if *csv {
				must(t.WriteCSV(os.Stdout))
			} else {
				must(t.Write(os.Stdout))
			}
			fmt.Println()
		}
		if fig.Text != "" && !*csv {
			fmt.Println(fig.Text)
		}
	}
}

// runOptimizeSearch executes the -optimize mode and renders the rung
// history, the Pareto frontier, the recommendation and the cost saving
// against an exhaustive grid sweep.
func runOptimizeSearch(ctx context.Context, client *musa.Client, exp musa.Experiment, jsonOut, csvOut, quiet bool) {
	var watch musa.Observer
	if !quiet {
		watch.Progress = func(done, total, cached int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\roptimize: %d/%d probes (%d cached)", done, total, cached)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		watch.Rung = func(r musa.RungSummary) {
			fmt.Fprintf(os.Stderr, "\rrung %d: %d candidates at %.1f%% fidelity -> %d survivors\n",
				r.Rung, r.Candidates, 100*r.FidelityFraction, len(r.Survivors))
		}
	}
	res, err := client.RunStream(ctx, exp, watch)
	if err != nil {
		log.Fatal(err)
	}
	o := res.Optimize
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(o))
		return
	}
	rungs := report.NewTable(
		fmt.Sprintf("successive halving: %s, %d candidates", o.App, o.Candidates),
		"rung", "candidates", "fidelity", "sample", "replay", "cost Minstr", "survivors")
	for _, r := range o.Rungs {
		rungs.AddRow(r.Rung, r.Candidates, fmt.Sprintf("%.1f%%", 100*r.FidelityFraction),
			r.Sample, r.Replay, fmt.Sprintf("%.1f", float64(r.CostInstrs)/1e6), len(r.Survivors))
	}
	frontier := report.NewTable("Pareto frontier (full fidelity)",
		"#", "configuration", "time ms", "energy J", "EDP mJs", "power W", "feasible")
	for _, fp := range o.Frontier {
		frontier.AddRow(fp.PointIndex, fp.Label,
			fmt.Sprintf("%.3f", fp.Objectives.TimeNs/1e6),
			fmt.Sprintf("%.3f", fp.Objectives.EnergyJ),
			fmt.Sprintf("%.3f", fp.Objectives.EDP*1e3),
			fmt.Sprintf("%.1f", fp.PowerW),
			fp.Feasible)
	}
	for _, t := range []*report.Table{rungs, frontier} {
		if csvOut {
			must(t.WriteCSV(os.Stdout))
		} else {
			must(t.Write(os.Stdout))
		}
		fmt.Println()
	}
	if o.Best != nil {
		fmt.Printf("best: #%d %s (EDP %.3f mJs)\n",
			o.Best.PointIndex, o.Best.Label, o.Best.Objectives.EDP*1e3)
	}
	if o.Infeasible {
		fmt.Printf("note: no configuration satisfies the %g W power cap; frontier is unconstrained\n",
			o.MaxPowerW)
	}
	fmt.Printf("cost: %.1f Minstr probed vs %.1f Minstr grid (ratio %.3f)\n",
		float64(o.ProbeCostInstrs)/1e6, float64(o.GridCostInstrs)/1e6, o.CostRatio)
}

// printStageBreakdown renders the per-stage time table from the process
// metrics registry: one row per dse pipeline stage with call count, total
// and mean wall time, so -v shows where a sweep actually spent its time.
func printStageBreakdown() {
	for _, fam := range obs.DefaultRegistry().Snapshot() {
		if fam.Name != dse.StageMetric {
			continue
		}
		fmt.Fprintf(os.Stderr, "stage breakdown:\n")
		fmt.Fprintf(os.Stderr, "  %-16s %8s %12s %12s\n", "stage", "calls", "total", "mean")
		for _, s := range fam.Series {
			stage := "?"
			for _, l := range s.Labels {
				if l.Name == "stage" {
					stage = l.Value
				}
			}
			mean := 0.0
			if s.Count > 0 {
				mean = s.Value / float64(s.Count)
			}
			fmt.Fprintf(os.Stderr, "  %-16s %8d %11.3fs %10.3fms\n",
				stage, s.Count, s.Value, mean*1e3)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
