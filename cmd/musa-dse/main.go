// musa-dse runs the paper's 864-configuration design space exploration and
// regenerates the evaluation figures (Figs. 1, 5-11, Tables I-II).
//
// Usage:
//
//	musa-dse -list                 # print the Table I design space
//	musa-dse -fig 5                # run the sweep, print one figure
//	musa-dse -all                  # run the sweep, print every figure
//	musa-dse -all -csv -sample 100000 -apps hydro,lulesh
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"musa"
	"musa/internal/dse"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-dse: ")

	list := flag.Bool("list", false, "list the design space and exit")
	figure := flag.Int("fig", 0, "figure to regenerate (1, 5, 6, 7, 8, 9, 10, 11)")
	all := flag.Bool("all", false, "regenerate every figure")
	appsFlag := flag.String("apps", "", "comma-separated applications (default all)")
	sample := flag.Int64("sample", 0, "detailed sample micro-ops (0 = default)")
	warmup := flag.Int64("warmup", 0, "warmup micro-ops (0 = 2x sample)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "seed")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *list {
		tbl := report.NewTable("Table I design space (864 configurations)", "#", "configuration")
		for i, p := range dse.Enumerate() {
			tbl.AddRow(i, p.Label())
		}
		must(tbl.Write(os.Stdout))
		return
	}
	if *figure == 0 && !*all {
		log.Fatal("nothing to do: pass -list, -fig N or -all")
	}

	opts := musa.SweepOptions{
		SampleInstrs: *sample,
		WarmupInstrs: *warmup,
		Workers:      *workers,
		Seed:         *seed,
	}
	if *appsFlag != "" {
		opts.AppNames = strings.Split(*appsFlag, ",")
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			if done%200 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	d, err := musa.RunSweep(opts)
	if err != nil {
		log.Fatal(err)
	}

	emit := func(t *report.Table) {
		if *csv {
			must(t.WriteCSV(os.Stdout))
		} else {
			must(t.Write(os.Stdout))
		}
		fmt.Println()
	}

	want := func(n int) bool { return *all || *figure == n }

	if want(1) {
		t := report.NewTable("Figure 1: application runtime statistics",
			"app", "cores", "L1 MPKI", "L2 MPKI", "L3 MPKI", "GReq/s")
		for _, r := range musa.Characterization(d) {
			t.AddRow(r.App, r.Cores, r.L1MPKI, r.L2MPKI, r.L3MPKI, r.GMemReqPerSec/1e9)
		}
		emit(t)
	}
	figs := []struct {
		n    int
		name string
		feat musa.Feature
	}{
		{5, "FPU vector width", musa.FeatVector},
		{6, "cache sizes", musa.FeatCache},
		{7, "core OoO capabilities", musa.FeatOoO},
		{8, "memory channels", musa.FeatChannels},
		{9, "CPU frequency", musa.FeatFreq},
	}
	for _, f := range figs {
		if !want(f.n) {
			continue
		}
		for _, cores := range []int{32, 64} {
			t := report.NewTable(fmt.Sprintf("Figure %d: %s (%d cores x 256 ranks)", f.n, f.name, cores),
				"app", "value", "speedup", "sd", "power", "coreL1 W", "L2L3 W", "mem W", "energy")
			perf := musa.SpeedupBars(d, f.feat, cores)
			pow := musa.PowerBars(d, f.feat, cores)
			c1, c2, c3 := musa.PowerComponentBars(d, f.feat, cores)
			en := musa.EnergyBars(d, f.feat, cores)
			for i := range perf {
				t.AddRow(perf[i].App, perf[i].Value, perf[i].Mean, perf[i].Std,
					pow[i].Mean, c1[i].Mean, c2[i].Mean, c3[i].Mean, en[i].Mean)
			}
			emit(t)
		}
	}
	if want(10) {
		for _, app := range []string{"hydro", "lulesh"} {
			res, err := musa.PCA(d, app)
			if err != nil {
				log.Fatal(err)
			}
			t := report.NewTable(fmt.Sprintf("Figure 10: PCA for %s (PC0 %.1f%%, PC1 %.1f%% of variance)",
				app, res.Explained[0]*100, res.Explained[1]*100),
				"variable", "PC0", "PC1")
			for v, l := range res.Labels {
				t.AddRow(l, res.Loadings[0][v], res.Loadings[1][v])
			}
			emit(t)
		}
	}
	if want(11) {
		t := report.NewTable("Table II / Figure 11: unconventional configurations",
			"app", "config", "perf", "power", "energy")
		for _, r := range musa.Unconventional(musa.SimOptions{
			SampleInstrs: *sample, WarmupInstrs: *warmup, Seed: *seed,
		}) {
			energy := fmt.Sprintf("%.3f", r.RelEnergy)
			if !r.EnergyKnown {
				energy = "n/a (no HBM power data)"
			}
			t.AddRow(r.App, r.Label, r.RelPerf, r.RelPower, energy)
		}
		emit(t)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
