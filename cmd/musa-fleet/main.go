// musa-fleet is the distributed-sweep coordinator: it splits a design-space
// sweep into per-annotation-group shards, dispatches them across a fleet of
// musa-serve workers over the /shard endpoint, and merges the results into
// the same deterministic dataset the in-process runner produces. Failed or
// slow shards are re-dispatched onto the local pool, so a flaky worker
// costs throughput, never correctness.
//
// Usage:
//
//	# Two workers on other machines (each: musa-serve -addr :8080).
//	musa-fleet -workers http://h1:8080,http://h2:8080 -apps hydro -sample 60000
//
//	# Self-contained demo: coordinator + 2 in-process workers on loopback.
//	musa-fleet -demo 2 -apps btmz -points 0-31 -sample 20000
//
//	# Prove the determinism contract: re-run in process and compare.
//	musa-fleet -demo 2 -apps btmz -points 0-31 -sample 20000 -verify
//
//	# Ring mode: each shard goes to the worker owning its artifact key, so
//	# a replica tier's caches, /simulate traffic and shards all converge.
//	musa-fleet -demo 3 -ring -apps btmz -points 0-31 -sample 20000 -verify
//
// With -cache-dir, every merged measurement is checkpointed into the
// coordinator's content-addressed store under the same node keys the
// in-process runner writes, so musa-dse, musa-serve and repeated fleet
// runs all share one result set.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"musa"
	"musa/internal/obs"
	"musa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-fleet: ")

	workersFlag := flag.String("workers", "", "comma-separated musa-serve base URLs")
	demo := flag.Int("demo", 0, "spawn N in-process workers on loopback instead of -workers")
	appsFlag := flag.String("apps", "", "comma-separated applications (default all five)")
	pointsFlag := flag.String("points", "", "grid indices, e.g. 0-95,100,200-205 (default full 864-point grid)")
	sample := flag.Int64("sample", 0, "detailed sample micro-ops (0 = default)")
	warmup := flag.Int64("warmup", 0, "warmup micro-ops (0 = 2x sample)")
	seed := flag.Uint64("seed", 1, "seed")
	replayRanks := flag.String("replay-ranks", "", "comma-separated cluster-stage rank counts (default 64,256)")
	noReplay := flag.Bool("no-replay", false, "disable the cluster-level MPI replay stage")
	network := flag.String("network", "", "interconnect model: mn4, hdr200 or eth10 (default mn4)")
	cacheDir := flag.String("cache-dir", "", "coordinator result store directory (empty = none)")
	readOnly := flag.Bool("store-readonly", false, "open the coordinator result store read-only (share a directory another process is writing)")
	artifactDir := flag.String("artifact-dir", "", "coordinator artifact cache directory (empty = <cache-dir>/artifacts, or in-memory)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard request bound (0 = 10m, negative = unbounded)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge still-running shards onto the local pool after this long (0 = off)")
	ringFlag := flag.Bool("ring", false, "dispatch each shard to the worker owning its artifact key (rendezvous ring over -workers; -demo workers form the same ring)")
	memtableBytes := flag.Int("store-memtable-bytes", 0, "coordinator LSM memtable flush threshold in bytes (0 = default)")
	blockCacheBytes := flag.Int64("store-block-cache-bytes", 0, "coordinator LSM block cache size in bytes (0 = default, negative = disabled)")
	verify := flag.Bool("verify", false, "re-run the sweep in process and require byte-identical datasets")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	var workers []string
	if *workersFlag != "" {
		workers = strings.Split(*workersFlag, ",")
	}
	if *demo > 0 {
		if len(workers) > 0 {
			log.Fatal("give -workers or -demo, not both")
		}
		workers = spawnDemoWorkers(*demo, *ringFlag)
	}
	if len(workers) == 0 {
		log.Fatal("no workers: pass -workers URLS or -demo N")
	}

	exp := musa.Experiment{Kind: musa.KindSweep, Sample: *sample, Warmup: *warmup, Seed: *seed}
	if err := exp.SetReplayFlags(*replayRanks, *noReplay, *network); err != nil {
		log.Fatal(err)
	}
	if *appsFlag != "" {
		exp.Apps = strings.Split(*appsFlag, ",")
	}
	if *pointsFlag != "" {
		idx, err := parsePoints(*pointsFlag)
		if err != nil {
			log.Fatal(err)
		}
		exp.PointIndices = idx
	}
	if err := exp.Validate(); err != nil {
		log.Fatal(err)
	}

	// With -ring the coordinator routes each shard to the worker the
	// rendezvous ring ranks highest for its annotation key (self stays empty:
	// the coordinator dispatches into the ring without being a member).
	var rg *musa.Ring
	if *ringFlag {
		rg = musa.NewRing("", workers)
	}
	coord, err := musa.NewClient(musa.ClientOptions{
		CacheDir:             *cacheDir,
		StoreReadOnly:        *readOnly,
		StoreMemtableBytes:   *memtableBytes,
		StoreBlockCacheBytes: *blockCacheBytes,
		ArtifactCache:        *artifactDir,
		Workers:              workers,
		ShardTimeout:         *shardTimeout,
		HedgeAfter:           *hedgeAfter,
		Ring:                 rg,
	})
	if err != nil {
		if errors.Is(err, musa.ErrStoreBusy) {
			log.Fatalf("%v\nanother process is writing %s; pass -store-readonly to read from it anyway", err, *cacheDir)
		}
		log.Fatal(err)
	}
	defer coord.Close()
	// Demo workers register their clients' metrics when their handlers are
	// built; re-register afterwards so a -metrics dump reports the
	// coordinator's counters, not the last demo worker's.
	coord.RegisterMetrics(obs.DefaultRegistry())

	var watch musa.Observer
	if !*quiet {
		watch.Progress = func(done, total, cached int) {
			fmt.Fprintf(os.Stderr, "\rfleet: %d/%d (%d cached)", done, total, cached)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	res, err := coord.RunStream(context.Background(), exp, watch)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := coord.Stats()
	log.Printf("merged %d measurements in %v across %d workers (remote %d, local %d, cached %d, redispatched %d shards, %d artifacts pushed)",
		len(res.Sweep.Measurements), elapsed.Round(time.Millisecond), len(workers),
		st.Remote, st.Simulated, st.StoreHits, st.Redispatched, st.ArtifactsPushed)

	if *verify {
		local, err := musa.NewClient(musa.ClientOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer local.Close()
		lstart := time.Now()
		want, err := local.Run(context.Background(), exp)
		if err != nil {
			log.Fatal(err)
		}
		if !datasetsEqual(res.Sweep, want.Sweep) {
			log.Fatal("VERIFY FAILED: fleet dataset differs from the in-process run")
		}
		log.Printf("verify OK: byte-identical to the in-process run (%v local vs %v fleet)",
			time.Since(lstart).Round(time.Millisecond), elapsed.Round(time.Millisecond))
	}
}

// spawnDemoWorkers starts n in-process musa-serve workers on loopback
// ephemeral ports — the same handler stack the real binary serves — and
// returns their base URLs. The listeners all bind before any worker is
// built, so with ring enabled every worker knows the full membership
// (including itself) from the start.
func spawnDemoWorkers(n int, ringMode bool) []string {
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i, ln := range lns {
		var rg *musa.Ring
		if ringMode {
			rg = musa.NewRing(urls[i], urls)
		}
		c, err := musa.NewClient(musa.ClientOptions{MaxJobs: 2, Ring: rg})
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: serve.NewHandler(serve.New(c))}
		go func() {
			if err := srv.Serve(ln); err != http.ErrServerClosed {
				log.Printf("demo worker %d: %v", i, err)
			}
		}()
		log.Printf("demo worker %d listening on %s", i, urls[i])
	}
	return urls
}

// parsePoints parses a comma-separated list of grid indices and inclusive
// ranges: "0-95,100,200-205".
func parsePoints(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if lo, hi, ok := strings.Cut(f, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad point range %q", f)
			}
			for i := a; i <= b; i++ {
				out = append(out, i)
			}
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad point index %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// datasetsEqual compares two sweep datasets by their canonical JSON bytes.
func datasetsEqual(a, b *musa.Sweep) bool {
	ja, err1 := json.Marshal(a.Measurements)
	jb, err2 := json.Marshal(b.Measurements)
	return err1 == nil && err2 == nil && bytes.Equal(ja, jb)
}
