// musa-trace synthesizes, inspects and visualizes MUSA traces: burst traces
// (JSON), detailed instruction traces (binary) and the text timelines that
// substitute for the paper's Paraver screenshots (Figs. 3 and 4). The
// rank-level timeline is a KindScaling experiment run through the unified
// musa.Client API (at one core per node the replay is the pure burst
// trace).
//
// Usage:
//
//	musa-trace -app spec3d -timeline threads -cores 64   # Fig. 3
//	musa-trace -app lulesh -timeline ranks -ranks 64     # Fig. 4
//	musa-trace -app hydro -dump-burst trace.json
//	musa-trace -app hydro -dump-detailed trace.bin -n 100000
//	musa-trace -summarize trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/apps"
	"musa/internal/core"
	"musa/internal/isa"
	"musa/internal/obs"
	"musa/internal/report"
	"musa/internal/rts"
	"musa/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-trace: ")

	appName := flag.String("app", "hydro", "application")
	timeline := flag.String("timeline", "", "render a timeline: 'threads' (Fig. 3) or 'ranks' (Fig. 4)")
	cores := flag.Int("cores", 64, "threads for the Fig. 3 timeline")
	ranks := flag.Int("ranks", 64, "ranks for the Fig. 4 timeline / burst dump")
	network := flag.String("network", "", "interconnect model for the ranks timeline (default mn4)")
	dumpBurst := flag.String("dump-burst", "", "write the JSON burst trace to this file")
	dumpDetailed := flag.String("dump-detailed", "", "write a binary detailed trace to this file")
	n := flag.Int64("n", 100000, "detailed trace length (micro-ops)")
	summarize := flag.String("summarize", "", "summarize a JSON burst trace file")
	seed := flag.Uint64("seed", 1, "seed")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	if *summarize != "" {
		f, err := os.Open(*summarize)
		must(err)
		defer f.Close()
		b, err := trace.ReadBurst(f)
		must(err)
		s := b.Summarize()
		fmt.Printf("app=%s ranks=%d regions=%d events=%d compute=%.3fms p2p=%d msgs/%d bytes collectives=%d\n",
			b.App, s.Ranks, s.Regions, s.Events, s.ComputeNs/1e6, s.P2PMessages, s.P2PBytes, s.Collectives)
		return
	}

	app, err := musa.App(*appName)
	must(err)

	switch *timeline {
	case "threads":
		g := app.RegionGraph(0, *seed)
		s := rts.Simulate(g, rts.Options{Threads: *cores, DispatchNs: 100, Policy: rts.FIFOCentral})
		fmt.Printf("%s compute region on %d threads (busy '#', idle '.'); Fig. 3 view\n", app.Name, *cores)
		must(report.WriteScheduleTimeline(os.Stdout, g, s, *cores))
		return
	case "ranks":
		// One-core-per-node scaling experiment: the node speedup is exactly
		// 1, so the replay below is the raw burst trace — the Fig. 4 view.
		client, err := musa.NewClient(musa.ClientOptions{MaxJobs: 1, Network: *network})
		must(err)
		defer client.Close()
		client.RegisterMetrics(obs.DefaultRegistry())
		res, err := client.Run(context.Background(), musa.Experiment{
			Kind: musa.KindScaling, App: app.Name,
			Ranks: *ranks, CoreCounts: []int{1}, Seed: *seed,
		})
		must(err)
		fmt.Printf("%s across %d ranks (compute '#', MPI wait 'w'); Fig. 4 view\n", app.Name, *ranks)
		must(report.WriteReplayTimeline(os.Stdout, res.Scaling[0].Replay))
		return
	case "":
	default:
		log.Fatalf("unknown timeline %q", *timeline)
	}

	if *dumpBurst != "" {
		b := core.SampleBurst(app, *ranks, *seed)
		f, err := os.Create(*dumpBurst)
		must(err)
		defer f.Close()
		must(trace.WriteBurst(f, b))
		fmt.Printf("wrote burst trace (%d ranks) to %s\n", *ranks, *dumpBurst)
		return
	}
	if *dumpDetailed != "" {
		src := &isa.LimitStream{S: apps.NewDetailedStream(app, *seed), N: *n}
		d := &trace.Detailed{App: app.Name, Region: app.Regions[0].Name, Instrs: isa.Collect(src)}
		f, err := os.Create(*dumpDetailed)
		must(err)
		defer f.Close()
		must(trace.WriteDetailed(f, d))
		fmt.Printf("wrote detailed trace (%d micro-ops) to %s\n", len(d.Instrs), *dumpDetailed)
		return
	}
	log.Fatal("nothing to do: pass -timeline, -dump-burst, -dump-detailed or -summarize")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
