package main

import (
	"reflect"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: musa
cpu: whatever
BenchmarkClientSweepReduced-8   	       1	2045670000 ns/op
BenchmarkSweepReplayOverhead/node-only-8 	       1	 901000000 ns/op
BenchmarkSweepReplayOverhead/replay-8    	       2	1202000000 ns/op
some unrelated line
BenchmarkAblationFusionWindow/minrun=16-8 	       1	   8399523 ns/op
BenchmarkOptimizeReference-8 	       1	 432100000 ns/op	         0.199 probe-cost-ratio	    2048 B/op	       7 allocs/op
BenchmarkTable1DesignSpace  	       1	    164989 ns/op
PASS
ok  	musa	12.345s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != "musa-bench/v1" {
		t.Fatalf("schema = %q", got.Schema)
	}
	want := []Bench{
		// Only the GOMAXPROCS suffix is stripped; the name=value convention
		// keeps sub-benchmark parameters out of its way.
		{Name: "BenchmarkAblationFusionWindow/minrun=16", Iters: 1, NsPerOp: 8399523},
		{Name: "BenchmarkClientSweepReduced", Iters: 1, NsPerOp: 2045670000},
		// Trailing `value unit` pairs: -benchmem's B/op and allocs/op get
		// the first-class columns, custom b.ReportMetric outputs land in
		// Extra.
		{Name: "BenchmarkOptimizeReference", Iters: 1, NsPerOp: 432100000,
			BytesPerOp: 2048, AllocsPerOp: 7,
			Extra: map[string]float64{"probe-cost-ratio": 0.199}},
		{Name: "BenchmarkSweepReplayOverhead/node-only", Iters: 1, NsPerOp: 901000000},
		{Name: "BenchmarkSweepReplayOverhead/replay", Iters: 2, NsPerOp: 1202000000},
		{Name: "BenchmarkTable1DesignSpace", Iters: 1, NsPerOp: 164989},
	}
	if len(got.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(got.Benchmarks), len(want), got.Benchmarks)
	}
	for i, w := range want {
		if !reflect.DeepEqual(got.Benchmarks[i], w) {
			t.Errorf("benchmark %d = %+v, want %+v", i, got.Benchmarks[i], w)
		}
	}
}

func TestGate(t *testing.T) {
	base := &BenchFile{Benchmarks: []Bench{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "Gone", NsPerOp: 1000},
	}}
	cur := &BenchFile{Benchmarks: []Bench{
		// +24.9%: inside the gate. Its custom metric and -benchmem columns
		// are reported but can never fail the gate, whatever their values do
		// vs the baseline.
		{Name: "A", NsPerOp: 1249, BytesPerOp: 4096, AllocsPerOp: 12,
			Extra: map[string]float64{"probe-cost-ratio": 0.199}},
		{Name: "B", NsPerOp: 1251}, // +25.1%: regression
		{Name: "New", NsPerOp: 5},  // not in baseline: reported only
	}}
	report, failed := Gate(base, cur, 0.25)
	if !failed {
		t.Fatal("gate passed despite a >25% regression and a missing benchmark")
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"ok   A", "FAIL B", "FAIL Gone", "new  New",
		"info A: 4096 B/op, 12 allocs/op (reported, not gated)",
		"info A: 0.199 probe-cost-ratio (reported, not gated)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}

	// Identical results pass.
	if _, failed := Gate(base, base, 0.25); failed {
		t.Fatal("gate failed on identical results")
	}
	// A run that only adds benchmarks passes: new entries are reported,
	// never gated, however slow they are (BenchmarkClientSweepWarmArtifacts
	// entered CI exactly this way).
	grown := &BenchFile{Benchmarks: append(append([]Bench(nil), base.Benchmarks...),
		Bench{Name: "JustAdded", NsPerOp: 1e12})}
	report, failed = Gate(base, grown, 0.25)
	if failed {
		t.Fatal("gate failed on a run that only adds new benchmarks")
	}
	if !strings.Contains(strings.Join(report, "\n"), "new  JustAdded") {
		t.Fatalf("new benchmark not reported:\n%s", strings.Join(report, "\n"))
	}
	// An improvement passes.
	fast := &BenchFile{Benchmarks: []Bench{{Name: "A", NsPerOp: 10}, {Name: "B", NsPerOp: 10}, {Name: "Gone", NsPerOp: 10}}}
	if _, failed := Gate(base, fast, 0.25); failed {
		t.Fatal("gate failed on an improvement")
	}
}
