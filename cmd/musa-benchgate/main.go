// musa-benchgate turns `go test -bench` output into a benchmark trajectory
// artifact and gates CI on performance regressions.
//
// Usage:
//
//	go test -run '^$' -bench 'ClientSweepReduced|SweepReplayOverhead' -benchtime 1x . | tee bench.txt
//	musa-benchgate -in bench.txt -out BENCH_4.json -baseline bench/BENCH_baseline.json
//
// The tool parses the standard benchmark lines (name, iterations, ns/op,
// plus -benchmem's B/op and allocs/op when present), writes them as a JSON
// document, and — when a baseline is given — fails
// with exit status 1 if any benchmark regressed by more than -max-regress
// (default 0.25, i.e. >25% slower than the checked-in baseline) or
// disappeared. Benchmarks absent from the baseline (newly added ones) are
// reported with a "new" marker and never gate: the benchmark suite can
// grow without touching the baseline in the same change. Adopt their
// numbers later with -write-baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchFile is the schema of BENCH_*.json and the checked-in baseline.
type BenchFile struct {
	Schema     string  `json:"schema"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one parsed benchmark result. BytesPerOp and AllocsPerOp are
// filled when the run used -benchmem; they appear in the artifact and the
// report as allocation-trajectory columns but are never gated (allocation
// counts shift with compiler versions in ways wall time does not). Extra
// carries any further custom b.ReportMetric pairs trailing the ns/op column
// (unit -> value), e.g. the optimizer's probe-cost-ratio; extras ride along
// in the artifact and the report but are never gated either.
type Bench struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64            `json:"allocsPerOp,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches `BenchmarkName-8   12   3456 ns/op [...]`; the GOMAXPROCS
// suffix is stripped so baselines survive runner-core-count changes. The
// trailing capture holds any further `value unit` metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-benchgate: ")

	in := flag.String("in", "-", "benchmark output to parse (- = stdin)")
	out := flag.String("out", "", "write the parsed results as JSON here")
	baseline := flag.String("baseline", "", "baseline JSON to gate against")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated slowdown vs the baseline (0.25 = +25%)")
	writeBaseline := flag.String("write-baseline", "", "write the parsed results as a new baseline here and skip the gate")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(results.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}
	for _, path := range []string{*out, *writeBaseline} {
		if path == "" {
			continue
		}
		if err := writeJSON(path, results); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(results.Benchmarks), path)
	}
	if *baseline == "" || *writeBaseline != "" {
		return
	}

	base, err := readJSON(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	report, failed := Gate(base, results, *maxRegress)
	for _, line := range report {
		log.Print(line)
	}
	if failed {
		log.Fatalf("benchmark regression gate FAILED (max tolerated +%.0f%%)", *maxRegress*100)
	}
	log.Print("benchmark regression gate passed")
}

// Parse extracts benchmark results from `go test -bench` output, sorted by
// name for a stable artifact.
func Parse(r io.Reader) (*BenchFile, error) {
	out := &BenchFile{Schema: "musa-bench/v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		b := Bench{Name: m[1], Iters: iters, NsPerOp: ns}
		// Trailing `value unit` pairs: testing's standard extras (B/op,
		// allocs/op, MB/s) and anything a benchmark adds via b.ReportMetric.
		// The -benchmem pair gets first-class columns; the rest lands in
		// Extra.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %v", sc.Text(), err)
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[fields[i+1]] = v
			}
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	return out, nil
}

// Gate compares current results against the baseline. Every baseline entry
// must be present and at most maxRegress slower. Benchmarks the baseline
// does not know — newly added ones — are reported with a "new" marker but
// never fail the gate; they are adopted into the baseline explicitly via
// -write-baseline, not implicitly by erroring CI until someone edits JSON.
func Gate(base, cur *BenchFile, maxRegress float64) (report []string, failed bool) {
	curBy := map[string]Bench{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			report = append(report, fmt.Sprintf("FAIL %s: in baseline but not in current run", b.Name))
			failed = true
			continue
		}
		delete(curBy, b.Name)
		if b.NsPerOp <= 0 {
			report = append(report, fmt.Sprintf("FAIL %s: non-positive baseline %v ns/op", b.Name, b.NsPerOp))
			failed = true
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok  "
		if ratio > 1+maxRegress {
			verdict = "FAIL"
			failed = true
		}
		report = append(report, fmt.Sprintf("%s %s: %.0f ns/op vs baseline %.0f (%+.1f%%)",
			verdict, b.Name, c.NsPerOp, b.NsPerOp, (ratio-1)*100))
		report = append(report, extraLines(c)...)
	}
	var extra []string
	for name := range curBy {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		report = append(report, fmt.Sprintf("new  %s: %.0f ns/op — not in the baseline; reported, never gated (adopt with -write-baseline)",
			name, curBy[name].NsPerOp))
		report = append(report, extraLines(curBy[name])...)
	}
	return report, failed
}

// extraLines renders a benchmark's non-time metrics — the -benchmem columns
// and custom b.ReportMetric pairs (probe-cost-ratio and friends) — as
// informational report lines; they never gate.
func extraLines(b Bench) []string {
	var out []string
	if b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		out = append(out, fmt.Sprintf("info %s: %.0f B/op, %.0f allocs/op (reported, not gated)",
			b.Name, b.BytesPerOp, b.AllocsPerOp))
	}
	units := make([]string, 0, len(b.Extra))
	for u := range b.Extra {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		out = append(out, fmt.Sprintf("info %s: %g %s (reported, not gated)", b.Name, b.Extra[u], u))
	}
	return out
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readJSON(path string) (*BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out BenchFile
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &out, nil
}
