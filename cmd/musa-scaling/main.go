// musa-scaling runs the burst-mode (hardware-agnostic) scaling analysis of
// the paper's §V-A: Fig. 2a (single compute region) and Fig. 2b (whole
// parallel region including MPI overheads).
//
// Usage:
//
//	musa-scaling -mode region            # Fig. 2a
//	musa-scaling -mode full -ranks 256   # Fig. 2b
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-scaling: ")

	mode := flag.String("mode", "region", "region (Fig. 2a) or full (Fig. 2b)")
	ranks := flag.Int("ranks", 256, "MPI ranks for full mode")
	flag.Parse()

	cores := []int{1, 32, 64}
	switch *mode {
	case "region":
		t := report.NewTable("Figure 2a: single compute region scaling (hardware agnostic)",
			"app", "1 core", "32 cores", "64 cores", "eff@32", "eff@64")
		for _, app := range musa.Applications() {
			sp := musa.RegionScaling(app, cores)
			t.AddRow(app.Name, sp[0], sp[1], sp[2], sp[1]/32, sp[2]/64)
		}
		must(t.Write(os.Stdout))
	case "full":
		t := report.NewTable(
			fmt.Sprintf("Figure 2b: full application scaling incl. MPI (%d ranks)", *ranks),
			"app", "speedup@32", "speedup@64", "eff@32", "eff@64", "MPI frac@64")
		model := musa.MareNostrumNetwork()
		for _, app := range musa.Applications() {
			res := musa.FullAppScaling(app, *ranks, []int{32, 64}, model)
			t.AddRow(app.Name, res[0].Speedup, res[1].Speedup,
				res[0].Efficiency, res[1].Efficiency, res[1].MPIFraction)
		}
		must(t.Write(os.Stdout))
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
