// musa-scaling runs the burst-mode (hardware-agnostic) scaling analysis of
// the paper's §V-A: Fig. 2a (single compute region) and Fig. 2b (whole
// parallel region including MPI overheads). Both views come from one
// KindScaling experiment run through the unified musa.Client API.
//
// Usage:
//
//	musa-scaling -mode region            # Fig. 2a
//	musa-scaling -mode full -ranks 256   # Fig. 2b
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/obs"
	"musa/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("musa-scaling: ")

	mode := flag.String("mode", "region", "region (Fig. 2a) or full (Fig. 2b)")
	ranks := flag.Int("ranks", 256, "MPI ranks for full mode")
	network := flag.String("network", "", "interconnect model: mn4, hdr200 or eth10 (default mn4)")
	obsDump := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	defer func() {
		if err := obsDump(); err != nil {
			log.Print(err)
		}
	}()

	client, err := musa.NewClient(musa.ClientOptions{MaxJobs: 1, Network: *network})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.RegisterMetrics(obs.DefaultRegistry())
	ctx := context.Background()

	runScaling := func(app string, rranks int, coreCounts []int) *musa.Result {
		res, err := client.Run(ctx, musa.Experiment{
			Kind: musa.KindScaling, App: app,
			Ranks: rranks, CoreCounts: coreCounts,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	switch *mode {
	case "region":
		t := report.NewTable("Figure 2a: single compute region scaling (hardware agnostic)",
			"app", "1 core", "32 cores", "64 cores", "eff@32", "eff@64")
		for _, app := range musa.Applications() {
			// Region speedups are rank-independent; the minimum rank count
			// makes the experiment's unused Fig. 2b replay side near-free.
			sp := runScaling(app.Name, 2, []int{1, 32, 64}).RegionSpeedups
			t.AddRow(app.Name, sp[0], sp[1], sp[2], sp[1]/32, sp[2]/64)
		}
		must(t.Write(os.Stdout))
	case "full":
		t := report.NewTable(
			fmt.Sprintf("Figure 2b: full application scaling incl. MPI (%d ranks)", *ranks),
			"app", "speedup@32", "speedup@64", "eff@32", "eff@64", "MPI frac@64")
		for _, app := range musa.Applications() {
			res := runScaling(app.Name, *ranks, []int{32, 64}).Scaling
			t.AddRow(app.Name, res[0].Speedup, res[1].Speedup,
				res[0].Efficiency, res[1].Efficiency, res[1].MPIFraction)
		}
		must(t.Write(os.Stdout))
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
