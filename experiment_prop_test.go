package musa_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"musa"
)

// genExperiment builds a pseudo-random valid experiment of the given kind,
// spelled with the FLAT replay alias fields. The generator only emits
// well-formed values — the property under test is canonicalization, not
// validation (experiment_test.go covers rejection paths).
func genExperiment(rng *rand.Rand, kind musa.Kind) musa.Experiment {
	appNames := []string{"lulesh", "spec3d", "btmz", "spmz", "hydro"}
	networks := []string{"", "mn4", "hdr200", "eth10"}
	e := musa.Experiment{
		Kind:   kind,
		Sample: int64(rng.Intn(3)) * 20000,
		Warmup: int64(rng.Intn(3)) * 40000,
		Seed:   uint64(rng.Intn(4)),
	}
	replayRanks := func() []int {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return []int{}
		case 2:
			return []int{64}
		default:
			return []int{256, 64, 64} // unsorted + duplicate: Normalize canonicalizes
		}
	}
	switch kind {
	case musa.KindNode, musa.KindFullApp:
		e.App = appNames[rng.Intn(len(appNames))]
		if rng.Intn(2) == 0 {
			pi := rng.Intn(musa.PointCount())
			e.PointIndex = &pi
		} else {
			a, _ := musa.PointArch(rng.Intn(musa.PointCount()))
			e.Arch = &a
		}
		if kind == musa.KindNode {
			e.ReplayRanks = replayRanks()
			e.NoReplay = rng.Intn(3) == 0
		} else {
			e.PointIndex = nil
			if e.Arch == nil {
				a, _ := musa.PointArch(rng.Intn(musa.PointCount()))
				e.Arch = &a
			}
			e.Ranks = []int{0, 64, 256}[rng.Intn(3)]
		}
		e.Network = networks[rng.Intn(len(networks))]
	case musa.KindScaling:
		e.App = appNames[rng.Intn(len(appNames))]
		e.Ranks = []int{0, 64, 256}[rng.Intn(3)]
		if rng.Intn(2) == 0 {
			e.CoreCounts = []int{64, 1, 32}
		}
		e.Network = networks[rng.Intn(len(networks))]
	case musa.KindSweep, musa.KindOptimize:
		if kind == musa.KindSweep {
			if rng.Intn(2) == 0 {
				e.Apps = []string{"spmz", "lulesh", "lulesh"} // unsorted + duplicate
			} else {
				e.App = appNames[rng.Intn(len(appNames))] // single-app shorthand
			}
		} else {
			e.App = appNames[rng.Intn(len(appNames))]
		}
		if rng.Intn(2) == 0 {
			n := 1 + rng.Intn(6)
			idx := make([]int, n)
			for i := range idx {
				idx[i] = rng.Intn(musa.PointCount())
			}
			e.PointIndices = idx
		}
		e.ReplayRanks = replayRanks()
		e.NoReplay = rng.Intn(3) == 0
		e.Network = networks[rng.Intn(len(networks))]
		if kind == musa.KindOptimize && rng.Intn(2) == 0 {
			e.Optimize = &musa.OptimizeSpec{
				Objectives: [][]string{nil, {"edp"}, {"edp", "time"}, {"energy", "time", "edp"}}[rng.Intn(4)],
				MaxPowerW:  float64(rng.Intn(2)) * 95,
				Eta:        []int{0, 2, 3, 4}[rng.Intn(4)],
				Finalists:  []int{0, 1, 4, 8}[rng.Intn(4)],
				MinSample:  int64(rng.Intn(2)) * 5000,
			}
		}
	case musa.KindUnconventional:
		// Only fidelity/seed apply; the zero spec above is already complete.
	}
	if e.NoReplay {
		// A flat spelling with NoReplay keeps ranks/network unset — Normalize
		// would clear them anyway, but the NESTED alias path must be given an
		// equivalent (non-contradictory) spelling below.
		e.ReplayRanks, e.Network = nil, ""
	}
	return e
}

// nestedSpelling rewrites the flat replay alias fields of a generated
// experiment into the nested Replay sub-spec (the preferred spelling).
func nestedSpelling(e musa.Experiment) musa.Experiment {
	switch e.Kind {
	case musa.KindNode, musa.KindSweep, musa.KindOptimize, musa.KindFullApp, musa.KindScaling:
		e.Replay = &musa.ReplaySpec{Ranks: e.ReplayRanks, Disable: e.NoReplay, Network: e.Network}
		e.ReplayRanks, e.NoReplay, e.Network = nil, false, ""
	}
	return e
}

// TestNormalizeProperties is a property-style sweep over every experiment
// kind: Normalize must be idempotent, the canonical encoding must be
// byte-stable, and the flat and nested alias spellings (plus a JSON
// round trip through the wire form) must all produce the same canonical
// bytes — and therefore the same store key.
func TestNormalizeProperties(t *testing.T) {
	kinds := []musa.Kind{
		musa.KindNode, musa.KindFullApp, musa.KindScaling,
		musa.KindSweep, musa.KindUnconventional, musa.KindOptimize,
	}
	rng := rand.New(rand.NewSource(9)) // fixed seed: deterministic corpus
	const perKind = 64

	for _, kind := range kinds {
		for i := 0; i < perKind; i++ {
			e := genExperiment(rng, kind)

			ne, err := e.Normalize()
			if err != nil {
				t.Fatalf("%s case %d: Normalize(%+v): %v", kind, i, e, err)
			}

			// Idempotence: normalizing the normalized form is a no-op.
			ne2, err := ne.Normalize()
			if err != nil {
				t.Fatalf("%s case %d: re-Normalize: %v", kind, i, err)
			}
			if !reflect.DeepEqual(ne, ne2) {
				t.Fatalf("%s case %d: Normalize not idempotent:\n first %+v\nsecond %+v", kind, i, ne, ne2)
			}

			// Canonical bytes are stable across repeated encoding...
			canon, err := e.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s case %d: CanonicalJSON: %v", kind, i, err)
			}
			again, _ := e.CanonicalJSON()
			if !bytes.Equal(canon, again) {
				t.Fatalf("%s case %d: CanonicalJSON unstable:\n%s\n%s", kind, i, canon, again)
			}
			// ...and identical for the already-normalized form.
			fromNorm, err := ne.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s case %d: normalized CanonicalJSON: %v", kind, i, err)
			}
			if !bytes.Equal(canon, fromNorm) {
				t.Fatalf("%s case %d: normalized form encodes differently:\nraw  %s\nnorm %s", kind, i, canon, fromNorm)
			}

			// The nested Replay spelling is an alias: same canonical bytes.
			nested := nestedSpelling(e)
			nestedCanon, err := nested.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s case %d: nested CanonicalJSON: %v", kind, i, err)
			}
			if !bytes.Equal(canon, nestedCanon) {
				t.Fatalf("%s case %d: nested spelling diverges:\nflat   %s\nnested %s", kind, i, canon, nestedCanon)
			}

			// A JSON round trip through the wire form (Marshal of the
			// normalized experiment, Unmarshal, re-canonicalize) holds the key.
			wire, err := json.Marshal(ne)
			if err != nil {
				t.Fatalf("%s case %d: marshal normalized: %v", kind, i, err)
			}
			var back musa.Experiment
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatalf("%s case %d: unmarshal wire form: %v", kind, i, err)
			}
			roundCanon, err := back.CanonicalJSON()
			if err != nil {
				t.Fatalf("%s case %d: round-trip CanonicalJSON: %v", kind, i, err)
			}
			if !bytes.Equal(canon, roundCanon) {
				t.Fatalf("%s case %d: wire round trip diverges:\norig  %s\nround %s", kind, i, canon, roundCanon)
			}

			// Keys agree by construction of the above, but assert the public
			// entry point too.
			k1, _ := e.Key()
			k2, _ := nested.Key()
			if k1 != k2 {
				t.Fatalf("%s case %d: Key mismatch across alias spellings: %s vs %s", kind, i, k1, k2)
			}
		}
	}
}
