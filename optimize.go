package musa

import (
	"fmt"
	"slices"
)

// ReplaySpec is the nested replay sub-spec of an Experiment: the
// cluster-replay rank counts, the disable switch and the interconnect
// scenario in one typed group. It is the preferred spelling of the
// legacy flat fields (ReplayRanks, NoReplay, Network), which remain as
// aliases; Normalize keeps both in sync and the canonical encoding is
// identical either way.
type ReplaySpec struct {
	// Ranks are the cluster-replay rank counts (nil = 64 and 256; an
	// explicit empty list means node-only, like Disable).
	Ranks []int `json:"ranks,omitempty"`
	// Disable turns the cluster replay stage off.
	Disable bool `json:"disable,omitempty"`
	// Network names the interconnect scenario ("" = "mn4").
	Network string `json:"network,omitempty"`
}

// Objective names accepted by OptimizeSpec.Objectives. All are minimized.
const (
	// ObjectiveTime is node compute time (Measurement.TimeNs).
	ObjectiveTime = "time"
	// ObjectiveEnergy is node energy-to-solution (Measurement.EnergyJ).
	ObjectiveEnergy = "energy"
	// ObjectiveEDP is the energy-delay product (EnergyJ x TimeNs, in
	// joule-seconds) — the paper's efficiency headline.
	ObjectiveEDP = "edp"
)

// objectiveOrder is the canonical objective ordering of the normalized
// spec (and therefore of the encoding and the metric vectors).
var objectiveOrder = []string{ObjectiveTime, ObjectiveEnergy, ObjectiveEDP}

// OptimizeSpec configures the successive-halving multi-fidelity search
// of a KindOptimize experiment. The zero value means: all three
// objectives, no power cap, eta 4, auto ladder depth, max(4, Eta+1)
// finalists, a 2000 micro-op cheap-rung sample floor.
type OptimizeSpec struct {
	// Objectives selects the minimized metrics — any subset of "time",
	// "energy", "edp" (nil = all three). Normalize sorts them into that
	// canonical order and deduplicates.
	Objectives []string `json:"objectives,omitempty"`
	// MaxPowerW, when positive, constrains the search to configurations
	// whose average node power stays at or under the cap. Infeasible
	// candidates rank behind every feasible one; if nothing is feasible
	// the result is the unconstrained frontier flagged Infeasible.
	MaxPowerW float64 `json:"maxPowerW,omitempty"`
	// Eta is the halving factor: each rung keeps ceil(n/Eta) survivors
	// and raises probe fidelity by Eta (0 = 4; valid 2-8).
	Eta int `json:"eta,omitempty"`
	// Rungs caps the fidelity-ladder depth (0 = derived from the
	// candidate count; valid 0-8). A capped ladder keeps its expensive
	// top rungs and makes the first cut more aggressive.
	Rungs int `json:"rungs,omitempty"`
	// Finalists floors the number of candidates promoted to the
	// full-fidelity top rung (0 = max(4, Eta+1); valid 1-64).
	Finalists int `json:"finalists,omitempty"`
	// MinSample floors a cheap rung's detailed sample in micro-ops
	// (0 = 2000). Cheap rungs keep the experiment's full warmup so every
	// probe measures a prefix of the full-fidelity sample window; only the
	// detailed-sample length shrinks.
	MinSample int64 `json:"minSample,omitempty"`
}

// normalized validates the spec against a candidate count and returns
// the canonical form with every default materialized, so the encoding
// (and the store key of the optimize experiment itself) pins the exact
// search policy.
func (s OptimizeSpec) normalized(candidates int) (*OptimizeSpec, error) {
	if s.Eta == 0 {
		s.Eta = 4
	}
	if s.Eta < 2 || s.Eta > 8 {
		return nil, fmt.Errorf("%w: eta %d out of range [2, 8]", ErrBadOptimize, s.Eta)
	}
	if s.Rungs < 0 || s.Rungs > 8 {
		return nil, fmt.Errorf("%w: rungs %d out of range [0, 8]", ErrBadOptimize, s.Rungs)
	}
	if s.Finalists == 0 {
		s.Finalists = max(4, s.Eta+1)
	}
	if s.Finalists < 1 || s.Finalists > 64 {
		return nil, fmt.Errorf("%w: finalists %d out of range [1, 64]", ErrBadOptimize, s.Finalists)
	}
	if s.MaxPowerW < 0 {
		return nil, fmt.Errorf("%w: negative power cap %g", ErrBadOptimize, s.MaxPowerW)
	}
	if s.MinSample == 0 {
		s.MinSample = 2000
	}
	if s.MinSample < 0 {
		return nil, fmt.Errorf("%w: negative min sample %d", ErrBadOptimize, s.MinSample)
	}
	if s.Objectives == nil {
		s.Objectives = slices.Clone(objectiveOrder)
	} else {
		var canon []string
		for _, o := range objectiveOrder {
			if slices.Contains(s.Objectives, o) {
				canon = append(canon, o)
			}
		}
		for _, o := range s.Objectives {
			if !slices.Contains(objectiveOrder, o) {
				return nil, fmt.Errorf("%w: unknown objective %q (valid: %s, %s, %s)",
					ErrBadOptimize, o, ObjectiveTime, ObjectiveEnergy, ObjectiveEDP)
			}
		}
		s.Objectives = canon
	}
	_ = candidates // ladder shape is derived at run time; any count >= 1 is searchable
	return &s, nil
}

// ObjectiveValues are one configuration's objective metrics, all
// minimized: node compute time, node energy-to-solution, and their
// product (EDP, joule-seconds).
type ObjectiveValues struct {
	TimeNs  float64 `json:"timeNs"`
	EnergyJ float64 `json:"energyJ"`
	EDP     float64 `json:"edp"`
}

// objectiveValues derives the objective metrics of a measurement.
func objectiveValues(m Measurement) ObjectiveValues {
	return ObjectiveValues{
		TimeNs:  m.TimeNs,
		EnergyJ: m.EnergyJ,
		EDP:     m.EnergyJ * m.TimeNs * 1e-9,
	}
}

// vector orders the enabled objectives into the metric vector the
// search policy ranks on (canonical objective order).
func (o ObjectiveValues) vector(objectives []string) []float64 {
	out := make([]float64, 0, len(objectives))
	for _, name := range objectives {
		switch name {
		case ObjectiveTime:
			out = append(out, o.TimeNs)
		case ObjectiveEnergy:
			out = append(out, o.EnergyJ)
		case ObjectiveEDP:
			out = append(out, o.EDP)
		}
	}
	return out
}

// FrontierPoint is one Pareto-optimal configuration of an optimize
// result, evaluated at full fidelity.
type FrontierPoint struct {
	// PointIndex is the configuration's Table I grid index.
	PointIndex int `json:"pointIndex"`
	// Label is its human-readable grid label.
	Label string `json:"label"`
	// Arch is the configuration itself.
	Arch Arch `json:"arch"`
	// Objectives are the full-fidelity objective metrics.
	Objectives ObjectiveValues `json:"objectives"`
	// PowerW is the average node power (the MaxPowerW constraint metric).
	PowerW float64 `json:"powerW"`
	// Feasible reports whether the configuration satisfies MaxPowerW
	// (always true without a cap).
	Feasible bool `json:"feasible"`
	// Measurement is the full node (and cluster-replay) measurement.
	Measurement *Measurement `json:"measurement,omitempty"`
}

// RungSummary is one completed level of the successive-halving ladder.
// It is deterministic — identical across cold and cache-warm runs — so
// the whole OptimizeResult is byte-stable.
type RungSummary struct {
	// Rung is the ladder level, 0 = cheapest.
	Rung int `json:"rung"`
	// Candidates is how many configurations were probed in this rung.
	Candidates int `json:"candidates"`
	// FidelityFraction is the rung's nominal fraction of full fidelity.
	FidelityFraction float64 `json:"fidelityFraction"`
	// Sample / Warmup are the probe fidelity actually used (micro-ops;
	// 0 on the top rung means the experiment's own default-resolved
	// values, matching an equivalent sweep's encoding; cheap rungs carry
	// the full warmup so their sample windows nest inside the top rung's).
	Sample int64 `json:"sample"`
	Warmup int64 `json:"warmup"`
	// Replay reports whether the cluster replay stage ran (top rung only,
	// and only when the experiment itself replays).
	Replay bool `json:"replay"`
	// CostInstrs is the rung's nominal detailed-simulation cost: probed
	// configurations x detailed sample micro-ops (warmup streaming is the
	// cheap cache-priming phase and is not counted). Cache hits count —
	// cost measures the search policy, not the cache state.
	CostInstrs int64 `json:"costInstrs"`
	// Survivors are the point indices promoted to the next rung (for the
	// top rung: the Pareto frontier's indices), ascending.
	Survivors []int `json:"survivors"`
}

// OptimizeResult is the outcome of a KindOptimize experiment: the Pareto
// frontier over the enabled objectives at full fidelity, the per-rung
// search history, and the total simulation cost against the equivalent
// exhaustive grid. Two runs of the same experiment produce byte-identical
// results regardless of cache state.
type OptimizeResult struct {
	// App is the application searched.
	App string `json:"app"`
	// Objectives are the minimized metrics, canonical order.
	Objectives []string `json:"objectives"`
	// MaxPowerW echoes the power cap (0 = unconstrained).
	MaxPowerW float64 `json:"maxPowerW,omitempty"`
	// Candidates is the searched candidate-set size.
	Candidates int `json:"candidates"`
	// Rungs is the fidelity ladder as executed, cheapest first.
	Rungs []RungSummary `json:"rungs"`
	// Frontier is the full-fidelity Pareto frontier, ascending point index.
	Frontier []FrontierPoint `json:"frontier"`
	// Best is the recommended single configuration: the frontier point
	// minimizing EDP when that objective is enabled, else the first
	// enabled objective.
	Best *FrontierPoint `json:"best,omitempty"`
	// Infeasible reports that MaxPowerW excluded every candidate; the
	// frontier then shows the unconstrained trade-offs anyway.
	Infeasible bool `json:"infeasible,omitempty"`
	// ProbeCostInstrs is the search's total nominal detailed-simulation
	// cost (sample micro-ops across all probes) and GridCostInstrs the
	// equivalent exhaustive grid's; CostRatio is their quotient (the
	// tentpole bound: <= 0.25 on reference workloads).
	ProbeCostInstrs int64   `json:"probeCostInstrs"`
	GridCostInstrs  int64   `json:"gridCostInstrs"`
	CostRatio       float64 `json:"costRatio"`
}
