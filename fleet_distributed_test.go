package musa_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"musa"
	"musa/internal/serve"
)

// newFleetWorker spins up an in-process musa-serve worker: a real
// serve.NewHandler over its own Client, optionally wrapped by mw.
func newFleetWorker(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	return newFleetWorkerOpts(t, musa.ClientOptions{SweepWorkers: 2, MaxJobs: 2}, mw)
}

func newFleetWorkerOpts(t *testing.T, opts musa.ClientOptions, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	ts, _ := newFleetWorkerClient(t, opts, mw)
	return ts
}

// newFleetWorkerClient is newFleetWorkerOpts exposing the worker's Client,
// so tests can assert on its counters (artifact reuse, store size).
func newFleetWorkerClient(t *testing.T, opts musa.ClientOptions, mw func(http.Handler) http.Handler) (*httptest.Server, *musa.Client) {
	t.Helper()
	c, err := musa.NewClient(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var h http.Handler = serve.NewHandler(serve.New(c))
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, c
}

// fleetTestExperiment spans at least two annotation groups (so the planner
// produces multiple shards) while staying small enough for test time: the
// first points of the grid plus the first point of a different group.
func fleetTestExperiment(t *testing.T) musa.Experiment {
	t.Helper()
	sig := func(i int) string {
		a, err := musa.PointArch(i)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%d/%s/%v", a.Cores, a.VectorBits, a.CacheLabel, a.HBM)
	}
	idx := []int{0, 1, 2}
	first := sig(0)
	for i := 3; i < musa.PointCount(); i++ {
		if sig(i) != first {
			idx = append(idx, i, i+1)
			break
		}
	}
	return musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"btmz"}, PointIndices: idx,
		Sample: 20000, Warmup: 40000, Seed: 1, ReplayRanks: []int{4},
	}
}

// shardCountOf mirrors the planner's grouping to predict how many shards an
// experiment splits into, using only public API.
func shardCountOf(t *testing.T, e musa.Experiment) int {
	t.Helper()
	groups := map[string]bool{}
	for _, i := range e.PointIndices {
		a, err := musa.PointArch(i)
		if err != nil {
			t.Fatal(err)
		}
		groups[fmt.Sprintf("%d/%d/%s/%v", a.Cores, a.VectorBits, a.CacheLabel, a.HBM)] = true
	}
	return len(groups) * len(e.Apps)
}

func canonicalMeasurements(t *testing.T, res *musa.Result) []byte {
	t.Helper()
	if res == nil || res.Sweep == nil {
		t.Fatal("no sweep result")
	}
	b, err := json.Marshal(res.Sweep.Measurements)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetShardMergeDeterminism is the distributed-determinism contract: a
// sweep dispatched across 1, 2 and 4 workers merges into a dataset
// byte-identical (canonical JSON) to the in-process run, and the
// coordinator's store holds the same node keys — verified by re-requesting
// a swept point as a node experiment and observing a store hit.
func TestFleetShardMergeDeterminism(t *testing.T) {
	exp := fleetTestExperiment(t)
	ctx := context.Background()

	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := canonicalMeasurements(t, want)
	if len(want.Sweep.Measurements) != len(exp.PointIndices) {
		t.Fatalf("local run: %d measurements for %d points",
			len(want.Sweep.Measurements), len(exp.PointIndices))
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			var urls []string
			for i := 0; i < n; i++ {
				urls = append(urls, newFleetWorker(t, nil).URL)
			}
			coord, err := musa.NewClient(musa.ClientOptions{
				Workers: urls, SweepWorkers: 2, CacheDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			var progressed atomic.Int32
			res, err := coord.RunStream(ctx, exp, musa.Observer{
				Progress: func(done, total, cached int) {
					progressed.Store(int32(done))
					if total != len(exp.PointIndices) {
						t.Errorf("progress total = %d, want %d", total, len(exp.PointIndices))
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalMeasurements(t, res); string(got) != string(wantJSON) {
				t.Fatalf("fleet dataset differs from in-process run:\n%s\nvs\n%s", got, wantJSON)
			}
			if int(progressed.Load()) != len(exp.PointIndices) {
				t.Fatalf("final progress = %d", progressed.Load())
			}
			if st := coord.Stats(); st.Remote != int64(len(exp.PointIndices)) {
				t.Fatalf("remote-computed = %d, want %d", st.Remote, len(exp.PointIndices))
			}
			if n := coord.Snapshot().Store.Len; n != len(exp.PointIndices) {
				t.Fatalf("coordinator store has %d entries, want %d", n, len(exp.PointIndices))
			}

			// Store-key interop: a single-point node experiment over a swept
			// point must be served from the warmed coordinator store.
			i := exp.PointIndices[0]
			node, err := coord.Run(ctx, musa.Experiment{
				Kind: musa.KindNode, App: "btmz", PointIndex: &i,
				Sample: exp.Sample, Warmup: exp.Warmup, Seed: exp.Seed,
				ReplayRanks: exp.ReplayRanks,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !node.Cached {
				t.Fatal("swept point not served from the coordinator store: fleet keys diverge from node keys")
			}

			// A repeated fleet sweep is a pure store read: no dispatch.
			before := coord.Stats().Remote
			again, err := coord.Run(ctx, exp)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalMeasurements(t, again); string(got) != string(wantJSON) {
				t.Fatal("cached fleet dataset differs")
			}
			if coord.Stats().Remote != before {
				t.Fatal("repeated sweep re-dispatched cached points")
			}
		})
	}
}

// TestFleetWorkerDefaultsCannotSkew pins the wire contract of
// shardExperiment: a worker configured with its own fidelity defaults
// (as if started `musa-serve -sample 5000`) must still compute exactly the
// measurements the coordinator and the local pool would, even when the
// coordinator's sweep leaves fidelity implicit — the shard carries the
// materialized package defaults, so the worker's fill never applies.
func TestFleetWorkerDefaultsCannotSkew(t *testing.T) {
	exp := musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"btmz"}, PointIndices: []int{0, 1, 2},
		Seed: 1, NoReplay: true, // implicit Sample/Warmup: the package defaults
	}
	ctx := context.Background()

	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}

	skewed := newFleetWorkerOpts(t, musa.ClientOptions{
		SweepWorkers: 2, MaxJobs: 2,
		SampleInstrs: 5000, WarmupInstrs: 5000, // would skew if applied
	}, nil)
	coord, err := musa.NewClient(musa.ClientOptions{Workers: []string{skewed.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	res, err := coord.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalMeasurements(t, res), canonicalMeasurements(t, want); string(got) != string(want) {
		t.Fatal("a worker's own fidelity defaults skewed the fleet dataset")
	}
	if st := coord.Stats(); st.Remote != 3 {
		t.Fatalf("remote = %d, want 3 (shard must have run on the skewed worker)", st.Remote)
	}
}

// TestFleetWorkerFailure drives the retry path: a worker answering /shard
// with 500 gets each shard re-dispatched onto the local pool exactly once,
// and the merged dataset is complete with no duplicate measurements.
func TestFleetWorkerFailure(t *testing.T) {
	exp := fleetTestExperiment(t)
	shards := shardCountOf(t, exp)
	if shards < 2 {
		t.Fatalf("want >= 2 shards, have %d", shards)
	}
	ctx := context.Background()

	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := canonicalMeasurements(t, want)

	for _, mode := range []string{"http500", "timeout"} {
		t.Run(mode, func(t *testing.T) {
			var shardReqs atomic.Int32
			bad := newFleetWorker(t, func(h http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if r.URL.Path != "/shard" {
						h.ServeHTTP(w, r)
						return
					}
					shardReqs.Add(1)
					if mode == "timeout" {
						// Drain the body so the server notices the client
						// abandoning the request and cancels the context.
						io.Copy(io.Discard, r.Body)
						<-r.Context().Done()
						return
					}
					http.Error(w, "worker on fire", http.StatusInternalServerError)
				})
			})
			opts := musa.ClientOptions{Workers: []string{bad.URL}, SweepWorkers: 2}
			if mode == "timeout" {
				opts.ShardTimeout = 100 * time.Millisecond
			}
			coord, err := musa.NewClient(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			res, err := coord.Run(ctx, exp)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalMeasurements(t, res); string(got) != string(wantJSON) {
				t.Fatal("dataset after worker failure differs from in-process run")
			}
			if n := len(res.Sweep.Measurements); n != len(exp.PointIndices) {
				t.Fatalf("%d measurements, want %d (duplicates or losses)", n, len(exp.PointIndices))
			}
			st := coord.Stats()
			if st.Redispatched != int64(shards) {
				t.Fatalf("redispatched = %d, want one per shard (%d)", st.Redispatched, shards)
			}
			if st.Remote != 0 {
				t.Fatalf("remote = %d measurements from a dead worker", st.Remote)
			}
			if mode == "http500" && int(shardReqs.Load()) != shards {
				t.Fatalf("worker saw %d shard requests, want exactly %d", shardReqs.Load(), shards)
			}
		})
	}
}

// TestFleetHedgeSlowWorker drives the hedge path: a worker that accepts
// shards but never answers is out-raced by the local pool after HedgeAfter,
// each point still measured exactly once.
func TestFleetHedgeSlowWorker(t *testing.T) {
	exp := fleetTestExperiment(t)
	ctx := context.Background()

	slow := newFleetWorker(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard" {
				io.Copy(io.Discard, r.Body) // unblock disconnect detection
				<-r.Context().Done()        // accept, never answer
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	coord, err := musa.NewClient(musa.ClientOptions{
		Workers: []string{slow.URL}, SweepWorkers: 2,
		ShardTimeout: -1, // isolate hedging from the timeout path
		HedgeAfter:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	res, err := coord.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Sweep.Measurements); n != len(exp.PointIndices) {
		t.Fatalf("%d measurements, want %d", n, len(exp.PointIndices))
	}
	seen := map[string]bool{}
	for _, m := range res.Sweep.Measurements {
		id := m.App + "/" + m.Arch.Label()
		if seen[id] {
			t.Fatalf("duplicate measurement %s after hedging", id)
		}
		seen[id] = true
	}
	if st := coord.Stats(); st.Redispatched == 0 {
		t.Fatal("no shard was hedged")
	}
}

// TestFleetWorkerReusesCoordinatorArtifacts proves the artifact exchange
// end to end: a coordinator whose artifact cache was warmed by a local run
// pushes annotations, latency models and burst traces to the worker ahead
// of each shard, and the worker serves the whole sweep without rebuilding
// a single annotation — zero annotation misses on the worker's cache.
func TestFleetWorkerReusesCoordinatorArtifacts(t *testing.T) {
	exp := fleetTestExperiment(t)
	artDir := t.TempDir()
	ctx := context.Background()

	// Warm the artifact directory with an in-process run.
	local, err := musa.NewClient(musa.ClientOptions{SweepWorkers: 2, ArtifactCache: artDir})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}

	worker, workerClient := newFleetWorkerClient(t, musa.ClientOptions{SweepWorkers: 2, MaxJobs: 2}, nil)
	coord, err := musa.NewClient(musa.ClientOptions{
		Workers: []string{worker.URL}, SweepWorkers: 2, ArtifactCache: artDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	res, err := coord.Run(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalMeasurements(t, res), canonicalMeasurements(t, want); string(got) != string(want) {
		t.Fatal("artifact-warmed fleet dataset differs from the in-process run")
	}
	if st := coord.Stats(); st.Remote != int64(len(exp.PointIndices)) {
		t.Fatalf("remote = %d, want %d (shards must have run on the worker)", st.Remote, len(exp.PointIndices))
	}
	if st := coord.Stats(); st.ArtifactsPushed == 0 {
		t.Fatal("coordinator pushed no artifacts")
	}
	ws := workerClient.Snapshot().Artifacts.Stats
	if ws.HitRates.Misses != 0 {
		t.Fatalf("worker rebuilt %d hit-rate tables despite coordinator pushes: %+v", ws.HitRates.Misses, ws)
	}
	if ws.HitRates.Hits == 0 || ws.HitRates.Puts == 0 {
		t.Fatalf("worker did not receive/reuse pushed hit-rate tables: %+v", ws.HitRates)
	}
	if ws.LatencyModels.Misses != 0 || ws.Bursts.Misses != 0 {
		t.Fatalf("worker rebuilt latency models or bursts: %+v", ws)
	}
}

// TestFleetCancelMidDispatch checks the cancellation contract of the
// distributed path: canceling ctx mid-dispatch returns the partial dataset
// alongside an error wrapping context.Canceled, exactly like the
// in-process runner.
func TestFleetCancelMidDispatch(t *testing.T) {
	exp := fleetTestExperiment(t)
	if shardCountOf(t, exp) < 2 {
		t.Fatal("want >= 2 shards")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The worker answers its first shard normally and parks every later
	// shard until the coordinator hangs up, so cancellation is observed
	// with exactly one shard's measurements merged.
	var shardReqs atomic.Int32
	worker := newFleetWorker(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard" && shardReqs.Add(1) > 1 {
				io.Copy(io.Discard, r.Body) // unblock disconnect detection
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	coord, err := musa.NewClient(musa.ClientOptions{Workers: []string{worker.URL}, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	res, err := coord.RunStream(ctx, exp, musa.Observer{
		Progress: func(done, total, cached int) {
			if done > 0 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("canceled fleet sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if res == nil || res.Sweep == nil {
		t.Fatal("canceled fleet sweep returned no partial dataset")
	}
	if n := len(res.Sweep.Measurements); n == 0 || n >= len(exp.PointIndices) {
		t.Fatalf("partial dataset has %d of %d measurements", n, len(exp.PointIndices))
	}
}
