package musa

import (
	"fmt"
	"strings"

	"musa/internal/core"
	"musa/internal/net"
	"musa/internal/report"
)

// FigureNumbers lists the evaluation figures musa can regenerate: the
// Fig. 1 characterization, the Fig. 4 rank timeline, the Figs. 5-9
// sensitivity studies, the Fig. 10 PCA and the Table II / Fig. 11
// unconventional configurations.
func FigureNumbers() []int { return []int{1, 4, 5, 6, 7, 8, 9, 10, 11} }

// RankTimeline builds the Fig. 4-style cluster view: the application's
// burst trace replayed across the given rank count, with the per-rank
// compute/MPI breakdown and the rendered text Gantt chart (compute '#',
// MPI wait 'w'). A zero network model selects MareNostrumNetwork.
func RankTimeline(appName string, ranks int, network NetworkModel, opts SimOptions) (*report.Figure, error) {
	app, err := App(appName)
	if err != nil {
		return nil, err
	}
	if ranks == 0 {
		ranks = 64 // the paper's Fig. 4 rank count
	}
	if ranks < 2 || ranks > MaxReplayRanks {
		return nil, fmt.Errorf("musa: %d ranks out of range [2, %d]", ranks, MaxReplayRanks)
	}
	if (network == NetworkModel{}) {
		network = MareNostrumNetwork()
	}
	if err := network.Validate(); err != nil {
		return nil, err
	}
	b := core.SampleBurst(app, ranks, opts.seed())
	res := net.Replay(b, network, nil)
	t := report.NewTable(
		fmt.Sprintf("Figure 4: %s per-rank time breakdown, %d ranks", appName, ranks),
		"rank", "compute ns", "p2p ns", "collective ns", "finish ns")
	for r, rs := range res.Ranks {
		t.AddRow(r, rs.ComputeNs, rs.P2PNs, rs.CollectiveNs, rs.FinishNs)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s rank timeline, %d ranks (compute '#', MPI wait 'w')\n", appName, ranks)
	if err := report.WriteReplayTimeline(&sb, res); err != nil {
		return nil, err
	}
	return &report.Figure{
		N:      4,
		Title:  fmt.Sprintf("%s rank timeline (%d ranks)", appName, ranks),
		Tables: []*report.Table{t},
		Text:   sb.String(),
	}, nil
}

// Figure builds the table data behind one evaluation figure from a sweep
// dataset. It is the single figure pipeline shared by the musa-dse CLI and
// the musa-serve /figures/{n} endpoint. Figure 4 replays its own rank
// timeline (LULESH at 64 ranks, the paper's view) and Figure 11 runs its
// own Table II simulations; both are driven by opts and ignore d. Every
// other figure is an aggregation of d and ignores opts.
func Figure(d *Sweep, n int, opts SimOptions) (*report.Figure, error) {
	switch n {
	case 1:
		t := report.NewTable("Figure 1: application runtime statistics",
			"app", "cores", "L1 MPKI", "L2 MPKI", "L3 MPKI", "GReq/s",
			"end-to-end ms", "MPI frac", "parallel eff")
		for _, r := range Characterization(d) {
			t.AddRow(r.App, r.Cores, r.L1MPKI, r.L2MPKI, r.L3MPKI, r.GMemReqPerSec/1e9,
				r.EndToEndNs/1e6, r.MPIFraction, r.ParallelEff)
		}
		return &report.Figure{N: n, Title: "application characterization", Tables: []*report.Table{t}}, nil
	case 4:
		return RankTimeline("lulesh", 64, NetworkModel{}, opts)
	case 5, 6, 7, 8, 9:
		var name string
		var feat Feature
		switch n {
		case 5:
			name, feat = "FPU vector width", FeatVector
		case 6:
			name, feat = "cache sizes", FeatCache
		case 7:
			name, feat = "core OoO capabilities", FeatOoO
		case 8:
			name, feat = "memory channels", FeatChannels
		case 9:
			name, feat = "CPU frequency", FeatFreq
		}
		fig := &report.Figure{N: n, Title: name}
		for _, cores := range []int{32, 64} {
			t := report.NewTable(fmt.Sprintf("Figure %d: %s (%d cores x 256 ranks)", n, name, cores),
				"app", "value", "speedup", "sd", "power", "coreL1 W", "L2L3 W", "mem W", "energy")
			perf := SpeedupBars(d, feat, cores)
			pow := PowerBars(d, feat, cores)
			c1, c2, c3 := PowerComponentBars(d, feat, cores)
			en := EnergyBars(d, feat, cores)
			for i := range perf {
				t.AddRow(perf[i].App, perf[i].Value, perf[i].Mean, perf[i].Std,
					pow[i].Mean, c1[i].Mean, c2[i].Mean, c3[i].Mean, en[i].Mean)
			}
			fig.Tables = append(fig.Tables, t)
		}
		return fig, nil
	case 10:
		fig := &report.Figure{N: n, Title: "PCA of the design space"}
		for _, app := range []string{"hydro", "lulesh"} {
			res, err := PCA(d, app)
			if err != nil {
				return nil, err
			}
			t := report.NewTable(fmt.Sprintf("Figure 10: PCA for %s (PC0 %.1f%%, PC1 %.1f%% of variance)",
				app, res.Explained[0]*100, res.Explained[1]*100),
				"variable", "PC0", "PC1")
			for v, l := range res.Labels {
				t.AddRow(l, res.Loadings[0][v], res.Loadings[1][v])
			}
			fig.Tables = append(fig.Tables, t)
		}
		return fig, nil
	case 11:
		t := report.NewTable("Table II / Figure 11: unconventional configurations",
			"app", "config", "perf", "power", "energy")
		for _, r := range Unconventional(opts) {
			energy := fmt.Sprintf("%.3f", r.RelEnergy)
			if !r.EnergyKnown {
				energy = "n/a (no HBM power data)"
			}
			t.AddRow(r.App, r.Label, r.RelPerf, r.RelPower, energy)
		}
		return &report.Figure{N: n, Title: "unconventional configurations", Tables: []*report.Table{t}}, nil
	}
	return nil, fmt.Errorf("musa: unknown figure %d (have 1, 4-11)", n)
}
