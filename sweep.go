package musa

import (
	"context"

	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/stats"
	"musa/internal/store"
)

// Sweep exposes the paper's design-space exploration: the Table I grid,
// the parallel runner, and the per-figure aggregations.
type Sweep = dse.Dataset

// SweepOptions configures RunSweep.
//
// Deprecated: build an Experiment with KindSweep and use Client.Run or
// Client.RunStream; context.Context replaces the Cancel channel there.
type SweepOptions struct {
	// AppNames restricts the sweep (nil = all five applications).
	AppNames []string
	// SampleInstrs / WarmupInstrs control detailed-sample fidelity
	// (0 = package defaults; smaller is faster and noisier).
	SampleInstrs int64
	WarmupInstrs int64
	// Workers for the parallel runner (0 = GOMAXPROCS).
	Workers int
	Seed    uint64
	// Progress, if non-nil, is called with (done, total) measurements.
	Progress func(done, total int)

	// CacheDir, if non-empty, opens a content-addressed result store there:
	// each completed measurement is appended to the store's log as it
	// finishes (so a killed sweep resumes from its checkpoint), and points
	// already stored under the same (app, arch, sample, warmup, seed,
	// replay config) are served without recomputation.
	CacheDir string
	// Recompute forces fresh simulation even for cached points; the fresh
	// results overwrite the store.
	Recompute bool
	// Cancel, if non-nil, aborts the sweep when closed; RunSweep returns
	// the partial dataset.
	Cancel <-chan struct{}

	// ReplayRanks sets the cluster-stage MPI rank counts replayed per
	// measurement (nil = 64 and 256, the paper's full-app scale).
	ReplayRanks []int
	// NoReplay disables the cluster-level replay stage: measurements stop
	// at node-level ComputeNs and carry no EndToEndNs/MPIFraction.
	NoReplay bool
	// Network selects the interconnect model of the replay stage
	// (nil = MareNostrumNetwork).
	Network *NetworkModel
}

// replayConfig converts the sweep options' replay knobs into the runner's
// normalized form.
func (o SweepOptions) replayConfig() dse.ReplayConfig {
	rc := dse.ReplayConfig{Disable: o.NoReplay, Ranks: o.ReplayRanks}
	if o.Network != nil {
		rc.Network = *o.Network
	}
	return rc.Normalized()
}

// RunSweep executes the full 864-configuration Table I sweep (per selected
// application) and returns the dataset every figure is derived from.
//
// Deprecated: build an Experiment with KindSweep and use Client.Run or
// Client.RunStream. RunSweep remains as a thin wrapper over the same
// pipeline; its store keys are the canonical-experiment keys, so caches are
// shared with Client and musa-serve.
func RunSweep(opts SweepOptions) (*Sweep, error) {
	ctx := context.Background()
	if opts.Cancel != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-opts.Cancel:
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	rc := opts.replayConfig()
	o := dse.Options{
		SampleInstrs: opts.SampleInstrs,
		WarmupInstrs: opts.WarmupInstrs,
		Workers:      opts.Workers,
		Seed:         opts.Seed,
		Progress:     opts.Progress,
		Replay:       rc,
	}
	if opts.AppNames != nil {
		for _, n := range opts.AppNames {
			p, err := App(n)
			if err != nil {
				return nil, err
			}
			o.Apps = append(o.Apps, p)
		}
	}
	if opts.CacheDir == "" {
		return dse.Run(ctx, o), nil
	}

	st, err := store.Open(opts.CacheDir, store.Options{})
	if err != nil {
		return nil, err
	}
	flush := store.Bind(st, sweepKeyFunc(o, rc), &o, opts.Recompute)
	d := dse.Run(ctx, o)
	err = flush()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return d, err
}

// sweepKeyFunc maps each sweep point onto its canonical-experiment store
// key — the same key a single-point Client.Run request computes, so the
// deprecated wrapper, the Client and musa-serve share one cache. The
// replay network is encoded as its resolved model, so a custom model (only
// reachable through this deprecated path) hashes by content rather than
// colliding with a named scenario.
func sweepKeyFunc(o dse.Options, rc dse.ReplayConfig) func(app string, p dse.ArchPoint) string {
	base := Experiment{
		Kind:   KindNode,
		Sample: o.SampleInstrs, Warmup: o.WarmupInstrs, Seed: o.Seed,
	}
	if o.Seed == 0 {
		base.Seed = 1
	}
	var model *net.Model
	if rc.Disable {
		base.NoReplay = true
	} else {
		base.ReplayRanks = rc.Ranks
		m := rc.Network
		model = &m
	}
	return func(app string, p dse.ArchPoint) string {
		return nodeKey(base, app, nil, archOfPoint(p), model)
	}
}

// ClusterMeasurement re-exports the cluster-level replay outcome attached
// to every sweep measurement (one entry per replayed rank count).
type ClusterMeasurement = dse.ClusterStat

// DefaultReplayRanks returns the default cluster-stage rank counts.
func DefaultReplayRanks() []int { return dse.DefaultReplayRanks() }

// MaxReplayRanks re-exports the bound on externally supplied rank counts.
const MaxReplayRanks = dse.MaxReplayRanks

// ValidateReplayRanks re-exports the cluster-stage rank-list validation:
// at most 16 entries, each in [2, MaxReplayRanks].
func ValidateReplayRanks(ranks []int) error { return dse.ValidateReplayRanks(ranks) }

// ParseReplayRanks parses a comma-separated rank-count list ("" = nil,
// meaning the default) and validates it — the shared flag parser behind
// Experiment.SetReplayFlags and therefore the musa-dse and musa-serve
// CLIs. Failures wrap ErrBadReplayRanks.
func ParseReplayRanks(s string) ([]int, error) { return parseReplayRanks(s) }

// Feature re-exports the swept architectural dimensions.
type Feature = dse.Feature

// The five features of the paper's §V-B quantification.
const (
	FeatVector   = dse.FeatVector
	FeatCache    = dse.FeatCache
	FeatOoO      = dse.FeatOoO
	FeatChannels = dse.FeatChannels
	FeatFreq     = dse.FeatFreq
)

// Bar is one aggregated figure bar (mean ratio +/- stddev).
type Bar = dse.Bar

// SpeedupBars computes Fig. 5a/6a/7a/8a/9a-style bars: mean speedup of each
// feature value over the feature's baseline, restricted to one socket width
// (32 or 64; 0 = all).
func SpeedupBars(d *Sweep, f Feature, cores int) []Bar {
	return dse.NormalizedBars(d.Measurements, f, dse.MetricTime, true, cores)
}

// PowerBars computes the total-power ratio bars of the b-panels.
func PowerBars(d *Sweep, f Feature, cores int) []Bar {
	return dse.NormalizedBars(d.Measurements, f, dse.MetricPower, false, cores)
}

// PowerComponentBars returns the per-component power ratios (Core+L1,
// L2+L3, Memory), matching the stacked bars of the b-panels.
func PowerComponentBars(d *Sweep, f Feature, cores int) (coreL1, l2l3, mem []Bar) {
	coreL1 = dse.NormalizedBars(d.Measurements, f, dse.MetricCoreL1W, false, cores)
	l2l3 = dse.NormalizedBars(d.Measurements, f, dse.MetricL2L3W, false, cores)
	mem = dse.NormalizedBars(d.Measurements, f, dse.MetricMemW, false, cores)
	return coreL1, l2l3, mem
}

// EnergyBars computes the energy-to-solution ratio bars of the c-panels.
func EnergyBars(d *Sweep, f Feature, cores int) []Bar {
	return dse.NormalizedBars(d.Measurements, f, dse.MetricEnergy, false, cores)
}

// CharacterizationRow is one Fig. 1 row.
type CharacterizationRow = dse.Fig1Row

// Characterization extracts the Fig. 1 runtime statistics from a sweep.
func Characterization(d *Sweep) []CharacterizationRow { return dse.Figure1(d) }

// PCAResult re-exports the principal component analysis output.
type PCAResult = stats.PCAResult

// PCA reproduces Fig. 10 for one application over the sweep's 64-core,
// 2 GHz slice.
func PCA(d *Sweep, app string) (*PCAResult, error) { return dse.PCAFor(d, app) }

// UnconventionalRow is one Table II / Fig. 11 row.
type UnconventionalRow = dse.UnconventionalRow

// Unconventional simulates the Table II application-specific configurations
// (SPMZ Vector+/Vector++, LULESH MEM+/MEM++) against their DSE-Best
// baselines.
func Unconventional(opts SimOptions) []UnconventionalRow {
	return dse.Unconventional(opts.SampleInstrs, opts.WarmupInstrs, opts.seed())
}
