package musa

import (
	"testing"
)

func fastOpts() SimOptions {
	return SimOptions{SampleInstrs: 60000, WarmupInstrs: 200000, Seed: 1}
}

func TestAppLookup(t *testing.T) {
	for _, n := range []string{"hydro", "spmz", "btmz", "spec3d", "lulesh"} {
		if _, err := App(n); err != nil {
			t.Errorf("App(%q): %v", n, err)
		}
	}
	if _, err := App("quake"); err == nil {
		t.Error("unknown app accepted")
	}
	if len(Applications()) != 5 {
		t.Error("wrong application count")
	}
}

func TestDefaultArchValid(t *testing.T) {
	if _, err := DefaultArch().toPoint(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultArch()
	bad.CacheLabel = "huge"
	if _, err := bad.toPoint(); err == nil {
		t.Error("bad cache label accepted")
	}
	bad2 := DefaultArch()
	bad2.CoreType = "quantum"
	if _, err := bad2.toPoint(); err == nil {
		t.Error("bad core type accepted")
	}
}

func TestSimulateNode(t *testing.T) {
	app, _ := App("btmz")
	res := SimulateNodeOpts(app, DefaultArch(), fastOpts())
	if res.ComputeNs <= 0 || res.Power.Total() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestSimulateFullApp(t *testing.T) {
	app, _ := App("hydro")
	res := SimulateFullApp(app, DefaultArch(), 8, MareNostrumNetwork(), fastOpts())
	if res.MakespanNs <= 0 || res.SystemEnergyJ <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRegionScalingAPI(t *testing.T) {
	app, _ := App("spec3d")
	sp := RegionScaling(app, []int{1, 32, 64})
	if len(sp) != 3 || sp[0] != 1 || sp[2] <= 1 {
		t.Errorf("speedups = %v", sp)
	}
}

func TestFullAppScalingAPI(t *testing.T) {
	app, _ := App("lulesh")
	res := FullAppScaling(app, 16, []int{32}, MareNostrumNetwork())
	if len(res) != 1 || res[0].Speedup <= 1 {
		t.Errorf("results = %+v", res)
	}
}

func TestNewApplicationValidates(t *testing.T) {
	app, _ := App("hydro")
	custom := *app
	custom.Name = "myapp"
	got, err := NewApplication(custom)
	if err != nil || got.Name != "myapp" {
		t.Fatalf("NewApplication: %v", err)
	}
	broken := *app
	broken.Regions = nil
	if _, err := NewApplication(broken); err == nil {
		t.Error("invalid application accepted")
	}
}

func TestRunSweepSmall(t *testing.T) {
	d, err := RunSweep(SweepOptions{
		AppNames:     []string{"btmz"},
		SampleInstrs: 40000,
		WarmupInstrs: 120000,
		Workers:      2,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Measurements) != 864 {
		t.Fatalf("%d measurements, want 864", len(d.Measurements))
	}
	bars := SpeedupBars(d, FeatFreq, 64)
	if len(bars) == 0 {
		t.Fatal("no frequency bars")
	}
	pb := PowerBars(d, FeatOoO, 64)
	if len(pb) == 0 {
		t.Fatal("no power bars")
	}
	c1, c2, c3 := PowerComponentBars(d, FeatChannels, 64)
	if len(c1) == 0 || len(c2) == 0 || len(c3) == 0 {
		t.Fatal("missing component bars")
	}
	eb := EnergyBars(d, FeatVector, 32)
	if len(eb) == 0 {
		t.Fatal("no energy bars")
	}
	rows := Characterization(d)
	if len(rows) != 2 { // one app, 32c + 64c
		t.Fatalf("characterization rows = %d", len(rows))
	}
	// The multi-scale loop is closed by default: every measurement carries
	// end-to-end cluster metrics at the default rank counts.
	for _, m := range d.Measurements {
		if len(m.Cluster) != len(DefaultReplayRanks()) {
			t.Fatalf("%s: %d cluster entries, want %d", m.Arch.Label(), len(m.Cluster), len(DefaultReplayRanks()))
		}
		if m.EndToEndNs < m.TimeNs || m.ParallelEff <= 0 {
			t.Fatalf("%s: cluster metrics degenerate: e2e=%v time=%v eff=%v",
				m.Arch.Label(), m.EndToEndNs, m.TimeNs, m.ParallelEff)
		}
	}
	for _, r := range rows {
		if r.EndToEndNs <= 0 || r.ParallelEff <= 0 {
			t.Fatalf("characterization row missing cluster metrics: %+v", r)
		}
	}
	if _, err := PCA(d, "btmz"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(SweepOptions{AppNames: []string{"nope"}}); err == nil {
		t.Error("unknown app accepted by sweep")
	}
}

func TestNetworkByName(t *testing.T) {
	for _, name := range NetworkNames() {
		if _, err := NetworkByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := NetworkByName("warpdrive"); err == nil {
		t.Error("unknown network name accepted")
	}
}

func TestRankTimelineAPI(t *testing.T) {
	fig, err := RankTimeline("lulesh", 16, NetworkModel{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fig.N != 4 || len(fig.Tables) != 1 || len(fig.Tables[0].Rows) != 16 {
		t.Fatalf("timeline figure malformed: %+v", fig)
	}
	if fig.Text == "" {
		t.Fatal("no rendered timeline")
	}
	if _, err := RankTimeline("nope", 16, NetworkModel{}, SimOptions{}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := RankTimeline("lulesh", 1<<20, NetworkModel{}, SimOptions{}); err == nil {
		t.Error("absurd rank count accepted")
	}
}
