package musa

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func testClientOpts(dir string) ClientOptions {
	return ClientOptions{
		CacheDir:     dir,
		SweepWorkers: 2,
		MaxJobs:      2,
		SampleInstrs: 20000,
		WarmupInstrs: 40000,
		Seed:         1,
		ReplayRanks:  []int{4, 8},
		// An explicit default network exercises the fill path: kinds that
		// take no network (unconventional) must not inherit it.
		Network: "mn4",
	}
}

func newTestClient(t *testing.T, dir string) *Client {
	t.Helper()
	c, err := NewClient(testClientOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientRunAllKinds smoke-tests every experiment kind through the one
// unified entry point.
func TestClientRunAllKinds(t *testing.T) {
	c := newTestClient(t, t.TempDir())
	ctx := context.Background()
	arch := DefaultArch()

	node, err := c.Run(ctx, Experiment{Kind: KindNode, App: "btmz", Arch: &arch})
	if err != nil {
		t.Fatal(err)
	}
	if node.Kind != KindNode || node.Measurement == nil || node.Measurement.TimeNs <= 0 {
		t.Fatalf("node result malformed: %+v", node)
	}
	if node.Measurement.IPC <= 0 {
		t.Fatalf("node measurement has no IPC: %+v", node.Measurement)
	}
	if len(node.Measurement.Cluster) != 2 {
		t.Fatalf("client replay defaults not applied: %+v", node.Measurement.Cluster)
	}

	full, err := c.Run(ctx, Experiment{Kind: KindFullApp, App: "hydro", Arch: &arch, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if full.FullApp == nil || full.FullApp.MakespanNs <= 0 || full.FullApp.SystemEnergyJ <= 0 {
		t.Fatalf("full-app result malformed: %+v", full)
	}

	scaling, err := c.Run(ctx, Experiment{Kind: KindScaling, App: "spec3d", Ranks: 16, CoreCounts: []int{1, 32, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(scaling.RegionSpeedups) != 3 || scaling.RegionSpeedups[0] != 1 || scaling.RegionSpeedups[2] <= 1 {
		t.Fatalf("region speedups malformed: %v", scaling.RegionSpeedups)
	}
	if len(scaling.Scaling) != 3 || scaling.Scaling[2].Speedup <= 1 {
		t.Fatalf("scaling results malformed: %+v", scaling.Scaling)
	}

	unconv, err := c.Run(ctx, Experiment{Kind: KindUnconventional})
	if err != nil {
		t.Fatal(err)
	}
	if len(unconv.Unconventional) == 0 {
		t.Fatalf("no unconventional rows: %+v", unconv)
	}
}

// TestClientNoPanicOnInvalidInput feeds invalid arch/app/ranks through the
// public API: every one must come back as a typed error, never a panic
// (the deprecated wrappers are the only remaining panicking paths and take
// no external input in the CLIs or the HTTP layer).
func TestClientNoPanicOnInvalidInput(t *testing.T) {
	c := newTestClient(t, t.TempDir())
	ctx := context.Background()
	badArch := DefaultArch()
	badArch.CoreType = "quantum"
	negArch := DefaultArch()
	negArch.Cores = -64

	for _, e := range []Experiment{
		{Kind: "hyperdrive", App: "hydro", Arch: archp()},
		{App: "quake", Arch: archp()},
		{App: "hydro", Arch: &badArch},
		{App: "hydro", Arch: &negArch},
		{App: "hydro", PointIndex: intp(1 << 20)},
		{App: "hydro", Arch: archp(), ReplayRanks: []int{-7}},
		{App: "hydro", Arch: archp(), Network: "warpdrive"},
		{Kind: KindFullApp, App: "hydro", Arch: archp(), Ranks: -8},
		{Kind: KindScaling, App: "hydro", CoreCounts: []int{-1}},
		{Kind: KindSweep, Apps: []string{"hydro"}, PointIndices: []int{-2}},
	} {
		res, err := c.Run(ctx, e)
		if err == nil {
			t.Fatalf("invalid experiment accepted: %+v -> %+v", e, res)
		}
		if !errors.Is(err, ErrExperiment) {
			t.Fatalf("invalid experiment %+v returned untyped error %v", e, err)
		}
	}
	if n := c.Stats().Simulated; n != 0 {
		t.Fatalf("invalid input reached the simulator %d times", n)
	}
}

// TestClientCancelMidSweepReturnsPartial is the acceptance behavior of the
// unified API: canceling the context mid-sweep returns the partial dataset
// with an error wrapping context.Canceled.
func TestClientCancelMidSweepReturnsPartial(t *testing.T) {
	c := newTestClient(t, t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	res, err := c.RunStream(ctx, Experiment{
		Kind: KindSweep, Apps: []string{"btmz"}, PointIndices: indices(10),
	}, Observer{
		Progress: func(done, total, cached int) {
			if done == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil || res.Sweep == nil {
		t.Fatal("canceled sweep returned no partial dataset")
	}
	got := len(res.Sweep.Measurements)
	if got == 0 || got >= 10 {
		t.Fatalf("partial dataset has %d of 10 measurements, want a strict subset", got)
	}
}

// indices returns the first n Table I grid indices.
func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRunSweepSharesClientCache checks key unification across the API
// generations: points checkpointed by the deprecated RunSweep wrapper are
// store hits for Client node experiments, and vice versa.
func TestRunSweepSharesClientCache(t *testing.T) {
	dir := t.TempDir()

	// The deprecated wrapper sweeps two points into the store.
	_, err := RunSweep(SweepOptions{
		AppNames:     []string{"hydro"},
		SampleInstrs: 20000,
		WarmupInstrs: 40000,
		Seed:         1,
		CacheDir:     dir,
		ReplayRanks:  []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A Client over the same store must hit for the matching single-point
	// experiment.
	c, err := NewClient(ClientOptions{
		CacheDir: dir, SampleInstrs: 20000, WarmupInstrs: 40000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Run(context.Background(), Experiment{
		App: "hydro", PointIndex: intp(7), ReplayRanks: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("Client missed a measurement the deprecated RunSweep stored")
	}
	if c.Stats().Simulated != 0 {
		t.Fatal("Client re-simulated a stored point")
	}
}

// TestClientCustomApplication registers a custom profile and runs it
// through node and scaling experiments; two different profiles under the
// same name must not share cache entries.
func TestClientCustomApplication(t *testing.T) {
	dir := t.TempDir()
	c := newTestClient(t, dir)
	ctx := context.Background()

	base, err := App("hydro")
	if err != nil {
		t.Fatal(err)
	}
	custom := *base
	custom.Name = "myapp"
	if err := c.RegisterApplication(custom); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterApplication(*base); err == nil {
		t.Fatal("built-in name shadowing accepted")
	}

	arch := DefaultArch()
	res, err := c.Run(ctx, Experiment{App: "myapp", Arch: &arch, NoReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurement.App != "myapp" || res.Measurement.TimeNs <= 0 {
		t.Fatalf("custom app measurement malformed: %+v", res.Measurement)
	}

	// Same name, different content: the key embeds the profile, so the
	// second client must not be served the first profile's measurement.
	c.Close()
	c2 := newTestClient(t, dir)
	tweaked := custom
	tweaked.Iterations *= 2
	if err := c2.RegisterApplication(tweaked); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(ctx, Experiment{App: "myapp", Arch: &arch, NoReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached {
		t.Fatal("different custom profile content served from the old profile's cache entry")
	}
	if reflect.DeepEqual(res.Measurement, res2.Measurement) {
		t.Fatal("tweaked profile produced an identical measurement")
	}
}

// TestClientNodeMatchesDeprecatedSweep cross-checks the unified pipeline
// against the deprecated entry points: a node experiment must agree with
// the RunSweep measurement of the same point.
func TestClientNodeMatchesDeprecatedSweep(t *testing.T) {
	c := newTestClient(t, t.TempDir())
	res, err := c.Run(context.Background(), Experiment{
		App: "spmz", PointIndex: intp(3), NoReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	d, err := RunSweep(SweepOptions{
		AppNames:     []string{"spmz"},
		SampleInstrs: 20000,
		WarmupInstrs: 40000,
		Seed:         1,
		NoReplay:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	label := res.Measurement.Arch.Label()
	for _, m := range d.Measurements {
		if m.Arch.Label() == label {
			if !reflect.DeepEqual(m, *res.Measurement) {
				t.Fatalf("unified and deprecated pipelines disagree:\n%+v\nvs\n%+v", m, *res.Measurement)
			}
			return
		}
	}
	t.Fatalf("point %s not found in sweep dataset", label)
}
