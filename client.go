package musa

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"musa/internal/apps"
	"musa/internal/core"
	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/obs"
	"musa/internal/store"
	"musa/internal/store/lsm"
)

// ClientOptions configures a Client. Zero values mean: no persistent store,
// GOMAXPROCS sweep workers, 2 concurrent jobs, package-default fidelity,
// seed 1, cluster replay at 64 and 256 ranks against the "mn4" network,
// in-process execution (no fleet workers).
type ClientOptions struct {
	// CacheDir, if non-empty, opens the content-addressed result store
	// there: node and sweep measurements are checkpointed as they complete
	// and repeated experiments become cache hits. The Client owns the
	// store; Close releases it.
	CacheDir string
	// LRUEntries bounds the store's in-memory front (0 = store default).
	LRUEntries int
	// StoreMemtableBytes overrides the result store's memtable flush
	// threshold (0 = engine default). With StoreBlockCacheBytes it is the
	// memory-budget knob of a replica sharing a machine with siblings.
	StoreMemtableBytes int
	// StoreBlockCacheBytes overrides the result store's inflated-block
	// cache bound (0 = engine default, <0 disables the cache).
	StoreBlockCacheBytes int64
	// StoreReadOnly opens the result store read-only: no writer lock is
	// taken, so the handle shares the directory with a live writer in
	// another process and follows the segments it publishes. Freshly
	// computed measurements stay in the in-memory front instead of being
	// checkpointed. Lets a warm serve replica read a store a sweep writes.
	StoreReadOnly bool
	// ArtifactCache is the persistent artifact-cache directory: sweep
	// intermediates (annotated samples, DRAM latency models, burst traces)
	// are cached there by content address and reused across runs and
	// processes — a warm run is byte-identical to a cold one, just faster.
	// Empty derives "<CacheDir>/artifacts" when CacheDir is set; without a
	// CacheDir the artifact cache is in-memory only (still shared across
	// this client's requests). Unlike the result store, the directory may
	// be shared between processes.
	ArtifactCache string
	// NoArtifacts disables the artifact cache entirely: every run rebuilds
	// its intermediates from scratch (the cold path, kept for benchmarks
	// and A/B comparisons).
	NoArtifacts bool
	// SweepWorkers bounds dse.Run parallelism inside one job
	// (0 = GOMAXPROCS).
	SweepWorkers int
	// MaxJobs bounds concurrently executing simulation jobs across all
	// requests (0 = 2). Requests beyond the bound queue.
	MaxJobs int

	// Workers lists remote musa-serve base URLs (e.g. "http://h1:8080").
	// When non-empty, sweep experiments are split into per-annotation-group
	// shards and dispatched across the fleet over the /shard endpoint, with
	// the local process as the retry/hedge pool; all other kinds, and sweeps
	// over client-registered custom applications, still run in process. The
	// merged dataset is byte-identical to the in-process run.
	Workers []string
	// ShardTimeout bounds one remote shard request; a shard that times out
	// is re-dispatched onto the local pool (0 = 10m, negative = unbounded).
	ShardTimeout time.Duration
	// HedgeAfter, if positive, re-dispatches a still-running remote shard
	// onto the local pool after this long, and lets the local pool start
	// draining still-queued shards after the same delay; the first result
	// per shard wins and the merged dataset still holds exactly one
	// measurement per point.
	HedgeAfter time.Duration
	// Ring, when set, is the serve tier's replica membership. A coordinator
	// with Workers dispatches each shard to the ring owner of its
	// annotation-group key (instead of any free worker), so identical sweeps
	// from many coordinators coalesce on the same replicas; on any client
	// holding an artifact cache, a cache miss is retried against the peer
	// that owns the artifact key before the artifact is rebuilt, and a
	// replica (NewRing with a non-empty self) replicates freshly built
	// artifacts to their owners. serve handlers additionally use the ring
	// for /simulate ownership routing.
	Ring *Ring

	// SampleInstrs / WarmupInstrs / Seed are applied to experiments that
	// leave the corresponding field zero.
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64
	// ReplayRanks / NoReplay / Network are the default replay configuration
	// of node and sweep experiments that do not set their own.
	ReplayRanks []int
	NoReplay    bool
	Network     string
}

// ClientStats counts what a Client did since construction.
type ClientStats struct {
	// Requests is the number of experiments run.
	Requests int64
	// StoreHits counts measurements served from the result store.
	StoreHits int64
	// StoreMisses counts result-store lookups that found nothing (the
	// dominant case of a cold sweep; at serve scale the hit/miss ratio is
	// the cache's health metric).
	StoreMisses int64
	// Coalesced counts node experiments that piggybacked on an identical
	// in-flight computation instead of simulating again.
	Coalesced int64
	// Simulated counts measurements actually computed in this process.
	Simulated int64
	// Remote counts measurements computed by fleet workers on behalf of
	// this client's sweeps.
	Remote int64
	// Redispatched counts sweep shards re-dispatched onto the local pool
	// after a fleet worker failed, timed out or was hedged.
	Redispatched int64
	// ArtifactsPushed counts artifacts this coordinator shipped to fleet
	// workers ahead of shard dispatch.
	ArtifactsPushed int64
	// ShardRetries counts 429-shed shard dispatches retried against a
	// worker (after honoring its Retry-After) before any local fallback.
	ShardRetries int64
	// PeerArtifactsFetched counts artifacts pulled from ring peers on a
	// local cache miss instead of being recomputed.
	PeerArtifactsFetched int64
	// PeerArtifactMisses counts local artifact misses no ring peer could
	// serve either (the artifact was then rebuilt locally).
	PeerArtifactMisses int64
	// PeerArtifactsReplicated counts freshly built artifacts this replica
	// pushed to their ring owners.
	PeerArtifactsReplicated int64
}

// Measurement re-exports the sweep measurement: one (application,
// configuration) simulation outcome including the cluster replay metrics.
type Measurement = dse.Measurement

// ArtifactStats re-exports the artifact-cache counter snapshot (per-kind
// hit/miss/put counts, blob byte traffic, resident entry count).
type ArtifactStats = store.ArtifactStats

// ErrStoreBusy re-exports the result store's busy error: NewClient returns
// an error wrapping it when CacheDir is already open for writing by
// another process. Set StoreReadOnly to share a live writer's store.
var ErrStoreBusy = store.ErrStoreBusy

// Result is the outcome of one experiment; the field matching the
// experiment's Kind is set.
type Result struct {
	Kind Kind `json:"kind"`
	// Cached reports that a node measurement came from the result store or
	// an identical in-flight computation.
	Cached bool `json:"cached,omitempty"`

	// Measurement is the KindNode outcome.
	Measurement *Measurement `json:"measurement,omitempty"`
	// FullApp is the KindFullApp outcome.
	FullApp *FullAppResult `json:"fullApp,omitempty"`
	// RegionSpeedups (Fig. 2a, aligned with CoreCounts) and Scaling
	// (Fig. 2b) are the KindScaling outcome.
	RegionSpeedups []float64              `json:"regionSpeedups,omitempty"`
	Scaling        []FullAppScalingResult `json:"scaling,omitempty"`
	// Sweep is the KindSweep outcome. On cancellation it holds the partial
	// dataset accumulated so far.
	Sweep *Sweep `json:"sweep,omitempty"`
	// Unconventional is the KindUnconventional outcome.
	Unconventional []UnconventionalRow `json:"unconventional,omitempty"`
	// Optimize is the KindOptimize outcome. On cancellation it holds the
	// rung history completed so far.
	Optimize *OptimizeResult `json:"optimize,omitempty"`
}

// Observer receives streaming callbacks from Client.RunStream. All fields
// are optional. Each callback is serialized with itself (no two Progress
// calls, and no two Measurement calls, run concurrently), but different
// callbacks may overlap each other.
type Observer struct {
	// Progress receives (done, total, cached) measurement counts as a
	// sweep or optimize search advances (and a single 1/1 tick for node
	// experiments). For optimize experiments the counts are cumulative
	// probes across the whole fidelity ladder.
	Progress func(done, total, cached int)
	// Measurement receives each completed measurement of node, sweep and
	// optimize experiments, including store hits.
	Measurement func(m Measurement)
	// Rung receives each completed successive-halving rung of an optimize
	// experiment, in ladder order.
	Rung func(r RungSummary)
}

// call is one in-flight node computation that duplicate requests wait on.
type call struct {
	done chan struct{}
	m    Measurement
	err  error
}

// Client executes Experiments. It owns the optional result store, coalesces
// duplicate in-flight node experiments into single computations, and bounds
// concurrent simulation jobs with a worker pool. All methods are safe for
// concurrent use.
type Client struct {
	opts    ClientOptions
	st      *store.Store         // nil without CacheDir
	art     *store.ArtifactCache // nil with NoArtifacts
	network NetworkModel         // resolved default network
	sem     chan struct{}
	fleet   *fleet // nil without Workers

	mu     sync.Mutex
	flight map[string]*call
	custom map[string]*Application

	// compHist is the registered compaction-duration histogram; the store's
	// OnCompaction hook feeds it. Atomic because compactions run on engine
	// goroutines while RegisterMetrics may swap registries.
	compHist atomic.Pointer[obs.Histogram]

	// optRungHist is the registered rung-duration histogram, fed by
	// runOptimize (same registry-swap pattern as compHist).
	optRungHist atomic.Pointer[obs.Histogram]

	requests, storeHits, storeMisses, coalesced, simulated atomic.Int64
	remote, redispatched, artifactsPushed, shardRetries    atomic.Int64
	peerArtifactsFetched, peerArtifactMisses               atomic.Int64
	peerArtifactsReplicated                                atomic.Int64
	optProbesCheap, optProbesFull                          atomic.Int64
}

// NewClient validates the options, opens the result store when CacheDir is
// set, and returns the client.
func NewClient(opts ClientOptions) (*Client, error) {
	name := opts.Network
	if name == "" {
		name = "mn4"
	}
	network, err := net.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	if opts.ReplayRanks != nil {
		if err := ValidateReplayRanks(opts.ReplayRanks); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadReplayRanks, err)
		}
	}
	if opts.NoArtifacts && opts.ArtifactCache != "" {
		// Silently ignoring the directory would let an operator believe
		// artifacts persist while every run rebuilds from scratch.
		return nil, errors.New("musa: conflicting options: NoArtifacts with an explicit ArtifactCache directory")
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	c := &Client{
		opts:    opts,
		network: network,
		sem:     make(chan struct{}, maxJobs),
		flight:  map[string]*call{},
		custom:  map[string]*Application{},
	}
	if len(opts.Workers) > 0 {
		f, err := newFleet(opts.Workers, opts.ShardTimeout, opts.HedgeAfter)
		if err != nil {
			return nil, err
		}
		c.fleet = f
	}
	if opts.CacheDir != "" {
		st, err := store.Open(opts.CacheDir, store.Options{
			LRUEntries:      opts.LRUEntries,
			ReadOnly:        opts.StoreReadOnly,
			MemtableBytes:   opts.StoreMemtableBytes,
			BlockCacheBytes: opts.StoreBlockCacheBytes,
			OnCompaction: func(seconds float64) {
				if h := c.compHist.Load(); h != nil {
					h.Observe(seconds)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		c.st = st
	}
	if !opts.NoArtifacts {
		dir := opts.ArtifactCache
		if dir == "" && opts.CacheDir != "" {
			dir = filepath.Join(opts.CacheDir, "artifacts")
		}
		art, err := store.OpenArtifacts(dir)
		if err != nil {
			if c.st != nil {
				c.st.Close()
			}
			return nil, err
		}
		c.art = art
	}
	return c, nil
}

// Close releases the result store (if any). The client must not be used
// afterwards.
func (c *Client) Close() error {
	if c.st == nil {
		return nil
	}
	return c.st.Close()
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests:        c.requests.Load(),
		StoreHits:       c.storeHits.Load(),
		StoreMisses:     c.storeMisses.Load(),
		Coalesced:       c.coalesced.Load(),
		Simulated:       c.simulated.Load(),
		Remote:          c.remote.Load(),
		Redispatched:    c.redispatched.Load(),
		ArtifactsPushed: c.artifactsPushed.Load(),

		ShardRetries:            c.shardRetries.Load(),
		PeerArtifactsFetched:    c.peerArtifactsFetched.Load(),
		PeerArtifactMisses:      c.peerArtifactMisses.Load(),
		PeerArtifactsReplicated: c.peerArtifactsReplicated.Load(),
	}
}

// artifacts returns the client's artifact provider for dse.Options without
// producing a typed-nil interface when the cache is disabled. With a ring
// configured the cache is wrapped in the peer-fetching provider: a local
// miss is retried against the artifact key's owner replica before anything
// is rebuilt, and replica-built artifacts replicate to their owners.
func (c *Client) artifacts() dse.ArtifactProvider {
	if c.art == nil {
		return nil
	}
	if c.opts.Ring != nil && c.opts.Ring.Len() > 0 {
		return ringArtifacts{c: c}
	}
	return c.art
}

// ArtifactBlob returns the encoded artifact stored under key, byte for
// byte — the GET /artifact/{key} payload.
func (c *Client) ArtifactBlob(key string) ([]byte, bool) {
	if c.art == nil {
		return nil, false
	}
	return c.art.Blob(key)
}

// ArtifactPut validates and stores an encoded artifact received from
// outside (PUT /artifact/{key}, fleet coordinator pushes).
func (c *Client) ArtifactPut(key string, blob []byte) error {
	if c.art == nil {
		return errors.New("musa: artifact cache disabled")
	}
	return c.art.PutBlob(key, blob)
}

// RegisterApplication adds a custom application model to the client's
// registry: experiments can then name it in App/Apps. Built-in names cannot
// be shadowed. The profile participates in store keys by content, so two
// different profiles under the same name never collide in the cache.
func (c *Client) RegisterApplication(p Application) error {
	cp, err := NewApplication(p)
	if err != nil {
		return err
	}
	if _, err := apps.ByName(cp.Name); err == nil {
		return fmt.Errorf("%w: %q shadows a built-in application", ErrExperiment, cp.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.custom[cp.Name] = cp
	return nil
}

// resolveApp resolves built-ins first, then the client registry.
func (c *Client) resolveApp(name string) (*Application, error) {
	if a, err := apps.ByName(name); err == nil {
		return a, nil
	}
	c.mu.Lock()
	a, ok := c.custom[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("musa: unknown application %q", name)
	}
	return a, nil
}

// customProfile returns the registered profile when name is not a built-in
// (nil for built-ins) — the content embedded into store keys.
func (c *Client) customProfile(name string) *apps.Profile {
	if _, err := apps.ByName(name); err == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.custom[name]
}

// fill applies the client defaults to an experiment before normalization.
// A nil ReplayRanks picks up the client's replay defaults; an explicit
// empty slice means node-only and stays that way (Normalize folds it into
// NoReplay).
func (c *Client) fill(e Experiment) Experiment {
	if e.Sample == 0 {
		e.Sample = c.opts.SampleInstrs
	}
	if e.Warmup == 0 {
		e.Warmup = c.opts.WarmupInstrs
	}
	if e.Seed == 0 {
		e.Seed = c.opts.Seed
	}
	kind := e.Kind
	if kind == "" {
		kind = KindNode
	}
	if e.Replay != nil {
		// A nested replay sub-spec is a complete, explicit configuration:
		// injecting flat client defaults beside it would either conflict
		// with it or silently override parts of what the caller spelled out.
		return e
	}
	if e.Network == "" && kind != KindUnconventional {
		// Unconventional experiments take no network; injecting the client
		// default would fail their validation.
		e.Network = c.opts.Network
	}
	if (kind == KindNode || kind == KindSweep || kind == KindOptimize) &&
		e.ReplayRanks == nil && !e.NoReplay {
		if c.opts.NoReplay {
			e.NoReplay = true
		} else {
			e.ReplayRanks = c.opts.ReplayRanks // nil keeps the package default
		}
	}
	return e
}

// acquire takes a job slot, honoring cancellation while queued.
func (c *Client) acquire(ctx context.Context) error {
	select {
	case c.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) release() { <-c.sem }

// Run executes the experiment and returns its result. Requests are
// validated up front: all validation failures wrap ErrExperiment and the
// typed cause (ErrUnknownApp, ErrBadArch, ErrBadReplayRanks, ...), and no
// user input reaches a panicking simulation path. Canceling ctx aborts the
// run; a canceled sweep returns the partial dataset alongside an error
// wrapping context.Canceled.
func (c *Client) Run(ctx context.Context, e Experiment) (*Result, error) {
	return c.RunStream(ctx, e, Observer{})
}

// RunStream is Run with streaming callbacks: sweep progress and per-
// measurement notifications are delivered to watch while the experiment
// executes. The final Result is returned as from Run.
func (c *Client) RunStream(ctx context.Context, e Experiment, watch Observer) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ne, err := c.fill(e).normalize(c.resolveApp)
	if err != nil {
		return nil, err
	}
	c.requests.Add(1)
	// The root span of the request: under an HTTP handler it parents to the
	// request span (and, via X-Musa-Trace, to a coordinator's dispatch); on
	// a CLI it is the trace root covering the whole experiment.
	ctx, span := obs.StartSpan(ctx, "client.run", obs.A("kind", string(ne.Kind)))
	defer span.End()
	switch ne.Kind {
	case KindNode:
		return c.runNode(ctx, ne, watch)
	case KindFullApp:
		return c.runFullApp(ctx, ne)
	case KindScaling:
		return c.runScaling(ctx, ne)
	case KindSweep:
		return c.runSweep(ctx, ne, watch)
	case KindUnconventional:
		return c.runUnconventional(ctx, ne)
	case KindOptimize:
		return c.runOptimize(ctx, ne, watch)
	}
	return nil, fmt.Errorf("%w %q", ErrBadKind, ne.Kind) // unreachable after normalize
}

// runNode serves one measurement: store first, then single-flight
// coalescing of identical in-flight requests, then a one-point sweep under
// a job slot.
func (c *Client) runNode(ctx context.Context, ne Experiment, watch Observer) (*Result, error) {
	app, err := c.resolveApp(ne.App)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownApp, err)
	}
	key := nodeKey(ne, ne.App, c.customProfile(ne.App), *ne.Arch, nil)

	finish := func(m Measurement, cached bool) (*Result, error) {
		if watch.Measurement != nil {
			watch.Measurement(m)
		}
		if watch.Progress != nil {
			hits := 0
			if cached {
				hits = 1
			}
			watch.Progress(1, 1, hits)
		}
		return &Result{Kind: KindNode, Cached: cached, Measurement: &m}, nil
	}

	if c.st != nil && !ne.Recompute {
		if m, ok := c.st.Get(key); ok {
			c.storeHits.Add(1)
			return finish(m, true)
		}
		c.storeMisses.Add(1)
	}

	// Single flight: the first request under a key computes; duplicates
	// arriving before it finishes wait on the same call.
	c.mu.Lock()
	if call, ok := c.flight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-call.done:
			if call.err != nil {
				return nil, call.err
			}
			return finish(call.m, true)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.mu.Unlock()

	// The leader computes under a context detached from its own request:
	// coalesced waiters (and the store) want the result even if the leader
	// disconnects, and a canceled leader must not hand its ctx error to
	// waiters whose contexts are live.
	cl.m, cl.err = c.simulateOne(context.WithoutCancel(ctx), app, ne, key)
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	close(cl.done)
	if cl.err != nil {
		return nil, cl.err
	}
	return finish(cl.m, false)
}

// replayOf reconstructs the runner's replay configuration from a
// normalized experiment.
func (c *Client) replayOf(ne Experiment) dse.ReplayConfig {
	rc := dse.ReplayConfig{Disable: ne.NoReplay, Ranks: ne.ReplayRanks}
	if !rc.Disable && ne.Network != "" {
		m, _ := net.ByName(ne.Network) // normalized: resolves
		rc.Network = m
	}
	return rc.Normalized()
}

// simulateOne runs a one-point sweep under a job slot and checkpoints the
// result.
func (c *Client) simulateOne(ctx context.Context, app *Application, ne Experiment, key string) (Measurement, error) {
	if err := c.acquire(ctx); err != nil {
		return Measurement{}, err
	}
	defer c.release()
	p, err := ne.Arch.toPoint()
	if err != nil {
		return Measurement{}, err // unreachable: ne is normalized
	}
	d := dse.Run(ctx, dse.Options{
		Apps:         []*apps.Profile{app},
		Points:       []dse.ArchPoint{p},
		SampleInstrs: ne.Sample,
		WarmupInstrs: ne.Warmup,
		Workers:      1,
		Seed:         ne.Seed,
		Replay:       c.replayOf(ne),
		Artifacts:    c.artifacts(),
	})
	if err := ctx.Err(); err != nil {
		return Measurement{}, err
	}
	if len(d.Measurements) != 1 {
		return Measurement{}, fmt.Errorf("musa: expected 1 measurement, got %d", len(d.Measurements))
	}
	c.simulated.Add(1)
	m := d.Measurements[0]
	if c.st != nil {
		if err := c.st.Put(key, m); err != nil {
			return m, err
		}
	}
	return m, nil
}

// runSweep executes a (possibly restricted) Table I sweep with incremental
// store checkpointing. On cancellation it returns the partial dataset and
// an error wrapping context.Canceled, so callers keep what was computed
// and a repeated run resumes from the checkpoint.
func (c *Client) runSweep(ctx context.Context, ne Experiment, watch Observer) (*Result, error) {
	// A configured fleet takes over built-in-application sweeps; custom
	// applications are registered only on this client, so the workers could
	// not resolve them — those sweeps stay in process.
	if c.fleet != nil && c.fleetEligible(ne) {
		return c.runSweepFleet(ctx, ne, watch)
	}
	var selected []*apps.Profile
	for _, name := range ne.Apps {
		a, err := c.resolveApp(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnknownApp, err)
		}
		selected = append(selected, a)
	}
	var points []dse.ArchPoint
	if ne.PointIndices != nil {
		grid := tableIGrid()
		for _, i := range ne.PointIndices {
			points = append(points, grid[i]) // normalized: in range
		}
	}

	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()

	opts := dse.Options{
		Apps:         selected,
		Points:       points,
		SampleInstrs: ne.Sample,
		WarmupInstrs: ne.Warmup,
		Workers:      c.opts.SweepWorkers,
		Seed:         ne.Seed,
		Replay:       c.replayOf(ne),
		Artifacts:    c.artifacts(),
	}

	var cached atomic.Int64
	flush := func() error { return nil }
	if c.st != nil {
		keyOf := func(app string, p dse.ArchPoint) string {
			return nodeKey(ne, app, c.customProfile(app), archOfPoint(p), nil)
		}
		flush = store.Bind(c.st, keyOf, &opts, ne.Recompute)
	}
	// Decorate the store wiring with the client counters and the observer.
	// The runner invokes Lookup/OnMeasurement concurrently from workers;
	// the Observer contract promises serialized callbacks, so the
	// Measurement delivery takes a lock.
	var obsMu sync.Mutex
	deliver := func(m Measurement) {
		if watch.Measurement == nil {
			return
		}
		obsMu.Lock()
		watch.Measurement(m)
		obsMu.Unlock()
	}
	if lookup := opts.Lookup; lookup != nil {
		opts.Lookup = func(app string, p dse.ArchPoint) (Measurement, bool) {
			m, ok := lookup(app, p)
			if ok {
				cached.Add(1)
				c.storeHits.Add(1)
				deliver(m)
			} else {
				c.storeMisses.Add(1)
			}
			return m, ok
		}
	}
	checkpoint := opts.OnMeasurement
	opts.OnMeasurement = func(m Measurement) {
		c.simulated.Add(1)
		if checkpoint != nil {
			checkpoint(m)
		}
		deliver(m)
	}
	if watch.Progress != nil {
		opts.Progress = func(done, total int) {
			watch.Progress(done, total, int(cached.Load()))
		}
	}

	d := dse.Run(ctx, opts)
	res := &Result{Kind: KindSweep, Sweep: d}
	if err := ctx.Err(); err != nil {
		// A checkpoint write failure must not mask the cancellation (or
		// vice versa): callers branch on errors.Is(err, context.Canceled)
		// to treat the dataset as a resumable partial.
		return res, fmt.Errorf("musa: sweep canceled with %d of the measurements: %w",
			len(d.Measurements), errors.Join(err, flush()))
	}
	return res, flush()
}

// runFullApp runs detailed mode end to end under a job slot.
func (c *Client) runFullApp(ctx context.Context, ne Experiment) (*Result, error) {
	app, err := c.resolveApp(ne.App)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownApp, err)
	}
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()
	p, _ := ne.Arch.toPoint() // normalized: valid
	model, _ := net.ByName(ne.Network)
	cfg := p.NodeConfig(ne.Sample, ne.Warmup, ne.Seed)
	full, err := core.DetailedFullAppCtx(ctx, app, cfg, ne.Ranks, model)
	if err != nil {
		return nil, fmt.Errorf("musa: full-app run canceled: %w", err)
	}
	c.simulated.Add(1)
	return &Result{Kind: KindFullApp, FullApp: &full}, nil
}

// runScaling runs the burst-mode §V-A analysis under a job slot: the
// hardware-agnostic region speedups and the whole-application scaling
// including MPI overheads.
func (c *Client) runScaling(ctx context.Context, ne Experiment) (*Result, error) {
	app, err := c.resolveApp(ne.App)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownApp, err)
	}
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()
	model, _ := net.ByName(ne.Network)
	bopts := core.DefaultBurstOptions()
	bopts.Seed = ne.Seed
	region := core.RegionScaling(app, ne.CoreCounts, bopts)
	full, err := core.FullAppScalingCtx(ctx, app, ne.Ranks, ne.CoreCounts, model, bopts)
	if err != nil {
		return nil, fmt.Errorf("musa: scaling run canceled: %w", err)
	}
	c.simulated.Add(1)
	return &Result{Kind: KindScaling, RegionSpeedups: region, Scaling: full}, nil
}

// RegisterMetrics re-registers the client's counters — and its store and
// artifact caches' — as scrape-time metrics in reg (nil = the process
// default registry), so one GET /metrics (or one -metrics dump) sees the
// whole pipeline. Registering a second client under the same registry
// replaces the first: one process scrapes one client.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.DefaultRegistry()
	}
	stat := func(f func(ClientStats) int64) func() float64 {
		return func() float64 { return float64(f(c.Stats())) }
	}
	reg.CounterFunc("musa_client_requests_total", "Experiments run by the client.",
		stat(func(s ClientStats) int64 { return s.Requests }))
	reg.CounterFunc("musa_client_simulated_total", "Measurements computed in this process.",
		stat(func(s ClientStats) int64 { return s.Simulated }))
	reg.CounterFunc("musa_client_coalesced_total", "Node experiments coalesced onto identical in-flight computations.",
		stat(func(s ClientStats) int64 { return s.Coalesced }))
	reg.CounterFunc("musa_client_remote_total", "Measurements computed by fleet workers.",
		stat(func(s ClientStats) int64 { return s.Remote }))
	reg.CounterFunc("musa_client_redispatched_total", "Fleet shards re-dispatched onto the local pool.",
		stat(func(s ClientStats) int64 { return s.Redispatched }))
	reg.CounterFunc("musa_client_artifacts_pushed_total", "Artifacts shipped to fleet workers ahead of shards.",
		stat(func(s ClientStats) int64 { return s.ArtifactsPushed }))
	reg.CounterFunc("musa_client_shard_retries_total", "429-shed shard dispatches retried after Retry-After.",
		stat(func(s ClientStats) int64 { return s.ShardRetries }))
	reg.CounterFunc("musa_ring_artifact_fetch_total", "Ring peer artifact fetches by outcome.",
		stat(func(s ClientStats) int64 { return s.PeerArtifactsFetched }), obs.L("result", "hit"))
	reg.CounterFunc("musa_ring_artifact_fetch_total", "Ring peer artifact fetches by outcome.",
		stat(func(s ClientStats) int64 { return s.PeerArtifactMisses }), obs.L("result", "miss"))
	reg.CounterFunc("musa_ring_artifact_replicated_total", "Artifacts replicated to their ring owners.",
		stat(func(s ClientStats) int64 { return s.PeerArtifactsReplicated }))
	reg.GaugeFunc("musa_jobs_in_flight", "Simulation jobs currently holding a pool slot.",
		func() float64 { return float64(len(c.sem)) })
	reg.GaugeFunc("musa_jobs_max", "Concurrent-job bound of the pool (the /capacity advertisement).",
		func() float64 { return float64(cap(c.sem)) })

	reg.CounterFunc("musa_opt_probes_total", "Optimize-search probes dispatched, by fidelity rung class.",
		func() float64 { return float64(c.optProbesCheap.Load()) }, obs.L("fidelity", "cheap"))
	reg.CounterFunc("musa_opt_probes_total", "Optimize-search probes dispatched, by fidelity rung class.",
		func() float64 { return float64(c.optProbesFull.Load()) }, obs.L("fidelity", "full"))
	c.optRungHist.Store(reg.Histogram("musa_opt_rung_seconds",
		"Wall time of each completed successive-halving rung.", obs.DurationBuckets()))

	reg.CounterFunc("musa_store_hits_total", "Measurements served from the result store.",
		stat(func(s ClientStats) int64 { return s.StoreHits }))
	reg.CounterFunc("musa_store_misses_total", "Result-store lookups that found nothing.",
		stat(func(s ClientStats) int64 { return s.StoreMisses }))
	reg.GaugeFunc("musa_store_entries", "Measurements in the result store.",
		func() float64 { return float64(c.storeSnapshot().Len) })

	// LSM engine internals: memtable occupancy, segment shape, bloom-filter
	// effectiveness, and maintenance activity. All read the engine's counter
	// snapshot at scrape time; zero without a CacheDir.
	eng := func(f func(lsm.Stats) float64) func() float64 {
		return func() float64 { return f(c.storeSnapshot().Engine) }
	}
	reg.GaugeFunc("musa_lsm_memtable_bytes", "Payload bytes buffered in the engine memtable.",
		eng(func(s lsm.Stats) float64 { return float64(s.MemtableBytes) }))
	reg.GaugeFunc("musa_lsm_memtable_keys", "Keys buffered in the engine memtable.",
		eng(func(s lsm.Stats) float64 { return float64(s.MemtableKeys) }))
	reg.GaugeFunc("musa_lsm_segment_bytes", "Total bytes across live segment files.",
		eng(func(s lsm.Stats) float64 { return float64(s.SegmentBytes) }))
	// Size tiers are log4 of segment bytes over 1 MiB; tier 7 covers
	// everything beyond 16 GiB, far past any store this models.
	for tier := 0; tier <= 7; tier++ {
		t := tier
		reg.GaugeFunc("musa_lsm_segments", "Live segments by size tier.",
			eng(func(s lsm.Stats) float64 { return float64(s.SegmentsPerTier[t]) }),
			obs.L("tier", fmt.Sprintf("%d", t)))
	}
	reg.CounterFunc("musa_lsm_bloom_checks_total", "Per-segment bloom filter probes.",
		eng(func(s lsm.Stats) float64 { return float64(s.BloomChecks) }))
	reg.CounterFunc("musa_lsm_bloom_rejects_total", "Bloom probes that skipped a segment without I/O.",
		eng(func(s lsm.Stats) float64 { return float64(s.BloomRejects) }))
	reg.CounterFunc("musa_lsm_bloom_false_positives_total", "Bloom passes that paid a block read and found nothing.",
		eng(func(s lsm.Stats) float64 { return float64(s.BloomFalsePositives) }))
	reg.GaugeFunc("musa_lsm_bloom_fp_rate", "Observed bloom false-positive rate (false positives over checks).",
		eng(func(s lsm.Stats) float64 {
			if s.BloomChecks == 0 {
				return 0
			}
			return float64(s.BloomFalsePositives) / float64(s.BloomChecks)
		}))
	reg.CounterFunc("musa_lsm_segment_reads_total", "Segment data-block reads (one pread + decompress each).",
		eng(func(s lsm.Stats) float64 { return float64(s.SegmentReads) }))
	reg.CounterFunc("musa_lsm_block_cache_hits_total", "Point reads served an inflated block from the cache.",
		eng(func(s lsm.Stats) float64 { return float64(s.BlockCacheHits) }))
	reg.CounterFunc("musa_lsm_block_cache_misses_total", "Point reads that had to pread and inflate a block.",
		eng(func(s lsm.Stats) float64 { return float64(s.BlockCacheMiss) }))
	reg.GaugeFunc("musa_lsm_block_cache_bytes", "Inflated block bytes resident in the cache.",
		eng(func(s lsm.Stats) float64 { return float64(s.BlockCacheBytes) }))
	reg.CounterFunc("musa_lsm_flushes_total", "Memtable flushes to segment files.",
		eng(func(s lsm.Stats) float64 { return float64(s.Flushes) }))
	reg.CounterFunc("musa_lsm_compactions_total", "Completed segment compactions.",
		eng(func(s lsm.Stats) float64 { return float64(s.Compactions) }))
	reg.CounterFunc("musa_lsm_wal_bytes_total", "Bytes appended to the write-ahead log.",
		eng(func(s lsm.Stats) float64 { return float64(s.WALBytes) }))
	c.compHist.Store(reg.Histogram("musa_lsm_compaction_seconds",
		"Duration of each segment compaction.", obs.DurationBuckets()))

	kinds := []struct {
		kind string
		get  func(ArtifactStats) store.ArtifactKindStats
	}{
		{string(dse.ArtifactHitRates), func(s ArtifactStats) store.ArtifactKindStats { return s.HitRates }},
		{string(dse.ArtifactLatencyModel), func(s ArtifactStats) store.ArtifactKindStats { return s.LatencyModels }},
		{string(dse.ArtifactBurst), func(s ArtifactStats) store.ArtifactKindStats { return s.Bursts }},
	}
	for _, k := range kinds {
		get := k.get
		reg.CounterFunc("musa_artifact_hits_total", "Artifact-cache hits by kind.",
			func() float64 { return float64(get(c.artifactsSnapshot().Stats).Hits) }, obs.L("kind", k.kind))
		reg.CounterFunc("musa_artifact_misses_total", "Artifact-cache misses by kind.",
			func() float64 { return float64(get(c.artifactsSnapshot().Stats).Misses) }, obs.L("kind", k.kind))
		reg.CounterFunc("musa_artifact_puts_total", "Artifacts stored by kind.",
			func() float64 { return float64(get(c.artifactsSnapshot().Stats).Puts) }, obs.L("kind", k.kind))
	}
	reg.CounterFunc("musa_artifact_bytes_total", "Encoded artifact blob traffic.",
		func() float64 { return float64(c.artifactsSnapshot().Stats.BytesRead) }, obs.L("direction", "read"))
	reg.CounterFunc("musa_artifact_bytes_total", "Encoded artifact blob traffic.",
		func() float64 { return float64(c.artifactsSnapshot().Stats.BytesWritten) }, obs.L("direction", "written"))
	reg.GaugeFunc("musa_artifact_entries", "Distinct artifacts held by the cache.",
		func() float64 { return float64(c.artifactsSnapshot().Stats.Entries) })
}

// runUnconventional simulates the Table II configurations under a job slot.
func (c *Client) runUnconventional(ctx context.Context, ne Experiment) (*Result, error) {
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	defer c.release()
	rows := dse.Unconventional(ne.Sample, ne.Warmup, ne.Seed)
	c.simulated.Add(1)
	return &Result{Kind: KindUnconventional, Unconventional: rows}, nil
}
