package musa

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"musa/internal/apps"
	"musa/internal/net"
	"musa/internal/store"
)

// Kind selects the simulation scenario of an Experiment — the paper's
// methodology stages exposed as one request vocabulary.
type Kind string

const (
	// KindNode is one detailed node-level measurement (plus the cluster
	// replay stage unless disabled): the unit every figure aggregates.
	KindNode Kind = "node"
	// KindFullApp is detailed mode end to end: node simulation plus the
	// cross-rank MPI replay with system-level power/energy.
	KindFullApp Kind = "full-app"
	// KindScaling is the burst-mode (hardware-agnostic) §V-A analysis:
	// compute-region speedups and whole-application scaling incl. MPI.
	KindScaling Kind = "scaling"
	// KindSweep is the Table I design-space exploration (or a subset).
	KindSweep Kind = "sweep"
	// KindUnconventional simulates the Table II application-specific
	// configurations against their DSE-Best baselines.
	KindUnconventional Kind = "unconventional"
	// KindOptimize is a successive-halving multi-fidelity search over the
	// Table I grid (or a PointIndices subset): cheap probes first, survivors
	// promoted to full fidelity, a Pareto frontier over (time, energy, EDP)
	// as the result. Configured by the nested OptimizeSpec.
	KindOptimize Kind = "optimize"
)

// Typed request-validation errors. Every one of them wraps ErrExperiment,
// so callers can classify any invalid request with
// errors.Is(err, musa.ErrExperiment) (the HTTP layer maps that onto 400)
// and still discriminate the specific failure.
var (
	// ErrExperiment is the root of every experiment-validation error.
	ErrExperiment = errors.New("musa: invalid experiment")
	// ErrBadKind reports an unknown experiment kind.
	ErrBadKind = fmt.Errorf("%w: unknown kind", ErrExperiment)
	// ErrUnknownApp reports an unresolvable application name.
	ErrUnknownApp = fmt.Errorf("%w: unknown application", ErrExperiment)
	// ErrBadArch reports invalid architecture knobs.
	ErrBadArch = fmt.Errorf("%w: bad architecture", ErrExperiment)
	// ErrBadPoint reports a design-space index outside the Table I grid.
	ErrBadPoint = fmt.Errorf("%w: bad point index", ErrExperiment)
	// ErrBadReplayRanks reports an invalid cluster-replay rank list.
	ErrBadReplayRanks = fmt.Errorf("%w: bad replay ranks", ErrExperiment)
	// ErrBadRanks reports an invalid full-app/scaling MPI rank count.
	ErrBadRanks = fmt.Errorf("%w: bad rank count", ErrExperiment)
	// ErrBadNetwork reports an unknown interconnect scenario name.
	ErrBadNetwork = fmt.Errorf("%w: bad network", ErrExperiment)
	// ErrBadCoreCounts reports an invalid scaling core-count axis.
	ErrBadCoreCounts = fmt.Errorf("%w: bad core counts", ErrExperiment)
	// ErrBadFidelity reports invalid sample/warmup sizes.
	ErrBadFidelity = fmt.Errorf("%w: bad fidelity", ErrExperiment)
	// ErrBadOptimize reports an invalid or misplaced optimize sub-spec.
	ErrBadOptimize = fmt.Errorf("%w: bad optimize spec", ErrExperiment)
	// ErrSpecConflict reports a nested sub-spec (Replay) disagreeing with
	// the legacy flat aliases of the same fields.
	ErrSpecConflict = fmt.Errorf("%w: conflicting spec aliases", ErrExperiment)
)

// Experiment is the one canonical request type of the MUSA-Go pipeline:
// node measurements, detailed full-application runs, burst-mode scaling
// studies, design-space sweeps and the Table II unconventional
// configurations are all expressed as an Experiment and executed through
// Client.Run / Client.RunStream. The zero value plus Kind, App and Arch is
// a valid node experiment; Normalize applies defaults and Validate reports
// typed errors (ErrUnknownApp, ErrBadArch, ...) instead of panicking.
//
// The JSON tags are the wire form of the HTTP API ("arch" also decodes from
// the legacy "point" key via UnmarshalJSON).
type Experiment struct {
	// Kind selects the scenario ("" = KindNode).
	Kind Kind `json:"kind,omitempty"`

	// App names the application of a node / full-app / scaling experiment:
	// one of the five built-ins, or a profile registered on the Client.
	App string `json:"app,omitempty"`
	// Apps restricts a sweep (nil = all five built-ins). For sweeps, App is
	// accepted as a single-entry shorthand.
	Apps []string `json:"apps,omitempty"`

	// Arch is the node architecture of a node / full-app experiment.
	Arch *Arch `json:"arch,omitempty"`
	// PointIndex addresses the architecture by its Table I grid index
	// instead of explicit knobs (exactly one of Arch / PointIndex).
	PointIndex *int `json:"pointIndex,omitempty"`
	// PointIndices restricts a sweep to a subset of the Table I grid
	// (nil = the full 864-point grid).
	PointIndices []int `json:"pointIndices,omitempty"`

	// Sample / Warmup are the detailed-sample fidelity knobs in micro-ops
	// (0 = package defaults, picking up Client defaults first).
	Sample int64 `json:"sample,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`
	// Seed drives deterministic trace synthesis (0 = 1).
	Seed uint64 `json:"seed,omitempty"`

	// Ranks is the MPI rank count of a full-app or scaling experiment
	// (0 = 256, the paper's full-application scale).
	Ranks int `json:"ranks,omitempty"`
	// CoreCounts is the per-node core-count axis of a scaling experiment
	// (nil = 1, 32, 64).
	CoreCounts []int `json:"coreCounts,omitempty"`

	// ReplayRanks are the cluster-replay rank counts attached to node and
	// sweep measurements (nil = 64 and 256; an explicit empty list means
	// node-only, like NoReplay). Flat alias of Replay.Ranks.
	ReplayRanks []int `json:"replayRanks,omitempty"`
	// NoReplay disables the cluster replay stage of node/sweep experiments.
	// Flat alias of Replay.Disable.
	NoReplay bool `json:"noReplay,omitempty"`
	// Network names the interconnect scenario: "mn4", "hdr200" or "eth10"
	// ("" = "mn4"). It drives the cluster replay of node/sweep experiments
	// and the whole replay of full-app/scaling ones. Flat alias of
	// Replay.Network.
	Network string `json:"network,omitempty"`

	// Replay is the nested replay sub-spec — the preferred spelling of the
	// flat ReplayRanks / NoReplay / Network aliases above. Normalize keeps
	// both in sync (and rejects a nested spec that contradicts explicitly
	// set flat fields with ErrSpecConflict), so either spelling produces
	// the same canonical encoding and store key.
	Replay *ReplaySpec `json:"replay,omitempty"`
	// Optimize configures a KindOptimize experiment's successive-halving
	// search (nil on that kind = all defaults; rejected on every other).
	Optimize *OptimizeSpec `json:"optimize,omitempty"`

	// Recompute forces fresh simulation even for stored results (the fresh
	// measurements overwrite the store). It is an execution hint: it does
	// not participate in the canonical encoding or the store key.
	Recompute bool `json:"recompute,omitempty"`
}

// experimentWire mirrors Experiment for decoding, adding the legacy "point"
// alias the pre-v1 HTTP API used for the architecture spec.
type experimentWire struct {
	Kind         Kind   `json:"kind"`
	App          string `json:"app"`
	Apps         []string
	Arch         *Arch `json:"arch"`
	Point        *Arch `json:"point"`
	PointIndex   *int  `json:"pointIndex"`
	PointIndices []int
	Sample       int64
	Warmup       int64
	Seed         uint64
	Ranks        int
	CoreCounts   []int
	ReplayRanks  []int
	NoReplay     bool
	Network      string
	Replay       *ReplaySpec
	Optimize     *OptimizeSpec
	Recompute    bool
}

// UnmarshalJSON decodes the wire form, accepting "point" as an alias for
// "arch" (the pre-v1 /simulate spelling).
func (e *Experiment) UnmarshalJSON(b []byte) error {
	var w experimentWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	arch := w.Arch
	if arch == nil {
		arch = w.Point
	} else if w.Point != nil {
		return fmt.Errorf("%w: give either arch or point, not both", ErrBadArch)
	}
	*e = Experiment{
		Kind: w.Kind, App: w.App, Apps: w.Apps,
		Arch: arch, PointIndex: w.PointIndex, PointIndices: w.PointIndices,
		Sample: w.Sample, Warmup: w.Warmup, Seed: w.Seed,
		Ranks: w.Ranks, CoreCounts: w.CoreCounts,
		ReplayRanks: w.ReplayRanks, NoReplay: w.NoReplay, Network: w.Network,
		Replay: w.Replay, Optimize: w.Optimize,
		Recompute: w.Recompute,
	}
	return nil
}

// appResolver maps an application name onto its profile; the package-level
// resolver knows the five built-ins, a Client's resolver adds registered
// custom applications.
type appResolver func(name string) (*Application, error)

func builtinApps(name string) (*Application, error) { return apps.ByName(name) }

// Normalize validates the experiment and returns its canonical form:
// defaults applied, lists sorted and deduplicated, PointIndex resolved into
// Arch, and fields irrelevant to the kind rejected. All errors wrap
// ErrExperiment and one of the typed causes (ErrUnknownApp, ErrBadArch,
// ErrBadReplayRanks, ...). Two experiments with equal normalized forms are
// the same experiment — the canonical encoding (and therefore the result
// store key) is derived from it.
func (e Experiment) Normalize() (Experiment, error) {
	return e.normalize(builtinApps)
}

// Validate reports whether the experiment is well-formed without returning
// the normalized form.
func (e Experiment) Validate() error {
	_, err := e.Normalize()
	return err
}

func (e Experiment) normalize(resolve appResolver) (Experiment, error) {
	if e.Kind == "" {
		e.Kind = KindNode
	}
	switch e.Kind {
	case KindNode, KindFullApp, KindScaling, KindSweep, KindUnconventional, KindOptimize:
	default:
		return Experiment{}, fmt.Errorf("%w %q (valid: %s, %s, %s, %s, %s, %s)",
			ErrBadKind, e.Kind, KindNode, KindFullApp, KindScaling, KindSweep, KindUnconventional, KindOptimize)
	}

	// Fold the nested replay sub-spec into the flat alias fields the rest
	// of normalization (and the canonical encoding) works on. A flat field
	// that was set explicitly must agree with the nested spelling.
	if e.Replay != nil {
		r := *e.Replay
		if e.ReplayRanks != nil && !slices.Equal(e.ReplayRanks, r.Ranks) {
			return Experiment{}, fmt.Errorf("%w: ReplayRanks %v vs Replay.Ranks %v", ErrSpecConflict, e.ReplayRanks, r.Ranks)
		}
		if e.NoReplay && !r.Disable {
			return Experiment{}, fmt.Errorf("%w: NoReplay set but Replay.Disable is not", ErrSpecConflict)
		}
		if e.Network != "" && r.Network != "" && e.Network != r.Network {
			return Experiment{}, fmt.Errorf("%w: Network %q vs Replay.Network %q", ErrSpecConflict, e.Network, r.Network)
		}
		if r.Ranks != nil {
			e.ReplayRanks = r.Ranks
		}
		e.NoReplay = e.NoReplay || r.Disable
		if r.Network != "" {
			e.Network = r.Network
		}
	}

	// Fidelity knobs are kind-independent.
	if e.Sample < 0 || e.Warmup < 0 {
		return Experiment{}, fmt.Errorf("%w: negative sample/warmup (%d/%d)",
			ErrBadFidelity, e.Sample, e.Warmup)
	}
	if e.Seed == 0 {
		e.Seed = 1
	}

	// Application resolution. An optimize search targets one application:
	// its probes answer a question about that app, not a cross-app survey.
	switch e.Kind {
	case KindNode, KindFullApp, KindScaling, KindOptimize:
		if len(e.Apps) > 0 {
			return Experiment{}, fmt.Errorf("%w: %s experiments take App, not Apps", ErrExperiment, e.Kind)
		}
		if e.App == "" {
			return Experiment{}, fmt.Errorf("%w: missing App", ErrUnknownApp)
		}
		if _, err := resolve(e.App); err != nil {
			return Experiment{}, fmt.Errorf("%w: %v", ErrUnknownApp, err)
		}
	case KindSweep:
		if e.App != "" {
			if e.Apps != nil {
				return Experiment{}, fmt.Errorf("%w: sweep takes App or Apps, not both", ErrExperiment)
			}
			e.Apps, e.App = []string{e.App}, ""
		}
		for _, name := range e.Apps {
			if _, err := resolve(name); err != nil {
				return Experiment{}, fmt.Errorf("%w: %v", ErrUnknownApp, err)
			}
		}
		if e.Apps != nil {
			e.Apps = append([]string(nil), e.Apps...)
			sort.Strings(e.Apps)
			e.Apps = slices.Compact(e.Apps)
		}
	case KindUnconventional:
		if e.App != "" || e.Apps != nil {
			return Experiment{}, fmt.Errorf("%w: unconventional experiments simulate the fixed Table II set; drop App/Apps", ErrExperiment)
		}
	}

	// Architecture resolution.
	switch e.Kind {
	case KindNode, KindFullApp:
		switch {
		case e.Arch != nil && e.PointIndex != nil:
			return Experiment{}, fmt.Errorf("%w: give either Arch or PointIndex, not both", ErrBadArch)
		case e.PointIndex != nil:
			a, err := PointArch(*e.PointIndex)
			if err != nil {
				return Experiment{}, err
			}
			e.Arch, e.PointIndex = &a, nil
		case e.Arch == nil:
			return Experiment{}, fmt.Errorf("%w: missing Arch or PointIndex", ErrBadArch)
		}
		if _, err := e.Arch.toPoint(); err != nil {
			return Experiment{}, err
		}
		a := *e.Arch // canonical form owns its copy
		e.Arch = &a
		if e.PointIndices != nil {
			return Experiment{}, fmt.Errorf("%w: PointIndices is a sweep field", ErrBadPoint)
		}
	case KindSweep, KindOptimize:
		if e.Arch != nil || e.PointIndex != nil {
			return Experiment{}, fmt.Errorf("%w: %s experiments take PointIndices, not Arch/PointIndex", ErrBadArch, e.Kind)
		}
		if e.PointIndices != nil {
			if len(e.PointIndices) == 0 {
				return Experiment{}, fmt.Errorf("%w: empty PointIndices (nil means the full grid)", ErrBadPoint)
			}
			idx := append([]int(nil), e.PointIndices...)
			slices.Sort(idx)
			idx = slices.Compact(idx)
			for _, i := range idx {
				if _, err := PointArch(i); err != nil {
					return Experiment{}, err
				}
			}
			e.PointIndices = idx
		}
	default:
		if e.Arch != nil || e.PointIndex != nil || e.PointIndices != nil {
			return Experiment{}, fmt.Errorf("%w: %s experiments take no architecture", ErrBadArch, e.Kind)
		}
	}

	// MPI rank count and core-count axis.
	switch e.Kind {
	case KindFullApp, KindScaling:
		if e.Ranks == 0 {
			e.Ranks = 256
		}
		if e.Ranks < 2 || e.Ranks > MaxReplayRanks {
			return Experiment{}, fmt.Errorf("%w: %d ranks out of range [2, %d]",
				ErrBadRanks, e.Ranks, MaxReplayRanks)
		}
	default:
		if e.Ranks != 0 {
			return Experiment{}, fmt.Errorf("%w: Ranks applies to %s and %s experiments",
				ErrBadRanks, KindFullApp, KindScaling)
		}
	}
	if e.Kind == KindScaling {
		if e.CoreCounts == nil {
			e.CoreCounts = []int{1, 32, 64}
		}
		if len(e.CoreCounts) == 0 || len(e.CoreCounts) > 16 {
			return Experiment{}, fmt.Errorf("%w: %d core counts (want 1-16)",
				ErrBadCoreCounts, len(e.CoreCounts))
		}
		for _, c := range e.CoreCounts {
			if c < 1 || c > 1024 {
				return Experiment{}, fmt.Errorf("%w: core count %d out of range [1, 1024]",
					ErrBadCoreCounts, c)
			}
		}
		e.CoreCounts = append([]int(nil), e.CoreCounts...)
	} else if e.CoreCounts != nil {
		return Experiment{}, fmt.Errorf("%w: CoreCounts is a scaling field", ErrBadCoreCounts)
	}

	// Replay configuration and network. Optimize experiments carry the
	// full-fidelity (final-rung) replay configuration: cheap rungs drop the
	// replay stage on their own, and the final rung reuses these fields
	// verbatim so its probes share store keys with an equivalent sweep.
	switch e.Kind {
	case KindNode, KindSweep, KindOptimize:
		if e.ReplayRanks != nil && len(e.ReplayRanks) == 0 {
			// An explicit empty list means node-only, like NoReplay.
			e.NoReplay, e.ReplayRanks = true, nil
		}
		if e.NoReplay {
			e.ReplayRanks, e.Network = nil, ""
			break
		}
		if e.ReplayRanks == nil {
			e.ReplayRanks = DefaultReplayRanks()
		} else {
			if err := ValidateReplayRanks(e.ReplayRanks); err != nil {
				return Experiment{}, fmt.Errorf("%w: %v", ErrBadReplayRanks, err)
			}
			ranks := append([]int(nil), e.ReplayRanks...)
			slices.Sort(ranks)
			e.ReplayRanks = slices.Compact(ranks)
		}
		if e.Network == "" {
			e.Network = "mn4"
		}
		if _, err := net.ByName(e.Network); err != nil {
			return Experiment{}, fmt.Errorf("%w: %v", ErrBadNetwork, err)
		}
	case KindFullApp, KindScaling:
		if e.ReplayRanks != nil || e.NoReplay {
			return Experiment{}, fmt.Errorf("%w: %s experiments replay at Ranks; drop ReplayRanks/NoReplay",
				ErrBadReplayRanks, e.Kind)
		}
		if e.Network == "" {
			e.Network = "mn4"
		}
		if _, err := net.ByName(e.Network); err != nil {
			return Experiment{}, fmt.Errorf("%w: %v", ErrBadNetwork, err)
		}
	case KindUnconventional:
		if e.ReplayRanks != nil || e.NoReplay || e.Network != "" {
			return Experiment{}, fmt.Errorf("%w: unconventional experiments take no replay configuration", ErrBadReplayRanks)
		}
	}

	// Optimize sub-spec: validated and materialized on KindOptimize,
	// rejected everywhere else.
	if e.Kind == KindOptimize {
		spec := e.Optimize
		if spec == nil {
			spec = &OptimizeSpec{}
		}
		n := len(e.PointIndices)
		if n == 0 {
			n = PointCount()
		}
		ns, err := spec.normalized(n)
		if err != nil {
			return Experiment{}, err
		}
		e.Optimize = ns
	} else if e.Optimize != nil {
		return Experiment{}, fmt.Errorf("%w: Optimize applies to %s experiments only", ErrBadOptimize, KindOptimize)
	}

	// The normalized form carries the nested replay spelling alongside the
	// flat alias fields, mirroring them exactly (Normalize is idempotent:
	// re-folding an equal mirror is a no-op).
	switch e.Kind {
	case KindNode, KindSweep, KindOptimize:
		e.Replay = &ReplaySpec{Ranks: e.ReplayRanks, Disable: e.NoReplay, Network: e.Network}
	case KindFullApp, KindScaling:
		e.Replay = &ReplaySpec{Network: e.Network}
	default:
		e.Replay = nil
	}

	return e, nil
}

// canonicalExperiment is the deterministic encoding of a normalized
// experiment: fixed field order, defaults made explicit, the network
// resolved to its model (so renamed scenarios with identical parameters
// address the same results), and a registered custom application embedded
// by content. Its SHA-256 is the result-store key (schema v3).
type canonicalExperiment struct {
	V            int           `json:"v"`
	Kind         Kind          `json:"kind"`
	App          string        `json:"app,omitempty"`
	CustomApp    *apps.Profile `json:"customApp,omitempty"`
	Apps         []string      `json:"apps,omitempty"`
	Arch         *Arch         `json:"arch,omitempty"`
	PointIndices []int         `json:"pointIndices,omitempty"`
	Sample       int64         `json:"sample,omitempty"`
	Warmup       int64         `json:"warmup,omitempty"`
	Seed         uint64        `json:"seed"`
	Ranks        int           `json:"ranks,omitempty"`
	CoreCounts   []int         `json:"coreCounts,omitempty"`
	ReplayRanks  []int         `json:"replayRanks,omitempty"`
	Network      *net.Model    `json:"network,omitempty"`
	NoReplay     bool          `json:"noReplay,omitempty"`
	// Optimize is only set on KindOptimize experiments (nil elsewhere and
	// omitted, so the encodings — and store keys — of every pre-existing
	// kind are byte-identical to schema v3 before the field existed).
	Optimize *OptimizeSpec `json:"optimize,omitempty"`
}

// CanonicalJSON returns the canonical encoding of the experiment: the
// normalized form marshaled with a fixed field order and a schema version
// marker. The encoding is byte-stable across runs and releases of the same
// schema version (see TestExperimentKeyGolden) — it is what Key hashes.
func (e Experiment) CanonicalJSON() ([]byte, error) {
	ne, err := e.Normalize()
	if err != nil {
		return nil, err
	}
	return ne.canonicalJSON(nil, nil)
}

// canonicalJSON encodes an already-normalized experiment. custom carries
// the registered profile when App is not a built-in (Client fills it);
// model overrides the name-resolved network (the deprecated RunSweep path
// accepts arbitrary models).
func (e Experiment) canonicalJSON(custom *apps.Profile, model *net.Model) ([]byte, error) {
	c := canonicalExperiment{
		V:    store.SchemaVersion,
		Kind: e.Kind,
		App:  e.App, CustomApp: custom, Apps: e.Apps,
		Arch: e.Arch, PointIndices: e.PointIndices,
		Sample: e.Sample, Warmup: e.Warmup, Seed: e.Seed,
		Ranks: e.Ranks, CoreCounts: e.CoreCounts,
		ReplayRanks: e.ReplayRanks, NoReplay: e.NoReplay,
		Optimize: e.Optimize,
	}
	switch {
	case model != nil:
		c.Network = model
	case e.Network != "":
		m, err := net.ByName(e.Network)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
		}
		c.Network = &m
	}
	b, err := json.Marshal(c)
	if err != nil {
		// canonicalExperiment is a tree of plain exported fields; Marshal
		// cannot fail.
		panic(fmt.Sprintf("musa: marshal canonical experiment: %v", err))
	}
	return b, nil
}

// Key returns the content address of the experiment: the hex SHA-256 of
// its canonical encoding. Node-experiment keys are the result-store keys;
// sweeps derive one node key per (application, point), so sweep checkpoints
// and single-point requests address the same results.
func (e Experiment) Key() (string, error) {
	b, err := e.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return hashKey(b), nil
}

func hashKey(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// nodeKey builds the store key of one measurement of a normalized node or
// sweep experiment: the canonical node experiment for (app, arch) with the
// sweep's shared fidelity and replay fields. custom is the registered
// profile when app is not a built-in; model overrides the name-resolved
// network (deprecated custom-model sweeps).
func nodeKey(e Experiment, app string, custom *apps.Profile, arch Arch, model *net.Model) string {
	ne := Experiment{
		Kind: KindNode, App: app, Arch: &arch,
		Sample: e.Sample, Warmup: e.Warmup, Seed: e.Seed,
		ReplayRanks: e.ReplayRanks, NoReplay: e.NoReplay, Network: e.Network,
	}
	b, err := ne.canonicalJSON(custom, model)
	if err != nil {
		// e is normalized, so its network name resolves.
		panic(fmt.Sprintf("musa: node key: %v", err))
	}
	return hashKey(b)
}

// SetReplayFlags parses the shared CLI replay flags — a comma-separated
// rank-count list, a no-replay switch and a network scenario name — into
// the experiment's replay fields. It is the one flag parser behind
// musa-dse and musa-serve; validation beyond syntax happens in Normalize.
func (e *Experiment) SetReplayFlags(ranksCSV string, noReplay bool, network string) error {
	ranks, err := ParseReplayRanks(ranksCSV)
	if err != nil {
		return err
	}
	e.ReplayRanks = ranks
	e.NoReplay = noReplay
	e.Network = network
	return nil
}

// parseReplayRanks is the underlying CSV parser of ParseReplayRanks, kept
// separate so the typed error wraps consistently.
func parseReplayRanks(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("%w: bad rank count %q", ErrBadReplayRanks, f)
		}
		out = append(out, n)
	}
	if err := ValidateReplayRanks(out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReplayRanks, err)
	}
	return out, nil
}
