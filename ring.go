package musa

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"musa/internal/dram"
	"musa/internal/node"
	"musa/internal/ring"
	"musa/internal/trace"
)

// This file is the client half of the horizontally scaled serve tier: the
// replica ring (re-exported from internal/ring), the route-key derivation
// that maps an experiment onto its owner replica, and the peer-artifact
// provider that lets any ring participant fetch a missing sweep artifact
// from the replica that owns its key — and replicate freshly built ones
// back to the owner — instead of recomputing. The serve layer consults the
// same ring for /simulate ownership (internal/serve), the fleet scheduler
// for shard placement (fleet.go), and cmd/musa-router for thin L7 routing,
// so every front door converges duplicate work on one machine.

// Ring is the rendezvous-hashed replica membership a serve tier shares;
// see internal/ring for ownership and health semantics.
type Ring = ring.Ring

// RingState is one member's locally observed health state.
type RingState = ring.State

// Re-exported ring health states.
const (
	RingOk         = ring.Ok
	RingOverloaded = ring.Overloaded
	RingDraining   = ring.Draining
	RingDown       = ring.Down
)

// NewRing builds a replica ring over the member base URLs. self is this
// process's own URL when it is itself a replica (musa-serve -self), empty
// for coordinators and routers that only dispatch into the ring.
func NewRing(self string, members []string) *Ring { return ring.New(self, members) }

// Ring returns the client's replica ring (nil when the client is not part
// of, or routing into, a serve tier). The serve handlers read it for
// /simulate ownership and PUT /membership updates.
func (c *Client) Ring() *Ring { return c.opts.Ring }

// RouteKey returns the content address under which the experiment is
// routed across a replica ring — for node experiments the result-store key
// itself, so a proxied request coalesces with the owner's local
// single-flight and store; for every other kind the hash of the canonical
// encoding. The key is derived after the client's defaults are applied,
// so replicas must run with identical default flags (the same operational
// contract fleet shard dispatch already relies on).
func (c *Client) RouteKey(e Experiment) (string, error) {
	ne, err := c.fill(e).normalize(c.resolveApp)
	if err != nil {
		return "", err
	}
	if ne.Kind == KindNode {
		return nodeKey(ne, ne.App, c.customProfile(ne.App), *ne.Arch, nil), nil
	}
	b, err := ne.canonicalJSON(c.customProfile(ne.App), nil)
	if err != nil {
		return "", err
	}
	return hashKey(b), nil
}

// peerArtifactWindow bounds one peer artifact transfer (either direction).
const peerArtifactWindow = time.Minute

// ringHTTPClient serves the client's peer artifact traffic; package-level
// so the idle connection pool is shared across clients in one process
// (tests boot several replicas).
var ringHTTPClient = &http.Client{}

// peerFetchArtifact pulls one artifact blob from the replicas that rank
// highest for its key, validates it and stores it in the local cache.
// Best effort with a bounded fan-out: the owner and its first fallback are
// tried, nobody else — a cold ring must degrade to local recompute, not to
// a full membership sweep per miss.
func (c *Client) peerFetchArtifact(key string) bool {
	r := c.opts.Ring
	if r == nil || c.art == nil {
		return false
	}
	order := r.Order(key)
	tried := 0
	for _, peer := range order {
		if peer == r.Self() || r.StateOf(peer) == ring.Down {
			continue
		}
		if tried++; tried > 2 {
			break
		}
		if c.fetchArtifactFrom(peer, key) {
			c.peerArtifactsFetched.Add(1)
			return true
		}
	}
	c.peerArtifactMisses.Add(1)
	return false
}

// fetchArtifactFrom GETs one artifact from a peer and stores it locally.
func (c *Client) fetchArtifactFrom(peer, key string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), peerArtifactWindow)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/artifact/"+key, nil)
	if err != nil {
		return false
	}
	resp, err := ringHTTPClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return false
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerArtifactBytes))
	if err != nil {
		return false
	}
	// PutBlob validates the envelope (schema version, kind, key match), so
	// a corrupt or mis-keyed peer reply is dropped here, never decoded into
	// a sweep.
	return c.art.PutBlob(key, blob) == nil
}

// maxPeerArtifactBytes bounds one peer artifact download, mirroring the
// serve-side PUT bound.
const maxPeerArtifactBytes = 256 << 20

// replicateArtifact pushes a freshly built artifact to the owner of its
// key, so the next replica that misses fetches it from where the ring
// says it lives. Only replicas replicate (self != ""): coordinators
// already push shard artifacts ahead of dispatch. Asynchronous and best
// effort — a lost replica push costs one future recompute, nothing else.
func (c *Client) replicateArtifact(key string) {
	r := c.opts.Ring
	if r == nil || c.art == nil || r.Self() == "" {
		return
	}
	owner := r.Owner(key)
	if owner == "" || owner == r.Self() || r.StateOf(owner) == ring.Down {
		return
	}
	blob, ok := c.art.Blob(key)
	if !ok {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), peerArtifactWindow)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner+"/artifact/"+key, bytes.NewReader(blob))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ringHTTPClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		if resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK {
			c.peerArtifactsReplicated.Add(1)
		}
	}()
}

// ringArtifacts wraps the client's artifact cache as a dse.ArtifactProvider
// that falls back to the replica ring on a local miss and replicates local
// builds to their owners: the distributed read-through / write-behind face
// of the artifact layer. The local cache stays the source of truth for the
// running sweep; peers only ever supply validated encoded blobs.
type ringArtifacts struct{ c *Client }

func (p ringArtifacts) HitRates(key string) (node.HitRateTable, bool) {
	if t, ok := p.c.art.HitRates(key); ok {
		return t, true
	}
	if p.c.peerFetchArtifact(key) {
		return p.c.art.HitRates(key)
	}
	return node.HitRateTable{}, false
}

func (p ringArtifacts) PutHitRates(key string, t node.HitRateTable) {
	p.c.art.PutHitRates(key, t)
	p.c.replicateArtifact(key)
}

func (p ringArtifacts) LatencyModel(key string) (dram.LatencyModel, bool) {
	if m, ok := p.c.art.LatencyModel(key); ok {
		return m, true
	}
	if p.c.peerFetchArtifact(key) {
		return p.c.art.LatencyModel(key)
	}
	return dram.LatencyModel{}, false
}

func (p ringArtifacts) PutLatencyModel(key string, m dram.LatencyModel) {
	p.c.art.PutLatencyModel(key, m)
	p.c.replicateArtifact(key)
}

func (p ringArtifacts) Burst(key string) (*trace.Burst, bool) {
	if b, ok := p.c.art.Burst(key); ok {
		return b, true
	}
	if p.c.peerFetchArtifact(key) {
		return p.c.art.Burst(key)
	}
	return nil, false
}

func (p ringArtifacts) PutBurst(key string, b *trace.Burst) {
	p.c.art.PutBurst(key, b)
	p.c.replicateArtifact(key)
}

// String keeps error messages readable if a provider ever leaks into one.
func (p ringArtifacts) String() string { return fmt.Sprintf("ringArtifacts(%s)", p.c.opts.Ring.Self()) }
