// Quickstart: simulate one application on one node configuration and print
// performance, cache behavior, power and energy — the minimal end-to-end
// use of the MUSA-Go public API.
package main

import (
	"fmt"
	"log"

	"musa"
)

func main() {
	// Pick one of the paper's five applications.
	app, err := musa.App("lulesh")
	if err != nil {
		log.Fatal(err)
	}

	// The mid-range reference node: 64 medium cores, 2 GHz, 128-bit SIMD,
	// 64 MB L3 / 512 kB L2, 4-channel DDR4-2333.
	arch := musa.DefaultArch()

	res := musa.SimulateNode(app, arch)

	l1, l2, l3 := res.MPKI()
	fmt.Printf("%s on %d cores @ %.1f GHz\n", app.Name, arch.Cores, arch.FreqGHz)
	fmt.Printf("  compute time     %.2f ms\n", res.ComputeNs/1e6)
	fmt.Printf("  busy cores       %.1f / %d\n", res.AvgActiveCores, arch.Cores)
	fmt.Printf("  MPKI             L1 %.1f / L2 %.2f / L3 %.2f\n", l1, l2, l3)
	fmt.Printf("  DRAM traffic     %.2f GReq/s (%.1f GB/s offered)\n",
		res.GMemReqPerSec/1e9, res.OfferedBW/1e9)
	fmt.Printf("  node power       %.1f W (%s)\n", res.Power.Total(), res.Power)
	fmt.Printf("  energy           %.1f J\n", res.EnergyJ)

	// Now the same workload with doubled memory channels — LULESH is the
	// paper's bandwidth-bound code, so this should visibly help (Fig. 8).
	arch8 := arch
	arch8.Channels = 8
	res8 := musa.SimulateNode(app, arch8)
	fmt.Printf("\nwith 8 DDR4 channels: %.2f ms (%.2fx speedup)\n",
		res8.ComputeNs/1e6, res.ComputeNs/res8.ComputeNs)
}
