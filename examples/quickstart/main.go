// Quickstart: simulate one application on one node configuration and print
// performance, cache behavior, power and energy — the minimal end-to-end
// use of the MUSA-Go public API. Every scenario is a musa.Experiment run
// through a musa.Client; invalid requests come back as typed errors, never
// panics.
package main

import (
	"context"
	"fmt"
	"log"

	"musa"
)

func main() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// The mid-range reference node: 64 medium cores, 2 GHz, 128-bit SIMD,
	// 64 MB L3 / 512 kB L2, 4-channel DDR4-2333, running one of the paper's
	// five applications.
	arch := musa.DefaultArch()
	res, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindNode, App: "lulesh", Arch: &arch, NoReplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Measurement

	fmt.Printf("%s on %d cores @ %.1f GHz\n", m.App, arch.Cores, arch.FreqGHz)
	fmt.Printf("  compute time     %.2f ms\n", m.TimeNs/1e6)
	fmt.Printf("  IPC              %.2f (sample core)\n", m.IPC)
	fmt.Printf("  busy cores       %.1f / %d\n", m.ActiveCores, arch.Cores)
	fmt.Printf("  MPKI             L1 %.1f / L2 %.2f / L3 %.2f\n", m.L1MPKI, m.L2MPKI, m.L3MPKI)
	fmt.Printf("  DRAM traffic     %.2f GReq/s (%.1f GB/s offered)\n",
		m.GMemReqPerSec/1e9, m.OfferedBW/1e9)
	fmt.Printf("  node power       %.1f W (%s)\n", m.Power.Total(), m.Power)
	fmt.Printf("  energy           %.1f J\n", m.EnergyJ)

	// Now the same workload with doubled memory channels — LULESH is the
	// paper's bandwidth-bound code, so this should visibly help (Fig. 8).
	arch8 := arch
	arch8.Channels = 8
	res8, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindNode, App: "lulesh", Arch: &arch8, NoReplay: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 8 DDR4 channels: %.2f ms (%.2fx speedup)\n",
		res8.Measurement.TimeNs/1e6, m.TimeNs/res8.Measurement.TimeNs)
}
