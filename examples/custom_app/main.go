// custom_app: model your own application and run it through the simulator.
// The workload model is fully parametric — instruction mix, vectorizable
// loop structure, memory locality, task-level parallelism and MPI pattern —
// so a new code can be characterized without any tracing infrastructure.
//
// Here we model a fictional "smoother": a memory-streaming stencil with
// good vectorization, abundant fine-grained tasks, and light communication.
// The profile is registered on a musa.Client, after which every experiment
// kind can name it like a built-in (store keys embed the profile content,
// so caching stays sound).
package main

import (
	"context"
	"fmt"
	"log"

	"musa"
	"musa/internal/apps"
	"musa/internal/cache"
)

func main() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	err = client.RegisterApplication(musa.Application{
		Name: "smoother",
		Mix: apps.Mix{
			Load: 0.30, Store: 0.10,
			FPAdd: 0.15, FPMul: 0.12, FPFMA: 0.08,
			IntALU: 0.15, Branch: 0.10,
		},
		// Long vectorizable loops: wide SIMD should pay off.
		Vector: apps.VectorProfile{VecFrac: 0.85, TripCount: 96},
		Dep:    apps.DepProfile{ChainProb: 0.4},
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 24 * 1024, Weight: 0.55, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "plane", Bytes: 300 * 1024, Weight: 0.35, Pattern: cache.Sequential, WriteFrac: 0.3},
			{Name: "grid", Bytes: 64 << 20, Weight: 0.10, Pattern: cache.Sequential, WriteFrac: 0.3},
		}},
		Regions: []apps.RegionSpec{{
			Name: "smooth", Tasks: 1024, LanesPerTask: 100000,
			ImbalanceCV: 0.08, SerialFrac: 0.002,
		}},
		Iterations: 4,
		MPI: apps.MPIPattern{
			Neighbors: 2, P2PBytes: 128 * 1024,
			AllReduces: 1, AllReduceBytes: 8,
			RankImbalanceCV: 0.08,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	node := func(arch musa.Arch) *musa.Measurement {
		res, err := client.Run(ctx, musa.Experiment{
			Kind: musa.KindNode, App: "smoother", Arch: &arch,
			Sample: 120000, Warmup: 600000, Seed: 1, NoReplay: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Measurement
	}

	base := node(musa.DefaultArch())
	fmt.Printf("baseline: %.2f ms, %.1f W, %.1f busy cores\n",
		base.TimeNs/1e6, base.Power.Total(), base.ActiveCores)

	// Which lever helps this code? Try wide SIMD vs more channels.
	wide := musa.DefaultArch()
	wide.VectorBits = 512
	channels := musa.DefaultArch()
	channels.Channels = 8

	rw := node(wide)
	rc := node(channels)
	fmt.Printf("512-bit SIMD:   %.2fx speedup, %.2fx energy\n",
		base.TimeNs/rw.TimeNs, rw.EnergyJ/base.EnergyJ)
	fmt.Printf("8 channels:     %.2fx speedup, %.2fx energy\n",
		base.TimeNs/rc.TimeNs, rc.EnergyJ/base.EnergyJ)

	// Full system run on 32 ranks.
	fres, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindFullApp, App: "smoother", Arch: &wide,
		Sample: 120000, Warmup: 600000, Seed: 1, Ranks: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	full := fres.FullApp
	fmt.Printf("32-rank run:    %.2f ms makespan, %.0f%% efficiency, %.0f J system energy\n",
		full.MakespanNs/1e6, 100*full.Replay.AvgParallelEfficiency(), full.SystemEnergyJ)
}
