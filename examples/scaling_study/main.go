// scaling_study: the paper's §V-A analysis for one application — burst-mode
// region scaling, whole-application scaling with MPI, and the two trace
// timelines (thread occupancy and rank barrier waiting). The scaling views
// come from one KindScaling experiment run through a musa.Client; the
// replay result embedded in it renders the Fig. 4 rank timeline.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/report"
	"musa/internal/rts"
)

func main() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	app, err := musa.App("spec3d")
	if err != nil {
		log.Fatal(err)
	}

	cores := []int{1, 2, 4, 8, 16, 32, 64}
	res, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindScaling, App: app.Name,
		Ranks: 64, CoreCounts: cores,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s compute-region scaling (hardware agnostic):\n", app.Name)
	for i, c := range cores {
		sp := res.RegionSpeedups[i]
		bar := ""
		for j := 0; j < int(sp); j++ {
			bar += "*"
		}
		fmt.Printf("  %3d cores: %6.2fx  %s\n", c, sp, bar)
	}

	fmt.Printf("\nfull application over 64 ranks:\n")
	for i, c := range cores {
		if c != 32 && c != 64 {
			continue
		}
		fmt.Printf("  %d cores/node: speedup %.1fx, efficiency %.0f%%, MPI %.0f%%\n",
			c, res.Scaling[i].Speedup, 100*res.Scaling[i].Efficiency, 100*res.Scaling[i].MPIFraction)
	}

	// Fig. 3 view: why efficiency is poor — most threads sit idle.
	fmt.Printf("\nthread occupancy on 64 cores (busy '#', idle '.'):\n")
	g := app.RegionGraph(0, 1)
	s := rts.Simulate(g, rts.Options{Threads: 64, DispatchNs: 100, Policy: rts.FIFOCentral})
	if err := report.WriteScheduleTimeline(os.Stdout, g, s, 64); err != nil {
		log.Fatal(err)
	}

	// Fig. 4 view: barrier waiting across ranks — a one-core scaling
	// experiment replays the raw burst trace over 32 ranks.
	fmt.Printf("\nrank timeline over 32 ranks (compute '#', MPI wait 'w'):\n")
	rres, err := client.Run(ctx, musa.Experiment{
		Kind: musa.KindScaling, App: app.Name,
		Ranks: 32, CoreCounts: []int{1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteReplayTimeline(os.Stdout, rres.Scaling[0].Replay); err != nil {
		log.Fatal(err)
	}
}
