// scaling_study: the paper's §V-A analysis for one application — burst-mode
// region scaling, whole-application scaling with MPI, and the two trace
// timelines (thread occupancy and rank barrier waiting).
package main

import (
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/core"
	"musa/internal/net"
	"musa/internal/report"
	"musa/internal/rts"
)

func main() {
	app, err := musa.App("spec3d")
	if err != nil {
		log.Fatal(err)
	}

	cores := []int{1, 2, 4, 8, 16, 32, 64}
	sp := musa.RegionScaling(app, cores)
	fmt.Printf("%s compute-region scaling (hardware agnostic):\n", app.Name)
	for i, c := range cores {
		bar := ""
		for j := 0; j < int(sp[i]); j++ {
			bar += "*"
		}
		fmt.Printf("  %3d cores: %6.2fx  %s\n", c, sp[i], bar)
	}

	full := musa.FullAppScaling(app, 64, []int{32, 64}, musa.MareNostrumNetwork())
	fmt.Printf("\nfull application over 64 ranks:\n")
	for i, c := range []int{32, 64} {
		fmt.Printf("  %d cores/node: speedup %.1fx, efficiency %.0f%%, MPI %.0f%%\n",
			c, full[i].Speedup, 100*full[i].Efficiency, 100*full[i].MPIFraction)
	}

	// Fig. 3 view: why efficiency is poor — most threads sit idle.
	fmt.Printf("\nthread occupancy on 64 cores (busy '#', idle '.'):\n")
	g := app.RegionGraph(0, 1)
	s := rts.Simulate(g, rts.Options{Threads: 64, DispatchNs: 100, Policy: rts.FIFOCentral})
	if err := report.WriteScheduleTimeline(os.Stdout, g, s, 64); err != nil {
		log.Fatal(err)
	}

	// Fig. 4 view: barrier waiting across ranks.
	fmt.Printf("\nrank timeline over 32 ranks (compute '#', MPI wait 'w'):\n")
	b := core.SampleBurst(app, 32, 1)
	res := net.Replay(b, net.MareNostrum4(), nil)
	if err := report.WriteReplayTimeline(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
}
