// design_sweep: a focused mini design-space exploration over SIMD width and
// cache configuration for two applications, printing the normalized
// speedup/energy bars exactly as the full Fig. 5 / Fig. 6 harness does —
// but small enough to run in seconds.
package main

import (
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/report"
)

func main() {
	d, err := musa.RunSweep(musa.SweepOptions{
		AppNames:     []string{"spmz", "lulesh"},
		SampleInstrs: 80000,
		WarmupInstrs: 400000,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, f := range []struct {
		name string
		feat musa.Feature
	}{
		{"FPU vector width (Fig. 5 mini)", musa.FeatVector},
		{"cache configuration (Fig. 6 mini)", musa.FeatCache},
	} {
		t := report.NewTable(f.name, "app", "value", "speedup", "energy ratio")
		perf := musa.SpeedupBars(d, f.feat, 64)
		energy := musa.EnergyBars(d, f.feat, 64)
		for i := range perf {
			t.AddRow(perf[i].App, perf[i].Value, perf[i].Mean, energy[i].Mean)
		}
		if err := t.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: spmz gains from wide SIMD, lulesh does not;")
	fmt.Println("lulesh/spmz cache sensitivity is modest compared to hydro's.")
}
