// design_sweep: a focused mini design-space exploration over SIMD width and
// cache configuration for two applications, printing the normalized
// speedup/energy bars exactly as the full Fig. 5 / Fig. 6 harness does —
// but small enough to run in seconds. The sweep is one KindSweep experiment
// streamed through a musa.Client.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"musa"
	"musa/internal/report"
)

func main() {
	client, err := musa.NewClient(musa.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	res, err := client.RunStream(context.Background(), musa.Experiment{
		Kind:   musa.KindSweep,
		Apps:   []string{"spmz", "lulesh"},
		Sample: 80000,
		Warmup: 400000,
		Seed:   1,
	}, musa.Observer{
		Progress: func(done, total, cached int) {
			if done%400 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep %d/%d", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	d := res.Sweep

	for _, f := range []struct {
		name string
		feat musa.Feature
	}{
		{"FPU vector width (Fig. 5 mini)", musa.FeatVector},
		{"cache configuration (Fig. 6 mini)", musa.FeatCache},
	} {
		t := report.NewTable(f.name, "app", "value", "speedup", "energy ratio")
		perf := musa.SpeedupBars(d, f.feat, 64)
		energy := musa.EnergyBars(d, f.feat, 64)
		for i := range perf {
			t.AddRow(perf[i].App, perf[i].Value, perf[i].Mean, energy[i].Mean)
		}
		if err := t.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: spmz gains from wide SIMD, lulesh does not;")
	fmt.Println("lulesh/spmz cache sensitivity is modest compared to hydro's.")
}
