package stats

import (
	"math"
	"testing"
	"testing/quick"

	"musa/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty inputs should yield NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almost(g, 4, 1e-12) {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean of non-positive input should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if !almost(Mean(z), 0, 1e-12) {
		t.Errorf("standardized mean = %v", Mean(z))
	}
	if !almost(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized sd = %v", StdDev(z))
	}
	// Constant column: centered but not scaled, no NaNs.
	z2 := Standardize([]float64{3, 3, 3})
	for _, v := range z2 {
		if v != 0 {
			t.Errorf("constant column standardized to %v", z2)
		}
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); !almost(c, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); !almost(c, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("Correlation with constant = %v, want 0", c)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram dropped values: %v", counts)
	}
	if len(edges) != 6 {
		t.Errorf("edges = %v", edges)
	}
	if edges[0] != 0 || edges[5] != 9 {
		t.Errorf("edge range = [%v,%v]", edges[0], edges[5])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 5}}
	eig, vecs := JacobiEigen(a)
	got := map[float64]bool{}
	for _, e := range eig {
		got[math.Round(e)] = true
	}
	if !got[3] || !got[5] {
		t.Errorf("eigenvalues = %v, want {3,5}", eig)
	}
	// Eigenvectors of a diagonal matrix are the standard basis.
	for c := 0; c < 2; c++ {
		norm := vecs[0][c]*vecs[0][c] + vecs[1][c]*vecs[1][c]
		if !almost(norm, 1, 1e-9) {
			t.Errorf("eigenvector %d not unit: %v", c, norm)
		}
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := [][]float64{{2, 1}, {1, 2}}
	eig, _ := JacobiEigen(a)
	lo, hi := math.Min(eig[0], eig[1]), math.Max(eig[0], eig[1])
	if !almost(lo, 1, 1e-9) || !almost(hi, 3, 1e-9) {
		t.Errorf("eigenvalues = %v, want 1 and 3", eig)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// Property: A·v = λ·v for every eigenpair of a random symmetric matrix.
	r := xrand.New(31)
	const n = 6
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.Normal(0, 1)
			a[i][j], a[j][i] = v, v
		}
	}
	eig, vecs := JacobiEigen(a)
	for c := 0; c < n; c++ {
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += a[i][j] * vecs[j][c]
			}
			if !almost(av, eig[c]*vecs[i][c], 1e-8) {
				t.Fatalf("A·v != λ·v at (%d,%d): %v vs %v", i, c, av, eig[c]*vecs[i][c])
			}
		}
	}
}

func TestJacobiEigenTraceInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		const n = 4
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		var trace float64
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := r.Normal(0, 2)
				a[i][j], a[j][i] = v, v
			}
			trace += a[i][i]
		}
		eig, _ := JacobiEigen(a)
		var sum float64
		for _, e := range eig {
			sum += e
		}
		return almost(sum, trace, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPCATwoCorrelatedVars(t *testing.T) {
	// Two perfectly correlated variables: PC0 should explain ~100% of the
	// variance and load equally on both.
	var data [][]float64
	for i := 0; i < 50; i++ {
		x := float64(i)
		data = append(data, []float64{x, 2 * x})
	}
	res, err := PCA([]string{"a", "b"}, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explained[0] < 0.999 {
		t.Errorf("PC0 explains %v, want ~1", res.Explained[0])
	}
	if !almost(math.Abs(res.Loadings[0][0]), math.Abs(res.Loadings[0][1]), 1e-9) {
		t.Errorf("loadings not symmetric: %v", res.Loadings[0])
	}
}

func TestPCAAnticorrelated(t *testing.T) {
	// x and y anticorrelated: PC0 loadings must have opposite signs.
	var data [][]float64
	r := xrand.New(37)
	for i := 0; i < 200; i++ {
		x := r.Normal(0, 1)
		data = append(data, []float64{x, -x + r.Normal(0, 0.01), r.Normal(0, 1)})
	}
	res, err := PCA([]string{"x", "y", "noise"}, data)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Loadings[0]
	if l[0]*l[1] >= 0 {
		t.Errorf("PC0 loadings for anticorrelated vars have same sign: %v", l)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA([]string{"a"}, [][]float64{{1}}); err == nil {
		t.Error("expected error for single observation")
	}
	if _, err := PCA([]string{"a", "b"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestPCAExplainedSumsToOne(t *testing.T) {
	r := xrand.New(41)
	var data [][]float64
	for i := 0; i < 100; i++ {
		data = append(data, []float64{r.Normal(0, 1), r.Normal(0, 3), r.Normal(5, 2)})
	}
	res, err := PCA([]string{"a", "b", "c"}, data)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range res.Explained {
		sum += e
	}
	if !almost(sum, 1, 1e-9) {
		t.Errorf("explained fractions sum to %v", sum)
	}
	for i := 1; i < len(res.Eigen); i++ {
		if res.Eigen[i] > res.Eigen[i-1]+1e-12 {
			t.Errorf("eigenvalues not sorted: %v", res.Eigen)
		}
	}
}
