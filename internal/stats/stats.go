// Package stats provides the statistical helpers used across the design
// space exploration: summary statistics, normalization, covariance and a
// principal component analysis built on a cyclic Jacobi eigensolver.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the minimum of xs; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Standardize returns (xs - mean) / stddev. If stddev is zero the centered
// values are returned unscaled.
func Standardize(xs []float64) []float64 {
	m, sd := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		if sd > 0 {
			out[i] = (x - m) / sd
		} else {
			out[i] = x - m
		}
	}
	return out
}

// Covariance returns the population covariance of xs and ys, which must have
// the same length.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Histogram bins xs into n equal-width buckets spanning [min, max] and
// returns the bucket counts together with the bucket edges (n+1 values).
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n <= 0 {
		panic("stats: Histogram needs n > 0")
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	if len(xs) == 0 {
		return counts, edges
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// Summary holds the summary statistics reported in the DSE result tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}
