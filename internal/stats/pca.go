package stats

import (
	"fmt"
	"math"
	"sort"
)

// PCAResult holds the outcome of a principal component analysis: the
// components (rows of Loadings, one per principal component, sorted by
// decreasing eigenvalue), the eigenvalues themselves, and the fraction of
// total variance each component explains. Labels carries the variable names
// in column order.
type PCAResult struct {
	Labels    []string
	Loadings  [][]float64 // Loadings[c][v]: loading of variable v on component c
	Eigen     []float64
	Explained []float64 // fraction of variance explained, per component
}

// PCA performs principal component analysis on the given data matrix, where
// data[i] is an observation and data[i][j] the value of variable j (labelled
// labels[j]). Variables are standardized before the covariance (hence
// correlation) matrix is decomposed, matching the paper's methodology of
// mixing categorical architecture levels with cycle counts.
func PCA(labels []string, data [][]float64) (*PCAResult, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 observations, got %d", n)
	}
	p := len(labels)
	for i, row := range data {
		if len(row) != p {
			return nil, fmt.Errorf("stats: PCA row %d has %d values, want %d", i, len(row), p)
		}
	}

	// Standardize each column.
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = data[i][j]
		}
		cols[j] = Standardize(col)
	}

	// Correlation matrix.
	cov := make([][]float64, p)
	for j := range cov {
		cov[j] = make([]float64, p)
		for k := 0; k <= j; k++ {
			c := Covariance(cols[j], cols[k])
			cov[j][k] = c
		}
	}
	for j := 0; j < p; j++ {
		for k := j + 1; k < p; k++ {
			cov[j][k] = cov[k][j]
		}
	}

	eig, vecs := JacobiEigen(cov)

	// Sort by decreasing eigenvalue.
	idx := make([]int, p)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return eig[idx[a]] > eig[idx[b]] })

	var total float64
	for _, e := range eig {
		if e > 0 {
			total += e
		}
	}
	res := &PCAResult{Labels: append([]string(nil), labels...)}
	for _, i := range idx {
		load := make([]float64, p)
		for v := 0; v < p; v++ {
			load[v] = vecs[v][i]
		}
		// Fix sign convention: make the largest-magnitude loading positive so
		// results are stable across platforms.
		maxAbs, sign := 0.0, 1.0
		for _, l := range load {
			if math.Abs(l) > maxAbs {
				maxAbs = math.Abs(l)
				if l < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for v := range load {
			load[v] *= sign
		}
		res.Loadings = append(res.Loadings, load)
		res.Eigen = append(res.Eigen, eig[i])
		if total > 0 {
			res.Explained = append(res.Explained, math.Max(eig[i], 0)/total)
		} else {
			res.Explained = append(res.Explained, 0)
		}
	}
	return res, nil
}

// JacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a using the cyclic Jacobi rotation method. It returns the
// eigenvalues and a matrix whose COLUMNS are the corresponding eigenvectors
// (vecs[row][col]). The input matrix is not modified.
func JacobiEigen(a [][]float64) (eigenvalues []float64, vecs [][]float64) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		if len(m[i]) != n {
			panic("stats: JacobiEigen needs a square matrix")
		}
	}
	v := identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-14 {
			break
		}
		for pIdx := 0; pIdx < n-1; pIdx++ {
			for q := pIdx + 1; q < n; q++ {
				if math.Abs(m[pIdx][q]) < 1e-18 {
					continue
				}
				rotate(m, v, pIdx, q)
			}
		}
	}

	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = m[i][i]
	}
	return eigenvalues, v
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

func offDiagNorm(m [][]float64) float64 {
	var s float64
	for i := range m {
		for j := range m[i] {
			if i != j {
				s += m[i][j] * m[i][j]
			}
		}
	}
	return math.Sqrt(s)
}

// rotate applies a Jacobi rotation zeroing m[p][q], accumulating into v.
func rotate(m, v [][]float64, p, q int) {
	n := len(m)
	app, aqq, apq := m[p][p], m[q][q], m[p][q]
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	for k := 0; k < n; k++ {
		akp, akq := m[k][p], m[k][q]
		m[k][p] = c*akp - s*akq
		m[k][q] = s*akp + c*akq
	}
	for k := 0; k < n; k++ {
		apk, aqk := m[p][k], m[q][k]
		m[p][k] = c*apk - s*aqk
		m[q][k] = s*apk + c*aqk
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v[k][p], v[k][q]
		v[k][p] = c*vkp - s*vkq
		v[k][q] = s*vkp + c*vkq
	}
}
