package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a registry of
// counters, gauges and fixed-bucket histograms rendered in the Prometheus
// text exposition format (version 0.0.4 — what every Prometheus-compatible
// scraper speaks). Metrics are identified by (name, sorted label set);
// registering the same identity twice returns the same instance, so hot
// paths may re-resolve by name without duplicating series.

// Label is one name=value metric dimension.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (negative deltas are ignored — counters only
// go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets and tracks
// their sum — the Prometheus histogram shape, from which scrapers derive
// quantiles and rates.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit

	mu     sync.Mutex
	counts []uint64 // per-bucket (len(bounds)+1, last = +Inf overflow)
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Sum returns the total of every observed value.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshot returns (cumulative bucket counts, sum, count).
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.count
}

// LogBuckets returns upper bounds spaced evenly in log scale: perDecade
// bounds per power of ten, from min up to and including the first bound
// >= max. LogBuckets(1e-4, 10, 3) is the canonical duration ladder:
// 100µs, 215µs, 464µs, 1ms, ... 10s.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic("obs: bad LogBuckets parameters")
	}
	var out []float64
	for i := 0; ; i++ {
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max*(1-1e-9) {
			return out
		}
	}
}

// DurationBuckets is the default histogram ladder for request and stage
// durations in seconds: 100µs to ~100s, three buckets per decade.
func DurationBuckets() []float64 { return LogBuckets(1e-4, 100, 3) }

// metric is one registered series: exactly one of the value fields is used
// depending on the family type.
type metric struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // scrape-time callback (counter or gauge family)
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	metrics         map[string]*metric // label signature -> series
	order           []string
}

// Registry holds metric families and renders them for scraping. All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var (
	defaultReg     *Registry
	defaultRegOnce sync.Once
)

// DefaultRegistry is the process-wide registry the instrumented packages
// and the /metrics endpoint share.
func DefaultRegistry() *Registry {
	defaultRegOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// signature returns the canonical label identity (sorted by name).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// series resolves (or creates) the family and series for one identity, then
// runs init on it while still holding the registry lock — the only place a
// metric's value fields may be written, so two goroutines racing to create
// the same series always observe one fully-initialized instance. The family
// type must match across calls; a mismatch panics — it is a programming
// error, caught by the first scrape in any test.
func (r *Registry) series(name, help, typ string, labels []Label, init func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: map[string]*metric{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	sig := signature(labels)
	m := f.metrics[sig]
	if m == nil {
		m = &metric{labels: append([]Label(nil), labels...)}
		sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].Name < m.labels[j].Name })
		f.metrics[sig] = m
		f.order = append(f.order, sig)
	}
	init(m)
	return m
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.series(name, help, "counter", labels, func(m *metric) {
		if m.c == nil {
			m.c = &Counter{}
		}
	}).c
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.series(name, help, "gauge", labels, func(m *metric) {
		if m.g == nil {
			m.g = &Gauge{}
		}
	}).g
}

// Histogram returns the histogram series for (name, labels). buckets are
// ascending upper bounds (nil = DurationBuckets); the first registration of
// a series fixes them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.series(name, help, "histogram", labels, func(m *metric) {
		if m.h == nil {
			b := buckets
			if b == nil {
				b = DurationBuckets()
			}
			m.h = &Histogram{bounds: append([]float64(nil), b...), counts: make([]uint64, len(b)+1)}
		}
	}).h
}

// CounterFunc registers a scrape-time callback rendered as a counter — the
// bridge for counters owned elsewhere (client stats, store and artifact
// caches) so one scrape sees everything without double bookkeeping.
// Re-registering an identity replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.series(name, help, "counter", labels, func(m *metric) { m.fn = fn })
}

// GaugeFunc registers a scrape-time callback rendered as a gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.series(name, help, "gauge", labels, func(m *metric) { m.fn = fn })
}

// SeriesSnapshot is one rendered series of a Snapshot.
type SeriesSnapshot struct {
	Labels []Label
	Value  float64 // counter / gauge value, histogram sum
	Count  uint64  // histogram observation count
}

// FamilySnapshot is one metric family of a Snapshot.
type FamilySnapshot struct {
	Name, Help, Type string
	Series           []SeriesSnapshot
}

// famCopy is a point-in-time copy of one family taken under the registry
// lock: the metric structs are copied by value so later registrations (new
// series appended to order, replaced fn callbacks) cannot race with
// rendering. The Counter/Gauge/Histogram pointers inside stay shared — they
// synchronize themselves.
type famCopy struct {
	name, help, typ string
	metrics         []metric
}

// copyFamilies snapshots every family sorted by name. Rendering happens on
// the copy, outside the lock, so scrape-time fn callbacks never run with the
// registry lock held.
func (r *Registry) copyFamilies() []famCopy {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]famCopy, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fc := famCopy{name: f.name, help: f.help, typ: f.typ, metrics: make([]metric, 0, len(f.order))}
		for _, sig := range f.order {
			fc.metrics = append(fc.metrics, *f.metrics[sig])
		}
		out = append(out, fc)
	}
	return out
}

// Snapshot returns every family's current values, sorted by name — the
// programmatic read the musa-dse -v stage table uses.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.copyFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for i := range f.metrics {
			m := &f.metrics[i]
			s := SeriesSnapshot{Labels: m.labels}
			switch {
			case m.fn != nil:
				s.Value = m.fn()
			case m.c != nil:
				s.Value = float64(m.c.Value())
			case m.g != nil:
				s.Value = float64(m.g.Value())
			case m.h != nil:
				_, sum, count := m.h.snapshot()
				s.Value, s.Count = sum, count
			}
			fs.Series = append(fs.Series, s)
		}
		out = append(out, fs)
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {a="b",c="d"} with extra appended last (the
// histogram le label); empty when there are no labels.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value: integers without exponent, +Inf per
// the exposition format.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := r.copyFamilies()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for i := range f.metrics {
			m := &f.metrics[i]
			switch {
			case m.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(m.labels), formatValue(m.fn()))
			case m.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(m.labels), m.c.Value())
			case m.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(m.labels), m.g.Value())
			case m.h != nil:
				cum, sum, count := m.h.snapshot()
				for i, bound := range m.h.bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(m.labels, L("le", formatValue(bound))), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(m.labels, L("le", "+Inf")), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(m.labels), formatValue(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(m.labels), count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMetricsFile dumps the registry in exposition format to path — the
// -metrics flag of the cmd binaries ("-" writes to stderr is handled by the
// callers; this always creates a file).
func (r *Registry) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write metrics %s: %w", path, err)
	}
	return f.Close()
}
