// Package obs is the zero-dependency observability layer of the simulation
// pipeline: hierarchical trace spans recorded into a bounded in-memory ring
// (exportable as NDJSON and Chrome trace_event JSON), and a metrics registry
// (counters, gauges, log-bucketed histograms) rendered in the Prometheus
// text exposition format. Every layer of the request path — musa.Client,
// the dse pipeline stages, the fleet coordinator and the HTTP handlers —
// instruments itself through this package, so one -trace-out file or one
// GET /metrics scrape sees the whole system.
//
// Spans propagate through context.Context: StartSpan parents a new span
// under the context's current span (or starts a new trace), and
// ContextWithRemote grafts a parent received from another process (the
// X-Musa-Trace header) so worker-side spans nest under the coordinator's
// dispatch. All types are safe for concurrent use; a nil *Span is a valid
// no-op receiver, so instrumented code never branches on "is tracing on".
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
)

// Attr is one key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, value int) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%d", value)}
}

// newID returns a 16-hex-digit identifier. Trace and span IDs only need to
// be unique within a trace ring, not unguessable, so the shared PRNG is
// plenty (and never zero, which marks "no parent").
func newID() string {
	for {
		if v := rand.Uint64(); v != 0 {
			return fmt.Sprintf("%016x", v)
		}
	}
}

type ctxKey int

const (
	spanKey ctxKey = iota
	recorderKey
)

// WithRecorder returns a context whose spans record into r instead of the
// package default ring. A nil r disables recording for the subtree.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// recorderFrom resolves the recorder for a new span: the context's, falling
// back to the package default. WithRecorder(ctx, nil) yields nil (disabled).
func recorderFrom(ctx context.Context) *Recorder {
	if v, ok := ctx.Value(recorderKey).(*Recorder); ok {
		return v
	}
	return Default()
}

// SpanFrom returns the context's current span (nil outside any span).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// TraceHeader is the HTTP header carrying trace propagation between a fleet
// coordinator and its workers: "<trace-id>:<parent-span-id>".
const TraceHeader = "X-Musa-Trace"

// ContextWithRemote grafts a remote parent into the context: the next
// StartSpan call parents under (traceID, spanID) as if the remote span were
// local. Empty IDs return ctx unchanged.
func ContextWithRemote(ctx context.Context, traceID, spanID string) context.Context {
	if traceID == "" || spanID == "" {
		return ctx
	}
	return context.WithValue(ctx, spanKey, &Span{TraceID: traceID, SpanID: spanID, remote: true})
}

// ParseTraceHeader splits an X-Musa-Trace value into its trace and parent
// span IDs.
func ParseTraceHeader(v string) (traceID, spanID string, ok bool) {
	traceID, spanID, found := strings.Cut(v, ":")
	if !found || traceID == "" || spanID == "" {
		return "", "", false
	}
	return traceID, spanID, true
}

// HeaderValue renders the span's propagation header value
// ("<trace-id>:<span-id>"); empty for a nil span.
func (s *Span) HeaderValue() string {
	if s == nil {
		return ""
	}
	return s.TraceID + ":" + s.SpanID
}
