package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Span is one timed operation in a trace tree. Exported fields are set by
// StartSpan and frozen by End; SetAttr may add annotations in between (from
// the goroutine that started the span). The zero Dur of a snapshot means
// the span was still open when the ring was read.
type Span struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	// Start is the wall-clock start; Dur the measured duration.
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"durNs"`
	Attrs []Attr        `json:"attrs,omitempty"`

	rec    *Recorder
	remote bool // context graft of a parent owned by another process
}

// StartSpan opens a span named name under the context's current span (a new
// trace root when there is none) and returns the child context carrying it.
// Recording goes to the context's recorder, defaulting to the package ring;
// with recording disabled it returns (ctx, nil), and every method of a nil
// *Span is a no-op, so call sites never branch.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	rec := recorderFrom(ctx)
	if rec == nil {
		return ctx, nil
	}
	s := &Span{
		SpanID: newID(),
		Name:   name,
		Start:  time.Now(),
		Attrs:  attrs,
		rec:    rec,
	}
	if parent := SpanFrom(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.Parent = parent.SpanID
	} else {
		s.TraceID = newID()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr appends a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End freezes the span's duration and records it into the ring. Safe to
// call on nil; calling twice records twice (don't).
func (s *Span) End() {
	if s == nil || s.remote {
		return
	}
	s.Dur = time.Since(s.Start)
	if s.rec != nil {
		s.rec.record(*s)
	}
}

// Recorder is a bounded in-memory ring of completed spans: recording is one
// mutex-guarded slot write, and when the ring wraps the oldest spans are
// dropped (roots End last, so the tree's top survives a wrap).
type Recorder struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
	dropped int64
}

// DefaultRingSpans is the capacity of the package-default span ring: large
// enough to hold a reduced sweep's full span tree, small enough that the
// always-on ring stays a few MB.
const DefaultRingSpans = 8192

// NewRecorder returns a ring holding the last capacity completed spans
// (capacity <= 0 selects DefaultRingSpans).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingSpans
	}
	return &Recorder{buf: make([]Span, 0, capacity)}
}

var (
	defaultRec     *Recorder
	defaultRecOnce sync.Once
)

// Default returns the package-default recorder backing StartSpan when the
// context does not carry its own.
func Default() *Recorder {
	defaultRecOnce.Do(func() { defaultRec = NewRecorder(DefaultRingSpans) })
	return defaultRec
}

func (r *Recorder) record(s Span) {
	s.rec = nil // snapshots must not retain the ring
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.wrapped = true
	r.dropped++
}

// Spans returns the recorded spans, oldest first.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dropped reports how many spans the ring has overwritten since Reset.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards every recorded span.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
	r.wrapped = false
	r.dropped = 0
}

// WriteNDJSON writes one JSON object per recorded span, oldest first — the
// GET /debug/trace dump format.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(spanWire(s)); err != nil {
			return err
		}
	}
	return nil
}

// spanWire flattens a span for NDJSON: absolute nanosecond timestamps so
// dumps from different processes line up.
func spanWire(s Span) map[string]any {
	m := map[string]any{
		"traceId":     s.TraceID,
		"spanId":      s.SpanID,
		"name":        s.Name,
		"startUnixNs": s.Start.UnixNano(),
		"durNs":       s.Dur.Nanoseconds(),
	}
	if s.Parent != "" {
		m["parent"] = s.Parent
	}
	if len(s.Attrs) > 0 {
		attrs := make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			attrs[a.Key] = a.Value
		}
		m["attrs"] = attrs
	}
	return m
}

// WriteChromeTrace writes the ring in the Chrome trace_event JSON format:
// load the file in chrome://tracing (or https://ui.perfetto.dev) to see the
// span tree on a timeline. Each trace gets its own thread lane, so
// concurrent sweep points render side by side.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	// Lane assignment: one tid per trace, in first-seen order. Within a
	// lane, Chrome nests complete events by time containment, which matches
	// the parent relation because children start after and end before their
	// parents.
	lanes := map[string]int{}
	type event struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`  // microseconds
		Dur  float64           `json:"dur"` // microseconds
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	events := make([]event, 0, len(spans))
	for _, s := range spans {
		tid, ok := lanes[s.TraceID]
		if !ok {
			tid = len(lanes) + 1
			lanes[s.TraceID] = tid
		}
		var args map[string]string
		if len(s.Attrs) > 0 {
			args = make(map[string]string, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
		}
		if args == nil {
			args = map[string]string{}
		}
		args["spanId"] = s.SpanID
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		events = append(events, event{
			Name: s.Name, Cat: "musa", Ph: "X",
			TS:  float64(s.Start.UnixNano()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
			PID: 1, TID: tid, Args: args,
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteChromeTraceFile dumps the ring as Chrome trace_event JSON to path —
// the -trace-out flag of the cmd binaries.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace %s: %w", path, err)
	}
	return f.Close()
}
