package obs

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// RegisterFlags wires the standard CLI observability flags onto fs:
//
//	-metrics FILE    Prometheus text metrics written at exit
//	-trace-out FILE  recorded spans written at exit (.ndjson extension =
//	                 NDJSON, anything else = Chrome trace_event JSON for
//	                 chrome://tracing / Perfetto)
//
// The returned dump performs the exports against the package defaults;
// mains defer it after flag.Parse. Every musa binary registers the same
// pair, so "add -trace-out" works identically across the CLI surface.
func RegisterFlags(fs *flag.FlagSet) func() error {
	metrics := fs.String("metrics", "",
		"write Prometheus text metrics to this file at exit")
	traceOut := fs.String("trace-out", "",
		"write the recorded trace to this file at exit (.ndjson = NDJSON, else Chrome trace JSON)")
	return func() error {
		if *metrics != "" {
			if err := DefaultRegistry().WriteMetricsFile(*metrics); err != nil {
				return fmt.Errorf("obs: write metrics: %w", err)
			}
		}
		if *traceOut == "" {
			return nil
		}
		if strings.HasSuffix(*traceOut, ".ndjson") {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("obs: write trace: %w", err)
			}
			werr := Default().WriteNDJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("obs: write trace: %w", werr)
			}
			return nil
		}
		if err := Default().WriteChromeTraceFile(*traceOut); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
		return nil
	}
}
