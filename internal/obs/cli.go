package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

// RegisterFlags wires the standard CLI observability flags onto fs:
//
//	-metrics FILE     Prometheus text metrics written at exit
//	-trace-out FILE   recorded spans written at exit (.ndjson extension =
//	                  NDJSON, anything else = Chrome trace_event JSON for
//	                  chrome://tracing / Perfetto)
//	-cpuprofile FILE  pprof CPU profile; starts the moment the flag is
//	                  parsed, stops at exit
//	-memprofile FILE  pprof heap profile written at exit (after a GC)
//
// The returned dump performs the exports against the package defaults;
// mains defer it after flag.Parse. Every musa binary registers the same
// set, so "add -cpuprofile" works identically across the CLI surface.
func RegisterFlags(fs *flag.FlagSet) func() error {
	metrics := fs.String("metrics", "",
		"write Prometheus text metrics to this file at exit")
	traceOut := fs.String("trace-out", "",
		"write the recorded trace to this file at exit (.ndjson = NDJSON, else Chrome trace JSON)")
	// The CPU profile is started from the flag's own Set callback, which
	// the flag package invokes during Parse — profiling covers the whole
	// run without the mains needing a second hook.
	var cpuFile *os.File
	fs.Func("cpuprofile",
		"write a pprof CPU profile to this file (starts at flag parse, stops at exit)",
		func(path string) error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return err
			}
			cpuFile = f
			return nil
		})
	memProfile := fs.String("memprofile", "",
		"write a pprof heap profile to this file at exit")
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: write cpu profile: %w", err)
			}
			cpuFile = nil
		}
		if *memProfile != "" {
			runtime.GC() // up-to-date heap statistics
			f, err := os.Create(*memProfile)
			if err != nil {
				return fmt.Errorf("obs: write mem profile: %w", err)
			}
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("obs: write mem profile: %w", werr)
			}
		}
		if *metrics != "" {
			if err := DefaultRegistry().WriteMetricsFile(*metrics); err != nil {
				return fmt.Errorf("obs: write metrics: %w", err)
			}
		}
		if *traceOut == "" {
			return nil
		}
		if strings.HasSuffix(*traceOut, ".ndjson") {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("obs: write trace: %w", err)
			}
			werr := Default().WriteNDJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("obs: write trace: %w", werr)
			}
			return nil
		}
		if err := Default().WriteChromeTraceFile(*traceOut); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
		return nil
	}
}
