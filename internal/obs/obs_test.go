package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeParenting(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)

	ctx, root := StartSpan(ctx, "root", A("kind", "sweep"))
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if r.Parent != "" {
		t.Errorf("root has parent %q", r.Parent)
	}
	if c.Parent != r.SpanID || g.Parent != c.SpanID {
		t.Errorf("parent chain broken: child.Parent=%q root=%q, grand.Parent=%q child=%q",
			c.Parent, r.SpanID, g.Parent, c.SpanID)
	}
	for _, s := range []Span{c, g} {
		if s.TraceID != r.TraceID {
			t.Errorf("span %s trace %q, want root's %q", s.Name, s.TraceID, r.TraceID)
		}
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{"kind", "sweep"}) {
		t.Errorf("root attrs = %v", r.Attrs)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	ctx := WithRecorder(context.Background(), nil) // recording disabled
	ctx2, s := StartSpan(ctx, "noop")
	if s != nil {
		t.Fatal("disabled recorder still produced a span")
	}
	if ctx2 != ctx {
		t.Error("disabled StartSpan should return ctx unchanged")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()
	if got := s.HeaderValue(); got != "" {
		t.Errorf("nil span header = %q", got)
	}
}

func TestRemoteParentGraft(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)
	ctx = ContextWithRemote(ctx, "aaaa", "bbbb")
	_, s := StartSpan(ctx, "worker-side")
	s.End()
	got := rec.Spans()
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	if got[0].TraceID != "aaaa" || got[0].Parent != "bbbb" {
		t.Errorf("remote graft: trace=%q parent=%q, want aaaa/bbbb", got[0].TraceID, got[0].Parent)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	_, s := StartSpan(ctx, "dispatch")
	hv := s.HeaderValue()
	tr, sp, ok := ParseTraceHeader(hv)
	if !ok || tr != s.TraceID || sp != s.SpanID {
		t.Fatalf("ParseTraceHeader(%q) = %q %q %v", hv, tr, sp, ok)
	}
	for _, bad := range []string{"", "no-colon", ":x", "x:"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first order)", i, s.Name, want)
		}
	}
	if rec.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", rec.Dropped())
	}
}

func TestNDJSONExport(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child", A("app", "lulesh"))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("%d NDJSON lines, want 2", len(lines))
	}
	if lines[0]["name"] != "child" || lines[1]["name"] != "root" {
		t.Errorf("order: %v, %v (want completion order child, root)", lines[0]["name"], lines[1]["name"])
	}
	attrs, _ := lines[0]["attrs"].(map[string]any)
	if attrs["app"] != "lulesh" {
		t.Errorf("child attrs = %v", lines[0]["attrs"])
	}
}

func TestChromeTraceExport(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %s phase %q, want X (complete)", e.Name, e.Ph)
		}
		if e.Dur <= 0 {
			t.Errorf("event %s has dur %v", e.Name, e.Dur)
		}
	}
	if doc.TraceEvents[0].TID != doc.TraceEvents[1].TID {
		t.Error("same trace should share one lane (tid)")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("musa_test_total", "help", L("kind", "a"))
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if again := reg.Counter("musa_test_total", "help", L("kind", "a")); again != c {
		t.Error("same identity must return the same counter")
	}

	g := reg.Gauge("musa_test_inflight", "help")
	g.Add(2)
	g.Add(-1)
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}

	h := reg.Histogram("musa_test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Errorf("histogram sum = %v, want 55.55", h.Sum())
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-4, 100, 3)
	if b[0] != 1e-4 {
		t.Errorf("first bucket %v, want 1e-4", b[0])
	}
	if last := b[len(b)-1]; last < 100*(1-1e-9) {
		t.Errorf("last bucket %v does not reach 100", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
}

// promLine matches one exposition-format sample line:
// name{label="value",...} value
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// parsePrometheus is a strict-enough parser of the text exposition format:
// every non-comment line must match the sample grammar, every sample's base
// name must be declared by a preceding # TYPE, histograms must expose
// _bucket/_sum/_count with a terminal +Inf bucket equal to _count, and
// bucket counts must be monotonically non-decreasing. Returns sample values
// keyed by full line identity (name + label string).
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not match exposition grammar: %q", line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if _, ok := types[strings.TrimSuffix(name, suffix)]; ok {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "+Inf" {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		if m[3] == "+Inf" {
			t.Fatalf("+Inf sample value in %q", line)
		}
		samples[name+m[2]] = v
	}
	// Histogram invariants: +Inf bucket present and equal to _count.
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		for id, count := range samples {
			if !strings.HasPrefix(id, name+"_count") {
				continue
			}
			labels := strings.TrimPrefix(id, name+"_count")
			infID := name + "_bucket" + histInfLabel(labels)
			inf, ok := samples[infID]
			if !ok {
				t.Fatalf("histogram %s%s has no +Inf bucket (%s)", name, labels, infID)
			}
			if inf != count {
				t.Fatalf("histogram %s%s: +Inf bucket %v != count %v", name, labels, inf, count)
			}
		}
	}
	return samples
}

// histInfLabel inserts le="+Inf" into a rendered label string.
func histInfLabel(labels string) string {
	if labels == "" {
		return `{le="+Inf"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="+Inf"}`
}

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("musa_requests_total", "Total requests.", L("route", "POST /simulate"), L("code", "2xx")).Add(7)
	reg.Gauge("musa_inflight", "In-flight requests.").Set(2)
	h := reg.Histogram("musa_request_duration_seconds", "Request durations.", nil, L("route", "POST /dse"))
	h.Observe(0.004)
	h.Observe(2.5)
	reg.CounterFunc("musa_store_hits_total", "Store hits.", func() float64 { return 42 })
	reg.GaugeFunc("musa_quoted", "Label escaping.", func() float64 { return 1 },
		L("path", `a\b"c`+"\n"))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, buf.String())
	if got := samples[`musa_requests_total{code="2xx",route="POST /simulate"}`]; got != 7 {
		t.Errorf("counter sample = %v, want 7 (have %v)", got, samples)
	}
	if got := samples[`musa_inflight`]; got != 2 {
		t.Errorf("gauge sample = %v, want 2", got)
	}
	if got := samples[`musa_store_hits_total`]; got != 42 {
		t.Errorf("func counter = %v, want 42", got)
	}
	if got := samples[`musa_request_duration_seconds_count{route="POST /dse"}`]; got != 2 {
		t.Errorf("histogram count = %v, want 2", got)
	}
	if got := samples[`musa_request_duration_seconds_sum{route="POST /dse"}`]; got != 2.504 {
		t.Errorf("histogram sum = %v, want 2.504", got)
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("musa_b_total", "b").Add(2)
	h := reg.Histogram("musa_a_seconds", "a", nil, L("stage", "annotate"))
	h.Observe(1.5)
	h.Observe(0.5)
	snap := reg.Snapshot()
	if len(snap) != 2 || snap[0].Name != "musa_a_seconds" || snap[1].Name != "musa_b_total" {
		t.Fatalf("snapshot families: %+v", snap)
	}
	s := snap[0].Series[0]
	if s.Value != 2.0 || s.Count != 2 {
		t.Errorf("histogram series sum=%v count=%d, want 2.0/2", s.Value, s.Count)
	}
	if len(s.Labels) != 1 || s.Labels[0] != (Label{"stage", "annotate"}) {
		t.Errorf("labels = %v", s.Labels)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("musa_h_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, buf.String())
	// le is cumulative: le=1 counts 0.5 and 1.0 (observations <= bound).
	got1 := samples[`musa_h_seconds_bucket{le="1"}`]
	got2 := samples[`musa_h_seconds_bucket{le="2"}`]
	got4 := samples[`musa_h_seconds_bucket{le="4"}`]
	gotInf := samples[`musa_h_seconds_bucket{le="+Inf"}`]
	if got1 != 2 || got2 != 3 || got4 != 4 || gotInf != 5 {
		t.Errorf("buckets le1=%v le2=%v le4=%v inf=%v, want 2/3/4/5", got1, got2, got4, gotInf)
	}
	if samples[`musa_h_seconds_count`] != 5 {
		t.Errorf("count = %v, want 5", samples[`musa_h_seconds_count`])
	}
}

func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				reg.Counter("musa_c_total", "c", L("w", "x")).Inc()
				reg.Histogram("musa_hh_seconds", "h", nil).Observe(0.01)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := reg.Counter("musa_c_total", "c", L("w", "x")).Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := reg.Histogram("musa_hh_seconds", "h", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

// TestConcurrentSeriesCreation races series *creation* (distinct label sets,
// so every resolve may be the first) against scrapes and func re-registration
// — the serve middleware's exact access pattern. Run with -race; the
// assertions only confirm every series landed.
func TestConcurrentSeriesCreation(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		route := string(rune('a' + i))
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				reg.Counter("musa_req_total", "c", L("route", route)).Inc()
				reg.Histogram("musa_req_seconds", "h", nil, L("route", route)).Observe(0.01)
				reg.Gauge("musa_inflight", "g", L("route", route)).Add(1)
				reg.CounterFunc("musa_fn_total", "f", func() float64 { return 1 }, L("route", route))
			}
		}()
	}
	go func() {
		defer func() { done <- struct{}{} }()
		for j := 0; j < 200; j++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			reg.Snapshot()
		}
	}()
	for i := 0; i < 9; i++ {
		<-done
	}
	for i := 0; i < 8; i++ {
		route := string(rune('a' + i))
		if got := reg.Counter("musa_req_total", "c", L("route", route)).Value(); got != 200 {
			t.Errorf("route %s counter = %d, want 200", route, got)
		}
		if got := reg.Histogram("musa_req_seconds", "h", nil, L("route", route)).Count(); got != 200 {
			t.Errorf("route %s histogram count = %d, want 200", route, got)
		}
	}
}

// TestRegisterFlagsProfiles drives the pprof flag surface: -cpuprofile
// starts profiling at parse time and the dump closure stops it and writes
// both profile files.
func TestRegisterFlagsProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pb.gz"
	mem := dir + "/mem.pb.gz"
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	dump := RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := dump(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// A second dump is a no-op for the CPU profile (already stopped).
	if err := dump(); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterFlagsCPUProfileBadPath pins the error surface: an unwritable
// profile path fails at flag parse, not deep into the run.
func TestRegisterFlagsCPUProfileBadPath(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	_ = RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pb"}); err == nil {
		t.Fatal("unwritable cpu profile path accepted")
	}
}
