package isa

import (
	"testing"
	"testing/quick"
)

func vecInstr(pc, bb uint32, class Class, lanes uint8, addr uint64) Instr {
	in := Instr{PC: pc, BB: bb, Class: class, Lanes: lanes, Vectorizable: true}
	if class.IsMem() {
		in.Addr = addr
		in.Size = uint16(int(lanes) * ElemBits / 8)
	}
	return in
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || FPAdd.IsMem() {
		t.Error("IsMem wrong")
	}
	if !FPAdd.IsFP() || !FPFMA.IsFP() || Load.IsFP() || IntALU.IsFP() {
		t.Error("IsFP wrong")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}

func TestSliceStreamAndLimit(t *testing.T) {
	ins := []Instr{{PC: 1}, {PC: 2}, {PC: 3}}
	s := NewSliceStream(ins)
	got := Collect(s)
	if len(got) != 3 {
		t.Fatalf("Collect = %d instrs", len(got))
	}
	s.Reset()
	lim := &LimitStream{S: s, N: 2}
	if got := Collect(lim); len(got) != 2 {
		t.Fatalf("LimitStream yielded %d", len(got))
	}
}

func TestDecoderScalarizes(t *testing.T) {
	// One 128-bit FP add (2 lanes) and one 128-bit load.
	in := []Instr{
		vecInstr(10, 1, FPAdd, 2, 0),
		vecInstr(11, 1, Load, 2, 0x1000),
	}
	got := Collect(NewDecoder(NewSliceStream(in)))
	if len(got) != 4 {
		t.Fatalf("decoded %d micro-ops, want 4", len(got))
	}
	for _, g := range got {
		if g.Lanes != 1 {
			t.Errorf("lane count %d after decode", g.Lanes)
		}
	}
	if got[0].PC != 10 || got[1].PC != 10 {
		t.Error("fusion markers (PC) not preserved")
	}
	// Per-lane load addresses must be consecutive 8-byte elements.
	if got[2].Addr != 0x1000 || got[3].Addr != 0x1008 {
		t.Errorf("lane addresses = 0x%x, 0x%x", got[2].Addr, got[3].Addr)
	}
	if got[2].Size != 8 || got[3].Size != 8 {
		t.Errorf("lane sizes = %d, %d", got[2].Size, got[3].Size)
	}
}

func TestDecoderPassesScalars(t *testing.T) {
	in := []Instr{{PC: 5, Class: IntALU, Lanes: 1}, {PC: 6, Class: Branch, Lanes: 1}}
	got := Collect(NewDecoder(NewSliceStream(in)))
	if len(got) != 2 || got[0].PC != 5 || got[1].PC != 6 {
		t.Fatalf("decoder altered scalar stream: %v", got)
	}
}

// loopTrace builds a trace of `iters` executions of one basic block whose
// body is: vectorizable FPAdd(pc=1), vectorizable Load(pc=2), Branch(pc=3).
func loopTrace(iters int, bb uint32) []Instr {
	var out []Instr
	for i := 0; i < iters; i++ {
		out = append(out,
			Instr{PC: 1, BB: bb, Class: FPAdd, Lanes: 1, Vectorizable: true},
			Instr{PC: 2, BB: bb, Class: Load, Lanes: 1, Size: 8, Addr: uint64(i * 8), Vectorizable: true},
			Instr{PC: 3, BB: bb, Class: Branch, Lanes: 1},
		)
	}
	return out
}

func countByClass(ins []Instr) map[Class]int {
	m := map[Class]int{}
	for _, in := range ins {
		m[in.Class]++
	}
	return m
}

func TestFuser128FusesAdjacentLanes(t *testing.T) {
	// Scalarized 128-bit ops: two adjacent micro-ops with same PC.
	in := []Instr{
		vecInstr(1, 1, FPAdd, 1, 0), vecInstr(1, 1, FPAdd, 1, 0),
		vecInstr(2, 1, Load, 1, 0x100), vecInstr(2, 1, Load, 1, 0x108),
	}
	f := NewFuser(NewSliceStream(in), FuserConfig{WidthBits: 128, MinRun: 100})
	got := Collect(f)
	if len(got) != 2 {
		t.Fatalf("fused to %d ops, want 2: %v", len(got), got)
	}
	if got[0].Lanes != 2 || got[1].Lanes != 2 {
		t.Errorf("lanes = %d,%d want 2,2", got[0].Lanes, got[1].Lanes)
	}
	if got[1].Size != 16 {
		t.Errorf("fused load size = %d, want 16", got[1].Size)
	}
}

func TestFuserWideNeedsRepeats(t *testing.T) {
	// 512-bit = 8 lanes. A loop body executed 16 times in a row should fuse
	// each vectorizable PC into 16/8 = 2 wide ops; the branch stays 16x.
	tr := loopTrace(16, 7)
	f := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: 512, MinRun: 4})
	got := Collect(f)
	byClass := countByClass(got)
	if byClass[FPAdd] != 2 {
		t.Errorf("FPAdd ops = %d, want 2", byClass[FPAdd])
	}
	if byClass[Load] != 2 {
		t.Errorf("Load ops = %d, want 2", byClass[Load])
	}
	if byClass[Branch] != 16 {
		t.Errorf("Branch ops = %d, want 16", byClass[Branch])
	}
	for _, g := range got {
		if g.Class == Load && g.Lanes == 8 && g.Size != 64 {
			t.Errorf("8-lane load size = %d, want 64", g.Size)
		}
	}
}

func TestFuserShortRunsDoNotFuseWide(t *testing.T) {
	// Only 2 iterations (< MinRun): wide fusion must not kick in.
	tr := loopTrace(2, 3)
	f := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: 512, MinRun: 4})
	got := Collect(f)
	for _, g := range got {
		if g.Lanes > TracedWidthBits/ElemBits {
			t.Fatalf("wide fusion on short run: %v", g)
		}
	}
}

func TestFuserScalarWidthPassthrough(t *testing.T) {
	tr := loopTrace(8, 1)
	f := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: 64, MinRun: 4})
	got := Collect(f)
	if len(got) != len(tr) {
		t.Fatalf("scalar width changed op count: %d != %d", len(got), len(tr))
	}
	for _, g := range got {
		if g.Lanes != 1 {
			t.Errorf("lanes = %d at 64-bit width", g.Lanes)
		}
	}
}

func TestFuserLaneConservation(t *testing.T) {
	// Property: total lane count (work) is conserved by fusion.
	f := func(seed uint64) bool {
		iters := int(seed%32) + 1
		width := []int{64, 128, 256, 512, 1024, 2048}[seed%6]
		tr := loopTrace(iters, 9)
		fu := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: width, MinRun: 4})
		got := Collect(fu)
		var lanes int
		for _, g := range got {
			lanes += int(g.Lanes)
		}
		return lanes == len(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFuserStats(t *testing.T) {
	tr := loopTrace(8, 2)
	fu := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: 256, MinRun: 4})
	got := Collect(fu)
	st := fu.Stats()
	if st.In != int64(len(tr)) {
		t.Errorf("Stats.In = %d, want %d", st.In, len(tr))
	}
	if st.Out != int64(len(got)) {
		t.Errorf("Stats.Out = %d, want %d", st.Out, len(got))
	}
	if st.Fused != st.In-st.Out {
		t.Errorf("Fused = %d, want In-Out = %d", st.Fused, st.In-st.Out)
	}
}

func TestFuserMultipleBlocks(t *testing.T) {
	// Two different blocks back to back: fusion must not cross block ids.
	tr := append(loopTrace(8, 1), loopTrace(8, 2)...)
	fu := NewFuser(NewSliceStream(tr), FuserConfig{WidthBits: 512, MinRun: 4})
	got := Collect(fu)
	var lanes int
	for _, g := range got {
		lanes += int(g.Lanes)
		if g.BB != 1 && g.BB != 2 {
			t.Fatalf("unexpected bb %d", g.BB)
		}
	}
	if lanes != len(tr) {
		t.Errorf("lane conservation across blocks: %d != %d", lanes, len(tr))
	}
}

func TestDecodeFuseRoundTrip(t *testing.T) {
	// Decoding 128-bit ops and re-fusing at 128 bits should restore the
	// original op count and sizes.
	var orig []Instr
	for i := 0; i < 10; i++ {
		orig = append(orig,
			vecInstr(1, 4, FPMul, 2, 0),
			vecInstr(2, 4, Load, 2, uint64(0x2000+16*i)),
			Instr{PC: 3, BB: 4, Class: Branch, Lanes: 1},
		)
	}
	dec := NewDecoder(NewSliceStream(orig))
	fu := NewFuser(dec, FuserConfig{WidthBits: 128, MinRun: 1000})
	got := Collect(fu)
	if len(got) != len(orig) {
		t.Fatalf("round trip: %d ops, want %d", len(got), len(orig))
	}
	for i, g := range got {
		if g.Class != orig[i].Class {
			t.Errorf("op %d class %v, want %v", i, g.Class, orig[i].Class)
		}
		if g.Class.IsMem() && g.Size != orig[i].Size {
			t.Errorf("op %d size %d, want %d", i, g.Size, orig[i].Size)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := vecInstr(1, 2, Load, 2, 0x40)
	if in.String() == "" {
		t.Error("empty String")
	}
}

func BenchmarkFuser512(b *testing.B) {
	tr := loopTrace(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSliceStream(tr)
		fu := NewFuser(s, DefaultFuserConfig(512))
		for {
			if _, ok := fu.Next(); !ok {
				break
			}
		}
	}
}
