package isa

import (
	"testing"
	"testing/quick"

	"musa/internal/xrand"
)

// randomVecTrace builds a random mixed trace of scalar and vector
// instructions with well-formed lane counts.
func randomVecTrace(seed uint64, n int) []Instr {
	rng := xrand.New(seed)
	classes := []Class{IntALU, FPAdd, FPMul, Load, Store, Branch}
	out := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		cls := classes[rng.Intn(len(classes))]
		lanes := uint8(1)
		vec := false
		if (cls.IsFP() || cls.IsMem()) && rng.Bernoulli(0.5) {
			lanes = 2 // traced SSE width
			vec = true
		}
		in := Instr{
			PC: uint32(rng.Intn(64)), BB: uint32(rng.Intn(8)),
			Class: cls, Lanes: lanes, Vectorizable: vec,
		}
		if cls.IsMem() {
			in.Addr = uint64(rng.Intn(1 << 20))
			in.Size = uint16(int(lanes) * 8)
		}
		out = append(out, in)
	}
	return out
}

func TestDecoderLaneConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomVecTrace(seed, 300)
		var lanesIn int
		for _, in := range tr {
			lanesIn += int(in.Lanes)
		}
		dec := Collect(NewDecoder(NewSliceStream(tr)))
		// Every decoded micro-op is scalar, and their count equals the
		// traced lane total.
		for _, d := range dec {
			if d.Lanes != 1 {
				return false
			}
		}
		return len(dec) == lanesIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecoderClassPreservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomVecTrace(seed^0x55, 200)
		dec := Collect(NewDecoder(NewSliceStream(tr)))
		// Per-class lane totals must be preserved.
		var inLanes, outLanes [NumClasses]int
		for _, in := range tr {
			inLanes[in.Class] += int(in.Lanes)
		}
		for _, d := range dec {
			outLanes[d.Class]++
		}
		return inLanes == outLanes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFuserNeverExceedsWidthProperty(t *testing.T) {
	f := func(seed uint64, widthSel uint8) bool {
		width := []int{64, 128, 256, 512, 1024, 2048}[widthSel%6]
		tr := randomVecTrace(seed^0xAA, 400)
		dec := NewDecoder(NewSliceStream(tr))
		fu := NewFuser(dec, DefaultFuserConfig(width))
		maxLanes := width / ElemBits
		for {
			in, ok := fu.Next()
			if !ok {
				return true
			}
			if int(in.Lanes) > maxLanes {
				return false
			}
			if in.Class.IsMem() && int(in.Size) != int(in.Lanes)*8 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
