// Package isa defines the instruction representation shared by the tracing
// and simulation layers, together with the paper's vectorization model:
// traced vector instructions are broken into marked scalar micro-ops
// (Decoder), and at simulation time marked micro-ops are fused back together
// up to the configured SIMD width (Fuser), including fusion across dynamic
// instances of the same static instruction when simulating widths larger
// than the traced one (paper §III, "Support for vectorization").
package isa

import "fmt"

// Class is the functional class of an instruction.
type Class uint8

// Instruction classes. Memory classes carry an address and size; FP classes
// occupy FPU ports in the core model; IntALU/IntMul occupy ALU ports.
const (
	IntALU Class = iota
	IntMul
	FPAdd
	FPMul
	FPDiv
	FPFMA
	Load
	Store
	Branch
	NumClasses
)

var classNames = [NumClasses]string{
	"intalu", "intmul", "fpadd", "fpmul", "fpdiv", "fpfma", "load", "store", "branch",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on a floating-point unit.
func (c Class) IsFP() bool { return c >= FPAdd && c <= FPFMA }

// ElemBits is the element size of the vector model. The paper compiles with
// SSE4.2 double-precision kernels, so all SIMD modeling is in 64-bit lanes.
const ElemBits = 64

// TracedWidthBits is the SIMD width of the traced binaries (SSE4.2).
const TracedWidthBits = 128

// Instr is one dynamic micro-operation in a detailed trace.
//
// PC identifies the static instruction (the fusion marker of the paper); BB
// identifies the basic block a micro-op belongs to. Lanes counts how many
// scalar elements the op carries (1 for scalar ops, >1 after fusion). For
// memory ops, Addr is the first byte touched and Size the total footprint of
// the (possibly fused) access. Dep1/Dep2 are producer distances counted in
// dynamic instructions (0 means no register dependence).
type Instr struct {
	Addr         uint64
	PC           uint32
	BB           uint32
	Dep1, Dep2   int32
	Size         uint16
	Class        Class
	Lanes        uint8
	Vectorizable bool
}

// String renders a compact human-readable form, used by musa-trace.
func (in Instr) String() string {
	s := fmt.Sprintf("pc=%d bb=%d %s x%d", in.PC, in.BB, in.Class, in.Lanes)
	if in.Class.IsMem() {
		s += fmt.Sprintf(" addr=0x%x size=%d", in.Addr, in.Size)
	}
	if in.Vectorizable {
		s += " vec"
	}
	return s
}

// Stream is a pull-based sequence of instructions. Implementations are not
// safe for concurrent use; each simulated core gets its own stream.
type Stream interface {
	// Next returns the next instruction and true, or a zero Instr and false
	// at end of stream.
	Next() (Instr, bool)
}

// SliceStream adapts a slice to a Stream.
type SliceStream struct {
	Instrs []Instr
	pos    int
}

// NewSliceStream returns a Stream over instrs.
func NewSliceStream(instrs []Instr) *SliceStream { return &SliceStream{Instrs: instrs} }

// Next implements Stream.
func (s *SliceStream) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	in := s.Instrs[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains a stream into a slice (testing and trace-dump helper).
func Collect(s Stream) []Instr {
	var out []Instr
	for {
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

// LimitStream yields at most N instructions from the underlying stream.
type LimitStream struct {
	S Stream
	N int64
}

// Next implements Stream.
func (l *LimitStream) Next() (Instr, bool) {
	if l.N <= 0 {
		return Instr{}, false
	}
	l.N--
	return l.S.Next()
}
