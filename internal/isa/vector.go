package isa

// Decoder implements the tracing-side half of the paper's vector model: it
// breaks every vector instruction (Lanes > 1) into scalar micro-ops that
// share the original PC as a fusion marker. Memory accesses are split into
// per-lane accesses of ElemBits/8 bytes at consecutive addresses.
type Decoder struct {
	S Stream

	pending Instr
	left    int
}

// NewDecoder returns a stream of scalarized micro-ops for s.
func NewDecoder(s Stream) *Decoder { return &Decoder{S: s} }

// Next implements Stream.
func (d *Decoder) Next() (Instr, bool) {
	if d.left > 0 {
		d.left--
		out := d.pending
		lane := int(d.pending.Lanes) - d.left - 1
		if out.Class.IsMem() {
			out.Addr += uint64(lane * (ElemBits / 8))
		}
		out.Lanes = 1
		return out, true
	}
	in, ok := d.S.Next()
	if !ok {
		return Instr{}, false
	}
	if in.Lanes <= 1 {
		return in, true
	}
	// Scalarize: emit lane 0 now, remember the rest.
	d.pending = in
	if in.Class.IsMem() {
		d.pending.Size = uint16(ElemBits / 8)
	}
	d.left = int(in.Lanes) - 1
	out := d.pending
	out.Lanes = 1
	return out, true
}

// FuserConfig parametrizes the simulation-side fusion model.
type FuserConfig struct {
	// WidthBits is the SIMD width to simulate (128, 256, 512, 1024, 2048 or
	// 64 to force fully scalar FPUs).
	WidthBits int
	// MinRun is the number of consecutive executions of the same basic block
	// required before cross-iteration fusion applies (paper: "we require a
	// basic block to be executed several times in a row"). Fusion up to the
	// traced width (within one block execution) is always allowed.
	MinRun int
	// MaxBlock bounds the number of micro-ops buffered per basic-block
	// execution; blocks larger than this are passed through unfused. It
	// protects the fuser against traces without block markers.
	MaxBlock int
}

// DefaultFuserConfig mirrors the settings used throughout the evaluation.
func DefaultFuserConfig(widthBits int) FuserConfig {
	return FuserConfig{WidthBits: widthBits, MinRun: 4, MaxBlock: 4096}
}

// Fuser implements the simulation-side half of the vector model. It consumes
// a scalarized stream and emits a stream where vectorizable micro-ops that
// share a static PC are fused into SIMD ops of up to WidthBits/ElemBits
// lanes. Fused memory ops keep the first lane's address and grow their Size,
// so the cache and DRAM models observe the widened footprint (the paper
// doubles request sizes when fusing two memory ops).
//
// Fusion happens in two regimes, as in the paper:
//   - within a single basic-block execution, micro-ops carrying the same PC
//     (the scalarized lanes of one traced SSE instruction) always fuse;
//   - across consecutive executions of the same basic block, micro-ops of
//     the same static instruction fuse only when the block repeats at least
//     MinRun times in a row, enabling widths beyond the traced 128 bits.
type Fuser struct {
	cfg   FuserConfig
	s     Stream
	src   []Instr // devirtualized slice source when s is a *SliceStream
	spos  int
	out   []Instr // fused ops ready for delivery
	opos  int
	buf   []Instr // lookahead: buffered raw micro-ops
	eof   bool
	stats FuserStats
}

// FuserStats counts the fusion activity, exposed for tests and reports.
type FuserStats struct {
	In     int64 // micro-ops consumed
	Out    int64 // ops emitted
	Fused  int64 // micro-ops that were folded into a wider op
	Blocks int64 // basic-block runs processed
}

// NewFuser returns a fusing stream over s. The fuser takes ownership of s:
// it may consume the stream through a devirtualized fast path that leaves
// s's own cursor untouched.
func NewFuser(s Stream, cfg FuserConfig) *Fuser {
	if cfg.WidthBits < ElemBits {
		cfg.WidthBits = ElemBits
	}
	if cfg.MinRun < 1 {
		cfg.MinRun = 1
	}
	if cfg.MaxBlock <= 0 {
		cfg.MaxBlock = 4096
	}
	f := &Fuser{cfg: cfg, s: s}
	if ss, ok := s.(*SliceStream); ok {
		// Pull straight from the slice: one dynamic dispatch and a 32-byte
		// return copy per instruction is real money on multi-million
		// instruction windows.
		f.src, f.spos = ss.Instrs, ss.pos
	}
	return f
}

// Stats returns the fusion counters accumulated so far.
func (f *Fuser) Stats() FuserStats { return f.stats }

// MaxLanes returns the lane capacity of the configured width.
func (f *Fuser) MaxLanes() int { return f.cfg.WidthBits / ElemBits }

// Next implements Stream.
func (f *Fuser) Next() (Instr, bool) {
	for f.opos >= len(f.out) {
		if !f.fill() {
			return Instr{}, false
		}
	}
	in := f.out[f.opos]
	f.opos++
	return in, true
}

// fetch pulls one raw instruction into buf; returns false at EOF.
func (f *Fuser) fetch() bool {
	if f.eof {
		return false
	}
	if f.src != nil {
		if f.spos >= len(f.src) {
			f.eof = true
			return false
		}
		f.stats.In++
		f.buf = append(f.buf, f.src[f.spos])
		f.spos++
		return true
	}
	in, ok := f.s.Next()
	if !ok {
		f.eof = true
		return false
	}
	f.stats.In++
	f.buf = append(f.buf, in)
	return true
}

// fill processes the next basic-block run from buf into out.
func (f *Fuser) fill() bool {
	f.out = f.out[:0]
	f.opos = 0
	if len(f.buf) == 0 && !f.fetch() {
		return false
	}

	bb := f.buf[0].BB
	firstPC := f.buf[0].PC

	// Gather whole executions ("bodies") of this basic block while it
	// repeats back-to-back. bodyStarts[i] is the buf index where body i
	// begins. A body begins whenever firstPC reappears.
	bodyStarts := []int{0}
	i := 1
	maxNeed := f.MaxLanes() * f.cfg.MinRun * 4 // generous lookahead bound
	for {
		if i >= len(f.buf) {
			if len(f.buf) >= f.cfg.MaxBlock || !f.fetch() {
				break
			}
		}
		in := f.buf[i]
		if in.BB != bb {
			break
		}
		if in.PC == firstPC {
			if len(bodyStarts) >= maxNeed {
				break
			}
			bodyStarts = append(bodyStarts, i)
		}
		i++
	}
	runEnd := i
	if runEnd > len(f.buf) {
		runEnd = len(f.buf)
	}
	f.stats.Blocks++

	run := f.buf[:runEnd]
	nBodies := len(bodyStarts)

	if nBodies >= f.cfg.MinRun {
		f.fuseRun(run, bodyStarts)
	} else {
		f.fuseWithinBodies(run, bodyStarts)
	}

	// Shift the consumed prefix out of buf.
	f.buf = append(f.buf[:0], f.buf[runEnd:]...)
	return len(f.out) > 0
}

// fuseWithinBodies fuses only adjacent same-PC micro-ops (the scalarized
// lanes of one traced vector instruction), capped at the traced width. This
// is the regime for blocks that do not repeat often enough.
func (f *Fuser) fuseWithinBodies(run []Instr, bodyStarts []int) {
	cap128 := TracedWidthBits / ElemBits
	maxLanes := f.MaxLanes()
	if maxLanes > cap128 {
		maxLanes = cap128
	}
	for i := 0; i < len(run); {
		in := run[i]
		if !in.Vectorizable || maxLanes == 1 {
			f.emit(in, 1)
			i++
			continue
		}
		j := i + 1
		for j < len(run) && j-i < maxLanes && run[j].PC == in.PC && run[j].Vectorizable {
			j++
		}
		f.emit(in, j-i)
		i = j
	}
}

// fuseRun performs cross-iteration fusion over a run of nBodies executions
// of one basic block: for each static instruction, dynamic instances from
// consecutive bodies are folded together up to the configured lane count.
// Every fused op keeps the address and dependencies of its group's first
// instance (the lanes are assumed unit-stride from there, as the decoder
// produced them). Non-vectorizable micro-ops (branches, address arithmetic,
// pointer chases) are emitted one per instance, preserving their own
// addresses and producer distances.
func (f *Fuser) fuseRun(run []Instr, bodyStarts []int) {
	maxLanes := f.MaxLanes()

	// Slot order = encounter order of static PCs in the first body.
	end0 := len(run)
	if len(bodyStarts) > 1 {
		end0 = bodyStarts[1]
	}
	slotOf := map[uint32]int{}
	var order []uint32
	for _, in := range run[:end0] {
		if _, ok := slotOf[in.PC]; !ok {
			slotOf[in.PC] = len(order)
			order = append(order, in.PC)
		}
	}
	// Gather instances per slot across the whole run. Instructions whose PC
	// did not appear in the first body (ragged bodies) get new slots.
	instances := make([][]Instr, len(order))
	for _, in := range run {
		s, ok := slotOf[in.PC]
		if !ok {
			s = len(instances)
			slotOf[in.PC] = s
			order = append(order, in.PC)
			instances = append(instances, nil)
		}
		instances[s] = append(instances[s], in)
	}

	for s := range instances {
		ins := instances[s]
		if len(ins) == 0 {
			continue
		}
		if !ins[0].Vectorizable {
			for _, in := range ins {
				f.emit(in, 1)
			}
			continue
		}
		for i := 0; i < len(ins); i += maxLanes {
			lanes := maxLanes
			if i+lanes > len(ins) {
				lanes = len(ins) - i
			}
			f.emit(ins[i], lanes)
		}
	}
}

// emit writes one (possibly fused) op to the output buffer.
func (f *Fuser) emit(in Instr, lanes int) {
	out := in
	out.Lanes = uint8(lanes)
	if in.Class.IsMem() {
		out.Size = uint16(lanes * (ElemBits / 8))
	}
	f.out = append(f.out, out)
	f.stats.Out++
	f.stats.Fused += int64(lanes - 1)
}
