package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"musa/internal/cache"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/node"
	"musa/internal/store/lsm"
	"musa/internal/trace"
)

// This file is the artifact namespace of the store: a content-addressed
// cache of the sweep runner's expensive intermediates (cache hit-rate
// tables, DRAM latency models, burst traces), sitting alongside the
// measurement log. Keys are the canonical artifact addresses of internal/dse
// (HitRateKey, LatencyModelKey, BurstKey); blobs are self-describing
// JSON envelopes, so they can travel over HTTP (musa-serve's
// GET/PUT /artifact/{key}) byte-for-byte.
//
// Unlike the measurement store, the artifact directory is not flock'd to
// one process: blobs are multi-MB and multi-writer (the coordinator, local
// CLIs and demo workers share one directory), so they live in the engine's
// value-separated blob heap (lsm.Blobs) — whole files published by atomic
// rename, a reader sees a complete artifact or none — rather than in the
// single-writer LSM tree.

// artifactSchemaName is the version marker's file name inside the artifact
// directory (the marker value is dse.ArtifactSchemaVersion).
const artifactSchemaName = "schema"

// In-memory bounds of the decoded front and the raw-blob map. Hit-rate
// tables dominate memory (one byte per sample instruction, a few hundred KB
// each at default fidelity); the other kinds are small. Eviction is FIFO —
// an artifact cache only ever changes how fast results arrive, never what
// they are.
const (
	maxResidentHitRates = 128
	maxResidentLatency  = 4096
	maxResidentBursts   = 128
	maxResidentRawBlobs = 256
	// maxResidentRawBytes additionally bounds the memory-only raw map by
	// size, so a long-lived client cannot pin hundreds of MB of encoded
	// blobs.
	maxResidentRawBytes = 256 << 20
)

// ArtifactKindStats counts one artifact kind's traffic.
type ArtifactKindStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// ArtifactStats is a snapshot of an ArtifactCache's counters.
type ArtifactStats struct {
	HitRates      ArtifactKindStats `json:"hitRates"`
	LatencyModels ArtifactKindStats `json:"latencyModels"`
	Bursts        ArtifactKindStats `json:"bursts"`
	// BytesRead / BytesWritten count encoded blob traffic (disk or the
	// in-memory raw map), not decoded sizes.
	BytesRead    int64 `json:"bytesRead"`
	BytesWritten int64 `json:"bytesWritten"`
	// Entries is the number of distinct artifacts held (on disk or in the
	// raw map).
	Entries int `json:"entries"`
}

// artifactEnvelope is the wire form of one artifact blob: a schema marker,
// the content address the blob was built for, the kind, and the
// kind-specific payload. Key is embedded because an artifact key hashes
// build *inputs*, not the blob — without it, a structurally valid blob
// stored under the wrong key (a buggy pusher, a renamed file) would be
// served as a different artifact and silently poison measurements.
// PutBlob and every typed read check it.
type artifactEnvelope struct {
	Schema int              `json:"schema"`
	Key    string           `json:"key"`
	Kind   dse.ArtifactKind `json:"kind"`
	Data   json.RawMessage  `json:"data"`
}

// hitRatesWire is the payload of an ArtifactHitRates blob. Levels — the
// bulk of the artifact, one cache.Level byte per sample instruction — rides
// as base64 via encoding/json. The encoding is exact: decode(encode(t)) is
// bitwise t, which the warm-equals-cold dataset guarantee rests on.
type hitRatesWire struct {
	Levels    []byte                `json:"levels"`
	L1        cache.Stats           `json:"l1"`
	L2        cache.Stats           `json:"l2"`
	L3        cache.Stats           `json:"l3"`
	MemReads  int64                 `json:"memReads"`
	MemWrites int64                 `json:"memWrites"`
	HierCfg   cache.HierarchyConfig `json:"hierCfg"`
}

// ArtifactCache is the process-wide artifact cache: a bounded in-memory
// front of decoded artifacts over an optional on-disk blob directory. With
// an empty directory it is memory-only — raw blobs are retained (bounded)
// so they can still be served to fleet workers and over HTTP. All methods
// are safe for concurrent use. It implements dse.ArtifactProvider.
type ArtifactCache struct {
	dir   string     // "" = memory-only
	blobs *lsm.Blobs // nil when memory-only

	mu       sync.Mutex
	keys     map[string]bool   // artifacts present (disk or raw map)
	raw      map[string][]byte // memory-only blob storage (dir == "")
	rawOrder []string
	rawBytes int64
	hit      map[string]node.HitRateTable
	hitOrder []string
	lat      map[string]dram.LatencyModel
	latOrder []string
	burst    map[string]*trace.Burst
	burstOrd []string

	stats    ArtifactStats
	firstErr error
}

var _ dse.ArtifactProvider = (*ArtifactCache)(nil)

// OpenArtifacts opens (creating if needed) the artifact cache rooted at
// dir; an empty dir yields a memory-only cache. A directory written under a
// different artifact schema version is refused — delete it to rebuild.
func OpenArtifacts(dir string) (*ArtifactCache, error) {
	c := &ArtifactCache{
		dir:   dir,
		keys:  map[string]bool{},
		hit:   map[string]node.HitRateTable{},
		lat:   map[string]dram.LatencyModel{},
		burst: map[string]*trace.Burst{},
	}
	if dir == "" {
		c.raw = map[string][]byte{}
		return c, nil
	}
	blobs, err := lsm.OpenBlobs(dir)
	if err != nil {
		return nil, fmt.Errorf("store: artifacts: %w", err)
	}
	if err := checkArtifactSchema(dir); err != nil {
		return nil, err
	}
	names, err := blobs.List()
	if err != nil {
		return nil, fmt.Errorf("store: artifacts: %w", err)
	}
	for _, name := range names {
		if key, ok := strings.CutSuffix(name, ".json"); ok && validArtifactKey(key) {
			c.keys[key] = true
		}
	}
	c.blobs = blobs
	c.stats.Entries = len(c.keys)
	return c, nil
}

// checkArtifactSchema stamps an empty directory with the current artifact
// schema version and refuses one stamped (or populated) under another.
func checkArtifactSchema(dir string) error {
	marker := filepath.Join(dir, artifactSchemaName)
	raw, err := os.ReadFile(marker)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return fmt.Errorf("store: artifacts: %w", err)
	default:
		v, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("store: artifacts: unreadable schema marker %s: %q", marker, raw)
		}
		if v != dse.ArtifactSchemaVersion {
			return fmt.Errorf("store: artifacts: %s holds schema v%d artifacts, current is v%d; delete the directory to rebuild it",
				dir, v, dse.ArtifactSchemaVersion)
		}
		return nil
	}
	if err := os.WriteFile(marker, []byte(strconv.Itoa(dse.ArtifactSchemaVersion)+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: artifacts: %w", err)
	}
	return nil
}

// validArtifactKey reports whether key looks like a content address (hex
// SHA-256): the HTTP layer and the directory scan share this gate.
func validArtifactKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// ValidArtifactKey reports whether key is a well-formed artifact content
// address.
func ValidArtifactKey(key string) bool { return validArtifactKey(key) }

// Err returns the first blob write/read error the cache swallowed (the
// cache is best-effort: a failing disk degrades it to rebuild-every-time
// rather than failing sweeps).
func (c *ArtifactCache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

// Stats returns a snapshot of the cache counters.
func (c *ArtifactCache) Stats() ArtifactStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.keys)
	return s
}

// Len returns the number of distinct artifacts held.
func (c *ArtifactCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keys)
}

func (c *ArtifactCache) noteErr(err error) {
	if err != nil && c.firstErr == nil {
		c.firstErr = err
	}
}

// blobFor returns the raw blob under key. It manages its own locking and
// performs the disk read outside the lock — a multi-MB file read must not
// stall concurrent lookups from sweep workers. The caller must NOT hold
// c.mu.
func (c *ArtifactCache) blobFor(key string) ([]byte, bool) {
	c.mu.Lock()
	if !c.keys[key] {
		c.mu.Unlock()
		return nil, false
	}
	if c.dir == "" {
		b, ok := c.raw[key]
		if ok {
			c.stats.BytesRead += int64(len(b))
		}
		c.mu.Unlock()
		return b, ok
	}
	c.mu.Unlock()
	b, err := c.blobs.Get(key + ".json")
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			c.noteErr(fmt.Errorf("store: artifacts: %w", err))
		}
		delete(c.keys, key)
		return nil, false
	}
	c.stats.BytesRead += int64(len(b))
	return b, true
}

// persistBlob stores the raw blob under key. It manages its own locking
// and performs the disk write outside the lock. The caller must NOT hold
// c.mu.
func (c *ArtifactCache) persistBlob(key string, blob []byte) {
	if c.dir == "" {
		c.mu.Lock()
		defer c.mu.Unlock()
		if old, exists := c.raw[key]; !exists {
			c.rawOrder = append(c.rawOrder, key)
			c.rawBytes += int64(len(blob))
		} else {
			c.rawBytes += int64(len(blob)) - int64(len(old))
		}
		c.raw[key] = blob
		c.keys[key] = true
		// Enforce both bounds on insert and replace alike (a replacement
		// with a larger blob grows the map too). The loop may evict the
		// just-written key if it alone busts the byte bound; keys and raw
		// stay consistent either way.
		for len(c.rawOrder) > maxResidentRawBlobs || c.rawBytes > maxResidentRawBytes {
			evict := c.rawOrder[0]
			c.rawOrder = c.rawOrder[1:]
			c.rawBytes -= int64(len(c.raw[evict]))
			delete(c.raw, evict)
			delete(c.keys, evict)
		}
		c.stats.BytesWritten += int64(len(blob))
		return
	}
	err := c.blobs.Put(key+".json", blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.noteErr(fmt.Errorf("store: artifacts: %w", err))
		return
	}
	c.keys[key] = true
	c.stats.BytesWritten += int64(len(blob))
}

// Blob returns the encoded artifact under key, byte-for-byte as stored —
// the payload of GET /artifact/{key} and of coordinator-to-worker pushes.
func (c *ArtifactCache) Blob(key string) ([]byte, bool) {
	return c.blobFor(key)
}

// PutBlob validates and stores an encoded artifact received from outside
// (PUT /artifact/{key}): the blob must parse as a current-schema envelope
// with a decodable payload, so a corrupt or stale upload is refused at the
// boundary rather than poisoning later sweeps.
func (c *ArtifactCache) PutBlob(key string, blob []byte) error {
	if !validArtifactKey(key) {
		return fmt.Errorf("store: artifacts: bad key %q", key)
	}
	env, err := decodeEnvelope(key, blob)
	if err != nil {
		return err
	}
	// Decode the payload fully before taking the lock — a bulky decode must
	// not stall concurrent sweep-worker lookups — and populate the decoded
	// front with the result, so a pushed artifact is served without a second
	// decode.
	var insert func()
	switch env.Kind {
	case dse.ArtifactHitRates:
		t, err := decodeHitRates(env.Data)
		if err != nil {
			return err
		}
		insert = func() { c.frontHitRates(key, t); c.stats.HitRates.Puts++ }
	case dse.ArtifactLatencyModel:
		var m dram.LatencyModel
		if err := json.Unmarshal(env.Data, &m); err != nil {
			return fmt.Errorf("store: artifacts: latency model payload: %w", err)
		}
		insert = func() { c.frontLatency(key, m); c.stats.LatencyModels.Puts++ }
	case dse.ArtifactBurst:
		var b trace.Burst
		if err := json.Unmarshal(env.Data, &b); err != nil {
			return fmt.Errorf("store: artifacts: burst payload: %w", err)
		}
		if err := b.Validate(); err != nil {
			return fmt.Errorf("store: artifacts: %w", err)
		}
		insert = func() { c.frontBurst(key, &b); c.stats.Bursts.Puts++ }
	default:
		return fmt.Errorf("store: artifacts: unknown kind %q", env.Kind)
	}
	c.persistBlob(key, blob)
	c.mu.Lock()
	insert()
	c.mu.Unlock()
	return nil
}

// decodeEnvelope parses and validates a blob claimed to hold the artifact
// addressed by key: schema version and key binding are both enforced.
func decodeEnvelope(key string, blob []byte) (artifactEnvelope, error) {
	var env artifactEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return env, fmt.Errorf("store: artifacts: bad envelope: %w", err)
	}
	if env.Schema != dse.ArtifactSchemaVersion {
		return env, fmt.Errorf("store: artifacts: blob has schema v%d, current is v%d",
			env.Schema, dse.ArtifactSchemaVersion)
	}
	if env.Key != key {
		return env, fmt.Errorf("store: artifacts: blob was built for key %s, stored under %s", env.Key, key)
	}
	return env, nil
}

func encodeEnvelope(key string, kind dse.ArtifactKind, payload any) []byte {
	data, err := json.Marshal(payload)
	if err != nil {
		// All payloads are trees of plain exported fields.
		panic(fmt.Sprintf("store: marshal %s artifact: %v", kind, err))
	}
	blob, err := json.Marshal(artifactEnvelope{
		Schema: dse.ArtifactSchemaVersion, Key: key, Kind: kind, Data: data,
	})
	if err != nil {
		panic(fmt.Sprintf("store: marshal %s envelope: %v", kind, err))
	}
	return blob
}

func decodeHitRates(data []byte) (node.HitRateTable, error) {
	var w hitRatesWire
	if err := json.Unmarshal(data, &w); err != nil {
		return node.HitRateTable{}, fmt.Errorf("store: artifacts: hit-rate payload: %w", err)
	}
	for i, lvl := range w.Levels {
		if lvl > uint8(cache.LevelMem) {
			return node.HitRateTable{}, fmt.Errorf("store: artifacts: hit-rate level %d at instr %d out of range", lvl, i)
		}
	}
	return node.HitRateTable{
		Levels: w.Levels,
		L1:     w.L1, L2: w.L2, L3: w.L3,
		MemReads: w.MemReads, MemWrites: w.MemWrites,
		HierCfg: w.HierCfg,
	}, nil
}

func encodeHitRates(key string, t node.HitRateTable) []byte {
	return encodeEnvelope(key, dse.ArtifactHitRates, hitRatesWire{
		Levels: t.Levels,
		L1:     t.L1, L2: t.L2, L3: t.L3,
		MemReads: t.MemReads, MemWrites: t.MemWrites,
		HierCfg: t.HierCfg,
	})
}

// frontHitRates/frontLatency/frontBurst insert into the decoded FIFO
// fronts. Caller holds c.mu.
func (c *ArtifactCache) frontHitRates(key string, t node.HitRateTable) {
	if _, ok := c.hit[key]; !ok {
		c.hitOrder = append(c.hitOrder, key)
		for len(c.hitOrder) > maxResidentHitRates {
			delete(c.hit, c.hitOrder[0])
			c.hitOrder = c.hitOrder[1:]
		}
	}
	c.hit[key] = t
}

func (c *ArtifactCache) frontLatency(key string, m dram.LatencyModel) {
	if _, ok := c.lat[key]; !ok {
		c.latOrder = append(c.latOrder, key)
		for len(c.latOrder) > maxResidentLatency {
			delete(c.lat, c.latOrder[0])
			c.latOrder = c.latOrder[1:]
		}
	}
	c.lat[key] = m
}

func (c *ArtifactCache) frontBurst(key string, b *trace.Burst) {
	if _, ok := c.burst[key]; !ok {
		c.burstOrd = append(c.burstOrd, key)
		for len(c.burstOrd) > maxResidentBursts {
			delete(c.burst, c.burstOrd[0])
			c.burstOrd = c.burstOrd[1:]
		}
	}
	c.burst[key] = b
}

// dropCorrupt evicts a blob whose payload failed to decode and records the
// failure: without this, a corrupt file would be re-read and re-failed on
// every lookup forever, with ArtifactErr staying silent. The next Put under
// the key simply rewrites it.
func (c *ArtifactCache) dropCorrupt(key string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.keys, key)
	if c.dir == "" {
		if old, ok := c.raw[key]; ok {
			c.rawBytes -= int64(len(old))
			delete(c.raw, key)
		}
	}
	c.noteErr(fmt.Errorf("store: artifacts: corrupt blob %s: %w", key, err))
}

// miss counts a miss for one kind under the lock.
func (c *ArtifactCache) miss(k *ArtifactKindStats) {
	c.mu.Lock()
	k.Misses++
	c.mu.Unlock()
}

// HitRates implements dse.ArtifactProvider.
func (c *ArtifactCache) HitRates(key string) (node.HitRateTable, bool) {
	c.mu.Lock()
	if t, ok := c.hit[key]; ok {
		c.stats.HitRates.Hits++
		c.mu.Unlock()
		return t, true
	}
	c.mu.Unlock()
	blob, ok := c.blobFor(key)
	if ok {
		// Decode outside the lock: tables are hundreds of KB and concurrent
		// sweep workers must not serialize behind the decode.
		env, err := decodeEnvelope(key, blob)
		if err == nil && env.Kind == dse.ArtifactHitRates {
			t, derr := decodeHitRates(env.Data)
			if derr == nil {
				c.mu.Lock()
				c.frontHitRates(key, t)
				c.stats.HitRates.Hits++
				c.mu.Unlock()
				return t, true
			}
			err = derr
		}
		if err != nil {
			c.dropCorrupt(key, err)
		}
	}
	c.miss(&c.stats.HitRates)
	return node.HitRateTable{}, false
}

// PutHitRates implements dse.ArtifactProvider.
func (c *ArtifactCache) PutHitRates(key string, t node.HitRateTable) {
	blob := encodeHitRates(key, t)
	c.persistBlob(key, blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frontHitRates(key, t)
	c.stats.HitRates.Puts++
}

// LatencyModel implements dse.ArtifactProvider.
func (c *ArtifactCache) LatencyModel(key string) (dram.LatencyModel, bool) {
	c.mu.Lock()
	if m, ok := c.lat[key]; ok {
		c.stats.LatencyModels.Hits++
		c.mu.Unlock()
		return m, true
	}
	c.mu.Unlock()
	blob, ok := c.blobFor(key)
	if ok {
		env, err := decodeEnvelope(key, blob)
		if err == nil && env.Kind == dse.ArtifactLatencyModel {
			var m dram.LatencyModel
			if derr := json.Unmarshal(env.Data, &m); derr == nil {
				c.mu.Lock()
				c.frontLatency(key, m)
				c.stats.LatencyModels.Hits++
				c.mu.Unlock()
				return m, true
			} else {
				err = derr
			}
		}
		if err != nil {
			c.dropCorrupt(key, err)
		}
	}
	c.miss(&c.stats.LatencyModels)
	return dram.LatencyModel{}, false
}

// PutLatencyModel implements dse.ArtifactProvider.
func (c *ArtifactCache) PutLatencyModel(key string, m dram.LatencyModel) {
	blob := encodeEnvelope(key, dse.ArtifactLatencyModel, m)
	c.persistBlob(key, blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frontLatency(key, m)
	c.stats.LatencyModels.Puts++
}

// Burst implements dse.ArtifactProvider.
func (c *ArtifactCache) Burst(key string) (*trace.Burst, bool) {
	c.mu.Lock()
	if b, ok := c.burst[key]; ok {
		c.stats.Bursts.Hits++
		c.mu.Unlock()
		return b, true
	}
	c.mu.Unlock()
	blob, ok := c.blobFor(key)
	if ok {
		env, err := decodeEnvelope(key, blob)
		if err == nil && env.Kind == dse.ArtifactBurst {
			var b trace.Burst
			derr := json.Unmarshal(env.Data, &b)
			if derr == nil {
				derr = b.Validate()
			}
			if derr == nil {
				c.mu.Lock()
				c.frontBurst(key, &b)
				c.stats.Bursts.Hits++
				c.mu.Unlock()
				return &b, true
			}
			err = derr
		}
		if err != nil {
			c.dropCorrupt(key, err)
		}
	}
	c.miss(&c.stats.Bursts)
	return nil, false
}

// PutBurst implements dse.ArtifactProvider.
func (c *ArtifactCache) PutBurst(key string, b *trace.Burst) {
	blob := encodeEnvelope(key, dse.ArtifactBurst, b)
	c.persistBlob(key, blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frontBurst(key, b)
	c.stats.Bursts.Puts++
}
