// Package store persists design-space-exploration measurements in a
// content-addressed result store. A simulation request hashes to a stable
// key — since schema v3 the key is the SHA-256 of the canonical
// musa.Experiment encoding, computed by the caller — and completed
// measurements land in an embedded LSM engine (internal/store/lsm): a
// WAL-backed memtable flushing to bloom-filtered sorted segments, so a
// killed sweep resumes from its checkpoint and repeated sweeps become
// cache hits. An LRU front keeps hot decoded entries in memory; misses
// fall to the engine. The store is multi-process by design: one writer
// owns a directory (advisory flock), while any number of read-only opens
// follow the writer's published segments. Pre-engine JSONL stores migrate
// in place on first writer open.
package store

import (
	"bufio"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"musa/internal/dse"
	"musa/internal/store/lsm"
)

// SchemaVersion identifies the stored measurement encoding and the key
// derivation. It is bumped whenever dse.Measurement or the request key
// fields change shape — v2 added the cluster-level replay fields, v3 moved
// key derivation onto the canonical musa.Experiment encoding (and added the
// per-measurement IPC field), so v2 keys no longer address v3 results.
// Open refuses a store written under a different version instead of
// silently misreading it (an old log would unmarshal with zeroed fields, or
// simply never hit, and quietly poison resumed sweeps). The engine swap
// under v3 did not bump it: keys and measurement bytes are unchanged, only
// their container moved, and the old container migrates losslessly.
const SchemaVersion = 3

// schemaName is the version marker's file name inside the store directory.
const schemaName = "schema"

// LogName is the pre-engine JSONL measurement log's file name inside the
// store directory; a writer open migrates it into the engine and renames
// it to LogName+migratedSuffix.
const LogName = "results.jsonl"

// migratedSuffix marks a JSONL log whose contents now live in the engine.
const migratedSuffix = ".migrated"

// ErrStoreBusy reports a second writer open of a live store directory.
// Readers are never refused: open with Options.ReadOnly to share a
// directory another process is writing.
var ErrStoreBusy = errors.New("store busy: already open for writing by another process")

// Bind wires st into a sweep's options: unless recompute is set, o.Lookup
// serves stored measurements, and o.OnMeasurement checkpoints each freshly
// simulated one. keyOf maps each sweep point onto its content address — the
// canonical-experiment key shared with single-measurement requests, so a
// sweep's checkpoints are hits for later single-point requests and vice
// versa. The returned function reports the first checkpoint write error and
// must be called after dse.Run returns.
func Bind(st *Store, keyOf func(app string, p dse.ArchPoint) string, o *dse.Options, recompute bool) func() error {
	if !recompute {
		o.Lookup = func(app string, p dse.ArchPoint) (dse.Measurement, bool) {
			return st.Get(keyOf(app, p))
		}
	}
	var mu sync.Mutex
	var firstErr error
	o.OnMeasurement = func(m dse.Measurement) {
		if err := st.Put(keyOf(m.App, m.Arch), m); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
}

// Options tunes a Store.
type Options struct {
	// LRUEntries bounds the in-memory front (0 = 4096).
	LRUEntries int
	// ReadOnly opens the store without taking the writer lock: the handle
	// follows segments another process publishes and never touches disk.
	// Put still populates the LRU front, so a read-only serve replica keeps
	// its own computed results hot in memory.
	ReadOnly bool
	// MemtableBytes overrides the engine's memtable flush threshold
	// (0 = engine default). Tests use tiny values to exercise flushes.
	MemtableBytes int
	// BlockCacheBytes overrides the engine's inflated-block cache bound
	// (0 = engine default, <0 disables) — the knob replicas tune when they
	// share a machine's memory budget.
	BlockCacheBytes int64
	// OnCompaction, if set, observes each background compaction's duration
	// in seconds (the metrics bridge).
	OnCompaction func(seconds float64)
}

// entry is one record of the legacy JSONL log. M stays raw during
// migration so the measurement bytes written under schema v3 are carried
// into the engine untouched.
type entry struct {
	K string          `json:"k"`
	M json.RawMessage `json:"m"`
}

// Store is a content-addressed measurement store: an LSM engine under an
// in-memory LRU front of decoded measurements. All methods are safe for
// concurrent use; engine reads from different goroutines proceed in
// parallel (mu guards only the LRU).
type Store struct {
	db       *lsm.DB
	readOnly bool

	mu  sync.Mutex
	lru *lruCache

	// jsonl is a frozen read view of an unmigrated legacy log, consulted
	// after an engine miss. Only read-only opens populate it (they cannot
	// migrate); it is immutable after Open, so reads take no lock.
	jsonl     map[string]json.RawMessage
	jsonlOnly int // jsonl keys absent from the engine at open
}

// Open creates dir if needed, migrates any pre-engine JSONL log into the
// engine, and returns the store. One process owns a directory for writing
// at a time: Open takes an advisory flock and fails fast with ErrStoreBusy
// if another writer holds it (the kernel releases the lock when the holder
// exits, however it dies, so a killed sweep never wedges the store).
// Opens with Options.ReadOnly never take the lock and never fail busy.
func Open(dir string, opts Options) (*Store, error) {
	if opts.ReadOnly {
		return openReadOnly(dir, opts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := checkSchema(dir, false); err != nil {
		return nil, err
	}
	db, err := lsm.Open(dir, lsm.Options{
		MemtableBytes:   opts.MemtableBytes,
		BlockCacheBytes: opts.BlockCacheBytes,
		OnCompaction:    opts.OnCompaction,
	})
	if err != nil {
		if errors.Is(err, lsm.ErrBusy) {
			return nil, fmt.Errorf("store: %s: %w", dir, ErrStoreBusy)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{db: db, lru: newLRU(lruMax(opts))}
	if err := s.migrate(dir); err != nil {
		db.Close()
		return nil, err
	}
	s.warmLRU()
	return s, nil
}

func lruMax(opts Options) int {
	if opts.LRUEntries > 0 {
		return opts.LRUEntries
	}
	return 4096
}

// openReadOnly opens a reader handle: no lock, no writes, no migration.
// An unmigrated legacy log (only possible when no writer has opened the
// directory since the engine landed) is loaded as a frozen read view.
func openReadOnly(dir string, opts Options) (*Store, error) {
	if err := checkSchema(dir, true); err != nil {
		return nil, err
	}
	db, err := lsm.Open(dir, lsm.Options{
		ReadOnly:        true,
		BlockCacheBytes: opts.BlockCacheBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{db: db, readOnly: true, lru: newLRU(lruMax(opts))}
	if view, err := readJSONL(filepath.Join(dir, LogName)); err != nil {
		db.Close()
		return nil, err
	} else if len(view) > 0 {
		s.jsonl = view
		for k := range view {
			if !db.Has(k) {
				s.jsonlOnly++
			}
		}
	}
	return s, nil
}

// checkSchema enforces the on-disk schema version: a store directory with
// existing results must carry a matching version marker (results without
// one predate versioning entirely), and an empty directory is stamped with
// the current version — by writers only; a read-only open of a virgin
// directory leaves it untouched.
func checkSchema(dir string, readOnly bool) error {
	marker := filepath.Join(dir, schemaName)
	raw, err := os.ReadFile(marker)
	switch {
	case os.IsNotExist(err):
		if fi, serr := os.Stat(filepath.Join(dir, LogName)); serr == nil && fi.Size() > 0 {
			return fmt.Errorf("store: %s was written before schema versioning (current v%d); delete the directory to rebuild it",
				dir, SchemaVersion)
		}
	case err != nil:
		return fmt.Errorf("store: %w", err)
	default:
		v, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("store: unreadable schema marker %s: %q", marker, raw)
		}
		if v != SchemaVersion {
			return fmt.Errorf("store: %s holds schema v%d results, current is v%d; delete the directory to rebuild it",
				dir, v, SchemaVersion)
		}
		return nil
	}
	if readOnly {
		return nil
	}
	if err := os.WriteFile(marker, []byte(strconv.Itoa(SchemaVersion)+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// readJSONL scans a legacy log into a last-write-wins map of raw
// measurement bytes. Records truncated by a kill mid-append, and any
// garbage, are skipped — exactly the tolerance the JSONL store had. A
// missing file yields a nil map.
func readJSONL(path string) (map[string]json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	view := map[string]json.RawMessage{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.K == "" || len(e.M) == 0 {
			continue
		}
		view[e.K] = e.M
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	return view, nil
}

// migrate folds dir's legacy JSONL log into the engine, preserving each
// measurement's stored bytes, then renames the log out of the way. The
// rename happens only after the engine has flushed the records to
// segments, so a kill anywhere re-runs the (idempotent) migration.
func (s *Store) migrate(dir string) error {
	path := filepath.Join(dir, LogName)
	view, err := readJSONL(path)
	if err != nil {
		return err
	}
	if view == nil {
		return nil
	}
	for k, m := range view {
		if err := s.db.Put(k, m); err != nil {
			return fmt.Errorf("store: migrate %s: %w", path, err)
		}
	}
	if err := s.db.Flush(); err != nil {
		return fmt.Errorf("store: migrate %s: %w", path, err)
	}
	if err := os.Rename(path, path+migratedSuffix); err != nil {
		return fmt.Errorf("store: migrate %s: %w", path, err)
	}
	return nil
}

// errWarmFull stops the open-time LRU warm once the front is full.
var errWarmFull = errors.New("store: lru warm full")

// warmLRU preloads the front from the engine, matching the old store's
// open-time warm so a resumed sweep starts hot.
func (s *Store) warmLRU() {
	n := 0
	_ = s.db.Scan(func(k string, v []byte) error {
		if n >= s.lru.max {
			return errWarmFull
		}
		var m dse.Measurement
		if json.Unmarshal(v, &m) == nil {
			s.lru.add(k, m)
			n++
		}
		return nil
	})
}

// Get returns the measurement stored under key. Engine read errors are
// reported as misses; the caller recomputes and overwrites.
func (s *Store) Get(key string) (dse.Measurement, bool) {
	s.mu.Lock()
	if m, ok := s.lru.get(key); ok {
		s.mu.Unlock()
		return m, true
	}
	s.mu.Unlock()
	raw, ok := s.db.Get(key)
	if !ok {
		if r, legacy := s.jsonl[key]; legacy {
			raw = r
		} else {
			return dse.Measurement{}, false
		}
	}
	var m dse.Measurement
	if err := json.Unmarshal(raw, &m); err != nil {
		return dse.Measurement{}, false
	}
	s.mu.Lock()
	s.lru.add(key, m)
	s.mu.Unlock()
	return m, true
}

// Has reports whether key is stored without touching the LRU.
func (s *Store) Has(key string) bool {
	if s.db.Has(key) {
		return true
	}
	_, ok := s.jsonl[key]
	return ok
}

// Put stores the measurement under key. Each Put is one write to the
// engine's WAL, so a completed measurement survives a kill immediately
// after. On a read-only handle Put only populates the in-memory front —
// the result stays served hot locally while the owning writer remains the
// sole mutator of the directory.
func (s *Store) Put(key string, m dse.Measurement) error {
	if !s.readOnly {
		raw, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.db.Put(key, raw); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.mu.Lock()
	s.lru.add(key, m)
	s.mu.Unlock()
	return nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	return s.db.Len() + s.jsonlOnly
}

// Flush forces buffered writes into a published segment so read-only
// handles in other processes can see them; the engine also flushes on its
// own as the memtable fills.
func (s *Store) Flush() error {
	if s.readOnly {
		return nil
	}
	return s.db.Flush()
}

// Drain flushes buffered writes and waits for the engine's background
// maintenance (flushes, compactions) to go idle. Benchmarks quiesce the
// store with it before measuring.
func (s *Store) Drain() error {
	if s.readOnly {
		return nil
	}
	return s.db.Drain()
}

// ReadOnly reports whether this handle was opened read-only.
func (s *Store) ReadOnly() bool { return s.readOnly }

// EngineStats returns a snapshot of the LSM engine's counters.
func (s *Store) EngineStats() lsm.Stats {
	return s.db.Stats()
}

// Close releases the engine (flushing buffered writes on a writer handle)
// and, for writers, the directory lock.
func (s *Store) Close() error {
	return s.db.Close()
}

// lruCache is a minimal LRU of measurements keyed by content address.
type lruCache struct {
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	m   dse.Measurement
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (dse.Measurement, bool) {
	el, ok := c.items[key]
	if !ok {
		return dse.Measurement{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).m, true
}

func (c *lruCache) add(key string, m dse.Measurement) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).m = m
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, m: m})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// lruLen reports the resident entry count (used by eviction tests).
func (c *lruCache) len() int { return c.ll.Len() }
