// Package store persists design-space-exploration measurements in a
// content-addressed result store. A simulation request hashes to a stable
// key — since schema v3 the key is the SHA-256 of the canonical
// musa.Experiment encoding, computed by the caller — and completed
// measurements are appended to a JSONL log on disk as they finish, so a
// killed sweep resumes from its checkpoint and repeated sweeps become cache
// hits. An LRU front keeps hot entries in memory; misses fall back to the
// on-disk log via a byte-offset index. The log is compacted on open:
// superseded and truncated records are dropped and the file rewritten.
package store

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"musa/internal/dse"
)

// SchemaVersion identifies the on-disk measurement encoding and the key
// derivation. It is bumped whenever dse.Measurement or the request key
// fields change shape — v2 added the cluster-level replay fields, v3 moved
// key derivation onto the canonical musa.Experiment encoding (and added the
// per-measurement IPC field), so v2 keys no longer address v3 results.
// Open refuses a store written under a different version instead of
// silently misreading it (an old log would unmarshal with zeroed fields, or
// simply never hit, and quietly poison resumed sweeps).
const SchemaVersion = 3

// schemaName is the version marker's file name inside the store directory.
const schemaName = "schema"

// Bind wires st into a sweep's options: unless recompute is set, o.Lookup
// serves stored measurements, and o.OnMeasurement checkpoints each freshly
// simulated one. keyOf maps each sweep point onto its content address — the
// canonical-experiment key shared with single-measurement requests, so a
// sweep's checkpoints are hits for later single-point requests and vice
// versa. The returned function reports the first checkpoint write error and
// must be called after dse.Run returns.
func Bind(st *Store, keyOf func(app string, p dse.ArchPoint) string, o *dse.Options, recompute bool) func() error {
	if !recompute {
		o.Lookup = func(app string, p dse.ArchPoint) (dse.Measurement, bool) {
			return st.Get(keyOf(app, p))
		}
	}
	var mu sync.Mutex
	var firstErr error
	o.OnMeasurement = func(m dse.Measurement) {
		if err := st.Put(keyOf(m.App, m.Arch), m); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
}

// Options tunes a Store.
type Options struct {
	// LRUEntries bounds the in-memory front (0 = 4096).
	LRUEntries int
}

// entry is one JSONL record.
type entry struct {
	K string          `json:"k"`
	M dse.Measurement `json:"m"`
}

// rec locates one live record in the log.
type rec struct {
	off, n int64
}

// Store is a content-addressed measurement store: an append-only JSONL log
// with an in-memory LRU front. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	path string
	lock *os.File // flock'd .lock file: one process per store
	w    *os.File // O_APPEND write handle
	r    *os.File // read handle for LRU misses
	end  int64    // current log length
	idx  map[string]rec
	lru  *lruCache
}

// LogName is the measurement log's file name inside the store directory.
const LogName = "results.jsonl"

// Open creates dir if needed, loads and compacts the measurement log, and
// returns the store. A store directory is owned by one process at a time
// (the CLI and the server share a directory sequentially, never
// concurrently): Open takes an advisory flock on dir/.lock and fails fast
// if another process holds it. The kernel releases the lock when the
// holder exits, however it dies, so a killed sweep never wedges the store.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", dir, err)
	}
	if err := checkSchema(dir); err != nil {
		lock.Close()
		return nil, err
	}
	max := opts.LRUEntries
	if max <= 0 {
		max = 4096
	}
	s := &Store{
		path: filepath.Join(dir, LogName),
		lock: lock,
		idx:  map[string]rec{},
		lru:  newLRU(max),
	}
	if err := s.load(); err != nil {
		lock.Close()
		return nil, err
	}
	w, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	r, err := os.Open(s.path)
	if err != nil {
		w.Close()
		lock.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.w, s.r = w, r
	return s, nil
}

// checkSchema enforces the on-disk schema version: a store directory with
// an existing log must carry a matching version marker (a log without one
// predates versioning entirely), and an empty directory is stamped with the
// current version. Called with the directory lock held.
func checkSchema(dir string) error {
	marker := filepath.Join(dir, schemaName)
	raw, err := os.ReadFile(marker)
	switch {
	case os.IsNotExist(err):
		if fi, serr := os.Stat(filepath.Join(dir, LogName)); serr == nil && fi.Size() > 0 {
			return fmt.Errorf("store: %s was written before schema versioning (current v%d); delete the directory to rebuild it",
				dir, SchemaVersion)
		}
	case err != nil:
		return fmt.Errorf("store: %w", err)
	default:
		v, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("store: unreadable schema marker %s: %q", marker, raw)
		}
		if v != SchemaVersion {
			return fmt.Errorf("store: %s holds schema v%d results, current is v%d; delete the directory to rebuild it",
				dir, v, SchemaVersion)
		}
		return nil
	}
	if err := os.WriteFile(marker, []byte(strconv.Itoa(SchemaVersion)+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// load scans the log, indexes the last record per key, and rewrites the
// file when it contains dead weight (superseded duplicates or a record
// truncated by a kill mid-append).
func (s *Store) load() error {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	type raw struct {
		key  string
		line []byte
	}
	var live []raw
	liveAt := map[string]int{}
	dead := 0
	var off int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		n := int64(len(line)) + 1
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.K == "" {
			// A record truncated by a kill mid-append, or garbage; drop it.
			dead++
			off += n
			continue
		}
		if i, ok := liveAt[e.K]; ok {
			// Last record wins; the superseded one becomes dead weight.
			live[i] = raw{key: e.K, line: append([]byte(nil), line...)}
			dead++
		} else {
			liveAt[e.K] = len(live)
			live = append(live, raw{key: e.K, line: append([]byte(nil), line...)})
		}
		off += n
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: read %s: %w", s.path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > off {
		dead++ // trailing partial line without a newline
	}

	if dead > 0 {
		// Compact: rewrite only the live records, then swap atomically.
		tmp := s.path + ".tmp"
		w, err := os.Create(tmp)
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		bw := bufio.NewWriter(w)
		for _, r := range live {
			bw.Write(r.line)
			bw.WriteByte('\n')
		}
		if err := bw.Flush(); err == nil {
			err = w.Sync()
		}
		if err != nil {
			w.Close()
			os.Remove(tmp)
			return fmt.Errorf("store: compact: %w", err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		if err := os.Rename(tmp, s.path); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
	}

	// Index the (now compacted) log and warm the LRU front.
	var at int64
	for _, r := range live {
		n := int64(len(r.line)) + 1
		s.idx[r.key] = rec{off: at, n: n}
		var e entry
		if json.Unmarshal(r.line, &e) == nil {
			s.lru.add(r.key, e.M)
		}
		at += n
	}
	s.end = at
	return nil
}

// Get returns the measurement stored under key. Disk read errors are
// reported as misses; the caller recomputes and overwrites.
func (s *Store) Get(key string) (dse.Measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.lru.get(key); ok {
		return m, true
	}
	r, ok := s.idx[key]
	if !ok {
		return dse.Measurement{}, false
	}
	buf := make([]byte, r.n)
	if _, err := s.r.ReadAt(buf, r.off); err != nil {
		return dse.Measurement{}, false
	}
	var e entry
	if err := json.Unmarshal(buf[:r.n-1], &e); err != nil || e.K != key {
		return dse.Measurement{}, false
	}
	s.lru.add(key, e.M)
	return e.M, true
}

// Has reports whether key is stored without touching the LRU.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[key]
	return ok
}

// Put appends the measurement under key. Each Put is one write to the log,
// so a completed measurement survives a kill immediately after; a key
// written twice is superseded in place and compacted on next Open.
func (s *Store) Put(key string, m dse.Measurement) error {
	line, err := json.Marshal(entry{K: key, M: m})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	s.idx[key] = rec{off: s.end, n: int64(len(line))}
	s.end += int64(len(line))
	s.lru.add(key, m)
	return nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Close releases the log handles and the directory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	if cerr := s.r.Close(); err == nil {
		err = cerr
	}
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	s.w = nil
	return err
}

// lruCache is a minimal LRU of measurements keyed by content address.
type lruCache struct {
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	m   dse.Measurement
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (dse.Measurement, bool) {
	el, ok := c.items[key]
	if !ok {
		return dse.Measurement{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).m, true
}

func (c *lruCache) add(key string, m dse.Measurement) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).m = m
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, m: m})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// lruLen reports the resident entry count (used by eviction tests).
func (c *lruCache) len() int { return c.ll.Len() }
