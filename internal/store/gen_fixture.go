//go:build ignore

// gen_fixture writes testdata/legacy-v3: a result-store directory exactly
// as the last JSONL-engine release would have left it, plus fixture.json,
// a manifest of the live keys and the SHA-256 of each stored measurement's
// bytes. The migration test and the CI migration smoke open the fixture
// with the current engine and fail unless keys, bytes and counts match the
// manifest — the proof that the engine swap is lossless.
//
// Regenerate (only when dse.Measurement's schema-v3 shape changes, which
// would also bump SchemaVersion) with:
//
//	go run gen_fixture.go
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/power"
)

func measurement(app string, freq, t float64) dse.Measurement {
	return dse.Measurement{
		App: app,
		Arch: dse.ArchPoint{
			Cores: 32, Core: cpu.Medium(), FreqGHz: freq, VectorBits: 256,
			Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4,
		},
		TimeNs: t, IPC: 1.1,
		Power: power.Breakdown{CoreL1: 10, L2L3: 5, Memory: 3}, EnergyJ: t * 18e-9,
		L1MPKI: 1.5, L2MPKI: 0.7, L3MPKI: 0.2, GMemReqPerSec: 1e9,
		Cluster: []dse.ClusterStat{
			{Ranks: 64, EndToEndNs: t * 1.2, MPIFraction: 0.1, ParallelEff: 0.8},
			{Ranks: 256, EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6},
		},
		EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6,
	}
}

type fixtureEntry struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

type fixtureManifest struct {
	SchemaVersion int            `json:"schemaVersion"`
	Keys          int            `json:"keys"`
	Entries       []fixtureEntry `json:"entries"`
}

func main() {
	dir := filepath.Join("testdata", "legacy-v3")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "schema"), []byte("3\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	type rec struct {
		key string
		m   dse.Measurement
	}
	records := []rec{
		{"key-hydro-1.5", measurement("hydro", 1.5, 100)},
		{"key-hydro-2.0", measurement("hydro", 2.0, 90)},
		{"key-lulesh-2.0", measurement("lulesh", 2.0, 1)}, // superseded below
		{"key-spmz-2.5", measurement("spmz", 2.5, 210)},
		{"key-btmz-3.0", measurement("btmz", 3.0, 170)},
		{"key-lulesh-2.0", measurement("lulesh", 2.0, 80)}, // last write wins
		{"key-spec3d-1.5", measurement("spec3d", 1.5, 300)},
	}

	var log_ []byte
	live := map[string][]byte{}
	order := []string{}
	for _, r := range records {
		line, err := json.Marshal(struct {
			K string          `json:"k"`
			M dse.Measurement `json:"m"`
		}{r.key, r.m})
		if err != nil {
			log.Fatal(err)
		}
		log_ = append(log_, line...)
		log_ = append(log_, '\n')
		var env struct {
			M json.RawMessage `json:"m"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			log.Fatal(err)
		}
		if _, seen := live[r.key]; !seen {
			order = append(order, r.key)
		}
		live[r.key] = env.M
	}
	// A record torn by a kill mid-append: migration must drop it silently.
	log_ = append(log_, []byte(`{"k":"key-torn-9.9","m":{"App":"tr`)...)

	if err := os.WriteFile(filepath.Join(dir, "results.jsonl"), log_, 0o644); err != nil {
		log.Fatal(err)
	}

	man := fixtureManifest{SchemaVersion: 3, Keys: len(live)}
	for _, k := range order {
		m := live[k]
		man.Entries = append(man.Entries, fixtureEntry{
			Key:    k,
			SHA256: fmt.Sprintf("%x", sha256.Sum256(m)),
			Bytes:  len(m),
		})
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fixture.json"), append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d live keys, %d log bytes\n", dir, len(live), len(log_))
}
