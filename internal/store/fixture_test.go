package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testdata/legacy-v3 is a result-store directory exactly as the last
// JSONL-engine release left it (written by gen_fixture.go), with
// fixture.json recording the live keys and the SHA-256 of each stored
// measurement's bytes. This test is the release-to-release migration
// contract: the engine must serve every key with byte-identical
// measurements and the exact key count. CI runs it as the migration smoke.

type fixtureEntry struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

type fixtureManifest struct {
	SchemaVersion int            `json:"schemaVersion"`
	Keys          int            `json:"keys"`
	Entries       []fixtureEntry `json:"entries"`
}

func loadFixture(t *testing.T) (dir string, man fixtureManifest) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy-v3", "fixture.json"))
	if err != nil {
		t.Fatalf("fixture manifest: %v", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("fixture manifest: %v", err)
	}
	if man.SchemaVersion != SchemaVersion {
		t.Fatalf("fixture is schema v%d, store is v%d: regenerate with go run gen_fixture.go",
			man.SchemaVersion, SchemaVersion)
	}
	// Migration mutates the directory; work on a copy.
	dir = t.TempDir()
	for _, name := range []string{"schema", "results.jsonl"} {
		b, err := os.ReadFile(filepath.Join("testdata", "legacy-v3", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, man
}

func TestMigrationFixtureMatchesManifest(t *testing.T) {
	dir, man := loadFixture(t)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open of the previous release's store failed: %v", err)
	}
	if got := st.Len(); got != man.Keys {
		t.Fatalf("Len = %d, manifest says %d keys", got, man.Keys)
	}
	for _, e := range man.Entries {
		raw, ok := st.db.Get(e.Key)
		if !ok {
			t.Fatalf("key %s lost in migration", e.Key)
		}
		if len(raw) != e.Bytes {
			t.Fatalf("key %s: %d stored bytes, manifest says %d", e.Key, len(raw), e.Bytes)
		}
		if sum := fmt.Sprintf("%x", sha256.Sum256(raw)); sum != e.SHA256 {
			t.Fatalf("key %s: measurement bytes changed in migration (sha256 %s, manifest %s)",
				e.Key, sum, e.SHA256)
		}
		if _, ok := st.Get(e.Key); !ok {
			t.Fatalf("key %s: bytes present but measurement does not decode", e.Key)
		}
	}
	if st.EngineStats().Keys != man.Keys {
		t.Fatalf("engine reports %d keys, manifest says %d", st.EngineStats().Keys, man.Keys)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without the legacy log in play: the engine alone must still
	// match the manifest.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != man.Keys {
		t.Fatalf("Len after reopen = %d, manifest says %d", got, man.Keys)
	}
	for _, e := range man.Entries {
		raw, ok := st2.db.Get(e.Key)
		if !ok {
			t.Fatalf("key %s lost after reopen", e.Key)
		}
		if sum := fmt.Sprintf("%x", sha256.Sum256(raw)); sum != e.SHA256 {
			t.Fatalf("key %s: bytes changed after reopen", e.Key)
		}
	}
}
