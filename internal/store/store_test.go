package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/power"
)

func testPoint(freq float64) dse.ArchPoint {
	return dse.ArchPoint{
		Cores: 32, Core: cpu.Medium(), FreqGHz: freq, VectorBits: 256,
		Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4,
	}
}

func testMeasurement(app string, freq, t float64) dse.Measurement {
	return dse.Measurement{
		App: app, Arch: testPoint(freq), TimeNs: t, IPC: 1.1,
		Power: power.Breakdown{CoreL1: 10, L2L3: 5, Memory: 3}, EnergyJ: t * 18e-9,
		L1MPKI: 1.5, L2MPKI: 0.7, L3MPKI: 0.2, GMemReqPerSec: 1e9,
		Cluster: []dse.ClusterStat{
			{Ranks: 64, EndToEndNs: t * 1.2, MPIFraction: 0.1, ParallelEff: 0.8},
			{Ranks: 256, EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6},
		},
		EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6,
	}
}

// testKey stands in for the canonical-experiment keys the musa package
// computes; the store itself only sees opaque content addresses.
func testKey(app string, freq float64) string {
	return fmt.Sprintf("key-%s-%.1f", app, freq)
}

func TestOpenRefusesMismatchedSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testKey("hydro", 2.0), testMeasurement("hydro", 2.0, 7)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A store stamped with an older schema version must be refused with an
	// error that names both versions: v2 keys were derived from the old
	// store.Request encoding and no longer address v3 results.
	for _, old := range []string{"1\n", "2\n"} {
		if err := os.WriteFile(filepath.Join(dir, schemaName), []byte(old), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, Options{})
		if err == nil {
			t.Fatalf("Open accepted a store written under schema %q", old)
		}
		want := fmt.Sprintf("schema v%s", old[:1])
		if got := err.Error(); !strings.Contains(got, want) || !strings.Contains(got, fmt.Sprintf("v%d", SchemaVersion)) {
			t.Fatalf("refusal error %q does not name both versions", got)
		}
	}

	// Restoring the current version makes it readable again.
	if err := os.WriteFile(filepath.Join(dir, schemaName),
		[]byte(fmt.Sprintf("%d\n", SchemaVersion)), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

func TestOpenRefusesPreVersioningLog(t *testing.T) {
	// A results log without any schema marker predates versioning: its
	// measurements would unmarshal with zeroed cluster fields and be served
	// as hits, so Open must refuse it outright.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName),
		[]byte(`{"k":"abc","m":{"App":"hydro","TimeNs":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a pre-versioning results log")
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := testMeasurement("lulesh", 2.0, 100)
	m2 := testMeasurement("hydro", 2.5, 200)
	k1 := testKey(m1.App, 2.0)
	k2 := testKey(m2.App, 2.5)
	if err := st.Put(k1, m1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k2, m2); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(k1)
	if !ok || !reflect.DeepEqual(got, m1) {
		t.Fatalf("round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("after reopen Len = %d, want 2", st2.Len())
	}
	got, ok = st2.Get(k2)
	if !ok || !reflect.DeepEqual(got, m2) {
		t.Fatalf("reopen round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if _, ok := st2.Get("missing"); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{LRUEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	freqs := []float64{1.5, 2.0, 2.5, 3.0}
	keys := make([]string, len(freqs))
	for i, f := range freqs {
		m := testMeasurement("spmz", f, 100*float64(i+1))
		keys[i] = testKey(m.App, f)
		if err := st.Put(keys[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.lru.len(); n != 2 {
		t.Fatalf("LRU holds %d entries, want 2", n)
	}
	// keys[0] was evicted from the LRU; the hit must come from disk.
	got, ok := st.Get(keys[0])
	if !ok {
		t.Fatal("evicted entry lost: disk fallback failed")
	}
	if want := testMeasurement("spmz", freqs[0], 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk fallback returned wrong measurement: %+v", got)
	}
}

func TestSupersededRecordsLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("btmz", 2.0)
	for i := 0; i < 3; i++ {
		if err := st.Put(k, testMeasurement("btmz", 2.0, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	other := testKey("btmz", 3.0)
	if err := st.Put(other, testMeasurement("btmz", 3.0, 9)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (superseded records must not count)", st2.Len())
	}
	got, ok := st2.Get(k)
	if !ok || got.TimeNs != 2 {
		t.Fatalf("last write must win: ok=%v TimeNs=%v", ok, got.TimeNs)
	}
}

func TestOpenIsExclusivePerProcessForWriters(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrStoreBusy) {
		t.Fatalf("second writer Open error = %v, want ErrStoreBusy", err)
	}
	// Readers are never refused — that is the multi-process contract.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open refused while writer live: %v", err)
	}
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false on a read-only handle")
	}
	ro.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	st2.Close()
}

// TestWriterAndReaderShareDirectory exercises the store-level multi-process
// contract: a second, read-only handle on the same directory — what a warm
// musa-serve replica holds while a sweep writes — serves measurements the
// writer publishes, without a lock.
func TestWriterAndReaderShareDirectory(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	m := testMeasurement("lulesh", 2.0, 11)
	k := testKey(m.App, 2.0)
	if err := w.Put(k, m); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, ok := r.Get(k); !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("reader misses the writer's flushed measurement: ok=%v", ok)
	}

	// The writer publishes more after the reader opened.
	m2 := testMeasurement("hydro", 2.5, 22)
	k2 := testKey(m2.App, 2.5)
	if err := w.Put(k2, m2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get(k2); !ok || !reflect.DeepEqual(got, m2) {
		t.Fatalf("reader did not follow the writer's new segment: ok=%v", ok)
	}
	if r.Len() != 2 {
		t.Fatalf("reader Len = %d, want 2", r.Len())
	}

	// A read-only Put keeps the result hot locally but never touches disk.
	m3 := testMeasurement("spmz", 3.0, 33)
	k3 := testKey(m3.App, 3.0)
	if err := r.Put(k3, m3); err != nil {
		t.Fatalf("read-only Put must be a memory-front put, got %v", err)
	}
	if got, ok := r.Get(k3); !ok || !reflect.DeepEqual(got, m3) {
		t.Fatal("read-only Put did not populate the front")
	}
	if w.Has(k3) {
		t.Fatal("read-only Put leaked into the shared directory")
	}
}

// legacyLine encodes one record the way the pre-engine JSONL store did.
func legacyLine(t *testing.T, k string, m dse.Measurement) []byte {
	t.Helper()
	raw, err := json.Marshal(struct {
		K string          `json:"k"`
		M dse.Measurement `json:"m"`
	}{k, m})
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// writeLegacyStore lays down a schema-v3 JSONL store directory as the
// previous release would have left it.
func writeLegacyStore(t *testing.T, dir string, lines ...[]byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, schemaName),
		[]byte(fmt.Sprintf("%d\n", SchemaVersion)), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, l := range lines {
		buf = append(buf, l...)
	}
	if err := os.WriteFile(filepath.Join(dir, LogName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationFoldsJSONLIntoEngine(t *testing.T) {
	dir := t.TempDir()
	mOld := testMeasurement("btmz", 2.0, 1)
	mNew := testMeasurement("btmz", 2.0, 2)
	mKeep := testMeasurement("spec3d", 2.5, 42)
	k := testKey("btmz", 2.0)
	kKeep := testKey("spec3d", 2.5)
	writeLegacyStore(t, dir,
		legacyLine(t, k, mOld),
		legacyLine(t, kKeep, mKeep),
		legacyLine(t, k, mNew),                    // supersedes mOld
		[]byte(`{"k":"deadbeef","m":{"App":"tru`), // kill mid-append: dropped
	)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open of a legacy JSONL store failed: %v", err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after migration", st.Len())
	}
	if got, ok := st.Get(k); !ok || got.TimeNs != 2 {
		t.Fatalf("migrated last-write lost: ok=%v TimeNs=%v", ok, got.TimeNs)
	}
	if got, ok := st.Get(kKeep); !ok || !reflect.DeepEqual(got, mKeep) {
		t.Fatalf("migrated measurement mismatch: ok=%v", ok)
	}
	if _, err := os.Stat(filepath.Join(dir, LogName)); !os.IsNotExist(err) {
		t.Fatal("legacy log still in place after migration")
	}
	if _, err := os.Stat(filepath.Join(dir, LogName+migratedSuffix)); err != nil {
		t.Fatalf("migrated log not preserved: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: migration must not re-run (the renamed log is inert) and the
	// engine alone serves everything.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", st2.Len())
	}
	if got, ok := st2.Get(kKeep); !ok || !reflect.DeepEqual(got, mKeep) {
		t.Fatal("measurement lost after post-migration reopen")
	}
}

// TestMigrationPreservesMeasurementBytes pins the byte-identity contract:
// the engine must store exactly the measurement bytes the JSONL log held,
// not a re-marshalled form.
func TestMigrationPreservesMeasurementBytes(t *testing.T) {
	dir := t.TempDir()
	m := testMeasurement("lulesh", 2.0, 123)
	k := testKey("lulesh", 2.0)
	line := legacyLine(t, k, m)
	var rec struct {
		M json.RawMessage `json:"m"`
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatal(err)
	}
	writeLegacyStore(t, dir, line)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, ok := st.db.Get(k)
	if !ok {
		t.Fatal("migrated key missing from engine")
	}
	if string(got) != string(rec.M) {
		t.Fatalf("measurement bytes changed in migration:\n  was %s\n  now %s", rec.M, got)
	}
}

// TestReadOnlyOpenOfUnmigratedStore covers the transition window: a reader
// cannot migrate (it cannot write), so it serves the legacy log as a frozen
// read view instead.
func TestReadOnlyOpenOfUnmigratedStore(t *testing.T) {
	dir := t.TempDir()
	m := testMeasurement("hydro", 2.0, 7)
	k := testKey("hydro", 2.0)
	writeLegacyStore(t, dir, legacyLine(t, k, m))

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got, ok := ro.Get(k); !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("read-only handle misses legacy record: ok=%v", ok)
	}
	if !ro.Has(k) {
		t.Fatal("Has misses legacy record")
	}
	if ro.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ro.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, LogName)); err != nil {
		t.Fatal("read-only open must not migrate the log")
	}
}
