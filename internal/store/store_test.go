package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/power"
)

func testPoint(freq float64) dse.ArchPoint {
	return dse.ArchPoint{
		Cores: 32, Core: cpu.Medium(), FreqGHz: freq, VectorBits: 256,
		Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4,
	}
}

func testMeasurement(app string, freq, t float64) dse.Measurement {
	return dse.Measurement{
		App: app, Arch: testPoint(freq), TimeNs: t, IPC: 1.1,
		Power: power.Breakdown{CoreL1: 10, L2L3: 5, Memory: 3}, EnergyJ: t * 18e-9,
		L1MPKI: 1.5, L2MPKI: 0.7, L3MPKI: 0.2, GMemReqPerSec: 1e9,
		Cluster: []dse.ClusterStat{
			{Ranks: 64, EndToEndNs: t * 1.2, MPIFraction: 0.1, ParallelEff: 0.8},
			{Ranks: 256, EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6},
		},
		EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6,
	}
}

// testKey stands in for the canonical-experiment keys the musa package
// computes; the store itself only sees opaque content addresses.
func testKey(app string, freq float64) string {
	return fmt.Sprintf("key-%s-%.1f", app, freq)
}

func TestOpenRefusesMismatchedSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testKey("hydro", 2.0), testMeasurement("hydro", 2.0, 7)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A store stamped with an older schema version must be refused with an
	// error that names both versions: v2 keys were derived from the old
	// store.Request encoding and no longer address v3 results.
	for _, old := range []string{"1\n", "2\n"} {
		if err := os.WriteFile(filepath.Join(dir, schemaName), []byte(old), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, Options{})
		if err == nil {
			t.Fatalf("Open accepted a store written under schema %q", old)
		}
		want := fmt.Sprintf("schema v%s", old[:1])
		if got := err.Error(); !strings.Contains(got, want) || !strings.Contains(got, fmt.Sprintf("v%d", SchemaVersion)) {
			t.Fatalf("refusal error %q does not name both versions", got)
		}
	}

	// Restoring the current version makes it readable again.
	if err := os.WriteFile(filepath.Join(dir, schemaName),
		[]byte(fmt.Sprintf("%d\n", SchemaVersion)), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

func TestOpenRefusesPreVersioningLog(t *testing.T) {
	// A results log without any schema marker predates versioning: its
	// measurements would unmarshal with zeroed cluster fields and be served
	// as hits, so Open must refuse it outright.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName),
		[]byte(`{"k":"abc","m":{"App":"hydro","TimeNs":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a pre-versioning results log")
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := testMeasurement("lulesh", 2.0, 100)
	m2 := testMeasurement("hydro", 2.5, 200)
	k1 := testKey(m1.App, 2.0)
	k2 := testKey(m2.App, 2.5)
	if err := st.Put(k1, m1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k2, m2); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(k1)
	if !ok || !reflect.DeepEqual(got, m1) {
		t.Fatalf("round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("after reopen Len = %d, want 2", st2.Len())
	}
	got, ok = st2.Get(k2)
	if !ok || !reflect.DeepEqual(got, m2) {
		t.Fatalf("reopen round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if _, ok := st2.Get("missing"); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{LRUEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	freqs := []float64{1.5, 2.0, 2.5, 3.0}
	keys := make([]string, len(freqs))
	for i, f := range freqs {
		m := testMeasurement("spmz", f, 100*float64(i+1))
		keys[i] = testKey(m.App, f)
		if err := st.Put(keys[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.lru.len(); n != 2 {
		t.Fatalf("LRU holds %d entries, want 2", n)
	}
	// keys[0] was evicted from the LRU; the hit must come from disk.
	got, ok := st.Get(keys[0])
	if !ok {
		t.Fatal("evicted entry lost: disk fallback failed")
	}
	if want := testMeasurement("spmz", freqs[0], 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk fallback returned wrong measurement: %+v", got)
	}
}

func TestCompactionDropsSupersededRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("btmz", 2.0)
	for i := 0; i < 3; i++ {
		if err := st.Put(k, testMeasurement("btmz", 2.0, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	other := testKey("btmz", 3.0)
	if err := st.Put(other, testMeasurement("btmz", 3.0, 9)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	log := filepath.Join(dir, LogName)
	before, _ := os.ReadFile(log)
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, _ := os.ReadFile(log)
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", len(before), len(after))
	}
	if st2.Len() != 2 {
		t.Fatalf("after compaction Len = %d, want 2", st2.Len())
	}
	got, ok := st2.Get(k)
	if !ok || got.TimeNs != 2 {
		t.Fatalf("last write must win: ok=%v TimeNs=%v", ok, got.TimeNs)
	}
}

func TestOpenIsExclusivePerProcess(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a held store directory succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	st2.Close()
}

func TestTruncatedTrailingRecordIsDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("spec3d", 2.0)
	if err := st.Put(k, testMeasurement("spec3d", 2.0, 42)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a kill mid-append: a partial record with no newline.
	log := filepath.Join(dir, LogName)
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"deadbeef","m":{"App":"tru`)
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("after truncated tail Len = %d, want 1", st2.Len())
	}
	if got, ok := st2.Get(k); !ok || got.TimeNs != 42 {
		t.Fatalf("intact record lost after recovery: ok=%v got=%+v", ok, got)
	}
	// The compacted log must no longer carry the partial record.
	b, _ := os.ReadFile(log)
	if n := len(b); b[n-1] != '\n' {
		t.Fatal("compacted log does not end in a newline")
	}
}
