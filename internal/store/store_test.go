package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/power"
)

func testPoint(freq float64) dse.ArchPoint {
	return dse.ArchPoint{
		Cores: 32, Core: cpu.Medium(), FreqGHz: freq, VectorBits: 256,
		Cache: dse.CacheConfigs()[1], Channels: 4, Mem: dse.DDR4,
	}
}

func testMeasurement(app string, freq, t float64) dse.Measurement {
	return dse.Measurement{
		App: app, Arch: testPoint(freq), TimeNs: t,
		Power: power.Breakdown{CoreL1: 10, L2L3: 5, Memory: 3}, EnergyJ: t * 18e-9,
		L1MPKI: 1.5, L2MPKI: 0.7, L3MPKI: 0.2, GMemReqPerSec: 1e9,
		Cluster: []dse.ClusterStat{
			{Ranks: 64, EndToEndNs: t * 1.2, MPIFraction: 0.1, ParallelEff: 0.8},
			{Ranks: 256, EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6},
		},
		EndToEndNs: t * 1.5, MPIFraction: 0.25, ParallelEff: 0.6,
	}
}

func TestKeyDeterministicAndDiscriminating(t *testing.T) {
	r := Request{App: "lulesh", Arch: testPoint(2.0), SampleInstrs: 1000, Seed: 1}
	if Key(r) != Key(r) {
		t.Fatal("same request hashed to different keys")
	}
	zeroSeed := r
	zeroSeed.Seed = 0
	if Key(zeroSeed) != Key(r) {
		t.Fatal("seed 0 must normalize to seed 1")
	}
	variants := []Request{
		{App: "hydro", Arch: r.Arch, SampleInstrs: 1000, Seed: 1},
		{App: "lulesh", Arch: testPoint(2.5), SampleInstrs: 1000, Seed: 1},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 2000, Seed: 1},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 1000, WarmupInstrs: 1, Seed: 1},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 1000, Seed: 2},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 1000, Seed: 1,
			ReplayRanks: []int{64, 256}, Network: net.MareNostrum4()},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 1000, Seed: 1,
			ReplayRanks: []int{128}, Network: net.MareNostrum4()},
		{App: "lulesh", Arch: r.Arch, SampleInstrs: 1000, Seed: 1,
			ReplayRanks: []int{64, 256}, Network: net.HDR200()},
	}
	seen := map[string]bool{Key(r): true}
	for i, v := range variants {
		k := Key(v)
		if seen[k] {
			t.Fatalf("variant %d collided with another request key", i)
		}
		seen[k] = true
	}
	// A node-only request must not be influenced by a stray network model.
	stray := r
	stray.Network = net.HDR200()
	if Key(stray) != Key(r) {
		t.Fatal("network model leaked into a node-only request key")
	}
	// Rank order and duplicates must not change the key: the replay runs
	// the sorted unique set either way.
	a, b := r, r
	a.ReplayRanks, a.Network = []int{256, 64}, net.MareNostrum4()
	b.ReplayRanks, b.Network = []int{64, 256, 64}, net.MareNostrum4()
	if Key(a) != Key(b) {
		t.Fatal("replay rank order/duplicates changed the request key")
	}
}

func TestOpenRefusesMismatchedSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := Key(Request{App: "hydro", Arch: testPoint(2.0), Seed: 1})
	if err := st.Put(k, testMeasurement("hydro", 2.0, 7)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A store stamped with an older schema version must be refused.
	if err := os.WriteFile(filepath.Join(dir, schemaName), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a store written under schema v1")
	}

	// Restoring the current version makes it readable again.
	if err := os.WriteFile(filepath.Join(dir, schemaName), []byte("2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

func TestOpenRefusesPreVersioningLog(t *testing.T) {
	// A results log without any schema marker predates versioning: its
	// measurements would unmarshal with zeroed cluster fields and be served
	// as hits, so Open must refuse it outright.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName),
		[]byte(`{"k":"abc","m":{"App":"hydro","TimeNs":1}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a pre-versioning results log")
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := testMeasurement("lulesh", 2.0, 100)
	m2 := testMeasurement("hydro", 2.5, 200)
	k1 := Key(Request{App: m1.App, Arch: m1.Arch, Seed: 1})
	k2 := Key(Request{App: m2.App, Arch: m2.Arch, Seed: 1})
	if err := st.Put(k1, m1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k2, m2); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(k1)
	if !ok || !reflect.DeepEqual(got, m1) {
		t.Fatalf("round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("after reopen Len = %d, want 2", st2.Len())
	}
	got, ok = st2.Get(k2)
	if !ok || !reflect.DeepEqual(got, m2) {
		t.Fatalf("reopen round trip mismatch: ok=%v got=%+v", ok, got)
	}
	if _, ok := st2.Get("missing"); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{LRUEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	freqs := []float64{1.5, 2.0, 2.5, 3.0}
	keys := make([]string, len(freqs))
	for i, f := range freqs {
		m := testMeasurement("spmz", f, 100*float64(i+1))
		keys[i] = Key(Request{App: m.App, Arch: m.Arch, Seed: 1})
		if err := st.Put(keys[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.lru.len(); n != 2 {
		t.Fatalf("LRU holds %d entries, want 2", n)
	}
	// keys[0] was evicted from the LRU; the hit must come from disk.
	got, ok := st.Get(keys[0])
	if !ok {
		t.Fatal("evicted entry lost: disk fallback failed")
	}
	if want := testMeasurement("spmz", freqs[0], 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk fallback returned wrong measurement: %+v", got)
	}
}

func TestCompactionDropsSupersededRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := Key(Request{App: "btmz", Arch: testPoint(2.0), Seed: 1})
	for i := 0; i < 3; i++ {
		if err := st.Put(k, testMeasurement("btmz", 2.0, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	other := Key(Request{App: "btmz", Arch: testPoint(3.0), Seed: 1})
	if err := st.Put(other, testMeasurement("btmz", 3.0, 9)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	log := filepath.Join(dir, LogName)
	before, _ := os.ReadFile(log)
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, _ := os.ReadFile(log)
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", len(before), len(after))
	}
	if st2.Len() != 2 {
		t.Fatalf("after compaction Len = %d, want 2", st2.Len())
	}
	got, ok := st2.Get(k)
	if !ok || got.TimeNs != 2 {
		t.Fatalf("last write must win: ok=%v TimeNs=%v", ok, got.TimeNs)
	}
}

func TestOpenIsExclusivePerProcess(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a held store directory succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	st2.Close()
}

func TestTruncatedTrailingRecordIsDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := Key(Request{App: "spec3d", Arch: testPoint(2.0), Seed: 1})
	if err := st.Put(k, testMeasurement("spec3d", 2.0, 42)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a kill mid-append: a partial record with no newline.
	log := filepath.Join(dir, LogName)
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"deadbeef","m":{"App":"tru`)
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("after truncated tail Len = %d, want 1", st2.Len())
	}
	if got, ok := st2.Get(k); !ok || got.TimeNs != 42 {
		t.Fatalf("intact record lost after recovery: ok=%v got=%+v", ok, got)
	}
	// The compacted log must no longer carry the partial record.
	b, _ := os.ReadFile(log)
	if n := len(b); b[n-1] != '\n' {
		t.Fatal("compacted log does not end in a newline")
	}
}
