package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"musa/internal/apps"
	"musa/internal/cache"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/isa"
	"musa/internal/node"
)

// testAnnotation builds a small but structurally real annotation.
func testAnnotation(t *testing.T) node.Annotation {
	t.Helper()
	app := apps.LULESH()
	p := dse.Enumerate()[0]
	cfg := p.NodeConfig(2000, 4000, 1)
	return node.BuildAnnotation(app, cfg)
}

// TestAnnotationRoundTrip is the bitwise-fidelity contract the
// warm-equals-cold guarantee rests on: decode(encode(a)) must reproduce
// the annotation exactly, including every packed instruction record.
func TestAnnotationRoundTrip(t *testing.T) {
	a := testAnnotation(t)
	key := fmt.Sprintf("%064x", 99)
	got, err := decodeAnnotation(mustData(t, key, encodeAnnotation(key, a)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatal("annotation round trip is lossy")
	}
	// Exercise every field of the packed record explicitly, including
	// negative dependency distances.
	in := []cpu.Annotated{
		{Dep1: -1, Dep2: 1 << 30, Class: isa.Store, Lanes: 255, Level: 3, Flags: cpu.FlagMispredict},
		{Dep1: 0, Dep2: -12345, Class: isa.Branch},
	}
	out, err := unpackInstrs(packInstrs(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("packed instruction round trip: %+v vs %+v", out, in)
	}
	if _, err := unpackInstrs(make([]byte, packedInstrBytes+1)); err == nil {
		t.Fatal("truncated packed stream accepted")
	}
}

func mustData(t *testing.T, key string, blob []byte) []byte {
	t.Helper()
	env, err := decodeEnvelope(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	return env.Data
}

// TestArtifactCachePersistence drives the disk path: artifacts written by
// one cache are served — typed and raw — by a fresh cache over the same
// directory, and the stats count the traffic.
func TestArtifactCachePersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	ann := testAnnotation(t)
	lm := dram.LatencyModel{PeakBW: 1e9, Points: []float64{0.05, 1}, LatenciesNs: []float64{80.5, 120.25}, SatBW: 9e8}
	b := apps.BurstTrace(apps.LULESH(), 4, 1)
	c1.PutAnnotation("a"+strings.Repeat("0", 63), ann)
	c1.PutLatencyModel("b"+strings.Repeat("0", 63), lm)
	c1.PutBurst("c"+strings.Repeat("0", 63), b)
	if c1.Err() != nil {
		t.Fatal(c1.Err())
	}
	if got := c1.Stats(); got.Entries != 3 || got.BytesWritten == 0 {
		t.Fatalf("stats after puts: %+v", got)
	}

	c2, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	ga, ok := c2.Annotation("a" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(ga, ann) {
		t.Fatal("annotation not served byte-identically from disk")
	}
	gl, ok := c2.LatencyModel("b" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(gl, lm) {
		t.Fatal("latency model not served from disk")
	}
	gb, ok := c2.Burst("c" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(gb, b) {
		t.Fatal("burst not served from disk")
	}
	st := c2.Stats()
	if st.Annotations.Hits != 1 || st.LatencyModels.Hits != 1 || st.Bursts.Hits != 1 {
		t.Fatalf("hit counters: %+v", st)
	}
	if st.BytesRead == 0 {
		t.Fatal("no bytes counted on the read path")
	}
	if _, ok := c2.Annotation("f" + strings.Repeat("0", 63)); ok {
		t.Fatal("absent key served")
	}
	if c2.Stats().Annotations.Misses != 1 {
		t.Fatal("miss not counted")
	}

	// Raw blobs travel byte-identically (the HTTP payload contract).
	blob, ok := c2.Blob("a" + strings.Repeat("0", 63))
	if !ok {
		t.Fatal("no raw blob")
	}
	disk, err := os.ReadFile(filepath.Join(dir, "a"+strings.Repeat("0", 63)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, disk) {
		t.Fatal("Blob differs from the stored file")
	}
}

// TestArtifactCacheSchemaRefused pins the invalidation behavior: a
// directory stamped with another artifact schema version is refused.
func TestArtifactCacheSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, artifactSchemaName), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("stale artifact schema accepted")
	}
}

// TestArtifactPutBlobValidates drives the HTTP-facing boundary: bad keys,
// bad envelopes, stale schemas and undecodable payloads are refused; a
// valid pushed blob is immediately served typed (no rebuild) and raw
// (byte-identical).
func TestArtifactPutBlobValidates(t *testing.T) {
	c, err := OpenArtifacts("") // memory-only, like a worker without a dir
	if err != nil {
		t.Fatal(err)
	}
	key := "d" + strings.Repeat("1", 63)
	if err := c.PutBlob("not-a-key", []byte("{}")); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := c.PutBlob(key, []byte("not json")); err == nil {
		t.Fatal("bad envelope accepted")
	}
	stale, _ := json.Marshal(map[string]any{"schema": 999, "kind": "annotation", "data": map[string]any{}})
	if err := c.PutBlob(key, stale); err == nil {
		t.Fatal("stale schema accepted")
	}
	wrong, _ := json.Marshal(map[string]any{"schema": dse.ArtifactSchemaVersion, "kind": "annotation", "data": "x"})
	if err := c.PutBlob(key, wrong); err == nil {
		t.Fatal("undecodable payload accepted")
	}

	ann := testAnnotation(t)
	blob := encodeAnnotation(key, ann)
	if err := c.PutBlob(key, blob); err != nil {
		t.Fatal(err)
	}
	// The same valid blob under a different key is refused: the envelope
	// binds the payload to the address it was built for, so a mis-keyed
	// push cannot poison later sweeps.
	if err := c.PutBlob("e"+strings.Repeat("2", 63), blob); err == nil {
		t.Fatal("blob accepted under a key it was not built for")
	}
	got, ok := c.Annotation(key)
	if !ok || !reflect.DeepEqual(got, ann) {
		t.Fatal("pushed annotation not served")
	}
	raw, ok := c.Blob(key)
	if !ok || !bytes.Equal(raw, blob) {
		t.Fatal("pushed blob not served byte-identically")
	}
}

// TestArtifactCorruptBlobEvicted pins the corrupt-blob behavior: a stored
// blob whose payload no longer decodes is evicted on first lookup and
// surfaced through Err(), instead of being re-read and re-failed forever
// in silence. A later Put simply rewrites the key.
func TestArtifactCorruptBlobEvicted(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064x", 7)
	c.PutAnnotation(key, testAnnotation(t))
	// Corrupt the payload on disk while keeping a valid envelope.
	blob, _ := json.Marshal(map[string]any{
		"schema": dse.ArtifactSchemaVersion, "key": key, "kind": "annotation",
		"data": map[string]any{"instrs": "x x x"},
	})
	if err := os.WriteFile(filepath.Join(dir, key+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Annotation(key); ok {
		t.Fatal("corrupt annotation served")
	}
	if c2.Err() == nil {
		t.Fatal("corrupt blob not reported through Err")
	}
	if c2.Len() != 0 {
		t.Fatalf("corrupt key still indexed: %d entries", c2.Len())
	}
	// Rewriting the key recovers.
	ann := testAnnotation(t)
	c2.PutAnnotation(key, ann)
	if got, ok := c2.Annotation(key); !ok || !reflect.DeepEqual(got, ann) {
		t.Fatal("rewritten key not served")
	}
}

// TestArtifactFrontEviction keeps the decoded annotation front bounded:
// old entries are evicted from memory but stay reachable on disk.
func TestArtifactFrontEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	ann := testAnnotation(t)
	keys := make([]string, maxResidentAnnotations+4)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		c.PutAnnotation(keys[i], ann)
	}
	c.mu.Lock()
	resident := len(c.ann)
	c.mu.Unlock()
	if resident > maxResidentAnnotations {
		t.Fatalf("%d resident annotations, cap %d", resident, maxResidentAnnotations)
	}
	// The evicted first key still decodes from disk.
	if got, ok := c.Annotation(keys[0]); !ok || !reflect.DeepEqual(got, ann) {
		t.Fatal("evicted annotation lost from disk")
	}

	// cache.Stats/HierarchyConfig zero-value sanity: envelope kinds refuse
	// cross-kind typed reads.
	if _, ok := c.LatencyModel(keys[0]); ok {
		t.Fatal("annotation blob served as a latency model")
	}
	_ = cache.Stats{}
}
