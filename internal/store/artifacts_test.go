package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"musa/internal/apps"
	"musa/internal/cache"
	"musa/internal/dram"
	"musa/internal/dse"
	"musa/internal/node"
)

// testHitRates builds a small but structurally real hit-rate table,
// together with the fused trace it was derived from (for reconstruction
// checks).
func testHitRates(t *testing.T) (*node.FusedTrace, node.HitRateTable) {
	t.Helper()
	app := apps.LULESH()
	p := dse.Enumerate()[0]
	cfg := p.NodeConfig(2000, 4000, 1)
	ft := node.BuildFusedTrace(app, cfg.VectorBits, cfg.SampleInstrs, cfg.WarmupInstrs, cfg.Seed)
	_, hrt := node.AnnotateTrace(ft, cfg)
	return ft, hrt
}

// TestHitRatesRoundTrip is the bitwise-fidelity contract the
// warm-equals-cold guarantee rests on: decode(encode(t)) must reproduce the
// hit-rate table exactly, and overlaying the decoded table on the fused
// trace must reconstruct the same annotation a direct cache walk produces.
func TestHitRatesRoundTrip(t *testing.T) {
	ft, hrt := testHitRates(t)
	key := fmt.Sprintf("%064x", 99)
	got, err := decodeHitRates(mustData(t, key, encodeHitRates(key, hrt)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hrt, got) {
		t.Fatal("hit-rate table round trip is lossy")
	}
	direct, _ := node.AnnotateTrace(ft, dse.Enumerate()[0].NodeConfig(2000, 4000, 1))
	combined, ok := node.CombineAnnotation(ft, got)
	if !ok {
		t.Fatal("decoded table does not combine with its trace")
	}
	if !reflect.DeepEqual(direct, combined) {
		t.Fatal("decoded table does not reconstruct the annotation bit-for-bit")
	}
	// Out-of-range levels — a corrupt or adversarial blob — are refused.
	bad := hrt
	bad.Levels = append([]uint8(nil), hrt.Levels...)
	bad.Levels[0] = uint8(cache.LevelMem) + 1
	if _, err := decodeHitRates(mustData(t, key, encodeHitRates(key, bad))); err == nil {
		t.Fatal("out-of-range cache level accepted")
	}
}

func mustData(t *testing.T, key string, blob []byte) []byte {
	t.Helper()
	env, err := decodeEnvelope(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	return env.Data
}

// TestArtifactCachePersistence drives the disk path: artifacts written by
// one cache are served — typed and raw — by a fresh cache over the same
// directory, and the stats count the traffic.
func TestArtifactCachePersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, hrt := testHitRates(t)
	lm := dram.LatencyModel{PeakBW: 1e9, Points: []float64{0.05, 1}, LatenciesNs: []float64{80.5, 120.25}, SatBW: 9e8}
	b := apps.BurstTrace(apps.LULESH(), 4, 1)
	c1.PutHitRates("a"+strings.Repeat("0", 63), hrt)
	c1.PutLatencyModel("b"+strings.Repeat("0", 63), lm)
	c1.PutBurst("c"+strings.Repeat("0", 63), b)
	if c1.Err() != nil {
		t.Fatal(c1.Err())
	}
	if got := c1.Stats(); got.Entries != 3 || got.BytesWritten == 0 {
		t.Fatalf("stats after puts: %+v", got)
	}

	c2, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	gh, ok := c2.HitRates("a" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(gh, hrt) {
		t.Fatal("hit-rate table not served byte-identically from disk")
	}
	gl, ok := c2.LatencyModel("b" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(gl, lm) {
		t.Fatal("latency model not served from disk")
	}
	gb, ok := c2.Burst("c" + strings.Repeat("0", 63))
	if !ok || !reflect.DeepEqual(gb, b) {
		t.Fatal("burst not served from disk")
	}
	st := c2.Stats()
	if st.HitRates.Hits != 1 || st.LatencyModels.Hits != 1 || st.Bursts.Hits != 1 {
		t.Fatalf("hit counters: %+v", st)
	}
	if st.BytesRead == 0 {
		t.Fatal("no bytes counted on the read path")
	}
	if _, ok := c2.HitRates("f" + strings.Repeat("0", 63)); ok {
		t.Fatal("absent key served")
	}
	if c2.Stats().HitRates.Misses != 1 {
		t.Fatal("miss not counted")
	}

	// Raw blobs travel byte-identically (the HTTP payload contract).
	blob, ok := c2.Blob("a" + strings.Repeat("0", 63))
	if !ok {
		t.Fatal("no raw blob")
	}
	disk, err := os.ReadFile(filepath.Join(dir, "a"+strings.Repeat("0", 63)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, disk) {
		t.Fatal("Blob differs from the stored file")
	}
}

// TestArtifactCacheSchemaRefused pins the invalidation behavior: a
// directory stamped with another artifact schema version is refused.
func TestArtifactCacheSchemaRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, artifactSchemaName), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArtifacts(dir); err == nil {
		t.Fatal("stale artifact schema accepted")
	}
}

// TestArtifactPutBlobValidates drives the HTTP-facing boundary: bad keys,
// bad envelopes, stale schemas and undecodable payloads are refused; a
// valid pushed blob is immediately served typed (no rebuild) and raw
// (byte-identical).
func TestArtifactPutBlobValidates(t *testing.T) {
	c, err := OpenArtifacts("") // memory-only, like a worker without a dir
	if err != nil {
		t.Fatal(err)
	}
	key := "d" + strings.Repeat("1", 63)
	if err := c.PutBlob("not-a-key", []byte("{}")); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := c.PutBlob(key, []byte("not json")); err == nil {
		t.Fatal("bad envelope accepted")
	}
	stale, _ := json.Marshal(map[string]any{"schema": 999, "kind": "hit-rates", "data": map[string]any{}})
	if err := c.PutBlob(key, stale); err == nil {
		t.Fatal("stale schema accepted")
	}
	wrong, _ := json.Marshal(map[string]any{"schema": dse.ArtifactSchemaVersion, "kind": "hit-rates", "data": "x"})
	if err := c.PutBlob(key, wrong); err == nil {
		t.Fatal("undecodable payload accepted")
	}

	_, hrt := testHitRates(t)
	blob := encodeHitRates(key, hrt)
	if err := c.PutBlob(key, blob); err != nil {
		t.Fatal(err)
	}
	// The same valid blob under a different key is refused: the envelope
	// binds the payload to the address it was built for, so a mis-keyed
	// push cannot poison later sweeps.
	if err := c.PutBlob("e"+strings.Repeat("2", 63), blob); err == nil {
		t.Fatal("blob accepted under a key it was not built for")
	}
	got, ok := c.HitRates(key)
	if !ok || !reflect.DeepEqual(got, hrt) {
		t.Fatal("pushed hit-rate table not served")
	}
	raw, ok := c.Blob(key)
	if !ok || !bytes.Equal(raw, blob) {
		t.Fatal("pushed blob not served byte-identically")
	}
}

// TestArtifactCorruptBlobEvicted pins the corrupt-blob behavior: a stored
// blob whose payload no longer decodes is evicted on first lookup and
// surfaced through Err(), instead of being re-read and re-failed forever
// in silence. A later Put simply rewrites the key.
func TestArtifactCorruptBlobEvicted(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064x", 7)
	_, hrt := testHitRates(t)
	c.PutHitRates(key, hrt)
	// Corrupt the payload on disk while keeping a valid envelope.
	blob, _ := json.Marshal(map[string]any{
		"schema": dse.ArtifactSchemaVersion, "key": key, "kind": "hit-rates",
		"data": map[string]any{"levels": "x x x"},
	})
	if err := os.WriteFile(filepath.Join(dir, key+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.HitRates(key); ok {
		t.Fatal("corrupt hit-rate table served")
	}
	if c2.Err() == nil {
		t.Fatal("corrupt blob not reported through Err")
	}
	if c2.Len() != 0 {
		t.Fatalf("corrupt key still indexed: %d entries", c2.Len())
	}
	// Rewriting the key recovers.
	c2.PutHitRates(key, hrt)
	if got, ok := c2.HitRates(key); !ok || !reflect.DeepEqual(got, hrt) {
		t.Fatal("rewritten key not served")
	}
}

// TestArtifactFrontEviction keeps the decoded hit-rate front bounded: old
// entries are evicted from memory but stay reachable on disk.
func TestArtifactFrontEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, hrt := testHitRates(t)
	keys := make([]string, maxResidentHitRates+4)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		c.PutHitRates(keys[i], hrt)
	}
	c.mu.Lock()
	resident := len(c.hit)
	c.mu.Unlock()
	if resident > maxResidentHitRates {
		t.Fatalf("%d resident hit-rate tables, cap %d", resident, maxResidentHitRates)
	}
	// The evicted first key still decodes from disk.
	if got, ok := c.HitRates(keys[0]); !ok || !reflect.DeepEqual(got, hrt) {
		t.Fatal("evicted hit-rate table lost from disk")
	}

	// cache.Stats/HierarchyConfig zero-value sanity: envelope kinds refuse
	// cross-kind typed reads.
	if _, ok := c.LatencyModel(keys[0]); ok {
		t.Fatal("hit-rate blob served as a latency model")
	}
	_ = cache.Stats{}
}
