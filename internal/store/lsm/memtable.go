package lsm

import (
	"sort"
	"sync/atomic"
)

// counters is the engine's atomic counter block (see Stats for meanings).
type counters struct {
	gets, hits, puts                   atomic.Int64
	memHits                            atomic.Int64
	bloomChecks, bloomRejects, bloomFP atomic.Int64
	segReads                           atomic.Int64
	flushes, compactions, compactionNs atomic.Int64
	walBytes, walReplayed, walTorn     atomic.Int64
	refreshes                          atomic.Int64
}

// kv is one key/value pair of a sorted run.
type kv struct {
	k string
	v []byte
}

// memtable is the mutable in-memory head of the tree. It is a plain map —
// point lookups are the only read the store performs (keys are content
// addresses; there are no range queries) — sorted once at flush time.
// Synchronization is the DB's lock.
type memtable struct {
	m     map[string][]byte
	bytes int
}

func newMemtable() *memtable {
	return &memtable{m: map[string][]byte{}}
}

func (t *memtable) get(key string) ([]byte, bool) {
	v, ok := t.m[key]
	return v, ok
}

// put inserts or replaces and reports whether the key was fresh.
func (t *memtable) put(key string, value []byte) bool {
	old, exists := t.m[key]
	if exists {
		t.bytes += len(value) - len(old)
	} else {
		t.bytes += len(key) + len(value)
	}
	t.m[key] = value
	return !exists
}

func (t *memtable) len() int { return len(t.m) }

// sorted returns the contents as a key-ordered run — the segment writer's
// input.
func (t *memtable) sorted() []kv {
	out := make([]kv, 0, len(t.m))
	for k, v := range t.m {
		out = append(out, kv{k: k, v: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
