package lsm

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Size-tiered compaction: segments of similar size accumulate as the
// memtable flushes; once a tier holds CompactAt of them they are merged
// into one segment of the next tier. Because the engine has no per-record
// sequence numbers, only segments contiguous in recency order merge —
// last-write-wins is then simply "the newer segment of the run wins" —
// which flush order produces naturally. The merge streams block-by-block
// (bounded memory) into a new segment, commits it in a single MANIFEST
// replace, then deletes the inputs; a kill at any point leaves the old
// manifest and therefore a consistent store.

// tierOf buckets a segment size: tier n covers (1MiB*4^(n-1), 1MiB*4^n].
func tierOf(bytes int64) int {
	tier := 0
	for s := bytes; s > 1<<20; s >>= 2 {
		tier++
	}
	return tier
}

// compactable returns the [lo, hi) bounds of the oldest contiguous run of
// at least CompactAt same-tier segments, or nil. Caller holds mu.
func (db *DB) compactable() []int {
	need := db.opts.CompactAt
	segs := db.manifest.Segments
	for lo := 0; lo+need <= len(segs); {
		t := tierOf(segs[lo].Bytes)
		hi := lo + 1
		for hi < len(segs) && tierOf(segs[hi].Bytes) == t {
			hi++
		}
		if hi-lo >= need {
			return []int{lo, hi}
		}
		lo = hi
	}
	return nil
}

// mergeSource is one input of the k-way merge; pos is the input's index in
// the run (higher = newer, wins ties).
type mergeSource struct {
	it   *segIter
	pos  int
	key  string
	val  []byte
	done bool
}

func (m *mergeSource) advance() error {
	k, v, ok, err := m.it.next()
	if err != nil {
		return err
	}
	m.key, m.val, m.done = k, v, !ok
	return nil
}

// mergeHeap orders sources by (key, newest first).
type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].pos > h[j].pos
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Compact folds compactable runs together until none remain. It is safe to
// call concurrently with reads and writes; only one compaction runs at a
// time. The flush path triggers it automatically unless NoCompact is set.
func (db *DB) Compact() error {
	if db.readOnly {
		return ErrReadOnly
	}
	db.maintMu.Lock()
	defer db.maintMu.Unlock()
	for {
		did, err := db.compactOnce()
		if err != nil || !did {
			return err
		}
	}
}

// compactOnce merges one run; reports whether it did anything.
func (db *DB) compactOnce() (bool, error) {
	// Snapshot the run under the lock. Segments are immutable and the list
	// only ever changes by flush appends (beyond [lo,hi)) or by this
	// serialized compactor, so the snapshot stays valid while we merge
	// outside the lock.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false, nil
	}
	r := db.compactable()
	if r == nil {
		db.mu.Unlock()
		return false, nil
	}
	lo, hi := r[0], r[1]
	run := append([]*segment(nil), db.segs[lo:hi]...)
	var expect int
	for _, ms := range db.manifest.Segments[lo:hi] {
		expect += ms.Keys
	}
	id := db.manifest.NextSeg
	db.manifest.NextSeg++ // reserved; a failed compaction just skips the id
	db.mu.Unlock()

	start := time.Now()
	path := filepath.Join(db.dir, segName(id))
	w, err := newSegmentWriter(path, expect)
	if err != nil {
		return false, err
	}
	h := make(mergeHeap, 0, len(run))
	for i, s := range run {
		src := &mergeSource{it: s.iter(), pos: i}
		if err := src.advance(); err != nil {
			w.f.Close()
			os.Remove(w.tmp)
			return false, err
		}
		if !src.done {
			h = append(h, src)
		}
	}
	heap.Init(&h)
	keys := 0
	var last string
	for h.Len() > 0 {
		src := h[0]
		if keys == 0 || src.key != last {
			if err := w.add(src.key, src.val); err != nil {
				w.f.Close()
				os.Remove(w.tmp)
				return false, err
			}
			last = src.key
			keys++
		}
		if err := src.advance(); err != nil {
			w.f.Close()
			os.Remove(w.tmp)
			return false, err
		}
		if src.done {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	info, err := w.finish()
	if err != nil {
		return false, err
	}
	merged, err := openSegment(path)
	if err != nil {
		return false, fmt.Errorf("lsm: reopen merged segment: %w", err)
	}
	merged.bc = db.bcache

	// Commit: replace the run in manifest and segment list, in one
	// manifest write.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		merged.close()
		os.Remove(path)
		return false, nil
	}
	newSegs := make([]manifestSegment, 0, len(db.manifest.Segments)-(hi-lo)+1)
	newSegs = append(newSegs, db.manifest.Segments[:lo]...)
	newSegs = append(newSegs, manifestSegment{ID: id, Keys: info.keys, Bytes: info.bytes})
	newSegs = append(newSegs, db.manifest.Segments[hi:]...)
	oldList := db.manifest.Segments
	db.manifest.Segments = newSegs
	if err := db.manifest.commit(db.dir); err != nil {
		db.manifest.Segments = oldList
		db.mu.Unlock()
		merged.close()
		os.Remove(path)
		return false, err
	}
	old := db.segs[lo:hi:hi]
	segs := make([]*segment, 0, len(db.segs)-(hi-lo)+1)
	segs = append(segs, db.segs[:lo]...)
	segs = append(segs, merged)
	segs = append(segs, db.segs[hi:]...)
	db.segs = segs
	db.mu.Unlock()

	for i, s := range old {
		s.close()
		os.Remove(filepath.Join(db.dir, segName(oldList[lo+i].ID)))
	}
	dur := time.Since(start)
	db.c.compactions.Add(1)
	db.c.compactionNs.Add(dur.Nanoseconds())
	if db.opts.OnCompaction != nil {
		db.opts.OnCompaction(dur.Seconds())
	}
	return true, nil
}
