package lsm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// blockCache holds recently inflated segment blocks so point reads over a
// warm working set cost a map lookup and a block scan instead of a pread
// plus a 64 KiB inflate. It is byte-bounded LRU, shared by every segment
// of one DB; segments purge their entries on close, so a compacted-away
// segment cannot pin cache space. Blocks are immutable once cached — every
// reader scans them copy-out — which makes a single mutex around the list
// safe and cheap relative to the inflate it saves.
type blockCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	m     map[blockCacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type blockCacheKey struct {
	seg *segment
	idx int
}

type blockCacheEntry struct {
	key  blockCacheKey
	data []byte
}

func newBlockCache(maxBytes int64) *blockCache {
	if maxBytes <= 0 {
		return nil
	}
	return &blockCache{max: maxBytes, ll: list.New(), m: map[blockCacheKey]*list.Element{}}
}

func (c *blockCache) get(k blockCacheKey) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.m[k]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*blockCacheEntry).data, true
}

func (c *blockCache) add(k blockCacheKey, data []byte) {
	if int64(len(data)) > c.max {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[k]; ok { // racing readers inflated the same block
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.m[k] = c.ll.PushFront(&blockCacheEntry{key: k, data: data})
	c.bytes += int64(len(data))
	for c.bytes > c.max {
		el := c.ll.Back()
		ent := el.Value.(*blockCacheEntry)
		c.ll.Remove(el)
		delete(c.m, ent.key)
		c.bytes -= int64(len(ent.data))
	}
	c.mu.Unlock()
}

// dropSeg purges every block of one segment (called when the segment file
// is closed: after compaction replaced it, a reader refreshed past it, or
// the DB closed).
func (c *blockCache) dropSeg(s *segment) {
	c.mu.Lock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*blockCacheEntry)
		if ent.key.seg == s {
			c.ll.Remove(el)
			delete(c.m, ent.key)
			c.bytes -= int64(len(ent.data))
		}
		el = next
	}
	c.mu.Unlock()
}

func (c *blockCache) sizeBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *blockCache) hitCount() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

func (c *blockCache) missCount() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}
