package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Blobs is the engine's value-separated heap for large values: a flat
// directory of whole files published by atomic rename, the classic
// key/value-separation move (store big values out of the LSM proper and
// keep the tree small). Unlike DB it is multi-writer by design — there is
// no lock, no WAL, no manifest. Every Put writes a unique temp file and
// renames it into place, so concurrent writers from any number of
// processes can share one directory and a reader always sees a whole blob
// or none. The store's artifact namespace (multi-MB annotation and trace
// blobs written by coordinators, CLIs and fleet workers at once) rides on
// it.
type Blobs struct {
	dir string
}

// OpenBlobs opens (creating if needed) a blob heap rooted at dir.
func OpenBlobs(dir string) (*Blobs, error) {
	if dir == "" {
		return nil, errors.New("lsm: blobs: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: blobs: %w", err)
	}
	return &Blobs{dir: dir}, nil
}

// Dir returns the heap's root directory.
func (b *Blobs) Dir() string { return b.dir }

// Get returns the blob stored under name; a missing blob reports
// os.ErrNotExist.
func (b *Blobs) Get(name string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(b.dir, name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("lsm: blobs: %w", err)
	}
	return raw, nil
}

// Put stores blob under name atomically. The temp file name is unique per
// write: the directory is shared between processes without locking, and
// two writers of the same name colliding on one temp path could rename a
// truncated file into place.
func (b *Blobs) Put(name string, blob []byte) error {
	tmp, err := os.CreateTemp(b.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("lsm: blobs: %w", err)
	}
	_, err = tmp.Write(blob)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(b.dir, name))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lsm: blobs: %w", err)
	}
	return nil
}

// Remove deletes the blob under name; removing a missing blob is not an
// error (another sharer may have removed it first).
func (b *Blobs) Remove(name string) error {
	err := os.Remove(filepath.Join(b.dir, name))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("lsm: blobs: %w", err)
	}
	return nil
}

// List returns the names of all published blobs, skipping in-flight temp
// files from live writers.
func (b *Blobs) List() ([]string, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: blobs: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && !strings.Contains(name, ".tmp-") {
			names = append(names, name)
		}
	}
	return names, nil
}
