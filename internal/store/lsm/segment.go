package lsm

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"regexp"
	"sort"
)

// A segment is one sorted, immutable run on disk: block-compressed
// key/value records, a sparse index (one first-key per block), and a bloom
// filter over every key. Segments are written to a temp file, fsynced and
// renamed into place, so a reader only ever sees a whole segment or none.
//
// Layout:
//
//	[block 0][block 1]...[meta JSON][u32 metaLen][u32 crc32c(meta)][magic8]
//
// Each block is a DEFLATE stream of [u32 keyLen][key][u32 valLen][value]
// records in key order, cut at ~64 KiB of uncompressed payload. A point
// lookup costs: bloom probe (no I/O) -> binary search of the in-memory
// sparse index -> one pread + inflate of a single block -> linear scan.

const (
	segMagic       = "MUSASEG1"
	segBlockTarget = 64 << 10
	segMetaVersion = 1
)

var segNameRe = regexp.MustCompile(`^seg-\d{8}\.sst$`)

func segName(id int64) string { return fmt.Sprintf("seg-%08d.sst", id) }

func isSegName(name string) bool { return segNameRe.MatchString(name) }

func isSegTempName(name string) bool {
	return len(name) > 4 && name[len(name)-4:] == ".tmp"
}

// segMeta is the JSON trailer of a segment file.
type segMeta struct {
	Version   int      `json:"version"`
	FirstKeys []string `json:"firstKeys"`
	Offsets   []int64  `json:"offsets"`
	CLens     []int    `json:"clens"`
	Keys      int      `json:"keys"`
	Bloom     []byte   `json:"bloom"`
}

// segInfo summarizes a freshly written segment.
type segInfo struct {
	keys  int
	bytes int64
}

// segmentWriter streams sorted key/value records into a segment file.
type segmentWriter struct {
	final string
	tmp   string
	f     *os.File
	meta  segMeta
	bloom *bloomFilter

	block   bytes.Buffer // uncompressed pending block
	blockAt int64        // file offset for the pending block
	first   string       // first key of the pending block
	lastKey string
	n       int
}

// newSegmentWriter starts a segment at path (written via path+".tmp").
// expectedKeys sizes the bloom filter; passing the exact count is ideal, an
// upper bound merely wastes a few bits.
func newSegmentWriter(path string, expectedKeys int) (*segmentWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("lsm: segment: %w", err)
	}
	return &segmentWriter{
		final: path, tmp: tmp, f: f,
		meta:  segMeta{Version: segMetaVersion},
		bloom: newBloom(expectedKeys),
	}, nil
}

// add appends one record; keys must arrive in strictly ascending order.
func (w *segmentWriter) add(key string, value []byte) error {
	if w.n > 0 && key <= w.lastKey {
		return fmt.Errorf("lsm: segment: keys out of order (%q after %q)", key, w.lastKey)
	}
	if w.block.Len() == 0 {
		w.first = key
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(key)))
	w.block.Write(hdr[:])
	w.block.WriteString(key)
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(value)))
	w.block.Write(hdr[:])
	w.block.Write(value)
	h1, h2 := bloomHash(key)
	w.bloom.add(h1, h2)
	w.lastKey = key
	w.n++
	if w.block.Len() >= segBlockTarget {
		return w.cutBlock()
	}
	return nil
}

// cutBlock compresses and writes the pending block and records its index
// entry.
func (w *segmentWriter) cutBlock() error {
	if w.block.Len() == 0 {
		return nil
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return fmt.Errorf("lsm: segment: %w", err)
	}
	if _, err := fw.Write(w.block.Bytes()); err != nil {
		return fmt.Errorf("lsm: segment: %w", err)
	}
	if err := fw.Close(); err != nil {
		return fmt.Errorf("lsm: segment: %w", err)
	}
	if _, err := w.f.Write(comp.Bytes()); err != nil {
		return fmt.Errorf("lsm: segment: %w", err)
	}
	w.meta.FirstKeys = append(w.meta.FirstKeys, w.first)
	w.meta.Offsets = append(w.meta.Offsets, w.blockAt)
	w.meta.CLens = append(w.meta.CLens, comp.Len())
	w.blockAt += int64(comp.Len())
	w.block.Reset()
	return nil
}

// finish flushes the last block, writes the meta trailer and footer, syncs
// and renames the segment into place.
func (w *segmentWriter) finish() (segInfo, error) {
	fail := func(err error) (segInfo, error) {
		w.f.Close()
		os.Remove(w.tmp)
		return segInfo{}, err
	}
	if err := w.cutBlock(); err != nil {
		return fail(err)
	}
	w.meta.Keys = w.n
	w.meta.Bloom = w.bloom.bits
	meta, err := json.Marshal(w.meta)
	if err != nil {
		return fail(fmt.Errorf("lsm: segment: %w", err))
	}
	footer := make([]byte, 16)
	binary.LittleEndian.PutUint32(footer, uint32(len(meta)))
	binary.LittleEndian.PutUint32(footer[4:], crc32.Checksum(meta, crcTable))
	copy(footer[8:], segMagic)
	if _, err := w.f.Write(meta); err != nil {
		return fail(fmt.Errorf("lsm: segment: %w", err))
	}
	if _, err := w.f.Write(footer); err != nil {
		return fail(fmt.Errorf("lsm: segment: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return fail(fmt.Errorf("lsm: segment: %w", err))
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return segInfo{}, fmt.Errorf("lsm: segment: %w", err)
	}
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return segInfo{}, fmt.Errorf("lsm: segment: %w", err)
	}
	size := w.blockAt + int64(len(meta)) + int64(len(footer))
	return segInfo{keys: w.n, bytes: size}, nil
}

// writeSegment writes a sorted run as one segment file.
func writeSegment(path string, run []kv) (segInfo, error) {
	w, err := newSegmentWriter(path, len(run))
	if err != nil {
		return segInfo{}, err
	}
	for _, e := range run {
		if err := w.add(e.k, e.v); err != nil {
			w.f.Close()
			os.Remove(w.tmp)
			return segInfo{}, err
		}
	}
	return w.finish()
}

// segment is an open read-only view of one segment file: the sparse index
// and bloom filter live in memory, data blocks are pread on demand through
// the DB's shared block cache (bc; nil bypasses caching).
type segment struct {
	f     *os.File
	meta  segMeta
	bloom bloomFilter
	size  int64
	bc    *blockCache
}

// openSegment opens path and loads its trailer.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() < 16 {
		f.Close()
		return nil, fmt.Errorf("truncated segment (%d bytes)", fi.Size())
	}
	footer := make([]byte, 16)
	if _, err := f.ReadAt(footer, fi.Size()-16); err != nil {
		f.Close()
		return nil, err
	}
	if string(footer[8:]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("bad segment magic")
	}
	metaLen := int64(binary.LittleEndian.Uint32(footer))
	if metaLen <= 0 || metaLen > fi.Size()-16 {
		f.Close()
		return nil, fmt.Errorf("bad segment meta length %d", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := f.ReadAt(meta, fi.Size()-16-metaLen); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.Checksum(meta, crcTable) != binary.LittleEndian.Uint32(footer[4:]) {
		f.Close()
		return nil, fmt.Errorf("segment meta checksum mismatch")
	}
	s := &segment{f: f, size: fi.Size()}
	if err := json.Unmarshal(meta, &s.meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment meta: %w", err)
	}
	if s.meta.Version != segMetaVersion {
		f.Close()
		return nil, fmt.Errorf("segment meta version %d, want %d", s.meta.Version, segMetaVersion)
	}
	s.bloom = bloomFilter{bits: s.meta.Bloom}
	return s, nil
}

func (s *segment) close() {
	if s.bc != nil {
		s.bc.dropSeg(s)
	}
	s.f.Close()
}

// readBlock returns block i inflated, serving from the block cache when it
// can; only an actual pread counts as a segment read.
func (s *segment) readBlock(i int, c *counters) ([]byte, error) {
	if s.bc != nil {
		if b, ok := s.bc.get(blockCacheKey{seg: s, idx: i}); ok {
			return b, nil
		}
	}
	out, err := s.readBlockRaw(i, c)
	if err == nil && s.bc != nil {
		s.bc.add(blockCacheKey{seg: s, idx: i}, out)
	}
	return out, err
}

// readBlockRaw preads and inflates block i, bypassing the cache — the
// compaction iterator streams through here so a whole-segment walk cannot
// evict the hot read set.
func (s *segment) readBlockRaw(i int, c *counters) ([]byte, error) {
	if c != nil {
		c.segReads.Add(1)
	}
	buf := make([]byte, s.meta.CLens[i])
	if _, err := s.f.ReadAt(buf, s.meta.Offsets[i]); err != nil {
		return nil, fmt.Errorf("lsm: segment read: %w", err)
	}
	fr := flate.NewReader(bytes.NewReader(buf))
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("lsm: segment inflate: %w", err)
	}
	return out, nil
}

// get returns the value under key, nil when absent. The caller supplies the
// precomputed bloom hashes so one Get shares them across segments; c may be
// nil to bypass the read counters.
func (s *segment) get(key string, h1, h2 uint64, c *counters) ([]byte, error) {
	if c != nil {
		c.bloomChecks.Add(1)
	}
	if !s.bloom.test(h1, h2) {
		if c != nil {
			c.bloomRejects.Add(1)
		}
		return nil, nil
	}
	return s.find(key, c)
}

// find looks key up past the bloom filter: sparse-index search, one block
// read (cache-served when warm), linear scan. The read path probes filters
// inline and batches its counter updates, so it calls this directly.
func (s *segment) find(key string, c *counters) ([]byte, error) {
	// Last block whose first key <= key.
	i := sort.SearchStrings(s.meta.FirstKeys, key)
	if i < len(s.meta.FirstKeys) && s.meta.FirstKeys[i] == key {
		// exact match on a block boundary
	} else {
		i--
	}
	if i < 0 {
		if c != nil {
			c.bloomFP.Add(1)
		}
		return nil, nil
	}
	block, err := s.readBlock(i, c)
	if err != nil {
		return nil, err
	}
	v, ok := scanBlock(block, key)
	if !ok && c != nil {
		c.bloomFP.Add(1)
	}
	return v, nil
}

// scanBlock walks an inflated block for key.
func scanBlock(block []byte, key string) ([]byte, bool) {
	for off := 0; off+8 <= len(block); {
		klen := int(binary.LittleEndian.Uint32(block[off:]))
		off += 4
		if off+klen+4 > len(block) {
			break
		}
		k := block[off : off+klen]
		off += klen
		vlen := int(binary.LittleEndian.Uint32(block[off:]))
		off += 4
		if off+vlen > len(block) {
			break
		}
		if string(k) == key {
			return append([]byte(nil), block[off:off+vlen]...), true
		}
		off += vlen
	}
	return nil, false
}

// scan visits every record in key order.
func (s *segment) scan(fn func(key string, value []byte) error) error {
	it := s.iter()
	for {
		k, v, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
}

// segIter walks a segment's records in key order, one block resident at a
// time — the compaction merge reads through these.
type segIter struct {
	s     *segment
	block []byte
	bi    int // next block to load
	off   int
}

func (s *segment) iter() *segIter { return &segIter{s: s} }

func (it *segIter) next() (key string, value []byte, ok bool, err error) {
	for {
		if it.off+8 <= len(it.block) {
			klen := int(binary.LittleEndian.Uint32(it.block[it.off:]))
			it.off += 4
			key = string(it.block[it.off : it.off+klen])
			it.off += klen
			vlen := int(binary.LittleEndian.Uint32(it.block[it.off:]))
			it.off += 4
			value = append([]byte(nil), it.block[it.off:it.off+vlen]...)
			it.off += vlen
			return key, value, true, nil
		}
		if it.bi >= len(it.s.meta.Offsets) {
			return "", nil, false, nil
		}
		it.block, err = it.s.readBlockRaw(it.bi, nil)
		if err != nil {
			return "", nil, false, err
		}
		it.bi++
		it.off = 0
	}
}
