package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tkey(i int) string { return fmt.Sprintf("key-%06d", i) }

func tval(i int) []byte {
	return []byte(fmt.Sprintf(`{"measurement":%d,"payload":"%s"}`, i, strings.Repeat("x", 64)))
}

// smallOpts keeps the memtable tiny so tests exercise flush and segment
// paths without bulk data.
func smallOpts() Options {
	return Options{MemtableBytes: 4 << 10, NoCompact: true}
}

func fill(t testing.TB, db *DB, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := db.Put(tkey(i), tval(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTripAcrossFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	fill(t, db, 0, 500)
	// Overwrite a few: last write must win across memtable and segments.
	for _, i := range []int{0, 100, 499} {
		if err := db.Put(tkey(i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	check := func(db *DB) {
		t.Helper()
		for i := 0; i < 500; i++ {
			want := tval(i)
			if i == 0 || i == 100 || i == 499 {
				want = []byte("v2")
			}
			v, ok := db.Get(tkey(i))
			if !ok || !bytes.Equal(v, want) {
				t.Fatalf("key %d: ok=%v val=%q want %q", i, ok, v, want)
			}
		}
		if _, ok := db.Get("absent"); ok {
			t.Fatal("phantom hit")
		}
	}
	check(db)
	// Flushes run in the background; an explicit Flush drains any in-flight
	// one before we assert the counter moved.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Flushes == 0 {
		t.Fatal("memtable never flushed under the small bound")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Len(); got != 500 {
		t.Fatalf("Len after reopen = %d, want 500", got)
	}
	check(db2)
}

func TestWALReplayAfterKill(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 1 << 20, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, db, 0, 50)
	// Simulate a kill: do not Close (no flush); reopen must replay the WAL.
	db.wal.f.Sync()
	db.lock.Close() // release the flock as process exit would

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.WALReplayed != 50 {
		t.Fatalf("replayed %d records, want 50", st.WALReplayed)
	}
	if db2.Len() != 50 {
		t.Fatalf("Len = %d, want 50", db2.Len())
	}
	for i := 0; i < 50; i++ {
		if v, ok := db2.Get(tkey(i)); !ok || !bytes.Equal(v, tval(i)) {
			t.Fatalf("key %d lost after WAL replay", i)
		}
	}
}

func TestTornWALTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 1 << 20, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, db, 0, 20)
	db.lock.Close()

	// Tear the final record: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("open refused a store with a torn WAL tail: %v", err)
	}
	defer db2.Close()
	st := db2.Stats()
	if !st.WALTornTail {
		t.Fatal("torn tail not reported")
	}
	if st.WALReplayed != 19 {
		t.Fatalf("replayed %d records, want the 19 intact ones", st.WALReplayed)
	}
	for i := 0; i < 19; i++ {
		if _, ok := db2.Get(tkey(i)); !ok {
			t.Fatalf("intact record %d lost", i)
		}
	}
	// The torn record is gone; the store keeps accepting writes.
	if _, ok := db2.Get(tkey(19)); ok {
		t.Fatal("torn record served")
	}
	if err := db2.Put(tkey(19), tval(19)); err != nil {
		t.Fatal(err)
	}
	if v, ok := db2.Get(tkey(19)); !ok || !bytes.Equal(v, tval(19)) {
		t.Fatal("rewrite after torn tail failed")
	}
}

// TestGarbageWALRecordEndsReplayAtIntactPrefix corrupts a middle record:
// replay must keep everything before it and drop the rest (the suffix
// cannot be trusted once framing is lost).
func TestGarbageWALRecordEndsReplayAtIntactPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 1 << 20, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, db, 0, 10)
	db.lock.Close()

	walPath := filepath.Join(dir, "wal.log")
	raw, _ := os.ReadFile(walPath)
	raw[len(raw)/2] ^= 0xff // flip a bit mid-log
	os.WriteFile(walPath, raw, 0o644)

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("open refused a store with a corrupt WAL record: %v", err)
	}
	defer db2.Close()
	st := db2.Stats()
	if !st.WALTornTail || st.WALReplayed == 0 || st.WALReplayed >= 10 {
		t.Fatalf("replay kept %d records (torn=%v), want an intact non-empty prefix", st.WALReplayed, st.WALTornTail)
	}
}

func TestSecondWriterGetsErrBusy(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, smallOpts()); !errors.Is(err, ErrBusy) {
		t.Fatalf("second writer error = %v, want ErrBusy", err)
	}
	// Readers are never refused.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("reader refused while writer live: %v", err)
	}
	ro.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	db2.Close()
}

// TestWriterAndReaderShareDirectory is the multi-process contract: a
// read-only handle (no lock, separate instance) tracks a live writer's
// published segments via the MANIFEST.
func TestWriterAndReaderShareDirectory(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fill(t, w, 0, 10)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get(tkey(3)); !ok || !bytes.Equal(v, tval(3)) {
		t.Fatal("reader misses flushed data")
	}
	if err := r.Put("x", []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put error = %v, want ErrReadOnly", err)
	}

	// The writer publishes more; the reader's next miss refreshes its view.
	fill(t, w, 10, 20)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get(tkey(15)); !ok || !bytes.Equal(v, tval(15)) {
		t.Fatal("reader did not refresh to the writer's new segment")
	}
	if st := r.Stats(); st.Refreshes == 0 {
		t.Fatal("refresh not counted")
	}
	if r.Len() != 20 {
		t.Fatalf("reader Len = %d, want 20", r.Len())
	}

	// Unflushed memtable data is invisible to readers — by contract.
	if err := w.Put("memonly", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("memonly"); ok {
		t.Fatal("reader sees the writer's memtable")
	}
}

// TestBloomRejectsMissWithoutSegmentReads is the serve-scale miss path:
// lookups of never-computed keys must not read data blocks except on bloom
// false positives, and those must be rare.
func TestBloomRejectsMissWithoutSegmentReads(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	fill(t, db, 0, 2000)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.MemtableKeys != 0 || st.Segments == 0 {
		t.Fatalf("expected all data in segments, got %+v", st)
	}

	const misses = 1000
	before := db.Stats()
	for i := 0; i < misses; i++ {
		if _, ok := db.Get(fmt.Sprintf("never-computed-%06d", i)); ok {
			t.Fatal("phantom hit")
		}
	}
	after := db.Stats()
	fp := after.BloomFalsePositives - before.BloomFalsePositives
	reads := after.SegmentReads - before.SegmentReads
	if reads > fp {
		t.Fatalf("miss path read %d blocks but only %d bloom false positives", reads, fp)
	}
	// ~1% per segment probe; with a handful of segments allow generous slack.
	if maxFP := int64(misses) * int64(after.Segments) / 20; fp > maxFP {
		t.Fatalf("false positive count %d exceeds %d (~5%% of %d probes across %d segments)",
			fp, maxFP, misses, after.Segments)
	}
	if after.BloomRejects == before.BloomRejects {
		t.Fatal("bloom filters never rejected")
	}
}

func TestCompactionFoldsSegmentsAndKeepsData(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 2 << 10, CompactAt: 4, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Several flushes with overlapping key ranges and overwrites.
	for round := 0; round < 6; round++ {
		for i := 0; i < 120; i++ {
			if err := db.Put(tkey(i), []byte(fmt.Sprintf("round-%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats()
	if before.Segments < 4 {
		t.Fatalf("only %d segments before compaction", before.Segments)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("compaction did not reduce segments: %d -> %d", before.Segments, after.Segments)
	}
	if after.Compactions == 0 || after.CompactionSecs <= 0 {
		t.Fatalf("compaction counters not updated: %+v", after)
	}
	if db.Len() != 120 {
		t.Fatalf("Len = %d, want 120", db.Len())
	}
	for i := 0; i < 120; i++ {
		want := fmt.Sprintf("round-5-%d", i)
		if v, ok := db.Get(tkey(i)); !ok || string(v) != want {
			t.Fatalf("key %d after compaction: ok=%v val=%q want %q", i, ok, v, want)
		}
	}
	// Old segment files are deleted.
	ents, _ := os.ReadDir(dir)
	var segFiles int
	for _, e := range ents {
		if isSegName(e.Name()) {
			segFiles++
		}
	}
	if segFiles != after.Segments {
		t.Fatalf("%d segment files on disk, manifest lists %d", segFiles, after.Segments)
	}
}

// TestKilledCompactionLeavesConsistentManifest plants the debris a
// compaction killed before its manifest commit would leave — a fully
// written merged segment and a half-written temp — and proves open serves
// the pre-compaction state and sweeps the orphans.
func TestKilledCompactionLeavesConsistentManifest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 2 << 10, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, db, 0, 200)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Orphan 1: a merged segment that never made it into the MANIFEST.
	orphan := filepath.Join(dir, segName(9999))
	if _, err := writeSegment(orphan, []kv{{k: "zzz", v: []byte("stale")}}); err != nil {
		t.Fatal(err)
	}
	// Orphan 2: a temp file killed mid-write.
	if err := os.WriteFile(filepath.Join(dir, segName(9998)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatalf("open refused after killed compaction: %v", err)
	}
	defer db2.Close()
	if db2.Len() != 200 {
		t.Fatalf("Len = %d, want 200", db2.Len())
	}
	for i := 0; i < 200; i++ {
		if _, ok := db2.Get(tkey(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	if _, ok := db2.Get("zzz"); ok {
		t.Fatal("orphan segment's data served")
	}
	for _, name := range []string{segName(9999), segName(9998) + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %s not swept", name)
		}
	}
}

func TestScanVisitsLiveVersionsInKeyOrder(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	fill(t, db, 0, 300)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(tkey(7), []byte("new")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err = db.Scan(func(k string, v []byte) error {
		keys = append(keys, k)
		if k == tkey(7) && string(v) != "new" {
			t.Fatalf("scan served stale version of %s", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 300 {
		t.Fatalf("scan visited %d keys, want 300", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("scan not in key order")
		}
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	fill(t, db, 0, 500)
	done := make(chan error, 4)
	for g := 0; g < 3; g++ {
		go func(g int) {
			for i := 0; i < 2000; i++ {
				k := tkey((i * (g + 1)) % 500)
				if _, ok := db.Get(k); !ok {
					done <- fmt.Errorf("reader %d: key %s missing", g, k)
					return
				}
				db.Get(fmt.Sprintf("miss-%d-%d", g, i))
			}
			done <- nil
		}(g)
	}
	go func() {
		for i := 500; i < 1500; i++ {
			if err := db.Put(tkey(i), tval(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", db.Len())
	}
}
