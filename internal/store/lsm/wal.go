package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log makes every Put durable before it is acknowledged:
// one framed, checksummed record per write. The log covers only the
// memtables — a completed flush persists their contents as a segment and
// drops the log — so replay cost is bounded by memtable size. A record
// torn by a kill mid-append fails its length or CRC check; replay keeps
// the intact prefix and truncates the tail, never refusing the store.
//
// Flushes run in the background, so the log exists in up to two
// generations: when the memtable rotates to its immutable flush snapshot,
// the live log is renamed to the .old generation (covering the snapshot)
// and a fresh log takes new writes; the .old file is deleted once the
// flushed segment's manifest commit lands. Replay order at open is .old
// first, then the live log.
//
// Record framing: [u32 payloadLen][u32 crc32c(payload)][payload], with
// payload = [u32 keyLen][key][value].

const walMaxRecord = 1 << 30 // sanity bound on a record's claimed length

// walOldSuffix marks the rotated log generation covering the memtable
// snapshot a background flush is writing out.
const walOldSuffix = ".old"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type wal struct {
	f    *os.File
	path string
}

// openWAL opens (creating if needed) the log at path and replays every
// intact record through apply in write order. It returns the open log
// positioned for appending, the number of replayed records, and whether a
// torn tail was truncated.
func openWAL(path string, apply func(key string, value []byte)) (w *wal, replayed int64, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, false, fmt.Errorf("lsm: wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, false, fmt.Errorf("lsm: wal: %w", err)
	}
	var off int
	for {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			torn = off < len(data)
			break
		}
		klen := binary.LittleEndian.Uint32(rec)
		key := string(rec[4 : 4+klen])
		val := append([]byte(nil), rec[4+klen:]...)
		apply(key, val)
		replayed++
		off += n
	}
	if torn {
		// Drop the torn tail so the next append starts at a record boundary.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, 0, false, fmt.Errorf("lsm: wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, 0, false, fmt.Errorf("lsm: wal: %w", err)
	}
	return &wal{f: f, path: path}, replayed, torn, nil
}

// replayWALFile replays an inert log generation (the .old file left by a
// kill mid-flush) without opening it for append. A missing file replays
// nothing.
func replayWALFile(path string, apply func(key string, value []byte)) (replayed int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("lsm: wal: %w", err)
	}
	var off int
	for {
		rec, n, ok := parseRecord(data[off:])
		if !ok {
			return replayed, off < len(data), nil
		}
		klen := binary.LittleEndian.Uint32(rec)
		key := string(rec[4 : 4+klen])
		apply(key, append([]byte(nil), rec[4+klen:]...))
		replayed++
		off += n
	}
}

// parseRecord decodes one record from the head of data, returning the
// payload, the total framed size, and whether the record is intact.
func parseRecord(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < 8 {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen < 4 || plen > walMaxRecord || len(data) < 8+int(plen) {
		return nil, 0, false
	}
	payload = data[8 : 8+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, false
	}
	klen := binary.LittleEndian.Uint32(payload)
	if 4+int(klen) > int(plen) {
		return nil, 0, false
	}
	return payload, 8 + int(plen), true
}

// append writes one record and reports its framed size. The record is
// handed to the kernel in a single Write, so a crashed process leaves at
// most one torn record at the tail.
func (w *wal) append(key string, value []byte) (int, error) {
	plen := 4 + len(key) + len(value)
	buf := make([]byte, 8+plen)
	binary.LittleEndian.PutUint32(buf, uint32(plen))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(key)))
	copy(buf[12:], key)
	copy(buf[12+len(key):], value)
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:], crcTable))
	if _, err := w.f.Write(buf); err != nil {
		return 0, fmt.Errorf("lsm: wal append: %w", err)
	}
	return len(buf), nil
}

// reset truncates the log after a synchronous flush: its records are now
// durable in a published segment.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("lsm: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("lsm: wal reset: %w", err)
	}
	return nil
}

// rotate moves the live log to the .old generation and starts a fresh one;
// the caller guarantees no .old file exists (at most one flush in flight).
func (w *wal) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("lsm: wal rotate: %w", err)
	}
	if err := os.Rename(w.path, w.path+walOldSuffix); err != nil {
		return fmt.Errorf("lsm: wal rotate: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: wal rotate: %w", err)
	}
	w.f = f
	return nil
}

func (w *wal) close() error { return w.f.Close() }
