package lsm

import "math/bits"

// A bloom filter per segment makes the dominant serve-scale operation — a
// lookup of a key nobody ever computed — nearly free: ~10 bits per key and
// 7 probes give a ~1% false-positive rate, so 99% of absent-key lookups
// skip the segment without reading a data block. Filters use classic
// double hashing (Kirsch–Mitzenmacher): probe i tests bit h1 + i*h2, so
// the two 64-bit hashes are computed once per Get and shared by every
// segment's filter.

const (
	bloomBitsPerKey = 10
	bloomK          = 7
)

// bloomHash returns the two independent hashes of key. The accumulator is
// a word-at-a-time FNV-1a variant: byte-wise FNV chains one multiply per
// byte serially, which shows up as the top cost of the absent-key path, so
// we fold eight bytes per step (the compiler turns the byte ORs into one
// unaligned load) and recover avalanche quality with a splitmix64
// finalizer per output. Store keys are ~20-60 byte hashes/prefixes, so the
// word loop runs 3-8 times instead of 20-60.
func bloomHash(key string) (h1, h2 uint64) {
	h := uint64(14695981039346656037) ^ uint64(len(key)) // length disambiguates zero-padded tails
	i := 0
	for ; i+8 <= len(key); i += 8 {
		w := uint64(key[i]) | uint64(key[i+1])<<8 | uint64(key[i+2])<<16 |
			uint64(key[i+3])<<24 | uint64(key[i+4])<<32 | uint64(key[i+5])<<40 |
			uint64(key[i+6])<<48 | uint64(key[i+7])<<56
		h = (h ^ w) * 0x100000001b3
	}
	var tail uint64
	for j := uint(0); i < len(key); i, j = i+1, j+8 {
		tail |= uint64(key[i]) << j
	}
	h = (h ^ tail) * 0x100000001b3
	h1 = mix64(h)
	h2 = mix64(h1) | 1 // odd, so probes cycle through the whole bit array
	return h1, h2
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bloomFilter is a fixed-size bit array.
type bloomFilter struct {
	bits []byte
}

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	m := (n*bloomBitsPerKey + 7) / 8
	return &bloomFilter{bits: make([]byte, m)}
}

func (b *bloomFilter) nbits() uint64 { return uint64(len(b.bits)) * 8 }

// bitOf maps probe hash h into [0, m) with a multiply-shift (Lemire's
// fastrange) instead of a modulo: the miss path probes every segment's
// filter 7 times, and a 64-bit division per probe is the single biggest
// cost in an otherwise memory-bound loop.
func bitOf(h, m uint64) uint64 {
	hi, _ := bits.Mul64(h, m)
	return hi
}

func (b *bloomFilter) add(h1, h2 uint64) {
	m := b.nbits()
	for i := uint64(0); i < bloomK; i++ {
		bit := bitOf(h1+i*h2, m)
		b.bits[bit>>3] |= 1 << (bit & 7)
	}
}

func (b *bloomFilter) test(h1, h2 uint64) bool {
	m := b.nbits()
	if m == 0 {
		return false
	}
	for i := uint64(0); i < bloomK; i++ {
		bit := bitOf(h1+i*h2, m)
		if b.bits[bit>>3]&(1<<(bit&7)) == 0 {
			return false
		}
	}
	return true
}
