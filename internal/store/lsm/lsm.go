// Package lsm is the storage engine under the result and artifact stores:
// a log-structured merge tree tuned for the reproduction's access pattern —
// content-addressed keys, read-dominated traffic with a heavy
// never-computed-key miss path, no deletes.
//
// Writes land in a WAL-backed memtable and are flushed to sorted, immutable
// segment files: block-compressed key/value runs with a sparse index and a
// per-segment bloom filter, so the dominant case at serve scale (a miss on
// a key nobody ever computed) is rejected without touching a data block.
// Size-tiered background compaction folds accumulated segments together.
//
// The engine is single-writer/many-reader by design: exactly one process
// may open a directory for writing (an advisory flock on wal.lock; a second
// writer gets ErrBusy), while any number of processes may open it read-only
// with no lock at all. The writer publishes state changes by writing whole
// segment files and atomically renaming a versioned MANIFEST into place;
// readers re-stat the MANIFEST on a full miss and reload when it moved, so
// a warm serve replica tracks a store another process is writing.
package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// Errors the engine reports as typed sentinels.
var (
	// ErrBusy is returned by Open when a second writer requests a
	// directory whose writer lock is already held.
	ErrBusy = errors.New("lsm: store is open for writing by another process")
	// ErrReadOnly is returned by Put on a read-only handle.
	ErrReadOnly = errors.New("lsm: store opened read-only")
)

// Default sizing applied when Options leaves the corresponding knob zero.
// Exported so the layers above (store, client, /stats) can report the
// effective configuration without re-stating the numbers.
const (
	// DefaultMemtableBytes is the memtable flush threshold.
	DefaultMemtableBytes = 4 << 20
	// DefaultBlockCacheBytes bounds the inflated-block LRU cache.
	DefaultBlockCacheBytes = 8 << 20
)

// Options tunes an engine instance.
type Options struct {
	// ReadOnly opens the directory without the writer lock: Put fails with
	// ErrReadOnly, the WAL is not replayed (a live writer owns its tail),
	// and the segment set is refreshed from the MANIFEST when it changes.
	ReadOnly bool
	// MemtableBytes flushes the memtable to a segment once its payload
	// exceeds this bound (0 = 4 MiB).
	MemtableBytes int
	// BlockCacheBytes bounds the shared cache of inflated segment blocks
	// that point reads are served through (0 = 8 MiB, <0 disables).
	BlockCacheBytes int64
	// CompactAt folds a tier's segments together once the tier holds at
	// least this many (0 = 4; <0 disables background compaction).
	CompactAt int
	// NoCompact disables background compaction (crash tests drive
	// compaction explicitly).
	NoCompact bool
	// OnCompaction, if set, observes each completed compaction's duration
	// in seconds (the obs bridge registers a histogram here).
	OnCompaction func(seconds float64)
}

// Stats is a snapshot of the engine counters. All counters are cumulative
// since Open except the gauges (MemtableBytes, MemtableKeys, Segments*).
type Stats struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`

	// MemtableHits counts gets served by the mutable memtable.
	MemtableHits  int64 `json:"memtableHits"`
	MemtableBytes int64 `json:"memtableBytes"`
	MemtableKeys  int64 `json:"memtableKeys"`

	// BloomChecks / BloomRejects / BloomFalsePositives count per-segment
	// filter probes: a reject skips the segment without I/O; a false
	// positive paid a block read that found nothing.
	BloomChecks         int64 `json:"bloomChecks"`
	BloomRejects        int64 `json:"bloomRejects"`
	BloomFalsePositives int64 `json:"bloomFalsePositives"`

	// SegmentReads counts data-block reads (one pread + decompress each);
	// a block-cache hit serves the inflated block without one.
	SegmentReads    int64 `json:"segmentReads"`
	BlockCacheHits  int64 `json:"blockCacheHits"`
	BlockCacheMiss  int64 `json:"blockCacheMisses"`
	BlockCacheBytes int64 `json:"blockCacheBytes"`

	// Segments is the live segment count; SegmentsPerTier maps size tier
	// (log4 of bytes over 1 MiB) to count.
	Segments        int         `json:"segments"`
	SegmentsPerTier map[int]int `json:"segmentsPerTier"`
	SegmentBytes    int64       `json:"segmentBytes"`
	Flushes         int64       `json:"flushes"`
	Compactions     int64       `json:"compactions"`
	CompactionSecs  float64     `json:"compactionSeconds"`
	WALBytes        int64       `json:"walBytes"`
	WALReplayed     int64       `json:"walReplayed"`
	WALTornTail     bool        `json:"walTornTail"`
	ManifestVersion int64       `json:"manifestVersion"`
	Keys            int         `json:"keys"`
	ReadOnly        bool        `json:"readOnly"`
	Refreshes       int64       `json:"refreshes"`
}

// DB is one open engine instance. All methods are safe for concurrent use.
type DB struct {
	dir      string
	opts     Options
	readOnly bool

	mu       sync.RWMutex
	mem      *memtable
	imm      *memtable  // snapshot a background flush is writing; nil otherwise
	segs     []*segment // recency order: oldest first, newest last
	manifest manifest
	wal      *wal
	lock     *os.File
	closed   bool
	// flushErr is the sticky background-flush failure: rotation stops (the
	// .old log is the snapshot's only durable copy) and the next explicit
	// Flush retries synchronously and surfaces it.
	flushErr  error
	flushCond *sync.Cond // signals imm == nil; lazily bound to &mu

	// maintenance serializes flush-triggered compaction with Close.
	maintWG sync.WaitGroup
	maintMu sync.Mutex

	bcache *blockCache // shared inflated-block cache; nil when disabled

	c counters
}

// Open opens (creating if needed, unless read-only) the engine rooted at
// dir. A writer replays the WAL tail — tolerating a torn final record — and
// takes the writer lock; a second writer gets an error wrapping ErrBusy.
func Open(dir string, opts Options) (*DB, error) {
	db := &DB{dir: dir, opts: opts, readOnly: opts.ReadOnly}
	db.flushCond = sync.NewCond(&db.mu)
	if opts.MemtableBytes <= 0 {
		db.opts.MemtableBytes = DefaultMemtableBytes
	}
	if opts.CompactAt <= 0 {
		db.opts.CompactAt = 4
	}
	if opts.BlockCacheBytes == 0 {
		db.opts.BlockCacheBytes = DefaultBlockCacheBytes
	}
	db.bcache = newBlockCache(db.opts.BlockCacheBytes)
	if db.readOnly {
		return db, db.openReadOnly()
	}
	return db, db.openWriter()
}

func (db *DB) openWriter() error {
	if err := os.MkdirAll(db.dir, 0o755); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(db.dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return fmt.Errorf("lsm: %s: %w", db.dir, ErrBusy)
	}
	db.lock = lock
	man, err := loadManifest(db.dir)
	if err != nil {
		lock.Close()
		return err
	}
	db.manifest = man
	if err := db.openSegments(); err != nil {
		lock.Close()
		return err
	}
	db.removeOrphans()
	db.mem = newMemtable()
	// Replay the WAL tail: records beyond the last completed flush. The
	// .old generation (left by a kill mid-flush) replays first, then the
	// live log on top. A record torn by a kill mid-append ends that
	// generation's replay at the intact prefix — the store is never
	// refused.
	apply := func(k string, v []byte) {
		if fresh := db.mem.put(k, v); fresh && !db.hasInSegments(k) {
			db.manifest.Keys++
		}
	}
	walPath := filepath.Join(db.dir, "wal.log")
	oldReplayed, oldTorn, err := replayWALFile(walPath+walOldSuffix, apply)
	if err != nil {
		lock.Close()
		return err
	}
	w, replayed, torn, err := openWAL(walPath, apply)
	if err != nil {
		lock.Close()
		return err
	}
	db.wal = w
	db.c.walReplayed.Store(oldReplayed + replayed)
	if torn || oldTorn {
		db.c.walTorn.Store(1)
	}
	if oldReplayed > 0 {
		// Fold both generations into a segment now so the .old file (whose
		// name the next rotation needs) is retired before any writes land.
		if err := db.flushSyncLocked(); err != nil {
			lock.Close()
			return err
		}
	} else {
		os.Remove(walPath + walOldSuffix) // empty or all-torn leftover
	}
	return nil
}

func (db *DB) openReadOnly() error {
	man, err := loadManifest(db.dir)
	if err != nil {
		return err
	}
	db.manifest = man
	db.mem = newMemtable() // stays empty; satisfies the read path
	return db.openSegments()
}

// openSegments opens a reader for every manifest segment. Caller owns mu or
// is in Open.
func (db *DB) openSegments() error {
	segs := make([]*segment, 0, len(db.manifest.Segments))
	for _, ms := range db.manifest.Segments {
		s, err := openSegment(filepath.Join(db.dir, segName(ms.ID)))
		if err != nil {
			for _, o := range segs {
				o.close()
			}
			return fmt.Errorf("lsm: segment %d: %w", ms.ID, err)
		}
		s.bc = db.bcache
		segs = append(segs, s)
	}
	db.segs = segs
	return nil
}

// removeOrphans deletes segment and temp files not referenced by the
// MANIFEST — the leftovers of a compaction or flush killed before its
// manifest commit. The manifest is the only source of truth, so a killed
// compaction leaves it pointing at the pre-compaction (consistent) set and
// its half-written output is swept here.
func (db *DB) removeOrphans() {
	live := map[string]bool{}
	for _, ms := range db.manifest.Segments {
		live[segName(ms.ID)] = true
	}
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if live[name] {
			continue
		}
		if isSegName(name) || isSegTempName(name) {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// hasInSegments reports whether key exists in any live segment (bloom-
// guarded; used to keep the exact key count while replaying the WAL and
// applying puts). It bypasses the read counters so put-path bookkeeping
// does not pollute the bloom false-positive rate. Caller owns mu or is in
// Open.
func (db *DB) hasInSegments(key string) bool {
	if len(db.segs) == 0 {
		return false
	}
	h1, h2 := bloomHash(key)
	for i := len(db.segs) - 1; i >= 0; i-- {
		if v, err := db.segs[i].get(key, h1, h2, nil); err == nil && v != nil {
			return true
		}
	}
	return false
}

// Get returns the value stored under key.
func (db *DB) Get(key string) ([]byte, bool) {
	db.c.gets.Add(1)
	db.mu.RLock()
	if v, ok := db.getFromMemtables(key); ok {
		db.mu.RUnlock()
		db.c.memHits.Add(1)
		db.c.hits.Add(1)
		return v, true
	}
	v, ok := db.getFromSegments(key)
	db.mu.RUnlock()
	if !ok && db.readOnly {
		// A reader's view is the MANIFEST it loaded; the writer may have
		// published since. One stat tells us; reload only when it moved.
		if db.refreshIfStale() {
			db.mu.RLock()
			v, ok = db.getFromSegments(key)
			db.mu.RUnlock()
		}
	}
	if ok {
		db.c.hits.Add(1)
	}
	// Misses are derived (gets - hits) so the dominant absent-key path pays
	// one less atomic.
	return v, ok
}

// getFromMemtables checks the mutable memtable, then the immutable flush
// snapshot. Caller holds mu (read).
func (db *DB) getFromMemtables(key string) ([]byte, bool) {
	if v, ok := db.mem.get(key); ok {
		return v, true
	}
	if db.imm != nil {
		return db.imm.get(key)
	}
	return nil, false
}

// getFromSegments searches newest-to-oldest. The bloom hashes are computed
// once per lookup and shared across every segment probe, and the probe
// counters are batched into two atomic adds per lookup; an empty segment
// set costs nothing at all. Caller holds mu (read).
func (db *DB) getFromSegments(key string) ([]byte, bool) {
	if len(db.segs) == 0 {
		return nil, false
	}
	h1, h2 := bloomHash(key)
	var checks, rejects int64
	for i := len(db.segs) - 1; i >= 0; i-- {
		s := db.segs[i]
		checks++
		if !s.bloom.test(h1, h2) {
			rejects++
			continue
		}
		if v, err := s.find(key, &db.c); err == nil && v != nil {
			db.c.bloomChecks.Add(checks)
			db.c.bloomRejects.Add(rejects)
			return v, true
		}
	}
	db.c.bloomChecks.Add(checks)
	db.c.bloomRejects.Add(rejects)
	return nil, false
}

// Has reports whether key is stored, at bloom-filter cost for absent keys.
func (db *DB) Has(key string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.getFromMemtables(key); ok {
		return true
	}
	_, ok := db.getFromSegments(key)
	return ok
}

// Put stores value under key: one durable WAL append plus a memtable
// insert. Once the memtable exceeds its bound it rotates to an immutable
// snapshot that a background goroutine flushes, so a Put never waits for
// segment compression.
func (db *DB) Put(key string, value []byte) error {
	if db.readOnly {
		return ErrReadOnly
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return errors.New("lsm: store is closed")
	}
	n, err := db.wal.append(key, value)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.c.walBytes.Add(int64(n))
	if fresh := db.mem.put(key, value); fresh {
		inImm := false
		if db.imm != nil {
			_, inImm = db.imm.get(key)
		}
		if !inImm && !db.hasInSegments(key) {
			db.manifest.Keys++
		}
	}
	db.c.puts.Add(1)
	var rotErr error
	if db.mem.bytes >= db.opts.MemtableBytes && db.imm == nil && db.flushErr == nil {
		rotErr = db.rotateLocked()
	}
	db.mu.Unlock()
	return rotErr
}

// rotateLocked snapshots the memtable for a background flush: the live WAL
// becomes the .old generation covering the snapshot, a fresh log takes new
// writes, and a worker compresses the segment outside the lock. Caller
// holds mu (write); imm must be nil and flushErr clear.
func (db *DB) rotateLocked() error {
	if err := db.wal.rotate(); err != nil {
		return err
	}
	db.imm = db.mem
	db.mem = newMemtable()
	db.maintWG.Add(1)
	go db.flushImm(db.imm)
	return nil
}

// flushImm writes the immutable snapshot out as a segment — the sort and
// flate compression run outside the lock, so Put and Get never stall
// behind a flush — then re-locks to publish it. On failure the snapshot
// folds back into the memtable and the .old log (its only durable copy) is
// kept; rotation stays off until a successful explicit Flush clears the
// sticky error.
func (db *DB) flushImm(imm *memtable) {
	defer db.maintWG.Done()
	db.mu.Lock()
	id := db.manifest.NextSeg
	db.manifest.NextSeg++ // reserved; a failed flush just skips the id
	db.mu.Unlock()

	path := filepath.Join(db.dir, segName(id))
	info, err := writeSegment(path, imm.sorted())
	var seg *segment
	if err == nil {
		if seg, err = openSegment(path); err == nil {
			seg.bc = db.bcache
		}
	}

	db.mu.Lock()
	defer func() {
		db.imm = nil
		db.flushCond.Broadcast()
		db.mu.Unlock()
	}()
	if err == nil {
		db.manifest.Segments = append(db.manifest.Segments, manifestSegment{
			ID: id, Keys: info.keys, Bytes: info.bytes,
		})
		if cerr := db.manifest.commit(db.dir); cerr != nil {
			db.manifest.Segments = db.manifest.Segments[:len(db.manifest.Segments)-1]
			seg.close()
			err = cerr
		}
	}
	if err != nil {
		os.Remove(path)
		db.flushErr = err
		// Fold the snapshot back under the live memtable: keys written since
		// the rotation stay newer, everything else becomes visible again.
		for k, v := range imm.m {
			if _, ok := db.mem.m[k]; !ok {
				db.mem.put(k, v)
			}
		}
		return
	}
	db.segs = append(db.segs, seg)
	db.c.flushes.Add(1)
	os.Remove(db.wal.path + walOldSuffix)
	if !db.opts.NoCompact && db.compactable() != nil {
		db.maintWG.Add(1)
		go func() {
			defer db.maintWG.Done()
			db.Compact() // serialized internally; errors surface in Stats via segment counts
		}()
	}
}

// Flush synchronously persists everything buffered in memory: it waits out
// any in-flight background flush (surfacing its failure by retrying the
// write), then flushes the live memtable as a segment and truncates the
// WAL, publishing to concurrent readers via the MANIFEST.
func (db *DB) Flush() error {
	if db.readOnly {
		return ErrReadOnly
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for db.imm != nil {
		db.flushCond.Wait()
	}
	if db.closed {
		return errors.New("lsm: store is closed")
	}
	return db.flushSyncLocked()
}

// Drain flushes the memtable and then waits for all background
// maintenance — in-flight flushes and any compactions they trigger — to
// go idle. Benchmarks and tests quiesce the engine with it so measured
// loops are not sharing the CPU with leftover write-path work.
func (db *DB) Drain() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.maintWG.Wait()
	return nil
}

// flushSyncLocked flushes a non-empty memtable inline and retires both WAL
// generations; success clears a sticky background-flush error (the failed
// snapshot was folded back into the memtable, so this write covers it).
// Caller holds mu (write) and has ensured imm is nil.
func (db *DB) flushSyncLocked() error {
	if db.mem.len() == 0 {
		return nil
	}
	id := db.manifest.NextSeg
	path := filepath.Join(db.dir, segName(id))
	info, err := writeSegment(path, db.mem.sorted())
	if err != nil {
		return err
	}
	seg, err := openSegment(path)
	if err != nil {
		return err
	}
	seg.bc = db.bcache
	db.manifest.NextSeg++
	db.manifest.Segments = append(db.manifest.Segments, manifestSegment{
		ID: id, Keys: info.keys, Bytes: info.bytes,
	})
	if err := db.manifest.commit(db.dir); err != nil {
		seg.close()
		return err
	}
	db.segs = append(db.segs, seg)
	db.mem = newMemtable()
	db.c.flushes.Add(1)
	if err := db.wal.reset(); err != nil {
		return err
	}
	os.Remove(db.wal.path + walOldSuffix)
	db.flushErr = nil
	if !db.opts.NoCompact && db.compactable() != nil {
		db.maintWG.Add(1)
		go func() {
			defer db.maintWG.Done()
			db.Compact() // serialized internally; errors surface in Stats via segment counts
		}()
	}
	return nil
}

// Len returns the number of distinct keys stored (exact: maintained
// incrementally by the writer and persisted in the MANIFEST).
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.manifest.Keys
}

// Dir returns the directory the engine is rooted at.
func (db *DB) Dir() string { return db.dir }

// ReadOnly reports whether this handle was opened without the writer lock.
func (db *DB) ReadOnly() bool { return db.readOnly }

// Scan calls fn for every live key/value pair (newest version of each key),
// in unspecified order. It is the migration and fixture-audit walk, not a
// hot path: segments are read oldest-to-newest with later versions
// overwriting earlier ones in the visit set.
func (db *DB) Scan(fn func(key string, value []byte) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[string][]byte{}
	for _, s := range db.segs {
		if err := s.scan(func(k string, v []byte) error {
			seen[k] = v
			return nil
		}); err != nil {
			return err
		}
	}
	if db.imm != nil {
		for k, v := range db.imm.m {
			seen[k] = v
		}
	}
	for k, v := range db.mem.m {
		seen[k] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := fn(k, seen[k]); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	memBytes, memKeys := int64(db.mem.bytes), int64(db.mem.len())
	if db.imm != nil {
		memBytes += int64(db.imm.bytes)
		memKeys += int64(db.imm.len())
	}
	gets, hits := db.c.gets.Load(), db.c.hits.Load()
	st := Stats{
		Gets:                gets,
		Hits:                hits,
		Misses:              gets - hits,
		Puts:                db.c.puts.Load(),
		MemtableHits:        db.c.memHits.Load(),
		MemtableBytes:       memBytes,
		MemtableKeys:        memKeys,
		BloomChecks:         db.c.bloomChecks.Load(),
		BloomRejects:        db.c.bloomRejects.Load(),
		BloomFalsePositives: db.c.bloomFP.Load(),
		SegmentReads:        db.c.segReads.Load(),
		Segments:            len(db.segs),
		BlockCacheHits:      db.bcache.hitCount(),
		BlockCacheMiss:      db.bcache.missCount(),
		BlockCacheBytes:     db.bcache.sizeBytes(),
		SegmentsPerTier:     map[int]int{},
		Flushes:             db.c.flushes.Load(),
		Compactions:         db.c.compactions.Load(),
		CompactionSecs:      float64(db.c.compactionNs.Load()) / 1e9,
		WALBytes:            db.c.walBytes.Load(),
		WALReplayed:         db.c.walReplayed.Load(),
		WALTornTail:         db.c.walTorn.Load() != 0,
		ManifestVersion:     db.manifest.Version,
		Keys:                db.manifest.Keys,
		ReadOnly:            db.readOnly,
		Refreshes:           db.c.refreshes.Load(),
	}
	for _, ms := range db.manifest.Segments {
		st.SegmentsPerTier[tierOf(ms.Bytes)]++
		st.SegmentBytes += ms.Bytes
	}
	db.mu.RUnlock()
	return st
}

// Close flushes the memtable (writer) and releases every handle.
func (db *DB) Close() error {
	if db.readOnly {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.closed {
			return nil
		}
		db.closed = true
		for _, s := range db.segs {
			s.close()
		}
		return nil
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	for db.imm != nil {
		db.flushCond.Wait()
	}
	err := db.flushSyncLocked()
	db.closed = true
	db.mu.Unlock()
	db.maintWG.Wait()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.segs {
		s.close()
	}
	if db.wal != nil {
		if cerr := db.wal.close(); err == nil {
			err = cerr
		}
	}
	if db.lock != nil {
		if cerr := db.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
