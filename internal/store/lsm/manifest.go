package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The MANIFEST is the engine's single source of truth: the ordered live
// segment set, the next segment id, the exact key count, and a version
// that increments on every commit. It is replaced atomically (write temp,
// fsync, rename), so any reader — in this process or another — sees a
// complete, consistent segment set no matter where a writer or compaction
// was killed. A flush or compaction that dies before its manifest commit
// leaves only orphan files, swept at next writer open.

const (
	manifestName   = "MANIFEST"
	manifestSchema = 1
)

// manifestSegment describes one live segment.
type manifestSegment struct {
	ID    int64 `json:"id"`
	Keys  int   `json:"keys"`
	Bytes int64 `json:"bytes"`
}

// manifest is the persisted engine state. Segments is in recency order:
// oldest run first, newest last; lookups scan it back to front.
type manifest struct {
	Schema   int               `json:"schema"`
	Version  int64             `json:"version"`
	NextSeg  int64             `json:"nextSeg"`
	Keys     int               `json:"keys"`
	Segments []manifestSegment `json:"segments"`
}

// loadManifest reads dir's MANIFEST; a missing file is an empty store.
func loadManifest(dir string) (manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{Schema: manifestSchema, NextSeg: 1}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("lsm: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, fmt.Errorf("lsm: manifest: %w", err)
	}
	if m.Schema != manifestSchema {
		return manifest{}, fmt.Errorf("lsm: manifest schema %d, want %d", m.Schema, manifestSchema)
	}
	return m, nil
}

// commit persists the manifest atomically and bumps its version. Only the
// single writer commits, so a fixed temp name cannot collide.
func (m *manifest) commit(dir string) error {
	m.Version++
	raw, err := json.Marshal(m)
	if err != nil {
		m.Version--
		return fmt.Errorf("lsm: manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err == nil {
		_, err = f.Write(raw)
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, filepath.Join(dir, manifestName))
		}
	}
	if err != nil {
		os.Remove(tmp)
		m.Version--
		return fmt.Errorf("lsm: manifest commit: %w", err)
	}
	return nil
}

// refreshIfStale reloads a read-only handle's segment set when the writer
// has published a newer MANIFEST. The manifest is small; reading it
// outright is cheaper than getting cute with stat stamps, and this runs
// only on a full miss of a read-only handle. Reports whether the view
// changed.
func (db *DB) refreshIfStale() bool {
	man, err := loadManifest(db.dir)
	if err != nil {
		return false
	}
	db.mu.RLock()
	cur := db.manifest.Version
	db.mu.RUnlock()
	if man.Version == cur {
		return false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if man.Version == db.manifest.Version {
		return false
	}
	// Between our manifest read and here the writer may have compacted and
	// deleted files; retry the whole load a few times on open failures.
	for attempt := 0; attempt < 3; attempt++ {
		old := db.segs
		oldMan := db.manifest
		db.manifest = man
		if err := db.openSegments(); err != nil {
			db.manifest = oldMan
			db.segs = old
			man, err = loadManifest(db.dir)
			if err != nil || man.Version == db.manifest.Version {
				return false
			}
			continue
		}
		for _, s := range old {
			s.close()
		}
		db.c.refreshes.Add(1)
		return true
	}
	return false
}
