// Package rts simulates the node-level runtime system (the OmpSs/OpenMP
// layer of MUSA): task graphs with dependencies, parallel-for chunking,
// critical sections, and the task schedulers that place task instances on
// simulated cores. Burst-mode simulation (paper §V-A) replays a region's
// task graph over N threads with durations taken from the trace; detailed
// mode rescales durations with the core model's results first.
//
// Runtime events (task dispatch) keep their wall-clock cost from the trace
// — they do not shrink with core frequency — which reproduces the paper's
// HYDRO scheduling bottleneck above 2.5 GHz (Fig. 9a).
package rts

import (
	"fmt"
	"math"

	"musa/internal/xrand"
)

// Task is one runtime task instance.
type Task struct {
	ID         int
	DurationNs float64
	CriticalNs float64 // portion executed inside a global critical section
	Deps       []int   // IDs of tasks that must complete first
}

// Region is one compute region of an application: an optional serial
// preamble followed by a task graph.
type Region struct {
	Name     string
	SerialNs float64 // non-taskified work executed by the master thread
	Tasks    []Task
}

// TotalWorkNs returns serial plus task work.
func (r Region) TotalWorkNs() float64 {
	w := r.SerialNs
	for _, t := range r.Tasks {
		w += t.DurationNs
	}
	return w
}

// Validate reports structural errors (bad IDs, forward deps out of range).
func (r Region) Validate() error {
	n := len(r.Tasks)
	for i, t := range r.Tasks {
		if t.ID != i {
			return fmt.Errorf("rts: region %s task %d has ID %d (IDs must be dense)", r.Name, i, t.ID)
		}
		if t.DurationNs < 0 || t.CriticalNs < 0 || t.CriticalNs > t.DurationNs {
			return fmt.Errorf("rts: region %s task %d has bad durations", r.Name, i)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= n || d == i {
				return fmt.Errorf("rts: region %s task %d has bad dep %d", r.Name, i, d)
			}
		}
	}
	return nil
}

// ParallelFor builds a Region for a classic worksharing loop: iters
// iterations of iterNs each, split into chunks of chunkIters. Imbalance
// (coefficient of variation) perturbs chunk durations log-normally, seeded
// deterministically. This implements the "support for OpenMP parallel for
// constructs" extension of the paper (§III).
func ParallelFor(name string, iters int, iterNs float64, chunkIters int, imbalanceCV float64, seed uint64) Region {
	if chunkIters <= 0 {
		chunkIters = 1
	}
	rng := xrand.New(seed)
	var tasks []Task
	for start := 0; start < iters; start += chunkIters {
		n := chunkIters
		if start+n > iters {
			n = iters - start
		}
		dur := float64(n) * iterNs
		if imbalanceCV > 0 {
			dur *= lognormalFactor(rng, imbalanceCV)
		}
		tasks = append(tasks, Task{ID: len(tasks), DurationNs: dur})
	}
	return Region{Name: name, Tasks: tasks}
}

// lognormalFactor returns a multiplicative factor with mean 1 and the given
// coefficient of variation.
func lognormalFactor(rng *xrand.RNG, cv float64) float64 {
	// For lognormal: cv^2 = exp(sigma^2)-1; mean=1 requires mu = -sigma^2/2.
	sigma2 := math.Log1p(cv * cv)
	mu := -sigma2 / 2
	return rng.LogNormal(mu, math.Sqrt(sigma2))
}

// Schedule is the outcome of simulating one region on a thread pool.
type Schedule struct {
	MakespanNs     float64
	ThreadBusyNs   []float64 // per-thread busy time (including serial work on thread 0)
	TaskThread     []int     // executing thread per task
	TaskStartNs    []float64
	TaskEndNs      []float64
	DispatchNs     float64 // total dispatch overhead charged
	CriticalWaitNs float64
}

// ParallelEfficiency returns work / (threads * makespan).
func (s Schedule) ParallelEfficiency() float64 {
	if s.MakespanNs <= 0 || len(s.ThreadBusyNs) == 0 {
		return 0
	}
	var busy float64
	for _, b := range s.ThreadBusyNs {
		busy += b
	}
	return busy / (float64(len(s.ThreadBusyNs)) * s.MakespanNs)
}

// AvgActiveThreads returns the time-averaged number of busy threads.
func (s Schedule) AvgActiveThreads() float64 {
	if s.MakespanNs <= 0 {
		return 0
	}
	var busy float64
	for _, b := range s.ThreadBusyNs {
		busy += b
	}
	return busy / s.MakespanNs
}

// Options configures a scheduling simulation.
type Options struct {
	Threads int
	// DispatchNs is the runtime cost to hand one task to a thread. Under
	// the FIFO policy it also serializes globally (central ready queue).
	DispatchNs float64
	// Policy selects the scheduler implementation.
	Policy Policy
}

// Policy selects the task scheduler.
type Policy int

const (
	// FIFOCentral models the Nanos++ central ready queue: one task handed
	// out at a time, dispatch serialized through the queue lock.
	FIFOCentral Policy = iota
	// WorkSteal models per-thread deques with stealing: dispatch cost is
	// paid per task but does not serialize across threads.
	WorkSteal
)

func (p Policy) String() string {
	if p == WorkSteal {
		return "worksteal"
	}
	return "fifo"
}
