package rts

import (
	"math"
	"testing"
	"testing/quick"
)

func flat(n int, durNs float64) Region {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{ID: i, DurationNs: durNs}
	}
	return Region{Name: "flat", Tasks: tasks}
}

func TestValidate(t *testing.T) {
	ok := flat(4, 10)
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	bad := Region{Tasks: []Task{{ID: 1}}}
	if bad.Validate() == nil {
		t.Error("non-dense IDs validated")
	}
	bad2 := Region{Tasks: []Task{{ID: 0, Deps: []int{5}}}}
	if bad2.Validate() == nil {
		t.Error("out-of-range dep validated")
	}
	bad3 := Region{Tasks: []Task{{ID: 0, DurationNs: 5, CriticalNs: 10}}}
	if bad3.Validate() == nil {
		t.Error("critical > duration validated")
	}
}

func TestPerfectScaling(t *testing.T) {
	// 64 equal tasks on 1 vs 64 threads with no overheads: speedup 64.
	r := flat(64, 1000)
	s1 := Simulate(r, Options{Threads: 1})
	s64 := Simulate(r, Options{Threads: 64})
	if s1.MakespanNs != 64000 {
		t.Errorf("serial makespan = %v", s1.MakespanNs)
	}
	if s64.MakespanNs != 1000 {
		t.Errorf("parallel makespan = %v", s64.MakespanNs)
	}
	if pe := s64.ParallelEfficiency(); math.Abs(pe-1) > 1e-9 {
		t.Errorf("efficiency = %v", pe)
	}
}

func TestTaskShortageLimitsScaling(t *testing.T) {
	// 96 tasks on 64 threads: two waves, efficiency 96/128 = 0.75 (the
	// SP-MZ/Specfem3D mechanism in Fig. 2a).
	r := flat(96, 1000)
	s := Simulate(r, Options{Threads: 64})
	if s.MakespanNs != 2000 {
		t.Errorf("makespan = %v, want 2000 (two waves)", s.MakespanNs)
	}
	if pe := s.ParallelEfficiency(); math.Abs(pe-0.75) > 1e-9 {
		t.Errorf("efficiency = %v, want 0.75", pe)
	}
}

func TestSerialFractionAmdahl(t *testing.T) {
	r := flat(64, 1000)
	r.SerialNs = 16000 // 20% serial of 80k total
	s := Simulate(r, Options{Threads: 64})
	want := 16000.0 + 1000.0
	if s.MakespanNs != want {
		t.Errorf("makespan = %v, want %v", s.MakespanNs, want)
	}
	if s.ThreadBusyNs[0] < 16000 {
		t.Error("serial work not on thread 0")
	}
}

func TestDependencyChain(t *testing.T) {
	tasks := []Task{
		{ID: 0, DurationNs: 10},
		{ID: 1, DurationNs: 10, Deps: []int{0}},
		{ID: 2, DurationNs: 10, Deps: []int{1}},
	}
	s := Simulate(Region{Name: "chain", Tasks: tasks}, Options{Threads: 4})
	if s.MakespanNs != 30 {
		t.Errorf("chain makespan = %v, want 30", s.MakespanNs)
	}
	for i := 1; i < 3; i++ {
		if s.TaskStartNs[i] < s.TaskEndNs[i-1] {
			t.Errorf("task %d started before dep finished", i)
		}
	}
}

func TestDiamondDependencies(t *testing.T) {
	tasks := []Task{
		{ID: 0, DurationNs: 10},
		{ID: 1, DurationNs: 20, Deps: []int{0}},
		{ID: 2, DurationNs: 30, Deps: []int{0}},
		{ID: 3, DurationNs: 10, Deps: []int{1, 2}},
	}
	s := Simulate(Region{Name: "diamond", Tasks: tasks}, Options{Threads: 4})
	if s.MakespanNs != 50 { // 10 + max(20,30) + 10
		t.Errorf("diamond makespan = %v, want 50", s.MakespanNs)
	}
}

func TestDeadlockPanics(t *testing.T) {
	tasks := []Task{
		{ID: 0, DurationNs: 10, Deps: []int{1}},
		{ID: 1, DurationNs: 10, Deps: []int{0}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cycle did not panic")
		}
	}()
	Simulate(Region{Name: "cycle", Tasks: tasks}, Options{Threads: 2})
}

func TestDispatchSerializationBottleneck(t *testing.T) {
	// Tiny tasks + central FIFO queue: throughput capped at 1/dispatchNs.
	// This is the HYDRO high-frequency bottleneck (Fig. 9a).
	r := flat(1000, 10) // 10ns tasks
	fifo := Simulate(r, Options{Threads: 64, DispatchNs: 100, Policy: FIFOCentral})
	// 1000 dispatches serialized at 100ns each dominate: >= 100us.
	if fifo.MakespanNs < 100*1000 {
		t.Errorf("fifo makespan = %v, want >= 100000 (dispatch-bound)", fifo.MakespanNs)
	}
	steal := Simulate(r, Options{Threads: 64, DispatchNs: 100, Policy: WorkSteal})
	if steal.MakespanNs >= fifo.MakespanNs {
		t.Errorf("work stealing (%v) not faster than central FIFO (%v)", steal.MakespanNs, fifo.MakespanNs)
	}
}

func TestDispatchIrrelevantForLargeTasks(t *testing.T) {
	// Large tasks: dispatch overhead should be negligible (<2%).
	r := flat(128, 1e6)
	with := Simulate(r, Options{Threads: 64, DispatchNs: 100, Policy: FIFOCentral})
	without := Simulate(r, Options{Threads: 64})
	if with.MakespanNs > without.MakespanNs*1.02 {
		t.Errorf("dispatch overhead visible on coarse tasks: %v vs %v", with.MakespanNs, without.MakespanNs)
	}
}

func TestCriticalSectionSerializes(t *testing.T) {
	// 8 tasks fully critical: must serialize regardless of threads.
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{ID: i, DurationNs: 100, CriticalNs: 100}
	}
	s := Simulate(Region{Name: "crit", Tasks: tasks}, Options{Threads: 8})
	if s.MakespanNs < 800 {
		t.Errorf("critical tasks overlapped: makespan = %v", s.MakespanNs)
	}
	if s.CriticalWaitNs == 0 {
		t.Error("no critical wait recorded")
	}
}

func TestImbalanceHurtsEfficiency(t *testing.T) {
	// LULESH mechanism: unbalanced chunks leave threads idle at the barrier.
	bal := ParallelFor("bal", 6400, 100, 100, 0, 1)
	imb := ParallelFor("imb", 6400, 100, 100, 0.5, 1)
	sb := Simulate(bal, Options{Threads: 64})
	si := Simulate(imb, Options{Threads: 64})
	if si.ParallelEfficiency() >= sb.ParallelEfficiency() {
		t.Errorf("imbalance did not hurt: %v vs %v", si.ParallelEfficiency(), sb.ParallelEfficiency())
	}
}

func TestParallelForChunking(t *testing.T) {
	r := ParallelFor("pf", 1000, 10, 128, 0, 1)
	if len(r.Tasks) != 8 { // ceil(1000/128)
		t.Errorf("chunks = %d, want 8", len(r.Tasks))
	}
	if math.Abs(r.TotalWorkNs()-10000) > 1e-9 {
		t.Errorf("total work = %v, want 10000", r.TotalWorkNs())
	}
	// Last chunk is the remainder.
	last := r.Tasks[len(r.Tasks)-1]
	if math.Abs(last.DurationNs-(1000-7*128)*10) > 1e-9 {
		t.Errorf("last chunk = %v", last.DurationNs)
	}
}

func TestParallelForImbalancePreservesMeanWork(t *testing.T) {
	r := ParallelFor("pf", 64000, 100, 100, 0.3, 7)
	want := 6400000.0
	if math.Abs(r.TotalWorkNs()-want)/want > 0.05 {
		t.Errorf("imbalanced work = %v, want ~%v", r.TotalWorkNs(), want)
	}
}

func TestWorkConservation(t *testing.T) {
	// Property: sum of busy time equals total work plus waits charged.
	f := func(seed uint64) bool {
		nTasks := int(seed%50) + 1
		threads := int(seed%7) + 1
		r := ParallelFor("p", nTasks*10, 50, 10, 0.4, seed)
		s := Simulate(r, Options{Threads: threads})
		var busy float64
		for _, b := range s.ThreadBusyNs {
			busy += b
		}
		return math.Abs(busy-r.TotalWorkNs()) < 1e-6*math.Max(1, r.TotalWorkNs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMakespanLowerBounds(t *testing.T) {
	// Property: makespan >= max(total work / threads, longest task).
	f := func(seed uint64) bool {
		nTasks := int(seed%64) + 1
		threads := int(seed%15) + 1
		r := ParallelFor("p", nTasks*8, 60, 8, 0.6, seed^0xabc)
		s := Simulate(r, Options{Threads: threads})
		var longest float64
		for _, task := range r.Tasks {
			if task.DurationNs > longest {
				longest = task.DurationNs
			}
		}
		lower := math.Max(r.TotalWorkNs()/float64(threads), longest)
		return s.MakespanNs >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAvgActiveThreads(t *testing.T) {
	r := flat(32, 1000)
	s := Simulate(r, Options{Threads: 64})
	// 32 tasks on 64 threads in one wave: 32 active threads on average.
	if math.Abs(s.AvgActiveThreads()-32) > 0.5 {
		t.Errorf("avg active = %v, want ~32", s.AvgActiveThreads())
	}
}

func TestPolicyString(t *testing.T) {
	if FIFOCentral.String() == "" || WorkSteal.String() == "" {
		t.Error("empty policy names")
	}
}

func BenchmarkSimulate(b *testing.B) {
	r := ParallelFor("bench", 64000, 100, 100, 0.3, 1)
	opts := Options{Threads: 64, DispatchNs: 50, Policy: FIFOCentral}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(r, opts)
	}
}
