package rts

import (
	"container/heap"
	"fmt"
)

// Simulate runs the region's task graph on opts.Threads simulated threads
// and returns the schedule. It panics on an invalid region (regions are
// produced by the application models, so that is a programming error).
func Simulate(region Region, opts Options) Schedule {
	if err := region.Validate(); err != nil {
		panic(err)
	}
	if opts.Threads <= 0 {
		panic(fmt.Sprintf("rts: %d threads", opts.Threads))
	}

	n := len(region.Tasks)
	s := Schedule{
		ThreadBusyNs: make([]float64, opts.Threads),
		TaskThread:   make([]int, n),
		TaskStartNs:  make([]float64, n),
		TaskEndNs:    make([]float64, n),
	}

	// Serial preamble runs on thread 0 before any task starts.
	serialEnd := region.SerialNs
	s.ThreadBusyNs[0] = region.SerialNs
	s.MakespanNs = serialEnd

	if n == 0 {
		return s
	}

	// Dependency bookkeeping.
	indeg := make([]int, n)
	succ := make([][]int, n)
	readyAt := make([]float64, n) // max completion time of deps
	for i, t := range region.Tasks {
		indeg[i] = len(t.Deps)
		for _, d := range t.Deps {
			succ[d] = append(succ[d], i)
		}
		readyAt[i] = serialEnd
	}

	// Ready tasks ordered by (readyAt, ID): creation order for ties, which
	// models a FIFO ready queue.
	rq := &taskQueue{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(rq, qent{at: readyAt[i], id: i})
		}
	}

	// Thread availability as a min-heap.
	tq := &threadQueue{}
	for th := 0; th < opts.Threads; th++ {
		at := 0.0
		if th == 0 {
			at = serialEnd
		}
		heap.Push(tq, qent{at: at, id: th})
	}

	var dispatchGate float64 // FIFO central queue serialization point
	var critFree float64     // global critical section availability
	remaining := n

	for remaining > 0 {
		if rq.Len() == 0 {
			panic("rts: deadlock — cyclic dependencies in region " + region.Name)
		}
		te := heap.Pop(rq).(qent)
		task := &region.Tasks[te.id]
		th := heap.Pop(tq).(qent)

		start := maxf(te.at, th.at)
		switch opts.Policy {
		case FIFOCentral:
			// One dispatch at a time through the queue lock.
			start = maxf(start, dispatchGate)
			start += opts.DispatchNs
			dispatchGate = start
		case WorkSteal:
			// Dispatch cost paid locally, no global serialization.
			start += opts.DispatchNs
		}
		s.DispatchNs += opts.DispatchNs

		end := start + task.DurationNs
		if task.CriticalNs > 0 {
			// The critical portion executes exclusively at the end of the
			// task; contention extends the task.
			earliestCrit := start + task.DurationNs - task.CriticalNs
			critStart := maxf(earliestCrit, critFree)
			s.CriticalWaitNs += critStart - earliestCrit
			end = critStart + task.CriticalNs
			critFree = end
		}

		s.TaskThread[te.id] = th.id
		s.TaskStartNs[te.id] = start
		s.TaskEndNs[te.id] = end
		s.ThreadBusyNs[th.id] += end - start
		if end > s.MakespanNs {
			s.MakespanNs = end
		}

		heap.Push(tq, qent{at: end, id: th.id})
		for _, nx := range succ[te.id] {
			if readyAt[nx] < end {
				readyAt[nx] = end
			}
			indeg[nx]--
			if indeg[nx] == 0 {
				heap.Push(rq, qent{at: readyAt[nx], id: nx})
			}
		}
		remaining--
	}
	return s
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// qent is a (time, id) pair for the scheduling heaps.
type qent struct {
	at float64
	id int
}

type taskQueue []qent

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}
func (q taskQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x any)   { *q = append(*q, x.(qent)) }
func (q *taskQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type threadQueue []qent

func (q threadQueue) Len() int { return len(q) }
func (q threadQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}
func (q threadQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *threadQueue) Push(x any)   { *q = append(*q, x.(qent)) }
func (q *threadQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
