package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"musa/internal/xrand"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Error("Second != 1s")
	}
	if Nanosecond.Nanoseconds() != 1 {
		t.Error("Nanosecond != 1ns")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
	if FromNanos(3) != 3*Nanosecond {
		t.Errorf("FromNanos(3) = %v", FromNanos(3))
	}
}

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events not FIFO: %v", order)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var e Engine
	var fired []Time
	e.At(10, func(now Time) {
		fired = append(fired, now)
		e.After(5, func(now Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.At(10, func(Time) { ran = true })
	if !e.Cancel(ev) {
		t.Error("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Error("double Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, func(Time) { order = append(order, 1) })
	mid := e.At(20, func(Time) { order = append(order, 2) })
	e.At(30, func(Time) { order = append(order, 3) })
	e.Cancel(mid)
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func(Time) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(50, func(Time) {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, tm := range []Time{10, 20, 30, 40} {
		tm := tm
		e.At(tm, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("Now = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestMonotonicClockProperty(t *testing.T) {
	// Property: regardless of insertion order, events fire in non-decreasing
	// time order and the clock never goes backwards.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var e Engine
		var times []Time
		n := 50 + r.Intn(50)
		for i := 0; i < n; i++ {
			e.At(Time(r.Intn(1000)), func(now Time) { times = append(times, now) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), func(Time) {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run()
}
