// Package sim implements a small discrete-event simulation kernel shared by
// the DRAM model and the network replay engine: a time-ordered event queue
// with stable FIFO ordering for simultaneous events, and a simulation clock.
//
// Times are int64 picoseconds. Picosecond resolution lets the DRAM model
// express exact DDR4-2333 bus cycles (857.6 ps) and the core models express
// sub-nanosecond cycle times without rounding drift across frequencies.
package sim

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time unit helpers.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanos converts floating-point nanoseconds to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Event is a scheduled callback.
type Event struct {
	when Time
	seq  uint64
	fn   func(now Time)
	idx  int // heap index, -1 once popped or cancelled
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Engine is the event-driven simulation core. The zero value is ready to use.
type Engine struct {
	now    Time
	nextSq uint64
	queue  eventHeap
	// arena is the tail of the current event allocation chunk. Events are
	// carved out of fixed-size chunks instead of allocated one by one: the
	// DRAM and replay models schedule hundreds of thousands of short-lived
	// events per run, and chunking turns that into a handful of
	// allocations. Events are never recycled, so a caller-held *Event stays
	// valid (Cancel on a fired event is still a safe no-op).
	arena []Event
}

// arenaChunk is the number of events carved per allocation chunk.
const arenaChunk = 256

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would corrupt
// every downstream statistic.
func (e *Engine) At(t Time, fn func(now Time)) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if len(e.arena) == 0 {
		e.arena = make([]Event, arenaChunk)
	}
	ev := &e.arena[0]
	e.arena = e.arena[1:]
	*ev = Event{when: t, seq: e.nextSq, fn: fn}
	e.nextSq++
	e.queue.push(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func(now Time)) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired yet and reports
// whether it was cancelled.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	e.queue.remove(ev.idx)
	return true
}

// Step fires the next event and reports whether one was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.when
	ev.fn(e.now)
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline and advances the clock to
// deadline if the queue drains earlier.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// eventHeap is a binary min-heap over (when, seq), so same-time events fire
// FIFO. It is implemented concretely rather than through container/heap: the
// queue is the hottest structure of the event kernel, and the interface
// indirection (Less/Swap dispatch, any boxing) costs real time there. The
// ordering key is a strict total order — seq is unique per engine — so pop
// order is identical to any other correct heap over the same key.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h.less(r, j) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
}

func (h *eventHeap) push(ev *Event) {
	ev.idx = len(*h)
	*h = append(*h, ev)
	h.up(ev.idx)
}

func (h *eventHeap) pop() *Event {
	q := *h
	ev := q[0]
	n := len(q) - 1
	q.swap(0, n)
	q[n] = nil
	*h = q[:n]
	if n > 0 {
		(*h).down(0)
	}
	ev.idx = -1
	return ev
}

func (h *eventHeap) remove(i int) {
	q := *h
	n := len(q) - 1
	if i != n {
		q.swap(i, n)
	}
	q[n].idx = -1
	q[n] = nil
	*h = q[:n]
	if i < n {
		(*h).down(i)
		(*h).up(i)
	}
}
