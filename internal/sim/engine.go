// Package sim implements a small discrete-event simulation kernel shared by
// the DRAM model and the network replay engine: a time-ordered event queue
// with stable FIFO ordering for simultaneous events, and a simulation clock.
//
// Times are int64 picoseconds. Picosecond resolution lets the DRAM model
// express exact DDR4-2333 bus cycles (857.6 ps) and the core models express
// sub-nanosecond cycle times without rounding drift across frequencies.
package sim

import "container/heap"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time unit helpers.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanos converts floating-point nanoseconds to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Event is a scheduled callback.
type Event struct {
	when Time
	seq  uint64
	fn   func(now Time)
	idx  int // heap index, -1 once popped or cancelled
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Engine is the event-driven simulation core. The zero value is ready to use.
type Engine struct {
	now    Time
	nextSq uint64
	queue  eventHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would corrupt
// every downstream statistic.
func (e *Engine) At(t Time, fn func(now Time)) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := &Event{when: t, seq: e.nextSq, fn: fn}
	e.nextSq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func(now Time)) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes ev from the queue if it has not fired yet and reports
// whether it was cancelled.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	return true
}

// Step fires the next event and reports whether one was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.idx = -1
	e.now = ev.when
	ev.fn(e.now)
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline and advances the clock to
// deadline if the queue drains earlier.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// eventHeap orders by (when, seq) so same-time events fire FIFO.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
