// Package apps models the five HPC applications of the paper's evaluation:
// HYDRO, the SP-MZ and BT-MZ NAS multi-zone benchmarks, Specfem3D and
// LULESH. The originals are MPI+OpenMP/OmpSs codes traced on BSC machines;
// here each application is a parametric workload profile (see DESIGN.md §2
// and §4) from which the package synthesizes MUSA's two trace levels:
//
//   - burst traces (task graphs per compute region + MPI events per rank),
//   - detailed instruction streams (instruction mix, vectorizable loop
//     structure, dependency distances, and a memory-locality profile).
//
// The profile parameters are calibrated against the paper's measured
// characterization: Fig. 1 (cache MPKIs and memory request rates), Fig. 2
// (scaling behavior), and the per-application sensitivities of Figs. 5-9.
package apps

import (
	"fmt"

	"musa/internal/cache"
)

// RefLaneThroughput is the reference machine's scalar-lane throughput
// (lanes/second) used to convert task lane-work into traced burst durations:
// roughly IPC 2 at 2 GHz, the MareNostrum-class node MUSA was validated on.
const RefLaneThroughput = 4e9

// Mix gives the fraction of dynamic scalar micro-ops per class. Fields need
// not sum exactly to 1; they are normalized on use.
type Mix struct {
	Load, Store                float64
	FPAdd, FPMul, FPFMA, FPDiv float64
	IntALU, IntMul, Branch     float64
}

// FPFrac returns the floating-point fraction of the (normalized) mix.
func (m Mix) FPFrac() float64 {
	return (m.FPAdd + m.FPMul + m.FPFMA + m.FPDiv) / m.total()
}

// MemFrac returns the memory-op fraction of the (normalized) mix.
func (m Mix) MemFrac() float64 { return (m.Load + m.Store) / m.total() }

func (m Mix) total() float64 {
	return m.Load + m.Store + m.FPAdd + m.FPMul + m.FPFMA + m.FPDiv + m.IntALU + m.IntMul + m.Branch
}

// VectorProfile describes how much of the code lives in vectorizable loops
// and how long those loops run — the paper's fusion model only widens SIMD
// for basic blocks that repeat many times in a row (§III).
type VectorProfile struct {
	// VecFrac is the fraction of loop work residing in vectorizable loops.
	VecFrac float64
	// TripCount is the typical consecutive iteration count of those loops.
	// LULESH's very short loops (the paper: "loops with a very short
	// iteration count") defeat wide fusion.
	TripCount int
}

// DepProfile controls instruction-level parallelism: the probability that an
// FP op extends a loop-carried dependence chain (high = serial, low = lots
// of independent work for the OoO window to find).
type DepProfile struct {
	// ChainProb is the probability a vector loop carries an FP accumulation
	// chain across iterations.
	ChainProb float64
	// LoadChainProb is the probability a loop is a pointer-chase: each
	// iteration's load depends on the previous one, serializing memory
	// latency (these loops cannot vectorize). It sets how much cache-level
	// latency shows up directly in execution time.
	LoadChainProb float64
}

// RegionSpec describes one compute region's parallel structure per rank.
type RegionSpec struct {
	Name string
	// Tasks per region instance. Fewer tasks than cores leaves threads idle
	// (Specfem3D in Fig. 3).
	Tasks int
	// LanesPerTask is the scalar-lane work of one task.
	LanesPerTask float64
	// ImbalanceCV is the coefficient of variation of task durations
	// (LULESH's thread-level imbalance).
	ImbalanceCV float64
	// SerialFrac is the fraction of region work serialized on the master
	// thread (non-taskified segments).
	SerialFrac float64
	// CriticalFrac is the fraction of each task spent in a global critical
	// section.
	CriticalFrac float64
}

// LaneWork returns the region's total lane work per rank (tasks + serial).
func (r RegionSpec) LaneWork() float64 {
	w := float64(r.Tasks) * r.LanesPerTask
	return w / (1 - r.SerialFrac)
}

// MPIPattern describes a rank's communication per iteration.
type MPIPattern struct {
	// Neighbors is the number of point-to-point partners (ring/stencil).
	Neighbors int
	// P2PBytes is the bytes exchanged with each neighbor per iteration.
	P2PBytes int64
	// AllReduces per iteration (each also acts as a global barrier).
	AllReduces int
	// AllReduceBytes is the payload of each reduction.
	AllReduceBytes int64
	// RankImbalanceCV spreads per-rank compute durations; combined with the
	// collectives it produces the barrier waiting the paper shows in Fig. 4.
	RankImbalanceCV float64
}

// Profile is a complete application model.
type Profile struct {
	Name string

	Mix    Mix
	Vector VectorProfile
	Dep    DepProfile
	// MispredictRate is the branch misprediction probability.
	MispredictRate float64
	// ChaseRegion names the locality region pointer-chase loops walk
	// (empty: draw from the whole profile). Pointing it at a region that
	// straddles the swept cache sizes makes the application cache-latency
	// sensitive, as HYDRO is in the paper.
	ChaseRegion string
	// Locality is the per-core memory locality model (region footprints are
	// per-core shares at the 256-rank reference decomposition).
	Locality cache.LocalityProfile

	// Regions executed once per iteration, in order.
	Regions []RegionSpec
	// Iterations is the number of timesteps in the traced execution.
	Iterations int

	MPI MPIPattern
}

// Validate reports profile errors.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("apps: empty name")
	}
	if p.Mix.total() <= 0 {
		return fmt.Errorf("apps: %s has an empty instruction mix", p.Name)
	}
	if err := p.Locality.Validate(); err != nil {
		return fmt.Errorf("apps: %s: %w", p.Name, err)
	}
	if len(p.Regions) == 0 || p.Iterations <= 0 {
		return fmt.Errorf("apps: %s has no regions/iterations", p.Name)
	}
	for _, r := range p.Regions {
		if r.Tasks <= 0 || r.LanesPerTask <= 0 {
			return fmt.Errorf("apps: %s region %s has no work", p.Name, r.Name)
		}
		if r.SerialFrac < 0 || r.SerialFrac >= 1 {
			return fmt.Errorf("apps: %s region %s serial fraction %v", p.Name, r.Name, r.SerialFrac)
		}
	}
	if p.Vector.TripCount < 1 {
		return fmt.Errorf("apps: %s trip count %d", p.Name, p.Vector.TripCount)
	}
	return nil
}

// LaneWorkPerRank returns the total lane work of one rank's full execution.
func (p *Profile) LaneWorkPerRank() float64 {
	var w float64
	for _, r := range p.Regions {
		w += r.LaneWork()
	}
	return w * float64(p.Iterations)
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// Hydro models HYDRO (a simplified RAMSES: compressible Euler equations,
// Godunov method). Paper traits: the only app above 75% parallel efficiency
// at 64 cores; main working set under 512 kB per core (4x L2 MPKI drop when
// the L2 grows past it); +20% from 512-bit SIMD; fine-grained tasks that
// expose the runtime dispatch bottleneck above 2.5 GHz; very low memory
// bandwidth demand.
func Hydro() *Profile {
	return &Profile{
		Name: "hydro",
		Mix: Mix{
			Load: 0.215, Store: 0.075,
			FPAdd: 0.12, FPMul: 0.10, FPFMA: 0.06, FPDiv: 0.004,
			IntALU: 0.27, IntMul: 0.01, Branch: 0.14,
		},
		Vector:         VectorProfile{VecFrac: 0.50, TripCount: 48},
		Dep:            DepProfile{ChainProb: 0.60, LoadChainProb: 0.008},
		MispredictRate: 0.004,
		ChaseRegion:    "ws",
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 16 * kb, Weight: 0.810, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "ws", Bytes: 384 * kb, Weight: 0.120, Pattern: cache.Sequential, WriteFrac: 0.25},
			{Name: "mid", Bytes: 256 * kb, Weight: 0.022, Pattern: cache.RandomBlock, WriteFrac: 0.2},
			{Name: "stream", Bytes: 512 * mb, Weight: 0.003, Pattern: cache.Sequential, WriteFrac: 0.3},
		}},
		Regions: []RegionSpec{{
			Name: "godunov", Tasks: 2048, LanesPerTask: 24000,
			ImbalanceCV: 0.12, SerialFrac: 0.004,
		}},
		Iterations: 4,
		MPI: MPIPattern{
			Neighbors: 2, P2PBytes: 256 * kb,
			AllReduces: 1, AllReduceBytes: 8,
			RankImbalanceCV: 0.05,
		},
	}
}

// SPMZ models the NAS SP-MZ multi-zone benchmark (diagonalized ADI solver).
// Paper traits: the most vectorizable code (+75% at 512-bit); no serialized
// segments but too few tasks to fill 64 cores; high cache MPKIs; would be
// bandwidth-hungry if it scaled.
func SPMZ() *Profile {
	return &Profile{
		Name: "spmz",
		Mix: Mix{
			Load: 0.28, Store: 0.09,
			FPAdd: 0.14, FPMul: 0.12, FPFMA: 0.08, FPDiv: 0.002,
			IntALU: 0.17, IntMul: 0.01, Branch: 0.10,
		},
		Vector:         VectorProfile{VecFrac: 0.92, TripCount: 128},
		Dep:            DepProfile{ChainProb: 0.55, LoadChainProb: 0.002},
		MispredictRate: 0.002,
		ChaseRegion:    "hot",
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 24 * kb, Weight: 0.55, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "pencil", Bytes: 224 * kb, Weight: 0.32, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "plane", Bytes: 2560 * kb, Weight: 0.06, Pattern: cache.RandomBlock, Stride: 16, WriteFrac: 0.25},
			{Name: "zone", Bytes: 10 * mb, Weight: 0.008, Pattern: cache.RandomBlock, Stride: 64, WriteFrac: 0.2},
			{Name: "stream", Bytes: 1024 * mb, Weight: 0.008, Pattern: cache.Sequential, WriteFrac: 0.3},
		}},
		Regions: []RegionSpec{{
			Name: "adi-sweep", Tasks: 72, LanesPerTask: 1.6e6,
			ImbalanceCV: 0.15, SerialFrac: 0,
		}},
		Iterations: 4,
		MPI: MPIPattern{
			Neighbors: 4, P2PBytes: 4096 * kb,
			AllReduces: 2, AllReduceBytes: 64,
			RankImbalanceCV: 0.22,
		},
	}
}

// BTMZ models the NAS BT-MZ multi-zone benchmark (block-tridiagonal solver).
// Paper traits: compute-intensive power profile; ~40% SIMD gain; 9% speedup
// from bigger caches; important serialized segments.
func BTMZ() *Profile {
	return &Profile{
		Name: "btmz",
		Mix: Mix{
			Load: 0.24, Store: 0.08,
			FPAdd: 0.13, FPMul: 0.12, FPFMA: 0.09, FPDiv: 0.003,
			IntALU: 0.21, IntMul: 0.01, Branch: 0.11,
		},
		Vector:         VectorProfile{VecFrac: 0.76, TripCount: 64},
		Dep:            DepProfile{ChainProb: 0.60, LoadChainProb: 0.0012},
		MispredictRate: 0.003,
		ChaseRegion:    "mid",
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 20 * kb, Weight: 0.56, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "mid", Bytes: 120 * kb, Weight: 0.10, Pattern: cache.RandomLine, WriteFrac: 0.25},
			{Name: "block", Bytes: 300 * kb, Weight: 0.30, Pattern: cache.Sequential, WriteFrac: 0.25},
			{Name: "zone", Bytes: 900 * kb, Weight: 0.003, Pattern: cache.RandomBlock, Stride: 32, WriteFrac: 0.2},
			{Name: "stream", Bytes: 768 * mb, Weight: 0.006, Pattern: cache.Sequential, WriteFrac: 0.3},
		}},
		Regions: []RegionSpec{{
			Name: "bt-solve", Tasks: 120, LanesPerTask: 1.0e6,
			ImbalanceCV: 0.20, SerialFrac: 0.012,
		}},
		Iterations: 4,
		MPI: MPIPattern{
			Neighbors: 4, P2PBytes: 3584 * kb,
			AllReduces: 2, AllReduceBytes: 64,
			RankImbalanceCV: 0.20,
		},
	}
}

// Spec3D models Specfem3D (continuous Galerkin spectral-element seismic wave
// propagation). Paper traits: worst task-level parallelism — most threads
// idle (Fig. 3); the most OoO-sensitive code (60% slower on low-end cores);
// cache-size insensitive; high bandwidth demand per core yet no gain from
// extra channels at scale because few cores are busy.
func Spec3D() *Profile {
	return &Profile{
		Name: "spec3d",
		Mix: Mix{
			Load: 0.30, Store: 0.06,
			FPAdd: 0.10, FPMul: 0.10, FPFMA: 0.12, FPDiv: 0.004,
			IntALU: 0.20, IntMul: 0.005, Branch: 0.11,
		},
		Vector:         VectorProfile{VecFrac: 0.58, TripCount: 36},
		Dep:            DepProfile{ChainProb: 0.12, LoadChainProb: 0.0015},
		MispredictRate: 0.002,
		ChaseRegion:    "hot",
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 14 * kb, Weight: 0.46, Pattern: cache.RandomLine, WriteFrac: 0.2},
			{Name: "elem", Bytes: 160 * kb, Weight: 0.10, Pattern: cache.RandomLine, WriteFrac: 0.2},
			{Name: "mesh", Bytes: 64 * mb, Weight: 0.025, Pattern: cache.RandomBlock, Stride: 32, WriteFrac: 0.15},
			{Name: "stream", Bytes: 2048 * mb, Weight: 0.02, Pattern: cache.Sequential, WriteFrac: 0.25},
		}},
		Regions: []RegionSpec{{
			Name: "se-kernel", Tasks: 40, LanesPerTask: 2.4e6,
			ImbalanceCV: 0.42, SerialFrac: 0.030,
		}},
		Iterations: 4,
		MPI: MPIPattern{
			Neighbors: 6, P2PBytes: 2560 * kb,
			AllReduces: 2, AllReduceBytes: 32,
			RankImbalanceCV: 0.20,
		},
	}
}

// LULESH models LULESH 2.0 (unstructured Lagrangian shock hydrodynamics).
// Paper traits: memory bound — +60% from 8 DDR4 channels at 64 cores and
// ~30% energy savings; no SIMD gain (short loops); thread-level load
// imbalance limits 64-core scaling; heavy MPI barrier waiting (Fig. 4).
func LULESH() *Profile {
	return &Profile{
		Name: "lulesh",
		Mix: Mix{
			Load: 0.32, Store: 0.12,
			FPAdd: 0.12, FPMul: 0.10, FPFMA: 0.04, FPDiv: 0.010,
			IntALU: 0.18, IntMul: 0.01, Branch: 0.10,
		},
		Vector:         VectorProfile{VecFrac: 0.45, TripCount: 3},
		Dep:            DepProfile{ChainProb: 0.55, LoadChainProb: 0.0015},
		MispredictRate: 0.005,
		ChaseRegion:    "ws",
		Locality: cache.LocalityProfile{Regions: []cache.Region{
			{Name: "hot", Bytes: 16 * kb, Weight: 0.57, Pattern: cache.RandomLine, WriteFrac: 0.3},
			{Name: "ws", Bytes: 400 * kb, Weight: 0.10, Pattern: cache.Sequential, WriteFrac: 0.3},
			{Name: "nodal", Bytes: 5 * mb, Weight: 0.04, Pattern: cache.RandomBlock, Stride: 32, WriteFrac: 0.25},
			{Name: "stream", Bytes: 48 * mb, Weight: 0.14, Pattern: cache.Sequential, WriteFrac: 0.35},
		}},
		Regions: []RegionSpec{{
			Name: "lagrange", Tasks: 128, LanesPerTask: 0.9e6,
			ImbalanceCV: 0.45, SerialFrac: 0.010,
		}},
		Iterations: 4,
		MPI: MPIPattern{
			Neighbors: 6, P2PBytes: 1536 * kb,
			AllReduces: 3, AllReduceBytes: 16,
			RankImbalanceCV: 0.25,
		},
	}
}

// All returns the five applications in the paper's plotting order.
func All() []*Profile {
	return []*Profile{Hydro(), SPMZ(), BTMZ(), Spec3D(), LULESH()}
}

// ByName looks an application up by its paper label.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q (have hydro, spmz, btmz, spec3d, lulesh)", name)
}
