package apps

import (
	"math"

	"musa/internal/rts"
	"musa/internal/trace"
	"musa/internal/xrand"
)

// RegionGraph synthesizes the runtime-system task graph of one instance of
// region index ri, deterministic in seed. Durations are the traced burst
// timings (lane work over the reference machine's throughput).
func (p *Profile) RegionGraph(ri int, seed uint64) rts.Region {
	spec := p.Regions[ri]
	rng := xrand.New(seed ^ (uint64(ri+1) * 0x9e3779b97f4a7c15))
	baseNs := spec.LanesPerTask / RefLaneThroughput * 1e9

	tasks := make([]rts.Task, spec.Tasks)
	for i := range tasks {
		dur := baseNs
		if spec.ImbalanceCV > 0 {
			dur *= lognormalFactor(rng, spec.ImbalanceCV)
		}
		tasks[i] = rts.Task{
			ID:         i,
			DurationNs: dur,
			CriticalNs: dur * spec.CriticalFrac,
		}
	}
	serialNs := spec.LaneWork() * spec.SerialFrac / RefLaneThroughput * 1e9
	return rts.Region{Name: spec.Name, SerialNs: serialNs, Tasks: tasks}
}

// lognormalFactor returns a multiplicative factor with mean 1 and the given
// coefficient of variation (shared with the rts package's ParallelFor).
func lognormalFactor(rng *xrand.RNG, cv float64) float64 {
	sigma2 := math.Log1p(cv * cv)
	return rng.LogNormal(-sigma2/2, math.Sqrt(sigma2))
}

// BurstTrace synthesizes the coarse-grain full-application trace for the
// given rank count: per rank and iteration, one compute event per region
// followed by the MPI exchange pattern (neighbor sends/recvs and the
// iteration's collectives). Per-rank compute multipliers model rank-level
// load imbalance, the paper's dominant source of full-app efficiency loss.
func BurstTrace(p *Profile, ranks int, seed uint64) *trace.Burst {
	b := &trace.Burst{App: p.Name}
	rng := xrand.New(seed)

	// Region table: one entry per (region, iteration) is unnecessary — the
	// graph is statistically identical across iterations, so regions are
	// entered once and referenced by every iteration.
	for ri, spec := range p.Regions {
		g := p.RegionGraph(ri, seed)
		b.Regions = append(b.Regions, trace.RegionInfo{
			Name:         spec.Name,
			Graph:        g,
			Instructions: int64(spec.LaneWork()),
		})
	}

	// Per-rank imbalance multipliers, fixed across iterations (spatial
	// decomposition imbalance is persistent, which is what makes the
	// AllReduce barrier waiting in Fig. 4 systematic).
	mult := make([]float64, ranks)
	for r := range mult {
		mult[r] = 1.0
		if p.MPI.RankImbalanceCV > 0 {
			mult[r] = lognormalFactor(rng, p.MPI.RankImbalanceCV)
		}
	}

	for r := 0; r < ranks; r++ {
		rt := trace.RankTrace{Rank: r}
		for it := 0; it < p.Iterations; it++ {
			for ri, spec := range p.Regions {
				durNs := spec.LaneWork() / RefLaneThroughput * 1e9 * mult[r]
				rt.Events = append(rt.Events, trace.Event{
					Kind:       trace.EvCompute,
					RegionID:   ri,
					DurationNs: durNs,
				})
			}
			// Neighbor exchange: ring topology with +/- k partners. The
			// halo messages are far above the eager threshold, so each
			// exchange is a combined sendrecv (receive pre-posted at
			// entry, as real halo codes do with MPI_Sendrecv/MPI_Irecv) —
			// blocking rendezvous sends would deadlock on any sequential
			// send-first ordering.
			for n := 1; n <= p.MPI.Neighbors/2 && ranks > 1; n++ {
				up := (r + n) % ranks
				// Go's % can be negative when the stencil radius exceeds
				// the ring size; normalize into [0, ranks).
				down := ((r-n)%ranks + ranks) % ranks
				if up == r || down == r {
					continue // ring smaller than the stencil radius
				}
				rt.Events = append(rt.Events, trace.Event{
					Kind: trace.EvSendRecv, Peer: up, RecvPeer: down, Bytes: p.MPI.P2PBytes,
				})
			}
			for a := 0; a < p.MPI.AllReduces; a++ {
				rt.Events = append(rt.Events, trace.Event{
					Kind:  trace.EvAllReduce,
					Bytes: p.MPI.AllReduceBytes,
				})
			}
		}
		b.Ranks = append(b.Ranks, rt)
	}
	return b
}
