package apps

import (
	"math"
	"testing"

	"musa/internal/isa"
	"musa/internal/rts"
	"musa/internal/trace"
)

func TestAllProfilesValid(t *testing.T) {
	apps := All()
	if len(apps) != 5 {
		t.Fatalf("got %d applications, want 5", len(apps))
	}
	for _, p := range apps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hydro", "spmz", "btmz", "spec3d", "lulesh"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestMixHelpers(t *testing.T) {
	for _, p := range All() {
		if f := p.Mix.FPFrac(); f <= 0.1 || f >= 0.6 {
			t.Errorf("%s FP fraction = %v, implausible", p.Name, f)
		}
		if m := p.Mix.MemFrac(); m <= 0.15 || m >= 0.6 {
			t.Errorf("%s mem fraction = %v, implausible", p.Name, m)
		}
	}
}

func TestRegionGraphDeterministic(t *testing.T) {
	p := Hydro()
	a := p.RegionGraph(0, 42)
	b := p.RegionGraph(0, 42)
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range a.Tasks {
		if a.Tasks[i].DurationNs != b.Tasks[i].DurationNs {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
	c := p.RegionGraph(0, 43)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i].DurationNs != c.Tasks[i].DurationNs {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRegionGraphWorkMatchesSpec(t *testing.T) {
	for _, p := range All() {
		g := p.RegionGraph(0, 7)
		spec := p.Regions[0]
		wantNs := spec.LaneWork() / RefLaneThroughput * 1e9
		if math.Abs(g.TotalWorkNs()-wantNs)/wantNs > 0.15 {
			t.Errorf("%s: region work %v ns, want ~%v ns", p.Name, g.TotalWorkNs(), wantNs)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestBurstTraceValid(t *testing.T) {
	for _, p := range All() {
		b := BurstTrace(p, 16, 1)
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := b.Summarize()
		if s.Ranks != 16 {
			t.Errorf("%s: %d ranks", p.Name, s.Ranks)
		}
		wantCompute := 16 * p.Iterations * len(p.Regions)
		// Each halo exchange is one combined sendrecv event per message.
		gotCompute := s.Events - s.P2PMessages - s.Collectives
		if gotCompute != wantCompute {
			t.Errorf("%s: %d compute events, want %d", p.Name, gotCompute, wantCompute)
		}
		if s.Collectives == 0 {
			t.Errorf("%s: no collectives", p.Name)
		}
	}
}

func TestBurstTraceRankImbalancePersistent(t *testing.T) {
	p := LULESH()
	b := BurstTrace(p, 8, 3)
	// A rank's compute durations must be identical across iterations
	// (persistent spatial imbalance).
	for _, rt := range b.Ranks {
		var durs []float64
		for _, ev := range rt.Events {
			if ev.Kind == trace.EvCompute {
				durs = append(durs, ev.DurationNs)
			}
		}
		for _, d := range durs[1:] {
			if d != durs[0] {
				t.Fatalf("rank %d durations vary across iterations", rt.Rank)
			}
		}
	}
	// But they must vary across ranks.
	d0 := b.Ranks[0].Events[0].DurationNs
	varies := false
	for _, rt := range b.Ranks[1:] {
		if rt.Events[0].DurationNs != d0 {
			varies = true
		}
	}
	if !varies {
		t.Error("no rank-level imbalance in LULESH trace")
	}
}

func TestDetailedStreamDeterministic(t *testing.T) {
	p := SPMZ()
	a := isa.Collect(&isa.LimitStream{S: NewDetailedStream(p, 5), N: 2000})
	b := isa.Collect(&isa.LimitStream{S: NewDetailedStream(p, 5), N: 2000})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instr %d differs across identical seeds", i)
		}
	}
}

func TestDetailedStreamScalarMicroOps(t *testing.T) {
	for _, p := range All() {
		ins := isa.Collect(&isa.LimitStream{S: NewDetailedStream(p, 1), N: 5000})
		for _, in := range ins {
			if in.Lanes != 1 {
				t.Fatalf("%s: non-scalar micro-op in trace", p.Name)
			}
			if in.Class.IsMem() && in.Size == 0 {
				t.Fatalf("%s: memory op without size", p.Name)
			}
		}
	}
}

func TestDetailedStreamVectorWorkShare(t *testing.T) {
	// The share of micro-ops inside vectorizable loops must track VecFrac.
	for _, p := range All() {
		ins := isa.Collect(&isa.LimitStream{S: NewDetailedStream(p, 9), N: 200000})
		vec := 0
		for _, in := range ins {
			if in.Vectorizable {
				vec++
			}
		}
		share := float64(vec) / float64(len(ins))
		// The loop body includes non-vectorizable control ops (~23%), so
		// the observable marker share is ~0.77 * VecFrac.
		want := 0.77 * p.Vector.VecFrac
		if math.Abs(share-want) > 0.12 {
			t.Errorf("%s: vector share %v, want ~%v", p.Name, share, want)
		}
	}
}

func TestDetailedStreamMixRoughlyFollowsProfile(t *testing.T) {
	for _, p := range All() {
		ins := isa.Collect(&isa.LimitStream{S: NewDetailedStream(p, 11), N: 200000})
		var mem, fp int
		for _, in := range ins {
			if in.Class.IsMem() {
				mem++
			}
			if in.Class.IsFP() {
				fp++
			}
		}
		memShare := float64(mem) / float64(len(ins))
		if memShare < 0.15 || memShare > 0.55 {
			t.Errorf("%s: mem share %v implausible", p.Name, memShare)
		}
		fpShare := float64(fp) / float64(len(ins))
		if fpShare < 0.10 || fpShare > 0.55 {
			t.Errorf("%s: fp share %v implausible", p.Name, fpShare)
		}
	}
}

func TestLuleshShortTripsDefeatWideFusion(t *testing.T) {
	// LULESH's trip counts are below the fuser's MinRun: 512-bit fusion
	// should produce almost no wide ops, while SPMZ should fuse heavily.
	countWide := func(p *Profile) float64 {
		src := &isa.LimitStream{S: NewDetailedStream(p, 13), N: 100000}
		fu := isa.NewFuser(src, isa.DefaultFuserConfig(512))
		ops := isa.Collect(fu)
		wide := 0
		vec := 0
		for _, in := range ops {
			if in.Lanes > 2 {
				wide++
			}
			if in.Vectorizable {
				vec++
			}
		}
		return float64(wide) / float64(len(ops))
	}
	lul := countWide(LULESH())
	spm := countWide(SPMZ())
	if lul > 0.05 {
		t.Errorf("lulesh wide-op share = %v, want ~0", lul)
	}
	if spm < 0.15 {
		t.Errorf("spmz wide-op share = %v, want substantial", spm)
	}
}

func TestLaneWorkPerRank(t *testing.T) {
	p := Hydro()
	want := p.Regions[0].LaneWork() * float64(p.Iterations)
	if got := p.LaneWorkPerRank(); math.Abs(got-want) > 1 {
		t.Errorf("LaneWorkPerRank = %v, want %v", got, want)
	}
}

func TestBurstScalingShapesFig2a(t *testing.T) {
	// The headline scaling shape (Fig. 2a): HYDRO must be the only app at
	// >= 75% parallel efficiency on 64 cores; every other app must fall
	// below 65%; the cross-app average must sit near 50% (paper: ~50%).
	opts := func(threads int) rts.Options {
		return rts.Options{Threads: threads, DispatchNs: 100, Policy: rts.FIFOCentral}
	}
	effAt := func(p *Profile, threads int) float64 {
		g := p.RegionGraph(0, 21)
		s1 := rts.Simulate(g, opts(1))
		sN := rts.Simulate(g, opts(threads))
		return s1.MakespanNs / sN.MakespanNs / float64(threads)
	}
	var sum64 float64
	for _, p := range All() {
		e64 := effAt(p, 64)
		sum64 += e64
		if p.Name == "hydro" {
			if e64 < 0.72 {
				t.Errorf("hydro efficiency@64 = %v, want >= ~0.75", e64)
			}
		} else if e64 > 0.70 {
			t.Errorf("%s efficiency@64 = %v, want < 0.70", p.Name, e64)
		}
	}
	avg := sum64 / 5
	if avg < 0.35 || avg > 0.65 {
		t.Errorf("average efficiency@64 = %v, want ~0.5", avg)
	}
}

func BenchmarkDetailedStream(b *testing.B) {
	s := NewDetailedStream(Spec3D(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
