package apps

import (
	"musa/internal/cache"
	"musa/internal/isa"
	"musa/internal/xrand"
)

// DetailedStream synthesizes an unbounded instruction-level trace of the
// application's compute behavior, substituting for the DynamoRIO sampling of
// the paper (DESIGN.md §2). The stream alternates two block flavors:
//
//   - vectorizable loops: a fixed basic-block body (load / FP ops / index
//     arithmetic / backward branch) repeated for a trip count drawn around
//     Profile.Vector.TripCount, with all FP and memory body ops carrying
//     fusion markers. The fraction of work emitted in these loops follows
//     Vector.VecFrac.
//   - scalar sections: mixed-class blocks without fusion markers.
//
// Memory addresses come from the application's locality profile, so cache
// behavior downstream reproduces the Fig. 1 characterization. Loop-carried
// dependence chains are inserted with probability Dep.ChainProb, setting the
// ILP the out-of-order window can extract.
//
// The stream emits scalar micro-ops (lane = 1), exactly what the tracing
// pipeline produces after vector decode; pipe it through isa.NewFuser to
// simulate a given SIMD width. Wrap with isa.LimitStream to bound length.
type DetailedStream struct {
	p    *Profile
	rng  *xrand.RNG
	addr *cache.AddressGen

	buf  []isa.Instr
	pos  int
	bbID uint32

	// chaseRegion is the locality region index pointer-chase loops walk
	// (-1: whole profile).
	chaseRegion int

	// pVec is the probability of emitting a vector block, derived from
	// Vector.VecFrac (a work share) by weighting with the expected block
	// lengths, so the share of micro-ops inside vector loops matches
	// VecFrac.
	pVec float64

	// Pre-normalized class weights for scalar sections.
	scalarPick *xrand.Discrete
	scalarCls  []isa.Class
}

// NewDetailedStream builds the generator; deterministic in seed.
func NewDetailedStream(p *Profile, seed uint64) *DetailedStream {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := xrand.New(seed)
	classes := []isa.Class{
		isa.Load, isa.Store, isa.FPAdd, isa.FPMul, isa.FPFMA, isa.FPDiv,
		isa.IntALU, isa.IntMul, isa.Branch,
	}
	weights := []float64{
		p.Mix.Load, p.Mix.Store, p.Mix.FPAdd, p.Mix.FPMul, p.Mix.FPFMA,
		p.Mix.FPDiv, p.Mix.IntALU, p.Mix.IntMul, p.Mix.Branch,
	}
	// Expected block lengths: vector body ~6.55 ops per trip, scalar ~12.5.
	vecLen := float64(p.Vector.TripCount) * 6.55
	scaLen := 12.5
	vf := p.Vector.VecFrac
	pVec := vf * scaLen / (vecLen*(1-vf) + vf*scaLen)
	return &DetailedStream{
		p:           p,
		rng:         rng,
		addr:        cache.NewAddressGen(p.Locality, rng.Split()),
		chaseRegion: p.Locality.RegionIndex(p.ChaseRegion),
		pVec:        pVec,
		scalarPick:  xrand.NewDiscrete(weights),
		scalarCls:   classes,
	}
}

// Next implements isa.Stream.
func (s *DetailedStream) Next() (isa.Instr, bool) {
	for s.pos >= len(s.buf) {
		s.fill()
	}
	in := s.buf[s.pos]
	s.pos++
	return in, true
}

// fill generates the next block of instructions into buf.
func (s *DetailedStream) fill() {
	s.buf = s.buf[:0]
	s.pos = 0
	s.bbID++
	switch {
	case s.rng.Bernoulli(s.p.Dep.LoadChainProb):
		s.chaseLoop()
	case s.rng.Bernoulli(s.pVec):
		s.vectorLoop()
	default:
		s.scalarSection()
	}
}

// chaseLoop emits a pointer-chasing loop: each iteration's load depends on
// the previous iteration's load (indirect indexing through the working
// set), so the cache level serving those loads shows up serially in the
// execution time. Such loops cannot vectorize; each iteration gets its own
// basic-block id so the fuser replays them strictly in order.
func (s *DetailedStream) chaseLoop() {
	t := 4 + s.rng.Geometric(1.0/24)
	const bodyLen = 4
	for i := 0; i < t; i++ {
		bb := s.bbID
		pcBase := bb * 64
		var a uint64
		if s.chaseRegion >= 0 {
			a = s.addr.NextIn(s.chaseRegion)
		} else {
			a, _ = s.nextAddr()
		}
		dep := int32(0)
		if i > 0 {
			dep = bodyLen // the previous iteration's load
		}
		s.emit(isa.Instr{PC: pcBase + 0, BB: bb, Class: isa.Load, Addr: a, Size: 8, Dep1: dep, Lanes: 1})
		s.emit(isa.Instr{PC: pcBase + 1, BB: bb, Class: isa.IntALU, Dep1: 1, Lanes: 1})
		s.emit(isa.Instr{PC: pcBase + 2, BB: bb, Class: isa.FPAdd, Dep1: 2, Lanes: 1})
		s.emit(isa.Instr{PC: pcBase + 3, BB: bb, Class: isa.Branch, Dep1: 1, Lanes: 1})
		s.bbID++
	}
}

// nextAddr draws a memory access from the locality profile.
func (s *DetailedStream) nextAddr() (uint64, bool) {
	return s.addr.Next()
}

// vectorLoop emits trip executions of one vectorizable loop body. The body
// shape mirrors a stride-1 stencil/axpy kernel: two loads, two or three FP
// ops, an optional store, index update and backward branch.
func (s *DetailedStream) vectorLoop() {
	trip := s.p.Vector.TripCount
	// Spread trip counts geometrically around the profile value, at least 1.
	t := 1 + s.rng.Geometric(1/float64(trip))
	bb := s.bbID
	pcBase := bb * 64

	// Choose FP op classes for this loop deterministically from the rng.
	fp1 := []isa.Class{isa.FPMul, isa.FPFMA, isa.FPAdd}[s.rng.Intn(3)]
	fp2 := []isa.Class{isa.FPAdd, isa.FPMul}[s.rng.Intn(2)]
	hasStore := s.rng.Bernoulli(0.55)
	chained := s.rng.Bernoulli(s.p.Dep.ChainProb)

	// Body length in micro-ops (for chain distance computation).
	bodyLen := int32(6)
	if hasStore {
		bodyLen = 7
	}

	for i := 0; i < t; i++ {
		a1, _ := s.nextAddr()
		a2, _ := s.nextAddr()
		s.emit(isa.Instr{PC: pcBase + 0, BB: bb, Class: isa.Load, Addr: a1, Size: 8, Lanes: 1, Vectorizable: true})
		s.emit(isa.Instr{PC: pcBase + 1, BB: bb, Class: isa.Load, Addr: a2, Size: 8, Lanes: 1, Vectorizable: true})
		dep2 := int32(0)
		if chained && i > 0 {
			dep2 = bodyLen // accumulator from previous iteration
		}
		s.emit(isa.Instr{PC: pcBase + 2, BB: bb, Class: fp1, Dep1: 1, Dep2: 2, Lanes: 1, Vectorizable: true})
		s.emit(isa.Instr{PC: pcBase + 3, BB: bb, Class: fp2, Dep1: 1, Dep2: dep2, Lanes: 1, Vectorizable: true})
		if hasStore {
			as, _ := s.nextAddr()
			s.emit(isa.Instr{PC: pcBase + 4, BB: bb, Class: isa.Store, Addr: as, Size: 8, Dep1: 1, Lanes: 1, Vectorizable: true})
		}
		s.emit(isa.Instr{PC: pcBase + 5, BB: bb, Class: isa.IntALU, Lanes: 1})
		s.emit(isa.Instr{PC: pcBase + 6, BB: bb, Class: isa.Branch, Dep1: 1, Lanes: 1})
	}
}

// scalarSection emits one short non-vectorizable block (control code,
// gather/scatter-style irregular work).
func (s *DetailedStream) scalarSection() {
	bb := s.bbID
	pcBase := bb * 64
	n := 8 + s.rng.Intn(10)
	for i := 0; i < n; i++ {
		cls := s.scalarCls[s.scalarPick.Sample(s.rng)]
		in := isa.Instr{PC: pcBase + uint32(i), BB: bb, Class: cls, Lanes: 1}
		switch {
		case cls.IsMem():
			a, _ := s.nextAddr()
			in.Addr = a
			in.Size = 8
		case cls.IsFP():
			in.Dep1 = 1 + int32(s.rng.Intn(3))
			if s.rng.Bernoulli(s.p.Dep.ChainProb) {
				in.Dep2 = 4 + int32(s.rng.Intn(8))
			}
		case cls == isa.Branch:
			in.Dep1 = 1
		}
		s.emit(in)
	}
}

func (s *DetailedStream) emit(in isa.Instr) { s.buf = append(s.buf, in) }

// SampleSize is the default detailed-simulation sample length (scalar
// micro-ops). MUSA traces one iteration of one rank; this sample plays the
// same role and is long enough for cache and IPC statistics to stabilize.
const SampleSize = 300000

// EffectiveFidelity resolves the sample-size defaulting rule in one place:
// a non-positive sample means SampleSize, a non-positive warmup means 2x
// the (resolved) sample. node.BuildAnnotation applies it before simulating,
// dse's artifact keys hash it, and the fleet wire materializes it — all
// three must agree byte for byte, or warm artifact lookups would address
// different fidelity than a cold build uses.
func EffectiveFidelity(sample, warmup int64) (int64, int64) {
	if sample <= 0 {
		sample = SampleSize
	}
	if warmup <= 0 {
		warmup = 2 * sample
	}
	return sample, warmup
}
