package report

import (
	"io"

	"musa/internal/net"
	"musa/internal/rts"
)

// ScheduleTimeline converts a runtime-system schedule into per-thread lanes
// (Fig. 3: task execution per thread; idle threads show as empty lanes).
func ScheduleTimeline(g rts.Region, s rts.Schedule, threads int) *Timeline {
	lanes := make([][]Interval, threads)
	for id := range g.Tasks {
		th := s.TaskThread[id]
		if th >= 0 && th < threads {
			lanes[th] = append(lanes[th], Interval{
				StartNs: s.TaskStartNs[id],
				EndNs:   s.TaskEndNs[id],
			})
		}
	}
	if g.SerialNs > 0 && threads > 0 {
		lanes[0] = append(lanes[0], Interval{StartNs: 0, EndNs: g.SerialNs})
	}
	return &Timeline{Lanes: lanes, SpanNs: s.MakespanNs}
}

// ReplayTimeline converts a network replay into per-rank lanes (Fig. 4):
// compute is busy ('#'), MPI wait (p2p + collectives) is 'w'. The per-rank
// interval structure is approximated from the time breakdown: compute first,
// then waiting until the rank's finish time.
func ReplayTimeline(res net.Result) *Timeline {
	lanes := make([][]Interval, len(res.Ranks))
	for r, rs := range res.Ranks {
		lanes[r] = []Interval{
			{StartNs: 0, EndNs: rs.ComputeNs, Kind: 0},
			{StartNs: rs.ComputeNs, EndNs: rs.FinishNs, Kind: 1},
		}
	}
	return &Timeline{Lanes: lanes, SpanNs: res.MakespanNs}
}

// WriteScheduleTimeline is a convenience wrapper rendering a region schedule.
func WriteScheduleTimeline(w io.Writer, g rts.Region, s rts.Schedule, threads int) error {
	return ScheduleTimeline(g, s, threads).Render(w)
}

// WriteReplayTimeline is a convenience wrapper rendering a replay.
func WriteReplayTimeline(w io.Writer, res net.Result) error {
	return ReplayTimeline(res).Render(w)
}
