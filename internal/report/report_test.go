package report

import (
	"bytes"
	"strings"
	"testing"

	"musa/internal/apps"
	"musa/internal/net"
	"musa/internal/rts"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "app", "speedup")
	tbl.AddRow("hydro", 1.234567)
	tbl.AddRow("spmz", "n/a")
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "app", "hydro", "1.235", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", 1.0)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if strings.Count(lines[1], ",") != 1 {
		t.Errorf("cell commas not sanitized: %q", lines[1])
	}
}

func TestTimelineRender(t *testing.T) {
	tl := &Timeline{
		Lanes: [][]Interval{
			{{StartNs: 0, EndNs: 50}},
			{{StartNs: 50, EndNs: 100, Kind: 1}},
			nil, // idle lane
		},
		SpanNs: 100,
		Width:  20,
	}
	var buf bytes.Buffer
	if err := tl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "w") {
		t.Errorf("timeline missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // 3 lanes + utilization
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "utilization") {
		t.Errorf("no utilization summary: %q", lines[3])
	}
}

func TestFig3TimelineShowsIdleThreads(t *testing.T) {
	// Specfem3D on 64 threads: 40 tasks leave many threads idle — the
	// rendered chart must contain fully idle lanes (the paper's gray area).
	p := apps.Spec3D()
	g := p.RegionGraph(0, 1)
	s := rts.Simulate(g, rts.Options{Threads: 64, DispatchNs: 100})
	tl := ScheduleTimeline(g, s, 64)
	var buf bytes.Buffer
	if err := tl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	idleLanes := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "|") && !strings.Contains(line, "#") {
			idleLanes++
		}
	}
	if idleLanes < 20 {
		t.Errorf("only %d idle lanes; Fig. 3 expects most threads idle", idleLanes)
	}
}

func TestFig4TimelineShowsBarrierWaits(t *testing.T) {
	// LULESH replay: rank imbalance + collectives produce waiting ('w').
	b := apps.BurstTrace(apps.LULESH(), 16, 3)
	res := net.Replay(b, net.MareNostrum4(), nil)
	var buf bytes.Buffer
	if err := WriteReplayTimeline(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "w") {
		t.Error("no wait intervals in LULESH replay timeline")
	}
}
