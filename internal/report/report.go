// Package report renders simulation results for humans: fixed-width ASCII
// tables, CSV exports, and the text Gantt timelines that substitute for the
// Paraver screenshots of the paper (Fig. 3: idle threads in Specfem3D;
// Fig. 4: MPI barrier waiting in LULESH).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width table builder.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.Headers {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) WriteCSV(w io.Writer) error {
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(clean(h))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(clean(c))
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the table as a JSON object ({title, headers, rows}).
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Figure bundles the table data behind one evaluation figure — the JSON
// payload of the musa-serve /figures/{n} endpoint.
type Figure struct {
	N      int      `json:"figure"`
	Title  string   `json:"title"`
	Tables []*Table `json:"tables"`
	// Text carries a rendered ASCII artifact when the figure is a
	// timeline rather than a table (Fig. 4's rank Gantt chart).
	Text string `json:"text,omitempty"`
}

// WriteJSON renders the figure as a JSON object.
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Interval is one busy interval on a timeline lane.
type Interval struct {
	StartNs, EndNs float64
	// Kind colors the interval: 0 = compute/task, 1 = wait/MPI.
	Kind int
}

// Timeline renders lanes of intervals as a text Gantt chart: '#' for busy,
// '.' for idle, 'w' for waiting. One lane per thread (Fig. 3) or rank
// (Fig. 4); X axis is time.
type Timeline struct {
	Lanes    [][]Interval
	SpanNs   float64
	Width    int // characters; default 100
	LaneName func(i int) string
}

// Render writes the chart.
func (tl *Timeline) Render(w io.Writer) error {
	width := tl.Width
	if width <= 0 {
		width = 100
	}
	if tl.SpanNs <= 0 {
		for _, lane := range tl.Lanes {
			for _, iv := range lane {
				if iv.EndNs > tl.SpanNs {
					tl.SpanNs = iv.EndNs
				}
			}
		}
	}
	if tl.SpanNs <= 0 {
		tl.SpanNs = 1
	}
	var b strings.Builder
	for i, lane := range tl.Lanes {
		name := fmt.Sprintf("%4d", i)
		if tl.LaneName != nil {
			name = fmt.Sprintf("%6s", tl.LaneName(i))
		}
		row := make([]byte, width)
		for j := range row {
			row[j] = '.'
		}
		for _, iv := range lane {
			s := int(iv.StartNs / tl.SpanNs * float64(width))
			e := int(iv.EndNs / tl.SpanNs * float64(width))
			if e >= width {
				e = width - 1
			}
			ch := byte('#')
			if iv.Kind == 1 {
				ch = 'w'
			}
			for j := s; j <= e && j >= 0; j++ {
				if row[j] == '.' || ch == '#' {
					row[j] = ch
				}
			}
		}
		fmt.Fprintf(&b, "%s |%s|\n", name, row)
	}
	// Utilization summary: fraction of cells busy.
	busy, total := 0, 0
	lines := strings.Split(b.String(), "\n")
	for _, l := range lines {
		for _, c := range l {
			switch c {
			case '#':
				busy++
				total++
			case '.', 'w':
				total++
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(&b, "utilization: %.0f%% of lane-time busy\n", 100*float64(busy)/float64(total))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
