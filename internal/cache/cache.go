// Package cache implements the node's cache hierarchy: set-associative
// write-back caches with LRU replacement, a three-level hierarchy (private
// L1/L2, shared L3 modeled as a per-core partition, matching MUSA's
// single-rank detailed sampling), and the miss statistics (MPKI) reported in
// Figure 1 of the paper.
package cache

import "fmt"

// LineBytes is the cache line size used throughout the evaluation.
const LineBytes = 64

const lineShift = 6 // log2(LineBytes)

// Config describes one cache level.
type Config struct {
	Name         string
	SizeBytes    int
	Assoc        int
	LatencyCycle int // access latency in core cycles (hit time)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes%LineBytes != 0 {
		return fmt.Errorf("cache %s: size %d not a positive multiple of %d", c.Name, c.SizeBytes, LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: associativity %d", c.Name, c.Assoc)
	}
	lines := c.SizeBytes / LineBytes
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by assoc %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates access counters for one cache.
type Stats struct {
	Accesses   int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per kilo-instruction given an instruction count.
func (s Stats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

type line struct {
	tag   uint64
	age   uint64
	valid bool
	dirty bool
}

// Cache is a single set-associative write-back, write-allocate cache with
// true LRU replacement. It is not safe for concurrent use.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	setBits uint
	tick    uint64
	Stats   Stats
}

// New builds a cache; it panics on invalid configuration (configurations are
// produced by the DSE enumerator, so an invalid one is a programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / LineBytes / cfg.Assoc
	bits := uint(0)
	for s := nSets; s > 1; s >>= 1 {
		bits++
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, nSets),
		setMask: uint64(nSets - 1),
		setBits: bits,
	}
	store := make([]line, nSets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = store[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// AccessResult describes the outcome of a single-level access.
type AccessResult struct {
	EvictedAddr  uint64 // byte address of the victim line, if Evicted
	Hit          bool
	Evicted      bool
	EvictedDirty bool // the victim was dirty (a write-back is required)
}

// Access looks up the line containing addr, allocating it on a miss and
// marking it dirty when write is set. It returns the outcome.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.tick++
	c.Stats.Accesses++
	lineAddr := addr >> lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.setBits

	victim, empty := -1, -1
	for i := range set {
		if !set[i].valid {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if set[i].tag == tag {
			set[i].age = c.tick
			if write {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
		if victim < 0 || set[i].age < set[victim].age {
			victim = i
		}
	}
	if empty >= 0 {
		victim = empty
	}

	c.Stats.Misses++
	res := AccessResult{}
	if set[victim].valid {
		c.Stats.Evictions++
		res.Evicted = true
		res.EvictedAddr = ((set[victim].tag << c.setBits) | (lineAddr & c.setMask)) << lineShift
		if set[victim].dirty {
			c.Stats.Writebacks++
			res.EvictedDirty = true
		}
	}
	set[victim] = line{tag: tag, age: c.tick, valid: true, dirty: write}
	return res
}

// Insert fills the line holding addr without touching demand statistics
// (prefetch fills). It reports whether the line was actually inserted (false
// when already present) and the eviction outcome.
func (c *Cache) Insert(addr uint64) (AccessResult, bool) {
	lineAddr := addr >> lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.setBits
	victim, empty := -1, -1
	for i := range set {
		if !set[i].valid {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if set[i].tag == tag {
			return AccessResult{Hit: true}, false
		}
		if victim < 0 || set[i].age < set[victim].age {
			victim = i
		}
	}
	if empty >= 0 {
		victim = empty
	}
	res := AccessResult{}
	if set[victim].valid {
		res.Evicted = true
		res.EvictedAddr = ((set[victim].tag << c.setBits) | (lineAddr & c.setMask)) << lineShift
		res.EvictedDirty = set[victim].dirty
	}
	c.tick++
	set[victim] = line{tag: tag, age: c.tick, valid: true}
	return res, true
}

// MarkDirty sets the dirty bit on the line holding addr if present, without
// touching LRU state or demand statistics (used for write-backs arriving
// from the level above). It reports whether the line was found.
func (c *Cache) MarkDirty(addr uint64) bool {
	lineAddr := addr >> lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Contains reports whether the line holding addr is present (test helper; it
// does not update LRU state or statistics).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> c.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// ResetStats zeroes the statistics counters without touching cache contents
// (used to separate warmup from the measured window).
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Flush invalidates all lines and returns the number of dirty lines dropped.
func (c *Cache) Flush() int {
	dirty := 0
	for si := range c.sets {
		for li := range c.sets[si] {
			if c.sets[si][li].valid && c.sets[si][li].dirty {
				dirty++
			}
			c.sets[si][li] = line{}
		}
	}
	return dirty
}
