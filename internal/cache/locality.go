package cache

import (
	"fmt"

	"musa/internal/xrand"
)

// AccessPattern selects how a Region is traversed by the synthetic address
// generator.
type AccessPattern uint8

const (
	// Sequential walks the region with a fixed stride, wrapping around.
	// Reuse distance equals the region footprint, producing the classic
	// working-set knee: the region hits in every cache at least as large as
	// its footprint and misses in smaller ones (beyond spatial reuse inside
	// a line).
	Sequential AccessPattern = iota
	// RandomLine touches a uniformly random line of the region, producing a
	// hit rate proportional to cacheSize/footprint when the region does not
	// fit.
	RandomLine
	// RandomBlock picks a uniformly random BlockBytes-aligned block and
	// walks it sequentially before picking the next. Cache behavior is
	// random-like at capacities below the footprint, while the DRAM row
	// buffer sees good locality — the access shape of blocked/tiled HPC
	// kernels.
	RandomBlock
)

func (p AccessPattern) String() string {
	switch p {
	case Sequential:
		return "seq"
	case RandomBlock:
		return "randblock"
	}
	return "rand"
}

// Region is one logical data structure of an application's working set.
type Region struct {
	Name    string
	Bytes   int64   // footprint
	Weight  float64 // fraction of memory accesses that land here
	Pattern AccessPattern
	Stride  int64 // element stride for Sequential/RandomBlock (bytes); 0 means 8
	// BlockBytes is the block size for RandomBlock; 0 means 4096.
	BlockBytes int64
	WriteFrac  float64 // fraction of accesses to this region that are stores
}

// LocalityProfile is the memory-locality model of an application: a weighted
// mixture of regions. It substitutes for the address streams that the paper
// collects with DynamoRIO (see DESIGN.md §2).
type LocalityProfile struct {
	Regions []Region
}

// Validate reports profile errors.
func (p LocalityProfile) Validate() error {
	if len(p.Regions) == 0 {
		return fmt.Errorf("locality: no regions")
	}
	var w float64
	for i, r := range p.Regions {
		if r.Bytes <= 0 {
			return fmt.Errorf("locality: region %d (%s) has footprint %d", i, r.Name, r.Bytes)
		}
		if r.Weight < 0 {
			return fmt.Errorf("locality: region %d (%s) has negative weight", i, r.Name)
		}
		w += r.Weight
	}
	if w <= 0 {
		return fmt.Errorf("locality: weights sum to zero")
	}
	return nil
}

// AddressGen produces a synthetic address stream following a profile. Each
// region lives in its own segment of the address space so distinct regions
// never alias.
type AddressGen struct {
	profile LocalityProfile
	pick    *xrand.Discrete
	rng     *xrand.RNG
	bases   []uint64
	cursors []uint64
	blocks  []uint64 // current block base offset for RandomBlock regions
}

// regionSegment spaces region base addresses 1 GiB apart.
const regionSegment = 1 << 30

// NewAddressGen builds a generator; it panics on an invalid profile.
func NewAddressGen(p LocalityProfile, rng *xrand.RNG) *AddressGen {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	weights := make([]float64, len(p.Regions))
	bases := make([]uint64, len(p.Regions))
	for i, r := range p.Regions {
		weights[i] = r.Weight
		bases[i] = uint64(i+1) * regionSegment
	}
	return &AddressGen{
		profile: p,
		pick:    xrand.NewDiscrete(weights),
		rng:     rng,
		bases:   bases,
		cursors: make([]uint64, len(p.Regions)),
		blocks:  make([]uint64, len(p.Regions)),
	}
}

// Next returns the next access: its byte address and whether it is a store.
func (g *AddressGen) Next() (addr uint64, write bool) {
	i := g.pick.Sample(g.rng)
	r := &g.profile.Regions[i]
	switch r.Pattern {
	case Sequential:
		stride := r.Stride
		if stride <= 0 {
			stride = 8
		}
		addr = g.bases[i] + g.cursors[i]
		g.cursors[i] = (g.cursors[i] + uint64(stride)) % uint64(r.Bytes)
	case RandomLine:
		lines := r.Bytes / LineBytes
		if lines < 1 {
			lines = 1
		}
		addr = g.bases[i] + uint64(g.rng.Int63n(lines))*LineBytes + uint64(g.rng.Intn(LineBytes/8))*8
	case RandomBlock:
		block := r.BlockBytes
		if block <= 0 {
			block = 4096
		}
		if block > r.Bytes {
			block = r.Bytes
		}
		stride := r.Stride
		if stride <= 0 {
			stride = 8
		}
		if g.cursors[i] == 0 {
			// Pick a new random block, aligned to the block size.
			nBlocks := r.Bytes / block
			if nBlocks < 1 {
				nBlocks = 1
			}
			g.blocks[i] = uint64(g.rng.Int63n(nBlocks)) * uint64(block)
		}
		addr = g.bases[i] + g.blocks[i] + g.cursors[i]
		g.cursors[i] = (g.cursors[i] + uint64(stride)) % uint64(block)
	}
	write = g.rng.Bernoulli(r.WriteFrac)
	return addr, write
}

// NextIn draws a uniformly random line address from region i, regardless of
// the region's configured pattern. The workload synthesizer uses it for
// pointer-chase loops, which dereference random locations of a specific
// data structure.
func (g *AddressGen) NextIn(i int) uint64 {
	r := &g.profile.Regions[i]
	lines := r.Bytes / LineBytes
	if lines < 1 {
		lines = 1
	}
	return g.bases[i] + uint64(g.rng.Int63n(lines))*LineBytes
}

// RegionIndex returns the index of the named region, or -1.
func (p LocalityProfile) RegionIndex(name string) int {
	for i, r := range p.Regions {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// FootprintBytes returns the total footprint of the profile.
func (p LocalityProfile) FootprintBytes() int64 {
	var t int64
	for _, r := range p.Regions {
		t += r.Bytes
	}
	return t
}
