package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg(name string, size, assoc, lat int) Config {
	return Config{Name: name, SizeBytes: size, Assoc: assoc, LatencyCycle: lat}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, Assoc: 1},
		{Name: "b", SizeBytes: 100, Assoc: 1},    // not multiple of line
		{Name: "c", SizeBytes: 1024, Assoc: 0},   // bad assoc
		{Name: "d", SizeBytes: 64 * 3, Assoc: 2}, // lines % assoc != 0
		{Name: "e", SizeBytes: 64 * 6, Assoc: 2}, // 3 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	good := smallCfg("l1", 32*1024, 8, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(smallCfg("t", 1024, 2, 1))
	if c.Access(0x40, false).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(0x40, false).Hit {
		t.Error("second access missed")
	}
	if !c.Access(0x7f, false).Hit {
		t.Error("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache with 2 sets: lines mapping to set 0 are multiples of 128.
	c := New(smallCfg("t", 256, 2, 1))
	c.Access(0, false)   // set 0, way A
	c.Access(128, false) // set 0, way B
	c.Access(0, false)   // touch A: B is now LRU
	c.Access(256, false) // evicts B (128)
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(128) {
		t.Error("LRU line survived")
	}
	if !c.Contains(256) {
		t.Error("new line absent")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(smallCfg("t", 128, 1, 1)) // direct-mapped, 2 sets
	c.Access(0, true)                  // dirty line in set 0
	res := c.Access(128, false)        // evicts it
	if !res.Evicted || !res.EvictedDirty {
		t.Errorf("eviction result = %+v", res)
	}
	if res.EvictedAddr != 0 {
		t.Errorf("evicted addr = %#x, want 0", res.EvictedAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestEvictedAddrReconstruction(t *testing.T) {
	f := func(a uint32) bool {
		c := New(smallCfg("t", 4096, 4, 1))
		addr := uint64(a) &^ 0x3f
		c.Access(addr, true)
		// Force eviction by filling the set with conflicting lines.
		setStrideBytes := uint64(4096 / 4) // sets * lineBytes
		var evicted uint64
		found := false
		for i := uint64(1); i <= 4; i++ {
			res := c.Access(addr+i*setStrideBytes, false)
			if res.Evicted && res.EvictedDirty {
				evicted = res.EvictedAddr
				found = true
				break
			}
		}
		return found && evicted == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsNoSteadyMisses(t *testing.T) {
	// A footprint smaller than the cache must produce only cold misses.
	c := New(smallCfg("t", 64*1024, 8, 1))
	const footprint = 32 * 1024
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < footprint; a += 64 {
			c.Access(a, false)
		}
	}
	wantCold := int64(footprint / 64)
	if c.Stats.Misses != wantCold {
		t.Errorf("misses = %d, want %d cold misses only", c.Stats.Misses, wantCold)
	}
}

func TestWorkingSetExceedsThrashes(t *testing.T) {
	// Sequential walk over 2x the cache size with LRU misses every line.
	c := New(smallCfg("t", 32*1024, 8, 1))
	const footprint = 64 * 1024
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < footprint; a += 64 {
			c.Access(a, false)
		}
	}
	if rate := c.Stats.MissRate(); rate < 0.99 {
		t.Errorf("sequential thrash miss rate = %v, want ~1", rate)
	}
}

func TestMarkDirty(t *testing.T) {
	c := New(smallCfg("t", 1024, 2, 1))
	c.Access(0x80, false)
	if !c.MarkDirty(0x80) {
		t.Error("MarkDirty failed on present line")
	}
	if c.MarkDirty(0xdead00) {
		t.Error("MarkDirty succeeded on absent line")
	}
	// The dirtied line must write back when evicted.
	before := c.Stats.Accesses
	setStride := uint64(1024 / 2)
	wb := false
	for i := uint64(1); i <= 3; i++ {
		if res := c.Access(0x80+i*setStride, false); res.EvictedDirty {
			wb = true
		}
	}
	if !wb {
		t.Error("no dirty writeback after MarkDirty")
	}
	if c.Stats.Accesses != before+3 {
		t.Error("MarkDirty perturbed access stats")
	}
}

func TestFlush(t *testing.T) {
	c := New(smallCfg("t", 1024, 2, 1))
	c.Access(0, true)
	c.Access(64, false)
	if d := c.Flush(); d != 1 {
		t.Errorf("Flush dropped %d dirty lines, want 1", d)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Error("lines survive Flush")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 100, Misses: 25}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.MPKI(1000) != 25 {
		t.Errorf("MPKI = %v", s.MPKI(1000))
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.MPKI(0) != 0 {
		t.Error("zero stats not safe")
	}
	s2 := Stats{Accesses: 1, Misses: 1, Evictions: 1, Writebacks: 1}
	s.Add(s2)
	if s.Accesses != 101 || s.Misses != 26 {
		t.Errorf("Add = %+v", s)
	}
}
