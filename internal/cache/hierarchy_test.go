package cache

import (
	"testing"

	"musa/internal/xrand"
)

func testHierCfg() HierarchyConfig {
	return HierarchyConfig{
		L1:              Config{Name: "L1", SizeBytes: 32 * 1024, Assoc: 8, LatencyCycle: 4},
		L2:              Config{Name: "L2", SizeBytes: 256 * 1024, Assoc: 8, LatencyCycle: 9},
		L3:              Config{Name: "L3", SizeBytes: 1024 * 1024, Assoc: 16, LatencyCycle: 68},
		MemLatencyCycle: 200,
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(testHierCfg())
	lvl, lat := h.Access(0x1000, 8, false)
	if lvl != LevelMem {
		t.Errorf("cold access served at %v", lvl)
	}
	if lat != 68+200 {
		t.Errorf("mem latency = %d", lat)
	}
	lvl, lat = h.Access(0x1000, 8, false)
	if lvl != LevelL1 || lat != 4 {
		t.Errorf("hot access: %v/%d", lvl, lat)
	}
	if h.MemReads != 1 {
		t.Errorf("MemReads = %d", h.MemReads)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(testHierCfg())
	// Touch a footprint bigger than L1 but within L2; second pass must be
	// served by L2.
	const foot = 128 * 1024
	for a := uint64(0); a < foot; a += 64 {
		h.Access(a, 8, false)
	}
	lvl, lat := h.Access(0, 8, false)
	if lvl != LevelL2 || lat != 9 {
		t.Errorf("expected L2 hit, got %v/%d", lvl, lat)
	}
}

func TestHierarchyL3Hit(t *testing.T) {
	h := NewHierarchy(testHierCfg())
	const foot = 512 * 1024 // > L2, < L3
	for a := uint64(0); a < foot; a += 64 {
		h.Access(a, 8, false)
	}
	lvl, _ := h.Access(0, 8, false)
	if lvl != LevelL3 {
		t.Errorf("expected L3 hit, got %v", lvl)
	}
}

func TestStraddlingAccess(t *testing.T) {
	h := NewHierarchy(testHierCfg())
	// A 64-byte access at offset 32 touches two lines.
	h.Access(32, 64, false)
	if h.L1Stats().Accesses != 2 {
		t.Errorf("straddling access touched %d lines", h.L1Stats().Accesses)
	}
	// Both lines now resident.
	lvl, _ := h.Access(32, 64, false)
	if lvl != LevelL1 {
		t.Errorf("resident straddling access at %v", lvl)
	}
}

func TestWritebackReachesMemory(t *testing.T) {
	h := NewHierarchy(testHierCfg())
	// Dirty a streaming footprint much larger than L3: dirty lines must
	// eventually be written back to memory.
	const foot = 8 * 1024 * 1024
	for a := uint64(0); a < foot; a += 64 {
		h.Access(a, 8, true)
	}
	// Stream a second disjoint footprint to force evictions through L3.
	for a := uint64(1 << 30); a < (1<<30)+foot; a += 64 {
		h.Access(a, 8, false)
	}
	if h.MemWrites == 0 {
		t.Error("no DRAM writes despite dirty thrashing")
	}
	if h.MemRequests() != h.MemReads+h.MemWrites {
		t.Error("MemRequests mismatch")
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{LevelL1, LevelL2, LevelL3, LevelMem} {
		if l.String() == "?" {
			t.Errorf("level %d unprintable", l)
		}
	}
}

func TestLocalityValidate(t *testing.T) {
	bad := []LocalityProfile{
		{},
		{Regions: []Region{{Name: "x", Bytes: 0, Weight: 1}}},
		{Regions: []Region{{Name: "x", Bytes: 64, Weight: -1}}},
		{Regions: []Region{{Name: "x", Bytes: 64, Weight: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d validated", i)
		}
	}
	ok := LocalityProfile{Regions: []Region{{Name: "a", Bytes: 4096, Weight: 1}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if ok.FootprintBytes() != 4096 {
		t.Errorf("footprint = %d", ok.FootprintBytes())
	}
}

func TestAddressGenRegionsDisjoint(t *testing.T) {
	p := LocalityProfile{Regions: []Region{
		{Name: "a", Bytes: 1 << 20, Weight: 1, Pattern: Sequential},
		{Name: "b", Bytes: 1 << 20, Weight: 1, Pattern: RandomLine},
	}}
	g := NewAddressGen(p, xrand.New(1))
	for i := 0; i < 10000; i++ {
		addr, _ := g.Next()
		seg := addr / regionSegment
		off := addr % regionSegment
		if seg != 1 && seg != 2 {
			t.Fatalf("address 0x%x outside region segments", addr)
		}
		if off >= 1<<20 {
			t.Fatalf("address 0x%x beyond region footprint", addr)
		}
	}
}

func TestSequentialKnee(t *testing.T) {
	// The central calibration mechanism: a sequential region whose footprint
	// sits between two L2 sizes must hit with the bigger L2 and miss with
	// the smaller one (HYDRO's 256K->512K 4x MPKI drop in the paper).
	mkHier := func(l2Size int) *Hierarchy {
		cfg := testHierCfg()
		cfg.L2.SizeBytes = l2Size
		cfg.PrefetchDegree = -1 // isolate raw capacity behavior
		return NewHierarchy(cfg)
	}
	p := LocalityProfile{Regions: []Region{
		{Name: "ws", Bytes: 384 * 1024, Weight: 1, Pattern: Sequential},
	}}

	run := func(h *Hierarchy) float64 {
		g := NewAddressGen(p, xrand.New(7))
		const n = 400000
		for i := 0; i < n; i++ { // warmup pass fills the caches
			addr, w := g.Next()
			h.Access(addr, 8, w)
		}
		warm := h.L2Stats()
		for i := 0; i < n; i++ {
			addr, w := g.Next()
			h.Access(addr, 8, w)
		}
		steady := h.L2Stats()
		return float64(steady.Misses-warm.Misses) / float64(steady.Accesses-warm.Accesses)
	}
	small := run(mkHier(256 * 1024))
	big := run(mkHier(512 * 1024))
	if small < 0.9 {
		t.Errorf("256K L2 miss rate = %v, want ~1 (thrash)", small)
	}
	if big > 0.05 {
		t.Errorf("512K L2 miss rate = %v, want ~0 (fits)", big)
	}
}

func TestRandomLineHitRateScales(t *testing.T) {
	// RandomLine over 2x the L1: hit rate ~ 0.5 in L1 (plus spatial reuse).
	p := LocalityProfile{Regions: []Region{
		{Name: "r", Bytes: 64 * 1024, Weight: 1, Pattern: RandomLine},
	}}
	h := NewHierarchy(testHierCfg())
	g := NewAddressGen(p, xrand.New(9))
	for i := 0; i < 300000; i++ {
		addr, w := g.Next()
		h.Access(addr, 8, w)
	}
	rate := h.L1Stats().MissRate()
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random-line L1 miss rate = %v, want ~0.5", rate)
	}
}

func TestWriteFraction(t *testing.T) {
	p := LocalityProfile{Regions: []Region{
		{Name: "w", Bytes: 1 << 20, Weight: 1, Pattern: RandomLine, WriteFrac: 0.3},
	}}
	g := NewAddressGen(p, xrand.New(11))
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if _, w := g.Next(); w {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("write fraction = %v, want ~0.3", frac)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(testHierCfg())
	p := LocalityProfile{Regions: []Region{
		{Name: "a", Bytes: 1 << 22, Weight: 1, Pattern: Sequential},
		{Name: "b", Bytes: 1 << 16, Weight: 2, Pattern: RandomLine},
	}}
	g := NewAddressGen(p, xrand.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, w := g.Next()
		h.Access(addr, 8, w)
	}
}
