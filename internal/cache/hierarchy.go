package cache

// HierarchyConfig describes the three-level hierarchy of one core's view of
// the node. L3 is shared on the chip; detailed simulation samples one core
// (as MUSA samples one rank), so the shared L3 is modeled as an equal
// per-core partition: SizeBytes here must already be the per-core share.
// MemLatencyCycle is the flat portion of the main-memory latency in core
// cycles; the DRAM model adds queueing on top.
type HierarchyConfig struct {
	L1, L2, L3      Config
	MemLatencyCycle int
	// PrefetchDegree is the stream prefetcher's lookahead in lines; zero
	// selects the default (4) and a negative value disables prefetching
	// (used by the ablation bench).
	PrefetchDegree int
}

// Level identifies where an access was served.
type Level int

// Hierarchy levels; LevelMem means the access went to DRAM.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelL3
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "mem"
	}
	return "?"
}

// Hierarchy is one core's inclusive three-level cache stack with a
// next-line stream prefetcher at the L2: sequential miss streams are
// detected and the following lines are filled into L2/L3 ahead of use, so
// streaming workloads keep generating DRAM bandwidth without exposing DRAM
// latency — which is what lets memory-bound codes saturate channels even on
// narrow out-of-order cores (the paper's LULESH behavior in Figs. 7 and 8).
type Hierarchy struct {
	cfg        HierarchyConfig
	l1         *Cache
	l2         *Cache
	l3         *Cache
	prefDegree int
	recentMiss [256]uint64

	// MemReads/MemWrites count line transfers to and from DRAM, including
	// write-backs of dirty victims and prefetch fills.
	MemReads  int64
	MemWrites int64
	// PrefetchFills counts lines brought in by the prefetcher.
	PrefetchFills int64
}

// NewHierarchy builds the stack.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	deg := cfg.PrefetchDegree
	if deg == 0 {
		deg = 4
	}
	if deg < 0 {
		deg = 0
	}
	return &Hierarchy{
		cfg:        cfg,
		l1:         New(cfg.L1),
		l2:         New(cfg.L2),
		l3:         New(cfg.L3),
		prefDegree: deg,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1Stats, L2Stats and L3Stats expose the per-level counters.
func (h *Hierarchy) L1Stats() Stats { return h.l1.Stats }
func (h *Hierarchy) L2Stats() Stats { return h.l2.Stats }
func (h *Hierarchy) L3Stats() Stats { return h.l3.Stats }

// Access performs one memory access of the given size (bytes) starting at
// addr. Accesses that straddle line boundaries touch every covered line; the
// returned level and latency reflect the slowest line touched, which is what
// gates the consuming instruction. write marks stores.
func (h *Hierarchy) Access(addr uint64, size int, write bool) (Level, int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> lineShift
	last := (addr + uint64(size) - 1) >> lineShift
	worstLevel := LevelL1
	worstLat := h.cfg.L1.LatencyCycle
	for lineAddr := first; lineAddr <= last; lineAddr++ {
		lvl, lat := h.accessLine(lineAddr<<lineShift, write)
		if lat > worstLat {
			worstLat = lat
			worstLevel = lvl
		}
	}
	return worstLevel, worstLat
}

// accessLine performs a single-line access through the stack. Dirty victims
// are written back to the next level down; a dirty line falling out of L3
// becomes a DRAM write.
func (h *Hierarchy) accessLine(addr uint64, write bool) (Level, int) {
	r1 := h.l1.Access(addr, write)
	if r1.EvictedDirty {
		h.writebackBelow(LevelL2, r1.EvictedAddr)
	}
	if r1.Hit {
		return LevelL1, h.cfg.L1.LatencyCycle
	}
	// L1 miss: train the stream prefetcher.
	h.prefetch(addr >> lineShift)

	r2 := h.l2.Access(addr, false)
	if r2.EvictedDirty {
		h.writebackBelow(LevelL3, r2.EvictedAddr)
	}
	if r2.Hit {
		return LevelL2, h.cfg.L2.LatencyCycle
	}
	r3 := h.l3.Access(addr, false)
	if r3.EvictedDirty {
		h.MemWrites++
	}
	if r3.Hit {
		return LevelL3, h.cfg.L3.LatencyCycle
	}
	h.MemReads++
	return LevelMem, h.cfg.L3.LatencyCycle + h.cfg.MemLatencyCycle
}

// prefetch records an L1 miss to lineAddr and, when the previous line was
// missed recently (a stream), fills the next prefDegree lines into L2 and
// L3. Prefetch fills bypass demand statistics but do count as DRAM traffic.
func (h *Hierarchy) prefetch(lineAddr uint64) {
	if h.prefDegree == 0 {
		return
	}
	prev := lineAddr - 1
	streaming := h.recentMiss[prev&255] == prev
	h.recentMiss[lineAddr&255] = lineAddr
	if !streaming {
		return
	}
	for d := 1; d <= h.prefDegree; d++ {
		la := (lineAddr + uint64(d)) << lineShift
		res, inserted := h.l2.Insert(la)
		if !inserted {
			continue
		}
		if res.EvictedDirty {
			h.writebackBelow(LevelL3, res.EvictedAddr)
		}
		h.PrefetchFills++
		r3, ins3 := h.l3.Insert(la)
		if ins3 {
			if r3.EvictedDirty {
				h.MemWrites++
			}
			h.MemReads++
		}
		// Mark the line as recently missed so the stream keeps training.
		h.recentMiss[(lineAddr+uint64(d))&255] = lineAddr + uint64(d)
	}
}

// writebackBelow deposits a dirty line into the given level (or further down
// if absent there). Write-backs do not perturb demand statistics.
func (h *Hierarchy) writebackBelow(lvl Level, addr uint64) {
	if lvl <= LevelL2 && h.l2.MarkDirty(addr) {
		return
	}
	if lvl <= LevelL3 && h.l3.MarkDirty(addr) {
		return
	}
	h.MemWrites++
}

// ResetStats zeroes all level statistics and memory counters while keeping
// cache contents warm.
func (h *Hierarchy) ResetStats() {
	h.l1.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.MemReads, h.MemWrites, h.PrefetchFills = 0, 0, 0
}

// TotalAccesses returns the number of L1 accesses (i.e. memory instructions'
// line touches).
func (h *Hierarchy) TotalAccesses() int64 { return h.l1.Stats.Accesses }

// MemRequests returns the number of DRAM line requests generated (reads plus
// write-backs), the quantity plotted in Figure 1 as Giga-MemRequest/s once
// divided by runtime.
func (h *Hierarchy) MemRequests() int64 { return h.MemReads + h.MemWrites }
