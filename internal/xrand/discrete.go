package xrand

import "sort"

// Discrete samples from a finite discrete distribution given by weights.
// It precomputes a cumulative table and samples by binary search, which is
// fast enough for the trace synthesizers and keeps the implementation simple.
type Discrete struct {
	cum   []float64
	total float64
}

// NewDiscrete builds a sampler over len(weights) outcomes. Weights must be
// non-negative with a positive sum.
func NewDiscrete(weights []float64) *Discrete {
	d := &Discrete{cum: make([]float64, len(weights))}
	for i, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		d.total += w
		d.cum[i] = d.total
	}
	if d.total <= 0 {
		panic("xrand: weights sum to zero")
	}
	return d
}

// Sample draws an outcome index using r.
func (d *Discrete) Sample(r *RNG) int {
	u := r.Float64() * d.total
	return sort.SearchFloat64s(d.cum, u)
}

// N returns the number of outcomes.
func (d *Discrete) N() int { return len(d.cum) }

// Prob returns the probability of outcome i.
func (d *Discrete) Prob(i int) float64 {
	if i == 0 {
		return d.cum[0] / d.total
	}
	return (d.cum[i] - d.cum[i-1]) / d.total
}
