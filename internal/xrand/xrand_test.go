package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c := r.Split()
	// The child stream must not replicate the parent stream.
	r2 := New(7)
	r2.Uint64() // consume the draw Split consumed
	for i := 0; i < 100; i++ {
		if c.Uint64() == r2.Uint64() {
			t.Fatalf("split stream tracks parent at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(4)
	}
	if got := sum / n; math.Abs(got-4) > 0.1 {
		t.Errorf("mean = %v, want ~4", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p = 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean number of failures
	if got := sum / n; math.Abs(got-want) > 0.1 {
		t.Errorf("mean = %v, want ~%v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscreteProbabilities(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 7})
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	if math.Abs(d.Prob(0)-0.1) > 1e-12 || math.Abs(d.Prob(1)-0.2) > 1e-12 || math.Abs(d.Prob(2)-0.7) > 1e-12 {
		t.Fatalf("probs = %v %v %v", d.Prob(0), d.Prob(1), d.Prob(2))
	}
}

func TestDiscreteSampling(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 7})
	r := New(23)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: freq %v, want ~%v", i, got, want)
		}
	}
}

func TestDiscreteRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() { recover() }()
			NewDiscrete(w)
			t.Errorf("NewDiscrete(%v) did not panic", w)
		}()
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square check over 16 buckets; xoshiro should pass easily.
	r := New(29)
	const buckets = 16
	const n = 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof; 99.9th percentile ~ 37.7
	if chi2 > 37.7 {
		t.Errorf("chi2 = %v, distribution looks non-uniform", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}
