// Package xrand provides deterministic pseudo-random number generation and
// the sampling distributions used by the workload synthesizers.
//
// The simulators in this repository must be reproducible bit-for-bit across
// runs and platforms, so we implement a fixed algorithm (xoshiro256**, seeded
// via splitmix64) instead of relying on math/rand's unspecified evolution.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed using splitmix64,
// as recommended by the xoshiro authors. Any seed, including zero, is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated by hashing a draw from r through splitmix64.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Log(1-r.Float64()) / math.Log(1-p))
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
