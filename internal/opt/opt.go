// Package opt is the search policy of optimize experiments: the
// successive-halving fidelity ladder and deterministic multi-objective
// (Pareto) candidate selection. It is pure policy — no simulation, no
// I/O, no randomness — so the whole search is unit-testable and a given
// input always produces byte-identical decisions.
package opt

import (
	"math"
	"slices"
	"sort"
)

// Point is one candidate configuration under evaluation: an opaque
// stable ID (the Table I grid index) and its metric vector, one value
// per objective, lower is better. Feasible marks constraint satisfaction
// (e.g. a power cap); selection uses constrained domination, so feasible
// candidates always outrank infeasible ones.
type Point struct {
	ID       int
	Metrics  []float64
	Feasible bool
}

// Dominates reports whether a Pareto-dominates b under constrained
// domination: a feasible point dominates any infeasible one; between
// points of equal feasibility, a dominates b when no metric is worse and
// at least one is strictly better.
func Dominates(a, b Point) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	better := false
	for i := range a.Metrics {
		if a.Metrics[i] > b.Metrics[i] {
			return false
		}
		if a.Metrics[i] < b.Metrics[i] {
			better = true
		}
	}
	return better
}

// Front returns the non-dominated subset of pts, sorted by ID.
func Front(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].ID < front[j].ID })
	return front
}

// ranks assigns each point its non-dominated rank (0 = the Pareto front,
// 1 = the front after removing rank 0, ...) by iterative peeling.
func ranks(pts []Point) []int {
	n := len(pts)
	rank := make([]int, n)
	assigned := make([]bool, n)
	for level, left := 0, n; left > 0; level++ {
		var peel []int
		for i := range pts {
			if assigned[i] {
				continue
			}
			dominated := false
			for j := range pts {
				if i != j && !assigned[j] && Dominates(pts[j], pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				peel = append(peel, i)
			}
		}
		for _, i := range peel {
			rank[i], assigned[i] = level, true
		}
		left -= len(peel)
	}
	return rank
}

// scores computes the deterministic scalarized tie-break value of each
// point: the sum of its per-objective min-max normalized metrics over
// pts. A degenerate objective (all candidates equal) contributes zero.
func scores(pts []Point) []float64 {
	if len(pts) == 0 {
		return nil
	}
	dims := len(pts[0].Metrics)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range pts {
		for d, v := range p.Metrics {
			lo[d], hi[d] = math.Min(lo[d], v), math.Max(hi[d], v)
		}
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		for d, v := range p.Metrics {
			if hi[d] > lo[d] {
				out[i] += (v - lo[d]) / (hi[d] - lo[d])
			}
		}
	}
	return out
}

// Select returns the IDs of the keep best points, ascending. Ordering is
// fully deterministic: non-dominated rank first (constrained domination,
// so feasible candidates survive before infeasible ones), then the
// scalarized min-max score, then the ID itself.
func Select(pts []Point, keep int) []int {
	if keep >= len(pts) {
		ids := make([]int, len(pts))
		for i, p := range pts {
			ids[i] = p.ID
		}
		slices.Sort(ids)
		return ids
	}
	rank := ranks(pts)
	score := scores(pts)
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if rank[i] != rank[j] {
			return rank[i] < rank[j]
		}
		if score[i] != score[j] {
			return score[i] < score[j]
		}
		return pts[i].ID < pts[j].ID
	})
	ids := make([]int, keep)
	for i := range ids {
		ids[i] = pts[order[i]].ID
	}
	slices.Sort(ids)
	return ids
}

// Rung is one level of the fidelity ladder: Candidates enter it and are
// probed at Fraction of full fidelity (the last rung is always 1.0).
type Rung struct {
	Candidates int
	Fraction   float64
}

// Schedule builds the successive-halving ladder for n candidates: rung i
// of R probes its survivors at eta^(i-(R-1)) of full fidelity and keeps
// ceil(candidates/eta) of them, floored at finalists — the minimum
// promoted to the full-fidelity top rung. maxRungs > 0 caps the ladder
// depth; a capped ladder keeps its top (most expensive) rungs, so the
// first cut from n is simply more aggressive. The aggregate probe cost
// of the ladder is a small fraction of the n-point full-fidelity grid:
// each cheap rung costs about n/eta^(R-1) grid-point equivalents.
func Schedule(n, eta, maxRungs, finalists int) []Rung {
	if eta < 2 {
		eta = 2
	}
	if finalists < 1 {
		finalists = 1
	}
	sizes := []int{n}
	for last := n; last > finalists; {
		next := (last + eta - 1) / eta
		if next < finalists {
			next = finalists
		}
		sizes = append(sizes, next)
		last = next
	}
	if maxRungs > 0 && len(sizes) > maxRungs {
		// Keep the top of the ladder: all n candidates still enter rung 0,
		// they just shrink to the (deeper) next size in one cut.
		sizes = append([]int{n}, sizes[len(sizes)-maxRungs+1:]...)
	}
	r := len(sizes)
	out := make([]Rung, r)
	for i, sz := range sizes {
		out[i] = Rung{Candidates: sz, Fraction: math.Pow(float64(eta), float64(i-(r-1)))}
	}
	return out
}

// Cost sums the ladder's probe cost in full-fidelity grid-point
// equivalents (candidates x fraction per rung, with fractions floored at
// minFraction — the MinSample floor expressed as a fraction of full
// fidelity). Dividing by n gives the cost ratio vs the exhaustive grid.
func Cost(ladder []Rung, minFraction float64) float64 {
	var total float64
	for _, r := range ladder {
		f := r.Fraction
		if f < minFraction {
			f = minFraction
		}
		total += float64(r.Candidates) * f
	}
	return total
}
