package opt

import (
	"math"
	"reflect"
	"testing"
)

func TestDominates(t *testing.T) {
	a := Point{ID: 0, Metrics: []float64{1, 1}, Feasible: true}
	b := Point{ID: 1, Metrics: []float64{2, 2}, Feasible: true}
	c := Point{ID: 2, Metrics: []float64{1, 2}, Feasible: true}
	d := Point{ID: 3, Metrics: []float64{2, 1}, Feasible: true}
	bad := Point{ID: 4, Metrics: []float64{0.1, 0.1}, Feasible: false}

	if !Dominates(a, b) || Dominates(b, a) {
		t.Error("a should dominate b, not vice versa")
	}
	if Dominates(c, d) || Dominates(d, c) {
		t.Error("c and d are mutually non-dominated")
	}
	if Dominates(a, a) {
		t.Error("a point never dominates itself (no strict improvement)")
	}
	if !Dominates(b, bad) {
		t.Error("any feasible point dominates an infeasible one")
	}
	if Dominates(bad, a) {
		t.Error("an infeasible point never dominates a feasible one")
	}
}

func TestFront(t *testing.T) {
	pts := []Point{
		{ID: 7, Metrics: []float64{3, 1}, Feasible: true},
		{ID: 2, Metrics: []float64{1, 3}, Feasible: true},
		{ID: 5, Metrics: []float64{2, 2}, Feasible: true},
		{ID: 9, Metrics: []float64{4, 4}, Feasible: true}, // dominated by 5
	}
	front := Front(pts)
	var ids []int
	for _, p := range front {
		ids = append(ids, p.ID)
	}
	if want := []int{2, 5, 7}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("front = %v, want %v", ids, want)
	}
}

func TestSelectDeterministicTieBreak(t *testing.T) {
	// Two identical metric vectors: the tie must break on ID, and the
	// result must be identical across repeated calls and input orderings.
	pts := []Point{
		{ID: 8, Metrics: []float64{1, 1}, Feasible: true},
		{ID: 3, Metrics: []float64{1, 1}, Feasible: true},
		{ID: 5, Metrics: []float64{9, 9}, Feasible: true},
	}
	rev := []Point{pts[2], pts[1], pts[0]}
	got, got2 := Select(pts, 1), Select(rev, 1)
	if want := []int{3}; !reflect.DeepEqual(got, want) || !reflect.DeepEqual(got2, want) {
		t.Fatalf("Select = %v / %v, want %v (ID tie-break)", got, got2, want)
	}
}

func TestSelectPrefersFeasible(t *testing.T) {
	pts := []Point{
		{ID: 0, Metrics: []float64{0.1}, Feasible: false}, // best metric, over cap
		{ID: 1, Metrics: []float64{5}, Feasible: true},
		{ID: 2, Metrics: []float64{7}, Feasible: true},
	}
	if got, want := Select(pts, 2), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Select = %v, want feasible %v first", got, want)
	}
}

func TestSelectKeepAll(t *testing.T) {
	pts := []Point{{ID: 4, Metrics: []float64{1}}, {ID: 1, Metrics: []float64{2}}}
	if got, want := Select(pts, 5), []int{1, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Select = %v, want %v", got, want)
	}
}

func TestScheduleShape(t *testing.T) {
	ladder := Schedule(864, 4, 0, 5)
	want := []int{864, 216, 54, 14, 5}
	var sizes []int
	for _, r := range ladder {
		sizes = append(sizes, r.Candidates)
	}
	if !reflect.DeepEqual(sizes, want) {
		t.Fatalf("ladder sizes = %v, want %v", sizes, want)
	}
	if f := ladder[len(ladder)-1].Fraction; f != 1 {
		t.Fatalf("top rung fraction = %v, want 1", f)
	}
	if f := ladder[0].Fraction; math.Abs(f-1.0/256) > 1e-12 {
		t.Fatalf("bottom rung fraction = %v, want 1/256", f)
	}
}

func TestScheduleCapDepth(t *testing.T) {
	ladder := Schedule(864, 4, 3, 5)
	if len(ladder) != 3 {
		t.Fatalf("capped ladder depth = %d, want 3", len(ladder))
	}
	if ladder[0].Candidates != 864 {
		t.Fatalf("all candidates must enter rung 0, got %d", ladder[0].Candidates)
	}
	if last := ladder[len(ladder)-1]; last.Fraction != 1 || last.Candidates != 5 {
		t.Fatalf("top rung = %+v, want 5 candidates at fraction 1", last)
	}
}

func TestScheduleTiny(t *testing.T) {
	ladder := Schedule(3, 4, 0, 5)
	if len(ladder) != 1 || ladder[0].Candidates != 3 || ladder[0].Fraction != 1 {
		t.Fatalf("n <= finalists must degenerate to one full-fidelity rung, got %+v", ladder)
	}
}

// TestScheduleCostBound pins the headline economics: for the grid sizes
// an optimizer is worth running on (n >= 48) at eta >= 3, the ladder's
// aggregate probe cost stays at or under 25% of the equivalent
// exhaustive grid, even with a 5%-of-full minimum-fidelity floor in
// effect. (Tiny grids and eta=2 ladders legitimately cost more — the
// full-fidelity top rung alone is finalists/n of the grid.)
func TestScheduleCostBound(t *testing.T) {
	for _, n := range []int{48, 96, 200, 864} {
		for _, eta := range []int{3, 4} {
			ladder := Schedule(n, eta, 0, 4)
			ratio := Cost(ladder, 0.05) / float64(n)
			if ratio > 0.25 {
				t.Errorf("n=%d eta=%d: cost ratio %.3f > 0.25", n, eta, ratio)
			}
		}
	}
}
