package core

import (
	"testing"

	"musa/internal/apps"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/rts"
)

func TestRegionScalingShapes(t *testing.T) {
	// Fig. 2a: HYDRO is the only app with >= ~75% efficiency at 64 cores;
	// the others fall well short.
	opts := DefaultBurstOptions()
	for _, p := range apps.All() {
		sp := RegionScaling(p, []int{1, 32, 64}, opts)
		if sp[0] != 1 {
			t.Errorf("%s: speedup at 1 core = %v", p.Name, sp[0])
		}
		if sp[1] <= 1 || sp[2] < sp[1]*0.9 {
			t.Errorf("%s: speedups not increasing: %v", p.Name, sp)
		}
		eff64 := sp[2] / 64
		if p.Name == "hydro" && eff64 < 0.72 {
			t.Errorf("hydro efficiency@64 = %v, want >= ~0.75", eff64)
		}
		if p.Name != "hydro" && eff64 > 0.70 {
			t.Errorf("%s efficiency@64 = %v, want < 0.7", p.Name, eff64)
		}
	}
}

func TestFullAppScalingShapes(t *testing.T) {
	// Fig. 2b: MPI overheads push average efficiency well below the
	// compute-region numbers (paper: ~49% at 32 cores, ~28% at 64).
	opts := DefaultBurstOptions()
	model := net.MareNostrum4()
	var sum32, sum64 float64
	for _, p := range apps.All() {
		res := FullAppScaling(p, 64, []int{32, 64}, model, opts)
		if len(res) != 2 {
			t.Fatal("wrong result count")
		}
		sum32 += res[0].Efficiency
		sum64 += res[1].Efficiency
		if res[0].MPIFraction < 0 || res[0].MPIFraction > 1 {
			t.Errorf("%s MPI fraction = %v", p.Name, res[0].MPIFraction)
		}
		// Full-app efficiency must be below the pure compute efficiency.
		region := RegionScaling(p, []int{64}, opts)[0] / 64
		if res[1].Efficiency > region+0.02 {
			t.Errorf("%s: full-app efficiency %v above region %v", p.Name, res[1].Efficiency, region)
		}
	}
	if avg := sum32 / 5; avg < 0.30 || avg > 0.70 {
		t.Errorf("avg full-app efficiency@32 = %v, want ~0.49", avg)
	}
	if avg := sum64 / 5; avg < 0.15 || avg > 0.50 {
		t.Errorf("avg full-app efficiency@64 = %v, want ~0.28", avg)
	}
}

func TestHydroBestFullApp(t *testing.T) {
	opts := DefaultBurstOptions()
	model := net.MareNostrum4()
	effs := map[string]float64{}
	for _, p := range apps.All() {
		res := FullAppScaling(p, 32, []int{64}, model, opts)
		effs[p.Name] = res[0].Efficiency
	}
	for name, e := range effs {
		if name != "hydro" && e >= effs["hydro"] {
			t.Errorf("%s full-app efficiency %v >= hydro %v", name, e, effs["hydro"])
		}
	}
}

func nodeCfg() node.Config {
	return node.Config{
		Cores: 64, Core: cpu.Medium(), FreqGHz: 2.0, VectorBits: 128,
		L2KBPerCore: 512, L3MBTotal: 64,
		Mem:        dram.Config{Spec: dram.DDR4_2333(), Channels: 4},
		DRAMPolicy: dram.FRFCFS, DispatchNs: 100, RTSPolicy: rts.FIFOCentral,
		SampleInstrs: 60000, WarmupInstrs: 300000, Seed: 1,
	}
}

func TestDetailedFullApp(t *testing.T) {
	res := DetailedFullApp(apps.BTMZ(), nodeCfg(), 16, net.MareNostrum4())
	if res.MakespanNs <= 0 {
		t.Fatal("no makespan")
	}
	if res.MakespanNs < res.Node.ComputeNs {
		t.Errorf("makespan %v below compute %v", res.MakespanNs, res.Node.ComputeNs)
	}
	if res.NodeAvgPowerW <= 0 || res.SystemEnergyJ <= 0 {
		t.Errorf("power/energy: %v / %v", res.NodeAvgPowerW, res.SystemEnergyJ)
	}
	// Average power during MPI waits must be below flat-out compute power.
	if res.NodeAvgPowerW > res.Node.Power.Total()+1e-9 {
		t.Errorf("avg power %v exceeds compute power %v", res.NodeAvgPowerW, res.Node.Power.Total())
	}
}

func TestSampleBurst(t *testing.T) {
	b := SampleBurst(apps.LULESH(), 8, 3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Ranks) != 8 {
		t.Errorf("%d ranks", len(b.Ranks))
	}
}

func TestDispatchBottleneckAppearsAtHighFrequency(t *testing.T) {
	// The HYDRO Fig. 9a story: node-level speedup from 2.0 to 3.0 GHz is
	// sub-linear because task dispatch stays at wall-clock cost.
	cfg2 := nodeCfg()
	cfg2.SampleInstrs = 100000
	cfg2.WarmupInstrs = 1500000
	cfg3 := cfg2
	cfg3.FreqGHz = 3.0
	r2 := node.Simulate(apps.Hydro(), cfg2)
	r3 := node.Simulate(apps.Hydro(), cfg3)
	sp := r2.ComputeNs / r3.ComputeNs
	if sp > 1.45 {
		t.Errorf("hydro 2->3 GHz speedup = %v, want sub-linear (< 1.45)", sp)
	}
	if sp < 1.0 {
		t.Errorf("hydro slower at 3 GHz: %v", sp)
	}
}
