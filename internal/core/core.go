// Package core orchestrates MUSA's multi-level simulation modes (paper §II):
//
//   - Burst mode ("hardware agnostic", §V-A): replays burst-trace task
//     graphs through the runtime-system simulator at a chosen core count,
//     with durations taken directly from the trace — no cache, memory or
//     core microarchitecture effects. Used for the Fig. 2 scaling study.
//   - Detailed mode: node-level detailed simulation (internal/node) rescales
//     the trace's compute durations, after which the Dimemas-like replay
//     (internal/net) integrates the 256-rank communication trace.
package core

import (
	"context"

	"musa/internal/apps"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/power"
	"musa/internal/rts"
	"musa/internal/trace"
)

// BurstOptions configures burst-mode simulations.
type BurstOptions struct {
	// DispatchNs is the runtime-system per-task dispatch cost.
	DispatchNs float64
	// Policy is the task scheduler.
	Policy rts.Policy
	// Seed drives the deterministic trace synthesis.
	Seed uint64
}

// DefaultBurstOptions matches the traced runtime (Nanos++-style central
// queue, ~100 ns dispatch).
func DefaultBurstOptions() BurstOptions {
	return BurstOptions{DispatchNs: 100, Policy: rts.FIFOCentral, Seed: 1}
}

// RegionScaling simulates a single representative compute region of the
// application on the given core counts (Fig. 2a): hardware-agnostic, no MPI.
// It returns the speedup versus one core for each requested core count.
func RegionScaling(app *apps.Profile, coreCounts []int, opts BurstOptions) []float64 {
	g := app.RegionGraph(0, opts.Seed)
	base := rts.Simulate(g, rts.Options{Threads: 1, DispatchNs: opts.DispatchNs, Policy: opts.Policy})
	out := make([]float64, len(coreCounts))
	for i, c := range coreCounts {
		s := rts.Simulate(g, rts.Options{Threads: c, DispatchNs: opts.DispatchNs, Policy: opts.Policy})
		out[i] = base.MakespanNs / s.MakespanNs
	}
	return out
}

// FullAppResult is the outcome of a whole-application replay.
type FullAppResult struct {
	MakespanNs  float64
	Speedup     float64 // vs the same replay with 1 core per node
	Efficiency  float64 // speedup / cores
	MPIFraction float64
	Replay      net.Result
}

// FullAppScaling simulates the whole parallel region including MPI overheads
// (Fig. 2b): the burst trace of `ranks` ranks is replayed with per-node
// compute durations rescaled by the node-level speedup obtained from the
// runtime-system simulation at each core count.
func FullAppScaling(app *apps.Profile, ranks int, coreCounts []int, model net.Model, opts BurstOptions) []FullAppResult {
	out, _ := FullAppScalingCtx(context.Background(), app, ranks, coreCounts, model, opts)
	return out
}

// FullAppScalingCtx is FullAppScaling with a cancellation checkpoint in
// every replay pass; it returns ctx.Err() when canceled.
func FullAppScalingCtx(ctx context.Context, app *apps.Profile, ranks int, coreCounts []int, model net.Model, opts BurstOptions) ([]FullAppResult, error) {
	b := apps.BurstTrace(app, ranks, opts.Seed)

	makespanAt := func(cores int) (float64, net.Result, error) {
		speedup := nodeSpeedup(app, cores, opts)
		res, err := net.ReplayCtx(ctx, b, model, func(rank int, traced float64) float64 {
			return traced / speedup
		})
		return res.MakespanNs, res, err
	}

	base, _, err := makespanAt(1)
	if err != nil {
		return nil, err
	}
	out := make([]FullAppResult, len(coreCounts))
	for i, c := range coreCounts {
		mk, rep, err := makespanAt(c)
		if err != nil {
			return nil, err
		}
		out[i] = FullAppResult{
			MakespanNs:  mk,
			Speedup:     base / mk,
			Efficiency:  base / mk / float64(c),
			MPIFraction: rep.MPIFraction(),
			Replay:      rep,
		}
	}
	return out, nil
}

// nodeSpeedup returns the burst-mode node-level speedup of the application's
// per-iteration compute at the given core count.
func nodeSpeedup(app *apps.Profile, cores int, opts BurstOptions) float64 {
	var serial, parallel float64
	for ri := range app.Regions {
		g := app.RegionGraph(ri, opts.Seed)
		s1 := rts.Simulate(g, rts.Options{Threads: 1, DispatchNs: opts.DispatchNs, Policy: opts.Policy})
		sN := rts.Simulate(g, rts.Options{Threads: cores, DispatchNs: opts.DispatchNs, Policy: opts.Policy})
		serial += s1.MakespanNs
		parallel += sN.MakespanNs
	}
	if parallel <= 0 {
		return 1
	}
	return serial / parallel
}

// DetailedResult couples node-level detailed simulation with the full
// communication replay and system-level power/energy.
type DetailedResult struct {
	Node   node.Result
	Replay net.Result
	// MakespanNs is the full-application makespan across all ranks.
	MakespanNs float64
	// NodeAvgPowerW is the time-averaged per-node power including MPI wait
	// phases (leakage and DRAM background keep burning while waiting).
	NodeAvgPowerW float64
	// SystemEnergyJ is ranks x node energy over the makespan.
	SystemEnergyJ float64
}

// DetailedFullApp runs detailed mode end to end: node simulation, then the
// 256-rank replay with compute rescaled by the measured node performance.
func DetailedFullApp(app *apps.Profile, cfg node.Config, ranks int, model net.Model) DetailedResult {
	res, _ := DetailedFullAppCtx(context.Background(), app, cfg, ranks, model)
	return res
}

// DetailedFullAppCtx is DetailedFullApp with a cancellation checkpoint in
// the replay stage; it returns ctx.Err() when canceled.
func DetailedFullAppCtx(ctx context.Context, app *apps.Profile, cfg node.Config, ranks int, model net.Model) (DetailedResult, error) {
	nres := node.Simulate(app, cfg)

	// Traced per-iteration duration (what BurstTrace wrote per rank).
	var tracedIter float64
	for _, spec := range app.Regions {
		tracedIter += spec.LaneWork() / apps.RefLaneThroughput * 1e9
	}
	scale := nres.IterationNs / tracedIter

	b := apps.BurstTrace(app, ranks, cfg.Seed)
	rep, err := net.ReplayCtx(ctx, b, model, func(rank int, traced float64) float64 {
		return traced * scale
	})
	if err != nil {
		return DetailedResult{}, err
	}

	// Power: active compute power over compute time, idle power (zero
	// activity: leakage + DRAM background) over the MPI-wait remainder.
	idle := power.NodePower(nodeParams(cfg), power.Activity{Duration: 1})
	makespan := rep.MakespanNs
	computeNs := nres.ComputeNs
	if computeNs > makespan {
		computeNs = makespan
	}
	waitNs := makespan - computeNs
	var avgW float64
	if makespan > 0 {
		avgW = (nres.Power.Total()*computeNs + idle.Total()*waitNs) / makespan
	}
	return DetailedResult{
		Node:          nres,
		Replay:        rep,
		MakespanNs:    makespan,
		NodeAvgPowerW: avgW,
		SystemEnergyJ: avgW * makespan * 1e-9 * float64(ranks),
	}, nil
}

// nodeParams converts a node.Config into power model parameters.
func nodeParams(cfg node.Config) power.NodeParams {
	return power.NodeParams{
		Cores: cfg.Cores,
		Core: power.CoreParams{
			Config:     cfg.Core,
			VectorBits: cfg.VectorBits,
			FreqGHz:    cfg.FreqGHz,
		},
		L2PerCoreMB: float64(cfg.L2KBPerCore) / 1024,
		L3TotalMB:   float64(cfg.L3MBTotal),
		DIMMs:       cfg.DIMMs(),
	}
}

// Exported for the trace tooling: SampleBurst produces the burst trace used
// by the timeline utilities (Figs. 3 and 4).
func SampleBurst(app *apps.Profile, ranks int, seed uint64) *trace.Burst {
	return apps.BurstTrace(app, ranks, seed)
}
