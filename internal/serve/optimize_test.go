package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"musa"
	"musa/internal/obs"
)

func TestOptimizeEndpointStreams(t *testing.T) {
	ts, svc := testServer(t)

	body := `{"app":"spmz","pointIndices":[0,100,200,300,400,500,600,700],
		"sample":8000,"noReplay":true,
		"optimize":{"objectives":["edp"],"eta":2,"finalists":2},
		"progressEvery":1}`
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/optimize -> %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var progress, rungs, results int
	var final struct {
		Type     string               `json:"type"`
		Cached   int                  `json:"cached"`
		Optimize *musa.OptimizeResult `json:"optimize"`
	}
	var rungEvents []musa.RungSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var ev struct {
			Type string            `json:"type"`
			Rung *musa.RungSummary `json:"rung"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			progress++
		case "rung":
			rungs++
			rungEvents = append(rungEvents, *ev.Rung)
		case "result":
			results++
			json.Unmarshal(sc.Bytes(), &final)
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if progress < 8 || rungs < 2 || results != 1 {
		t.Fatalf("stream had %d progress, %d rung, %d result events", progress, rungs, results)
	}
	opt := final.Optimize
	if opt == nil || opt.Best == nil || len(opt.Frontier) == 0 {
		t.Fatalf("result event malformed: %+v", final)
	}
	if len(opt.Rungs) != rungs {
		t.Fatalf("result lists %d rungs but the stream emitted %d rung events", len(opt.Rungs), rungs)
	}
	if rungEvents[0].Sample >= 8000 || rungEvents[len(rungEvents)-1].Sample != 8000 {
		t.Fatalf("ladder fidelity malformed: first sample %d, last %d",
			rungEvents[0].Sample, rungEvents[len(rungEvents)-1].Sample)
	}
	if opt.CostRatio <= 0 || opt.CostRatio >= 1 {
		t.Fatalf("cost ratio %g out of (0, 1)", opt.CostRatio)
	}

	// A repeat of the same search is served from the warmed store without
	// new simulations, and the OptimizeResult is byte-identical.
	before := svc.Client().Stats().Simulated
	resp2, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(b2)), "\n")
	var warm struct {
		Optimize *musa.OptimizeResult `json:"optimize"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &warm); err != nil {
		t.Fatal(err)
	}
	if svc.Client().Stats().Simulated != before {
		t.Fatalf("warm /optimize re-simulated (%d -> %d)", before, svc.Client().Stats().Simulated)
	}
	cold, _ := json.Marshal(opt)
	hot, _ := json.Marshal(warm.Optimize)
	if string(cold) != string(hot) {
		t.Fatalf("warm optimize result differs:\ncold %s\nwarm %s", cold, hot)
	}
}

func TestOptimizeEndpointRejectsBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		name, body string
	}{
		{"wrong kind", `{"kind":"sweep","apps":["spmz"]}`},
		{"missing app", `{"pointIndices":[0,1]}`},
		{"bad objective", `{"app":"spmz","optimize":{"objectives":["watts"]}}`},
		{"bad eta", `{"app":"spmz","optimize":{"eta":99}}`},
		{"malformed json", `{"app":`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// Validation must fail before the 200 commits the NDJSON stream.
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: /optimize -> %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestDeprecatedPointAliasCounter(t *testing.T) {
	ts, _, reg, _ := obsServer(t)

	counter := reg.Counter("musa_http_deprecated_total",
		"Requests using deprecated wire-format fields.", obs.L("field", "point"))
	if counter.Value() != 0 {
		t.Fatalf("deprecation counter starts at %d", counter.Value())
	}

	// The modern "arch" spelling leaves the counter alone.
	arch := specJSON(t, ts, 10)
	if code := postJSON(t, ts.URL+"/simulate", fmt.Sprintf(`{"app":"lulesh","arch":%s}`, arch), nil); code != http.StatusOK {
		t.Fatalf("arch /simulate -> %d", code)
	}
	if counter.Value() != 0 {
		t.Fatalf(`"arch" request moved the deprecation counter to %d`, counter.Value())
	}

	// Every legacy "point" request increments it — including invalid ones
	// (the alias is noted after decode, before validation rejects the kind).
	if code := postJSON(t, ts.URL+"/simulate", fmt.Sprintf(`{"app":"lulesh","point":%s}`, arch), nil); code != http.StatusOK {
		t.Fatalf("point /simulate -> %d", code)
	}
	if code := postJSON(t, ts.URL+"/simulate", fmt.Sprintf(`{"app":"lulesh","point":%s}`, arch), nil); code != http.StatusOK {
		t.Fatalf("second point /simulate -> %d", code)
	}
	if counter.Value() != 2 {
		t.Fatalf("deprecation counter = %d after two legacy requests, want 2", counter.Value())
	}

	// The counter is visible on /metrics with its field label.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `musa_http_deprecated_total{field="point"} 2`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}
