package serve

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"musa"
)

// testSample sizes keep simulations cheap; determinism makes the results
// comparable across runs.
const (
	testSample = 20000
	testWarmup = 40000
)

func testClient(t *testing.T, dir string) *musa.Client {
	t.Helper()
	c, err := musa.NewClient(musa.ClientOptions{
		CacheDir:     dir,
		SweepWorkers: 2,
		MaxJobs:      4,
		SampleInstrs: testSample,
		WarmupInstrs: testWarmup,
		Seed:         1,
		// Keep the default replay stage on but small: tests assert the
		// cluster fields exist without paying for 256-rank replays.
		ReplayRanks: []int{8, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testService(t *testing.T, dir string) *Service {
	t.Helper()
	return New(testClient(t, dir))
}

// indices returns the first n Table I grid indices.
func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSweepReplayOverrideOnNoReplayServer(t *testing.T) {
	// A client configured node-only must still honor an explicit rank-list
	// override, mirroring the single-measurement path.
	c, err := musa.NewClient(musa.ClientOptions{
		CacheDir:     t.TempDir(),
		SweepWorkers: 2, MaxJobs: 2,
		SampleInstrs: testSample, WarmupInstrs: testWarmup, Seed: 1,
		NoReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	res, err := c.Run(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"hydro"}, PointIndices: indices(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Sweep.Measurements {
		if m.Cluster != nil {
			t.Fatalf("NoReplay default produced cluster data: %+v", m)
		}
	}

	res, err = c.Run(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"hydro"}, PointIndices: indices(2),
		ReplayRanks: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Sweep.Measurements {
		if len(m.Cluster) != 1 || m.Cluster[0].Ranks != 4 {
			t.Fatalf("rank-list override ignored on NoReplay client: %+v", m.Cluster)
		}
	}

	if _, err := c.Run(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"hydro"}, PointIndices: indices(1),
		ReplayRanks: []int{-3},
	}); !errors.Is(err, musa.ErrBadReplayRanks) {
		t.Fatalf("negative rank count: err = %v, want ErrBadReplayRanks", err)
	}

	// A single-point request with the same override must hash to the same
	// key the sweep stored under (both default to the mn4 network even
	// though the client's replay default is disabled).
	idx := 0
	res, err = c.Run(context.Background(), musa.Experiment{
		App: "hydro", PointIndex: &idx, ReplayRanks: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("single-point override missed the measurement the sweep stored")
	}
}

func TestRunCoalescesDuplicates(t *testing.T) {
	c := testClient(t, t.TempDir())
	idx := 0
	req := musa.Experiment{App: "lulesh", PointIndex: &idx}

	const dup = 8
	results := make([]musa.Measurement, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Run(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = *res.Measurement
		}(i)
	}
	wg.Wait()

	st := c.Stats()
	if st.Simulated != 1 {
		t.Fatalf("%d duplicate requests ran %d simulations, want 1", dup, st.Simulated)
	}
	if st.Coalesced+st.StoreHits != dup-1 {
		t.Fatalf("coalesced=%d storeHits=%d, want them to cover the other %d requests",
			st.Coalesced, st.StoreHits, dup-1)
	}
	for i := 1; i < dup; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("request %d got a different measurement", i)
		}
	}

	// A later identical request is a store hit.
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("repeated request was not served from the store")
	}
	if c.Stats().Simulated != 1 {
		t.Fatal("repeated request re-simulated")
	}
}

func TestRunRejectsUnknownApp(t *testing.T) {
	c := testClient(t, t.TempDir())
	idx := 0
	_, err := c.Run(context.Background(), musa.Experiment{App: "nope", PointIndex: &idx})
	if !errors.Is(err, musa.ErrUnknownApp) {
		t.Fatalf("unknown application: err = %v, want ErrUnknownApp", err)
	}
	if _, err := c.Run(context.Background(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"nope"},
	}); !errors.Is(err, musa.ErrUnknownApp) {
		t.Fatalf("unknown sweep application: err = %v, want ErrUnknownApp", err)
	}
}

func TestSweepResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	req := musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"spmz"}, PointIndices: indices(12),
	}

	// First attempt: cancel partway through. Completed points are already
	// checkpointed in the store, and the partial dataset comes back with an
	// error wrapping context.Canceled.
	c := testClient(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := c.RunStream(ctx, req, musa.Observer{
		Progress: func(done, total, cached int) {
			if done == 4 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep: err = %v, want wrapped context.Canceled", err)
	}
	if res == nil || res.Sweep == nil {
		t.Fatal("canceled sweep did not return the partial dataset")
	}
	partial := c.Stats().Simulated
	if partial == 0 || partial >= 12 {
		t.Fatalf("canceled sweep simulated %d of 12 points, want a strict subset", partial)
	}
	if int64(len(res.Sweep.Measurements)) != partial {
		t.Fatalf("partial dataset has %d measurements but %d were simulated",
			len(res.Sweep.Measurements), partial)
	}
	// The store directory is single-holder (flock); release it before the
	// next client takes over, as a restarted process would.
	c.Close()

	// A fresh client over the same store resumes: only the missing points
	// are simulated.
	c2 := testClient(t, dir)
	var lastCached int
	res2, err := c2.RunStream(context.Background(), req, musa.Observer{
		Progress: func(done, total, cached int) { lastCached = cached },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Sweep.Measurements) != 12 {
		t.Fatalf("resumed sweep returned %d measurements, want 12", len(res2.Sweep.Measurements))
	}
	st2 := c2.Stats()
	if int64(lastCached) != partial || st2.Simulated != 12-partial {
		t.Fatalf("resume reused %d and simulated %d, want %d reused and %d simulated",
			lastCached, st2.Simulated, partial, 12-partial)
	}
	c2.Close()

	// Third run: everything is cached, nothing simulates, and the dataset
	// is identical.
	c3 := testClient(t, dir)
	res3, err := c3.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if n := c3.Stats().Simulated; n != 0 {
		t.Fatalf("fully cached sweep simulated %d points", n)
	}
	if !reflect.DeepEqual(res2.Sweep.Measurements, res3.Sweep.Measurements) {
		t.Fatal("cached sweep dataset differs from the computed one")
	}
}
