package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/store"
)

// testSample sizes keep simulations cheap; determinism makes the results
// comparable across runs.
const (
	testSample = 20000
	testWarmup = 40000
)

func testService(t *testing.T, dir string) *Service {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc, err := New(st, Config{
		Workers:      2,
		MaxJobs:      4,
		SampleInstrs: testSample,
		WarmupInstrs: testWarmup,
		Seed:         1,
		// Keep the default replay stage on but small: tests assert the
		// cluster fields exist without paying for 256-rank replays.
		ReplayRanks: []int{8, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func testPoints(n int) []dse.ArchPoint {
	var pts []dse.ArchPoint
	for _, f := range dse.Frequencies() {
		for _, v := range dse.VectorWidths() {
			for _, ch := range dse.ChannelCounts() {
				pts = append(pts, dse.ArchPoint{
					Cores: 32, Core: cpu.Medium(), FreqGHz: f,
					VectorBits: v, Cache: dse.CacheConfigs()[0], Channels: ch, Mem: dse.DDR4,
				})
			}
		}
	}
	if n < len(pts) {
		pts = pts[:n]
	}
	return pts
}

func TestSweepReplayOverrideOnNoReplayServer(t *testing.T) {
	// A server configured node-only must still honor an explicit rank-list
	// override, mirroring the /simulate path.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc, err := New(st, Config{
		Workers: 2, MaxJobs: 2,
		SampleInstrs: testSample, WarmupInstrs: testWarmup, Seed: 1,
		NoReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	d, err := svc.Sweep(context.Background(), SweepRequest{
		Apps: []string{"hydro"}, Points: testPoints(2),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Measurements {
		if m.Cluster != nil {
			t.Fatalf("NoReplay default produced cluster data: %+v", m)
		}
	}

	d, err = svc.Sweep(context.Background(), SweepRequest{
		Apps: []string{"hydro"}, Points: testPoints(2), ReplayRanks: []int{4},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Measurements {
		if len(m.Cluster) != 1 || m.Cluster[0].Ranks != 4 {
			t.Fatalf("rank-list override ignored on NoReplay server: %+v", m.Cluster)
		}
	}

	if _, err := svc.Sweep(context.Background(), SweepRequest{
		Apps: []string{"hydro"}, Points: testPoints(1), ReplayRanks: []int{-3},
	}, nil); err == nil {
		t.Fatal("negative rank count accepted by Sweep")
	}

	// A single-point request with the same override must hash to the same
	// key the sweep stored under (both default to the mn4 network even
	// though the server's replay default is disabled).
	_, cached, err := svc.Simulate(context.Background(), store.Request{
		App: "hydro", Arch: testPoints(2)[0], ReplayRanks: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("simulate override missed the measurement the sweep stored")
	}
}

func TestSimulateCoalescesDuplicates(t *testing.T) {
	svc := testService(t, t.TempDir())
	req := store.Request{App: "lulesh", Arch: testPoints(1)[0]}

	const dup = 8
	results := make([]dse.Measurement, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _, err := svc.Simulate(context.Background(), req)
			if err != nil {
				t.Error(err)
			}
			results[i] = m
		}(i)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Simulated != 1 {
		t.Fatalf("%d duplicate requests ran %d simulations, want 1", dup, st.Simulated)
	}
	if st.Coalesced+st.StoreHits != dup-1 {
		t.Fatalf("coalesced=%d storeHits=%d, want them to cover the other %d requests",
			st.Coalesced, st.StoreHits, dup-1)
	}
	for i := 1; i < dup; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("request %d got a different measurement", i)
		}
	}

	// A later identical request is a store hit.
	_, cached, err := svc.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeated request was not served from the store")
	}
	if svc.Stats().Simulated != 1 {
		t.Fatal("repeated request re-simulated")
	}
}

func TestSimulateRejectsUnknownApp(t *testing.T) {
	svc := testService(t, t.TempDir())
	_, _, err := svc.Simulate(context.Background(), store.Request{App: "nope", Arch: testPoints(1)[0]})
	if err == nil {
		t.Fatal("unknown application accepted")
	}
}

func TestSweepResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	req := SweepRequest{Apps: []string{"spmz"}, Points: testPoints(12)}

	// First attempt: cancel partway through. Completed points are already
	// checkpointed in the store.
	svc := testService(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := svc.Sweep(ctx, req, func(p Progress) {
		if p.Done == 4 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("canceled sweep reported success")
	}
	partial := svc.Stats().Simulated
	if partial == 0 || partial >= 12 {
		t.Fatalf("canceled sweep simulated %d of 12 points, want a strict subset", partial)
	}
	// The store directory is single-holder (flock); release it before the
	// next service takes over, as a restarted process would.
	svc.Store().Close()

	// A fresh service over the same store resumes: only the missing points
	// are simulated.
	svc2 := testService(t, dir)
	var last Progress
	d, err := svc2.Sweep(context.Background(), req, func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Measurements) != 12 {
		t.Fatalf("resumed sweep returned %d measurements, want 12", len(d.Measurements))
	}
	st2 := svc2.Stats()
	if int64(last.Cached) != partial || st2.Simulated != 12-partial {
		t.Fatalf("resume reused %d and simulated %d, want %d reused and %d simulated",
			last.Cached, st2.Simulated, partial, 12-partial)
	}

	svc2.Store().Close()

	// Third run: everything is cached, nothing simulates, and the dataset
	// is identical.
	svc3 := testService(t, dir)
	d3, err := svc3.Sweep(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := svc3.Stats().Simulated; n != 0 {
		t.Fatalf("fully cached sweep simulated %d points", n)
	}
	if !reflect.DeepEqual(d.Measurements, d3.Measurements) {
		t.Fatal("cached sweep dataset differs from the computed one")
	}
}

func TestSweepRejectsUnknownApp(t *testing.T) {
	svc := testService(t, t.TempDir())
	if _, err := svc.Sweep(context.Background(), SweepRequest{Apps: []string{"nope"}}, nil); err == nil {
		t.Fatal("unknown application accepted")
	}
}
