package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"musa"
	"musa/internal/obs"
	"musa/internal/ring"
)

// scrape returns the Prometheus exposition of reg as one string.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestAdmissionSheds drives the overload path end to end: with one
// execution slot held and a zero-length wait queue, a heavy request is
// shed with 429 + Retry-After, /healthz flips to overloaded (503), the
// shed counter increments, and releasing the slot restores ok.
func TestAdmissionSheds(t *testing.T) {
	reg := obs.NewRegistry()
	svc := testService(t, t.TempDir())
	ts := httptest.NewServer(NewHandler(svc, WithAdmission(1, 0), WithRetryAfter(2*time.Second), WithRegistry(reg)))
	defer ts.Close()

	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("idle healthz = %d %q, want 200 ok", code, hz.Status)
	}

	// Occupy the only execution slot. White box: the semaphore is the
	// handler's admission state, so filling it is exactly what a stuck
	// in-flight request does, without needing one.
	svc.adm.sem <- struct{}{}

	resp, err := http.Post(ts.URL+"/simulate", "application/json",
		strings.NewReader(`{"app":"btmz","pointIndex":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /simulate = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusServiceUnavailable || hz.Status != "overloaded" {
		t.Fatalf("saturated healthz = %d %q, want 503 overloaded", code, hz.Status)
	}
	if m := scrape(t, reg); !strings.Contains(m, `musa_serve_shed_total{reason="queue-full",route="simulate"} 1`) {
		t.Fatalf("shed counter missing from metrics:\n%s", m)
	}

	<-svc.adm.sem // release the slot: the replica recovers
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("recovered healthz = %d %q, want 200 ok", code, hz.Status)
	}
}

// TestAdmissionQueueWaits checks the bounded queue admits a waiter once a
// slot frees instead of shedding it.
func TestAdmissionQueueWaits(t *testing.T) {
	svc := testService(t, t.TempDir())
	ts := httptest.NewServer(NewHandler(svc, WithAdmission(1, 4)))
	defer ts.Close()

	svc.adm.sem <- struct{}{}
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/simulate", "application/json",
			strings.NewReader(`{"app":"btmz","pointIndex":0}`))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	// Give the request time to enter the wait queue, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for svc.adm.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if svc.adm.waiting.Load() == 0 {
		t.Fatal("request never queued")
	}
	<-svc.adm.sem
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", code)
	}
}

// TestDrainingKeepsStreams is the draining contract: an in-flight NDJSON
// /dse stream started before draining runs to completion, while new heavy
// requests are refused with 503 and /healthz reports draining.
func TestDrainingKeepsStreams(t *testing.T) {
	svc := testService(t, t.TempDir())
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	body := fmt.Sprintf(`{"apps":["btmz"],"pointIndices":[0,1,2],"sample":%d,"warmup":%d,"seed":1,"noReplay":true,"progressEvery":1}`,
		testSample, testWarmup)
	resp, err := http.Post(ts.URL+"/dse", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dse = %d, want 200", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var events []string
	drained := false
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev.Type)
		if !drained {
			// Flip to draining mid-stream, after the first event arrives.
			svc.StartDraining()
			drained = true

			var hz struct {
				Status string `json:"status"`
			}
			if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusServiceUnavailable || hz.Status != "draining" {
				t.Fatalf("draining healthz = %d %q, want 503 draining", code, hz.Status)
			}
			shed, err := http.Post(ts.URL+"/simulate", "application/json",
				strings.NewReader(`{"app":"btmz","pointIndex":0}`))
			if err != nil {
				t.Fatal(err)
			}
			shed.Body.Close()
			if shed.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("new request during draining = %d, want 503", shed.StatusCode)
			}
			if shed.Header.Get("Retry-After") == "" {
				t.Fatal("draining refusal carries no Retry-After")
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken during draining: %v", err)
	}
	if len(events) == 0 || events[len(events)-1] != "result" {
		t.Fatalf("stream did not complete with a result event: %v", events)
	}
}

// TestMembershipEndpoints covers the runtime membership API: without a
// ring PUT is refused, with one the membership is replaced, validated and
// echoed.
func TestMembershipEndpoints(t *testing.T) {
	ringless, _ := testServer(t)
	req, _ := http.NewRequest(http.MethodPut, ringless.URL+"/membership",
		strings.NewReader(`{"members":["http://a:1"]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ringless PUT /membership = %d, want 503", resp.StatusCode)
	}

	c, err := musa.NewClient(musa.ClientOptions{
		Ring: musa.NewRing("http://a:1", []string{"http://a:1", "http://b:2"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ts := httptest.NewServer(NewHandler(New(c)))
	defer ts.Close()

	var got struct {
		Self    string        `json:"self"`
		Members []ring.Member `json:"members"`
	}
	if code := getJSON(t, ts.URL+"/membership", &got); code != http.StatusOK || len(got.Members) != 2 {
		t.Fatalf("GET /membership = %d with %d members, want 200 with 2", code, len(got.Members))
	}

	for body, want := range map[string]int{
		`{"members":["http://a:1","http://b:2","http://c:3"]}`: http.StatusOK,
		`{"members":[]}`:               http.StatusBadRequest,
		`{"members":["ftp://nope"]}`:   http.StatusBadRequest,
		`{"members":["not a url at"]}`: http.StatusBadRequest,
	} {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/membership", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("PUT /membership %s = %d, want %d", body, resp.StatusCode, want)
		}
	}
	if code := getJSON(t, ts.URL+"/membership", &got); code != http.StatusOK || len(got.Members) != 3 {
		t.Fatalf("membership after PUT = %d with %d members, want 200 with 3", code, len(got.Members))
	}
	if got.Self != "http://a:1" {
		t.Fatalf("self = %q changed by membership update", got.Self)
	}
}
