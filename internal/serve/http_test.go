package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"musa"
)

func testServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	svc := testService(t, t.TempDir())
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestAppsAndPointsEndpoints(t *testing.T) {
	ts, _ := testServer(t)

	var apps struct {
		Apps []string `json:"apps"`
	}
	if code := getJSON(t, ts.URL+"/apps", &apps); code != http.StatusOK {
		t.Fatalf("/apps -> %d", code)
	}
	if len(apps.Apps) != 5 || apps.Apps[0] != "hydro" {
		t.Fatalf("/apps = %v, want the five paper applications", apps.Apps)
	}

	var points struct {
		Count  int `json:"count"`
		Points []struct {
			Index int    `json:"index"`
			Label string `json:"label"`
			Cores int    `json:"cores"`
		} `json:"points"`
	}
	if code := getJSON(t, ts.URL+"/points", &points); code != http.StatusOK {
		t.Fatalf("/points -> %d", code)
	}
	if points.Count != 864 || len(points.Points) != 864 {
		t.Fatalf("/points count = %d, want 864", points.Count)
	}
	if points.Points[5].Index != 5 || points.Points[5].Label == "" || points.Points[5].Cores == 0 {
		t.Fatalf("point 5 malformed: %+v", points.Points[5])
	}
}

func TestSimulateEndpointCaches(t *testing.T) {
	ts, svc := testServer(t)

	body := `{"app":"lulesh","pointIndex":10}`
	var first, second struct {
		App    string `json:"app"`
		Label  string `json:"label"`
		Cached bool   `json:"cached"`
		M      struct {
			TimeNs float64 `json:"TimeNs"`
			IPC    float64 `json:"IPC"`
		} `json:"measurement"`
	}
	if code := postJSON(t, ts.URL+"/simulate", body, &first); code != http.StatusOK {
		t.Fatalf("/simulate -> %d", code)
	}
	if first.Cached || first.M.TimeNs <= 0 || first.App != "lulesh" {
		t.Fatalf("first simulate response malformed: %+v", first)
	}
	if first.M.IPC <= 0 {
		t.Fatalf("measurement carries no IPC: %+v", first.M)
	}
	if code := postJSON(t, ts.URL+"/simulate", body, &second); code != http.StatusOK {
		t.Fatalf("second /simulate -> %d", code)
	}
	if !second.Cached || second.M.TimeNs != first.M.TimeNs {
		t.Fatalf("second request not served from store: %+v", second)
	}
	if svc.Client().Stats().Simulated != 1 {
		t.Fatalf("two identical requests simulated %d times", svc.Client().Stats().Simulated)
	}

	// Explicit arch spec addresses the same content as its grid index —
	// both through the modern "arch" key and the legacy "point" alias.
	for _, key := range []string{"arch", "point"} {
		spec := fmt.Sprintf(`{"app":"lulesh","%s":%s}`, key, specJSON(t, ts, 10))
		var cached struct {
			Cached bool `json:"cached"`
		}
		if code := postJSON(t, ts.URL+"/simulate", spec, &cached); code != http.StatusOK {
			t.Fatalf("%s /simulate -> %d", key, code)
		}
		if !cached.Cached {
			t.Fatalf("equivalent explicit %s spec missed the store", key)
		}
	}
}

// specJSON fetches point i from /points and re-encodes its arch fields.
func specJSON(t *testing.T, ts *httptest.Server, i int) string {
	t.Helper()
	var points struct {
		Points []json.RawMessage `json:"points"`
	}
	getJSON(t, ts.URL+"/points", &points)
	var spec musa.Arch
	if err := json.Unmarshal(points.Points[i], &spec); err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(spec)
	return string(b)
}

func TestSimulateEndpointClusterFields(t *testing.T) {
	ts, _ := testServer(t)

	var resp struct {
		M struct {
			TimeNs     float64 `json:"TimeNs"`
			EndToEndNs float64 `json:"EndToEndNs"`
			MPIFrac    float64 `json:"MPIFraction"`
			Cluster    []struct {
				Ranks      int     `json:"Ranks"`
				EndToEndNs float64 `json:"EndToEndNs"`
			} `json:"Cluster"`
		} `json:"measurement"`
	}
	// Default replay configuration (the test service replays 8 and 16
	// ranks).
	if code := postJSON(t, ts.URL+"/simulate", `{"app":"hydro","pointIndex":3}`, &resp); code != http.StatusOK {
		t.Fatalf("/simulate -> %d", code)
	}
	if len(resp.M.Cluster) != 2 || resp.M.Cluster[0].Ranks != 8 || resp.M.Cluster[1].Ranks != 16 {
		t.Fatalf("cluster entries = %+v, want ranks 8 and 16", resp.M.Cluster)
	}
	if resp.M.EndToEndNs < resp.M.TimeNs {
		t.Fatalf("EndToEndNs %v < TimeNs %v", resp.M.EndToEndNs, resp.M.TimeNs)
	}

	// Per-request override: node-only measurement.
	var nodeOnly struct {
		Cached bool `json:"cached"`
		M      struct {
			EndToEndNs float64 `json:"EndToEndNs"`
			Cluster    []any   `json:"Cluster"`
		} `json:"measurement"`
	}
	if code := postJSON(t, ts.URL+"/simulate", `{"app":"hydro","pointIndex":3,"noReplay":true}`, &nodeOnly); code != http.StatusOK {
		t.Fatalf("noReplay /simulate -> %d", code)
	}
	if nodeOnly.Cached {
		t.Fatal("node-only request must hash to a different key than the replay-enabled one")
	}
	if nodeOnly.M.EndToEndNs != 0 || nodeOnly.M.Cluster != nil {
		t.Fatalf("node-only measurement carries cluster data: %+v", nodeOnly.M)
	}

	// Per-request override: different rank counts and network.
	var custom struct {
		Cached bool `json:"cached"`
		M      struct {
			Cluster []struct {
				Ranks int `json:"Ranks"`
			} `json:"Cluster"`
		} `json:"measurement"`
	}
	if code := postJSON(t, ts.URL+"/simulate",
		`{"app":"hydro","pointIndex":3,"replayRanks":[4],"network":"eth10"}`, &custom); code != http.StatusOK {
		t.Fatalf("custom replay /simulate -> %d", code)
	}
	if custom.Cached || len(custom.M.Cluster) != 1 || custom.M.Cluster[0].Ranks != 4 {
		t.Fatalf("custom replay response: %+v", custom)
	}

	// Unknown network name is a 400.
	if code := postJSON(t, ts.URL+"/simulate",
		`{"app":"hydro","pointIndex":3,"network":"warpdrive"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad network -> %d, want 400", code)
	}

	// Degenerate rank lists must be rejected before they reach a sweep
	// worker (a negative count would panic trace synthesis, a huge one
	// would OOM it).
	for _, body := range []string{
		`{"app":"hydro","pointIndex":3,"replayRanks":[-1]}`,
		`{"app":"hydro","pointIndex":3,"replayRanks":[0]}`,
		`{"app":"hydro","pointIndex":3,"replayRanks":[1000000000]}`,
		`{"app":"hydro","pointIndex":3,"replayRanks":[2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2]}`,
	} {
		if code := postJSON(t, ts.URL+"/simulate", body, nil); code != http.StatusBadRequest {
			t.Errorf("POST /simulate %s -> %d, want 400", body, code)
		}
		dseBody := strings.Replace(body, `"pointIndex":3`, `"pointIndices":[3]`, 1)
		if code := postJSON(t, ts.URL+"/dse", dseBody, nil); code != http.StatusBadRequest {
			t.Errorf("POST /dse %s -> %d, want 400", dseBody, code)
		}
	}
}

func TestRankTimelineEndpoint(t *testing.T) {
	ts, _ := testServer(t)

	var fig struct {
		N      int    `json:"figure"`
		Title  string `json:"title"`
		Text   string `json:"text"`
		Tables []struct {
			Rows [][]string `json:"rows"`
		} `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/figures/4?app=spmz&ranks=8&network=hdr200", &fig); code != http.StatusOK {
		t.Fatalf("/figures/4 -> %d", code)
	}
	if fig.N != 4 || !strings.Contains(fig.Title, "spmz") {
		t.Fatalf("figure malformed: N=%d title=%q", fig.N, fig.Title)
	}
	if len(fig.Tables) != 1 || len(fig.Tables[0].Rows) != 8 {
		t.Fatalf("want one 8-rank breakdown table, got %+v", fig.Tables)
	}
	if !strings.Contains(fig.Text, "|") {
		t.Fatalf("no rendered timeline in text: %q", fig.Text)
	}

	for _, q := range []string{"?ranks=1", "?ranks=x", "?network=warpdrive", "?app=nope"} {
		if code := getJSON(t, ts.URL+"/figures/4"+q, nil); code != http.StatusBadRequest {
			t.Errorf("/figures/4%s -> %d, want 400", q, code)
		}
	}
}

func TestSimulateEndpointRejectsBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, body := range []string{
		`{"app":"lulesh"}`,                                // no point
		`{"app":"lulesh","pointIndex":4000}`,              // out of range
		`{"app":"nope","pointIndex":0}`,                   // unknown app
		`{"app":"lulesh","pointIndex":1,"point":{}}`,      // both forms
		`{"app":"lulesh","point":{"coreType":"mystery"}}`, // bad core
		`{"app":"lulesh","arch":{},"point":{}}`,           // both arch spellings
		`{"app":"lulesh","pointIndex":0,"kind":"sweep"}`,  // wrong kind for /simulate
		`not json`, // parse error
	} {
		if code := postJSON(t, ts.URL+"/simulate", body, nil); code != http.StatusBadRequest {
			t.Errorf("POST /simulate %s -> %d, want 400", body, code)
		}
	}
}

// failingWriter simulates a client that hangs up: writes start failing
// after failAfter successes.
type failingWriter struct {
	header    http.Header
	writes    int
	failAfter int
}

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *failingWriter) WriteHeader(int) {}
func (w *failingWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, fmt.Errorf("client hung up")
	}
	return len(b), nil
}

func TestDSEStreamStopsOnDeadClient(t *testing.T) {
	svc := testService(t, t.TempDir())

	w := &failingWriter{failAfter: 1}
	req := httptest.NewRequest(http.MethodPost, "/dse",
		strings.NewReader(`{"apps":["spmz"],"pointIndices":[0,1,2,3],"progressEvery":1,"summary":true}`))
	svc.handleDSE(w, req)

	// The sweep emits >= 4 progress events plus the result. After the
	// first write fails, emit must stop touching the writer instead of
	// pumping every remaining event into the dead pipe.
	if w.writes != w.failAfter+1 {
		t.Fatalf("writer saw %d writes, want %d (stop after the first failure)",
			w.writes, w.failAfter+1)
	}
}

func TestDSEEndpointStreamsAndResumes(t *testing.T) {
	ts, svc := testServer(t)

	body := `{"apps":["spmz"],"pointIndices":[0,1,2,3],"progressEvery":1}`
	resp, err := http.Post(ts.URL+"/dse", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var progress, results int
	var final struct {
		Type         string            `json:"type"`
		Count        int               `json:"count"`
		Cached       int               `json:"cached"`
		Measurements []json.RawMessage `json:"measurements"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			progress++
		case "result":
			results++
			json.Unmarshal(sc.Bytes(), &final)
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if progress < 4 || results != 1 {
		t.Fatalf("stream had %d progress and %d result events", progress, results)
	}
	if final.Count != 4 || len(final.Measurements) != 4 || final.Cached != 0 {
		t.Fatalf("final event malformed: count=%d cached=%d measurements=%d",
			final.Count, final.Cached, len(final.Measurements))
	}

	// Repeating the batch serves every point from the store.
	resp2, err := http.Post(ts.URL+"/dse", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := func() ([]byte, error) {
		defer resp2.Body.Close()
		var buf bytes.Buffer
		_, err := buf.ReadFrom(resp2.Body)
		return buf.Bytes(), err
	}()
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatal(err)
	}
	if final.Type != "result" || final.Cached != 4 {
		t.Fatalf("repeated batch not fully cached: %+v", final)
	}
	if svc.Client().Stats().Simulated != 4 {
		t.Fatalf("repeated batch re-simulated: %d total simulations", svc.Client().Stats().Simulated)
	}
}

func TestFigureEndpoint(t *testing.T) {
	ts, _ := testServer(t)

	// Figure 11 runs its own Table II simulations — no sweep needed.
	var fig struct {
		Figure int `json:"figure"`
		Tables []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if code := getJSON(t, ts.URL+"/figures/11?sample=20000&warmup=40000", &fig); code != http.StatusOK {
		t.Fatalf("/figures/11 -> %d", code)
	}
	if fig.Figure != 11 || len(fig.Tables) != 1 || len(fig.Tables[0].Rows) == 0 {
		t.Fatalf("/figures/11 malformed: %+v", fig)
	}

	if code := getJSON(t, ts.URL+"/figures/2", nil); code != http.StatusNotFound {
		t.Fatalf("/figures/2 -> %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/figures/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("/figures/abc -> %d, want 400", code)
	}
	// Malformed fidelity parameters must not silently fall back to the
	// defaults, and figure 11 cannot honor an apps filter.
	for _, q := range []string{"sample=1e6", "warmup=100k", "seed=-3", "seed=abc"} {
		if code := getJSON(t, ts.URL+"/figures/5?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("/figures/5?%s -> %d, want 400", q, code)
		}
	}
	if code := getJSON(t, ts.URL+"/figures/11?apps=hydro", nil); code != http.StatusBadRequest {
		t.Fatalf("/figures/11?apps=hydro -> %d, want 400", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	var stats struct {
		Service musa.ClientStats `json:"service"`
		Stored  int              `json:"stored"`
		Replay  struct {
			Disabled bool   `json:"disabled"`
			Ranks    []int  `json:"ranks"`
			Network  string `json:"network"`
		} `json:"replay"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats -> %d", code)
	}
	if stats.Replay.Disabled || len(stats.Replay.Ranks) != 2 || stats.Replay.Network != "mn4" {
		t.Fatalf("replay defaults malformed: %+v", stats.Replay)
	}
	postJSON(t, ts.URL+"/simulate", `{"app":"hydro","pointIndex":0}`, nil)
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Service.Requests != 1 || stats.Service.Simulated != 1 || stats.Stored != 1 {
		t.Fatalf("stats after one simulate: %+v stored=%d", stats.Service, stats.Stored)
	}
}

func TestCapacityEndpoint(t *testing.T) {
	ts, svc := testServer(t)
	var cap struct {
		MaxJobs  int `json:"maxJobs"`
		InFlight int `json:"inFlight"`
		Stored   int `json:"stored"`
	}
	if code := getJSON(t, ts.URL+"/capacity", &cap); code != http.StatusOK {
		t.Fatalf("/capacity -> %d", code)
	}
	if jobs := svc.Client().Snapshot().Jobs; cap.MaxJobs != jobs.Max || cap.MaxJobs != 4 {
		t.Fatalf("/capacity maxJobs = %d, want %d", cap.MaxJobs, jobs.Max)
	}
	if cap.InFlight != 0 {
		t.Fatalf("/capacity inFlight = %d on an idle server", cap.InFlight)
	}
}

func TestShardEndpoint(t *testing.T) {
	ts, svc := testServer(t)

	var out struct {
		Count        int                `json:"count"`
		Cached       int                `json:"cached"`
		Measurements []musa.Measurement `json:"measurements"`
	}
	req := `{"apps":["btmz"],"pointIndices":[0,1,2],"seed":1}`
	if code := postJSON(t, ts.URL+"/shard", req, &out); code != http.StatusOK {
		t.Fatalf("/shard -> %d", code)
	}
	if out.Count != 3 || len(out.Measurements) != 3 {
		t.Fatalf("/shard returned %d/%d measurements, want 3", out.Count, len(out.Measurements))
	}
	for _, m := range out.Measurements {
		if m.App != "btmz" || m.TimeNs <= 0 {
			t.Fatalf("malformed shard measurement: %+v", m)
		}
	}
	if n := svc.Client().Snapshot().Store.Len; n != 3 {
		t.Fatalf("shard did not checkpoint into the worker store: %d entries", n)
	}

	// The same shard again is a pure store read.
	if code := postJSON(t, ts.URL+"/shard", req, &out); code != http.StatusOK {
		t.Fatalf("/shard (repeat) -> %d", code)
	}
	if out.Cached != 3 {
		t.Fatalf("repeated shard cached = %d, want 3", out.Cached)
	}

	// Kind is forced to sweep; anything else is the caller's error.
	if code := postJSON(t, ts.URL+"/shard", `{"kind":"node","app":"btmz","pointIndex":0}`, nil); code != http.StatusBadRequest {
		t.Fatalf("/shard with kind=node -> %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/shard", `{"apps":["nope"]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("/shard with unknown app -> %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/shard", `not json`, nil); code != http.StatusBadRequest {
		t.Fatalf("/shard with bad body -> %d, want 400", code)
	}
}

// TestArtifactEndpoints drives the artifact exchange over HTTP: bad keys
// are 400, absent artifacts 404, a pushed blob (as a fleet coordinator
// sends it) round-trips byte-identically, and /stats reports the traffic.
func TestArtifactEndpoints(t *testing.T) {
	ts, svc := testServer(t)
	key := strings.Repeat("ab", 32)

	for _, path := range []string{"/artifact/nothex", "/artifact/" + key[:10]} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", path, code)
		}
	}
	if code := getJSON(t, ts.URL+"/artifact/"+key, nil); code != http.StatusNotFound {
		t.Fatalf("GET absent artifact = %d, want 404", code)
	}

	put := func(k string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/artifact/"+k, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(key, []byte("not an artifact")); code != http.StatusBadRequest {
		t.Fatalf("PUT garbage = %d, want 400", code)
	}

	// A real blob: run a one-group sweep on a second client with a shared
	// artifact dir, then push what it produced.
	artDir := t.TempDir()
	builder, err := musa.NewClient(musa.ClientOptions{ArtifactCache: artDir, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	if _, err := builder.Run(t.Context(), musa.Experiment{
		Kind: musa.KindSweep, Apps: []string{"btmz"}, PointIndices: []int{0},
		Sample: 5000, Warmup: 10000, Seed: 1, NoReplay: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Find one stored artifact key by scanning the directory.
	ents, err := os.ReadDir(artDir)
	if err != nil {
		t.Fatal(err)
	}
	var blobKey string
	var blob []byte
	for _, e := range ents {
		if k, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			blobKey = k
			blob, err = os.ReadFile(filepath.Join(artDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if blobKey == "" {
		t.Fatal("builder persisted no artifacts")
	}
	if code := put(blobKey, blob); code != http.StatusNoContent {
		t.Fatalf("PUT artifact = %d, want 204", code)
	}
	resp, err := http.Get(ts.URL + "/artifact/" + blobKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET pushed artifact: %d, %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("artifact did not round-trip byte-identically over HTTP")
	}

	var stats struct {
		Artifacts struct {
			Enabled bool `json:"enabled"`
			Cache   struct {
				Entries int `json:"entries"`
			} `json:"cache"`
		} `json:"artifacts"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	if !stats.Artifacts.Enabled || stats.Artifacts.Cache.Entries == 0 {
		t.Fatalf("/stats does not report the pushed artifact: %+v", stats.Artifacts)
	}
	_ = svc
}
