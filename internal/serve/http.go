package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"musa"
	"musa/internal/apps"
	"musa/internal/cpu"
	"musa/internal/dse"
	"musa/internal/store"
)

// ArchSpec is the wire form of an architectural point — the same knobs as
// musa.Arch, with the Table I grid's vocabulary.
type ArchSpec struct {
	Cores      int     `json:"cores"`
	CoreType   string  `json:"coreType"`
	FreqGHz    float64 `json:"freqGHz"`
	VectorBits int     `json:"vectorBits"`
	CacheLabel string  `json:"cacheLabel"`
	Channels   int     `json:"channels"`
	HBM        bool    `json:"hbm"`
}

// ToPoint validates the spec and converts it to an ArchPoint.
func (a ArchSpec) ToPoint() (dse.ArchPoint, error) {
	core, err := cpu.ByName(a.CoreType)
	if err != nil {
		return dse.ArchPoint{}, err
	}
	var cache dse.CacheCfg
	found := false
	for _, c := range dse.CacheConfigs() {
		if c.Label == a.CacheLabel {
			cache, found = c, true
		}
	}
	if !found {
		return dse.ArchPoint{}, fmt.Errorf("serve: unknown cache label %q (want 32M:256K, 64M:512K or 96M:1M)", a.CacheLabel)
	}
	mem := dse.DDR4
	if a.HBM {
		mem = dse.HBM
	}
	p := dse.ArchPoint{
		Cores: a.Cores, Core: core, FreqGHz: a.FreqGHz,
		VectorBits: a.VectorBits, Cache: cache, Channels: a.Channels, Mem: mem,
	}
	// Validate through the node config so an invalid request becomes a 400
	// instead of a panic inside a simulation worker.
	if err := p.NodeConfig(0, 0, 1).Validate(); err != nil {
		return dse.ArchPoint{}, err
	}
	return p, nil
}

// specOf renders a point back into its wire form.
func specOf(p dse.ArchPoint) ArchSpec {
	return ArchSpec{
		Cores: p.Cores, CoreType: p.Core.Name, FreqGHz: p.FreqGHz,
		VectorBits: p.VectorBits, CacheLabel: p.Cache.Label,
		Channels: p.Channels, HBM: p.Mem == dse.HBM,
	}
}

// NewHandler returns the musa-serve HTTP API:
//
//	GET  /apps         the five application models
//	GET  /points       the Table I design space
//	POST /simulate     one measurement (store-backed, coalesced)
//	POST /dse          batch sweep; streams NDJSON progress then the result
//	GET  /figures/{n}  JSON figure data (1, 4-11; 4 is the rank timeline)
//	GET  /stats        service and store counters, replay configuration
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"apps": SortedApps()})
	})
	mux.HandleFunc("GET /points", func(w http.ResponseWriter, r *http.Request) {
		grid := dse.Enumerate()
		type pt struct {
			Index int    `json:"index"`
			Label string `json:"label"`
			ArchSpec
		}
		pts := make([]pt, len(grid))
		for i, p := range grid {
			pts[i] = pt{Index: i, Label: p.Label(), ArchSpec: specOf(p)}
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(pts), "points": pts})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		rc := svc.Replay()
		writeJSON(w, http.StatusOK, map[string]any{
			"service": svc.Stats(),
			"stored":  svc.Store().Len(),
			"replay": map[string]any{
				"disabled": rc.Disable,
				"ranks":    rc.Ranks,
				"network":  rc.Network,
			},
			"schemaVersion": store.SchemaVersion,
		})
	})
	mux.HandleFunc("POST /simulate", svc.handleSimulate)
	mux.HandleFunc("POST /dse", svc.handleDSE)
	mux.HandleFunc("GET /figures/{n}", svc.handleFigure)
	return mux
}

type simulateRequest struct {
	App        string    `json:"app"`
	Point      *ArchSpec `json:"point,omitempty"`
	PointIndex *int      `json:"pointIndex,omitempty"`
	Sample     int64     `json:"sample,omitempty"`
	Warmup     int64     `json:"warmup,omitempty"`
	Seed       uint64    `json:"seed,omitempty"`
	// ReplayRanks overrides the cluster-stage rank counts (null = service
	// default); noReplay turns the replay stage off for this request;
	// network names the interconnect model ("mn4", "hdr200", "eth10").
	ReplayRanks []int  `json:"replayRanks,omitempty"`
	NoReplay    bool   `json:"noReplay,omitempty"`
	Network     string `json:"network,omitempty"`
}

func (sr simulateRequest) point() (dse.ArchPoint, error) {
	switch {
	case sr.Point != nil && sr.PointIndex != nil:
		return dse.ArchPoint{}, errors.New("serve: give either point or pointIndex, not both")
	case sr.Point != nil:
		return sr.Point.ToPoint()
	case sr.PointIndex != nil:
		return PointByIndex(*sr.PointIndex)
	}
	return dse.ArchPoint{}, errors.New("serve: missing point or pointIndex")
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := req.point()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := apps.ByName(req.App); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sr := store.Request{
		App: req.App, Arch: p,
		SampleInstrs: req.Sample, WarmupInstrs: req.Warmup, Seed: req.Seed,
	}
	switch {
	case req.NoReplay:
		sr.ReplayRanks = []int{} // explicit empty: node-only, no defaults
	case req.ReplayRanks != nil:
		// Validate before the list reaches a sweep worker: a negative
		// count would panic trace synthesis, a huge one would OOM it.
		if err := dse.ValidateReplayRanks(req.ReplayRanks); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sr.ReplayRanks = req.ReplayRanks
	}
	if req.Network != "" {
		network, err := ResolveNetwork(req.Network)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sr.Network = network
	}
	start := time.Now()
	m, cached, err := s.Simulate(r.Context(), sr)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"app":         m.App,
		"label":       m.Arch.Label(),
		"cached":      cached,
		"elapsedMs":   float64(time.Since(start).Microseconds()) / 1e3,
		"measurement": m,
	})
}

type dseRequest struct {
	Apps          []string `json:"apps,omitempty"`
	PointIndices  []int    `json:"pointIndices,omitempty"`
	Sample        int64    `json:"sample,omitempty"`
	Warmup        int64    `json:"warmup,omitempty"`
	Seed          uint64   `json:"seed,omitempty"`
	ProgressEvery int      `json:"progressEvery,omitempty"`
	// Summary suppresses per-measurement output in the final event.
	Summary bool `json:"summary,omitempty"`
	// ReplayRanks / noReplay / network configure the cluster stage, as in
	// /simulate.
	ReplayRanks []int  `json:"replayRanks,omitempty"`
	NoReplay    bool   `json:"noReplay,omitempty"`
	Network     string `json:"network,omitempty"`
}

func (s *Service) handleDSE(w http.ResponseWriter, r *http.Request) {
	var req dseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var points []dse.ArchPoint
	for _, i := range req.PointIndices {
		p, err := PointByIndex(i)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		points = append(points, p)
	}
	if err := dse.ValidateReplayRanks(req.ReplayRanks); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	every := req.ProgressEvery
	if every <= 0 {
		every = 50
	}

	// Stream NDJSON: progress events while the sweep runs, result last.
	// A failed encode (the client hung up) or a canceled request context
	// stops the stream: the ctx already cancels the sweep, and emitting
	// into a dead pipe would just burn encoder work until it finishes.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamErr error
	emit := func(v any) {
		if streamErr != nil {
			return
		}
		if err := r.Context().Err(); err != nil {
			streamErr = err
			return
		}
		if err := enc.Encode(v); err != nil {
			streamErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	var last Progress
	d, err := s.Sweep(r.Context(), SweepRequest{
		Apps: req.Apps, Points: points,
		SampleInstrs: req.Sample, WarmupInstrs: req.Warmup, Seed: req.Seed,
		ReplayRanks: req.ReplayRanks, NoReplay: req.NoReplay, Network: req.Network,
	}, func(p Progress) {
		last = p
		if p.Done%every == 0 || p.Done == p.Total {
			emit(map[string]any{"type": "progress", "done": p.Done, "total": p.Total, "cached": p.Cached})
		}
	})
	if err != nil {
		emit(map[string]any{"type": "error", "error": err.Error(),
			"done": last.Done, "total": last.Total, "cached": last.Cached})
		return
	}
	out := map[string]any{
		"type":      "result",
		"count":     len(d.Measurements),
		"cached":    last.Cached,
		"elapsedMs": float64(time.Since(start).Microseconds()) / 1e3,
	}
	if !req.Summary {
		out["measurements"] = d.Measurements
	}
	emit(out)
}

func (s *Service) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad figure number: %w", err))
		return
	}
	valid := false
	for _, k := range musa.FigureNumbers() {
		valid = valid || k == n
	}
	if !valid {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown figure %d (have 1, 4-11)", n))
		return
	}
	q := r.URL.Query()
	var appNames []string
	if v := q.Get("apps"); v != "" {
		if n == 11 {
			// The Table II figure simulates its fixed application set;
			// silently ignoring the filter would misrepresent the data.
			httpError(w, http.StatusBadRequest, errors.New("serve: figure 11 does not support an apps filter"))
			return
		}
		appNames = strings.Split(v, ",")
	}
	if n == 4 {
		s.handleRankTimeline(w, r, appNames)
		return
	}
	intParam := func(key string) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("serve: bad %s: %w", key, err)
		}
		return i, nil
	}
	sample, err := intParam("sample")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	warmup, err := intParam("warmup")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seed, err := intParam("seed")
	if err != nil || seed < 0 {
		if err == nil {
			err = fmt.Errorf("serve: bad seed: negative")
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}

	simOpts := musa.SimOptions{SampleInstrs: sample, WarmupInstrs: warmup, Seed: uint64(seed)}
	var d *dse.Dataset
	if n != 11 {
		// Every figure but the Table II one aggregates the sweep dataset;
		// repeat visits are store hits.
		d, err = s.Sweep(r.Context(), SweepRequest{
			Apps: appNames, SampleInstrs: sample, WarmupInstrs: warmup, Seed: uint64(seed),
		}, nil)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	fig, err := musa.Figure(d, n, simOpts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fig.WriteJSON(w)
}

// handleRankTimeline serves the Fig. 4-style cluster view:
//
//	GET /figures/4?app=lulesh&ranks=64&network=mn4&seed=1
//
// The burst trace of the requested application is replayed across the
// requested rank count and rendered as a per-rank breakdown table plus a
// text Gantt chart. No sweep runs; the replay is cheap enough to compute
// per request.
func (s *Service) handleRankTimeline(w http.ResponseWriter, r *http.Request, appNames []string) {
	q := r.URL.Query()
	appName := q.Get("app")
	if appName == "" && len(appNames) > 0 {
		appName = appNames[0]
	}
	if appName == "" {
		appName = "lulesh" // the paper's Fig. 4 subject
	}
	ranks := 64
	if v := q.Get("ranks"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad ranks %q", v))
			return
		}
		ranks = n
	}
	network, err := ResolveNetwork(q.Get("network"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var seed uint64
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad seed: %w", err))
			return
		}
		seed = n
	}
	fig, err := musa.RankTimeline(appName, ranks, network, musa.SimOptions{Seed: seed})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fig.WriteJSON(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
