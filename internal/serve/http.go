package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"musa"
	"musa/internal/dse"
	"musa/internal/obs"
	"musa/internal/store"
)

// NewHandler returns the musa-serve HTTP API:
//
//	GET  /apps         the five application models
//	GET  /points       the Table I design space
//	GET  /capacity     advertised MaxJobs and in-flight jobs (fleet probe)
//	POST /simulate     one node experiment (store-backed, coalesced)
//	POST /dse          sweep experiment; streams NDJSON progress then the result
//	POST /optimize     successive-halving search; streams NDJSON progress and
//	                   rung events, then the OptimizeResult
//	POST /shard        sweep subset for a fleet coordinator; plain JSON reply
//	GET  /artifact/{key}  one encoded sweep artifact from the artifact cache
//	PUT  /artifact/{key}  store an artifact (fleet coordinators push these
//	                      ahead of shards so workers reuse instead of rebuild)
//	GET  /figures/{n}  JSON figure data (1, 4-11; 4 is the rank timeline)
//	GET  /stats        client, store and artifact-cache counters, replay config
//	GET  /healthz      replica health: ok / draining / overloaded (non-ok is 503)
//	GET  /membership   the replica ring this instance routes across
//	PUT  /membership   replace the ring membership at runtime
//	GET  /metrics      Prometheus text exposition of the process registry
//	GET  /debug/trace  recorded spans (NDJSON; ?format=chrome for tracing UIs)
//	GET  /debug/pprof/ runtime profiles (only with WithPprof)
//
// POST bodies are musa.Experiment wire encodings; the handlers force the
// endpoint's Kind and reject everything a Normalize pass rejects with 400.
// Every request runs under a trace span and is counted and timed per route;
// see obs.go for the middleware and the Option list.
func NewHandler(svc *Service, opts ...Option) http.Handler {
	cfg := &handlerConfig{reg: obs.DefaultRegistry(), rec: obs.Default()}
	for _, o := range opts {
		o(cfg)
	}
	// Bridge the client's own counters (requests, store and artifact cache,
	// job pool) into the scrape registry.
	svc.Client().RegisterMetrics(cfg.reg)
	// Serve-tier state lives on the Service so the signal handler can reach
	// StartDraining through it.
	svc.reg = cfg.reg
	svc.adm = newAdmission(cfg.admitLimit, cfg.admitQueue, cfg.retryAfter)
	svc.ringRedirect = cfg.ringRedirect
	cfg.reg.GaugeFunc("musa_serve_health_state",
		"Replica health (0 ok, 1 overloaded, 2 draining, 3 down).",
		func() float64 { return float64(svc.healthState()) })
	mux := http.NewServeMux()
	mux.HandleFunc("GET /apps", func(w http.ResponseWriter, r *http.Request) {
		var names []string
		for _, a := range musa.Applications() {
			names = append(names, a.Name)
		}
		writeJSON(w, http.StatusOK, map[string]any{"apps": names})
	})
	mux.HandleFunc("GET /points", func(w http.ResponseWriter, r *http.Request) {
		type pt struct {
			Index int    `json:"index"`
			Label string `json:"label"`
			musa.Arch
		}
		pts := make([]pt, musa.PointCount())
		for i := range pts {
			a, err := musa.PointArch(i)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			label, err := musa.PointLabel(i)
			if err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			pts[i] = pt{Index: i, Label: label, Arch: a}
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(pts), "points": pts})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		c := svc.Client()
		snap := c.Snapshot()
		ringInfo := map[string]any{"enabled": false}
		if rg := c.Ring(); rg != nil {
			ringInfo = map[string]any{
				"enabled": true,
				"self":    rg.Self(),
				"members": rg.Members(),
			}
		}
		admInfo := map[string]any{"enabled": svc.adm != nil}
		if svc.adm != nil {
			admInfo["limit"] = cap(svc.adm.sem)
			admInfo["queue"] = svc.adm.queueDepth
		}
		// The wire shape predates Client.Snapshot and is kept stable: the
		// fleet migration tooling reads .store.engine.* and .stored.
		writeJSON(w, http.StatusOK, map[string]any{
			"service": snap.Stats,
			"stored":  snap.Store.Len,
			"store": map[string]any{
				"readOnly":        snap.Store.ReadOnly,
				"engine":          snap.Store.Engine,
				"memtableBytes":   snap.Store.MemtableBytes,
				"blockCacheBytes": snap.Store.BlockCacheBytes,
			},
			"ring":      ringInfo,
			"admission": admInfo,
			"artifacts": map[string]any{
				"enabled": snap.Artifacts.Enabled,
				"cache":   snap.Artifacts.Stats,
			},
			"replay": map[string]any{
				"disabled": snap.Replay.Disabled,
				"ranks":    snap.Replay.Ranks,
				"network":  snap.Replay.Network,
			},
			"schemaVersion":         store.SchemaVersion,
			"artifactSchemaVersion": dse.ArtifactSchemaVersion,
		})
	})
	mux.HandleFunc("GET /capacity", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Client().Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"maxJobs":  snap.Jobs.Max,
			"inFlight": snap.Jobs.InFlight,
			"stored":   snap.Store.Len,
		})
	})
	mux.HandleFunc("POST /simulate", svc.gate("simulate", svc.handleSimulate))
	mux.HandleFunc("POST /dse", svc.gate("dse", svc.handleDSE))
	mux.HandleFunc("POST /optimize", svc.gate("optimize", svc.handleOptimize))
	mux.HandleFunc("POST /shard", svc.gate("shard", svc.handleShard))
	mux.HandleFunc("GET /healthz", svc.handleHealthz)
	mux.HandleFunc("GET /membership", svc.handleMembershipGet)
	mux.HandleFunc("PUT /membership", svc.handleMembershipPut)
	mux.HandleFunc("GET /artifact/{key}", svc.handleArtifactGet)
	mux.HandleFunc("PUT /artifact/{key}", svc.handleArtifactPut)
	mux.HandleFunc("GET /figures/{n}", svc.handleFigure)
	registerObsRoutes(mux, cfg)
	return instrument(mux, cfg)
}

// experimentStatus maps an execution error onto its HTTP status: every
// validation failure wraps musa.ErrExperiment and is the client's fault.
func experimentStatus(err error) int {
	if errors.Is(err, musa.ErrExperiment) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// pointAliasOnce gates the once-per-process deprecation log line below.
var pointAliasOnce sync.Once

// noteDeprecatedAliases inspects a raw experiment body for legacy wire
// spellings — today only the "point" alias for "arch" — and records their
// use: one musa_http_deprecated_total{field} increment per request plus a
// single log line per process. The alias still decodes; it is slated for
// removal with wire schema v4 (see DESIGN.md "Deprecations").
func (s *Service) noteDeprecatedAliases(body []byte) {
	var probe struct {
		Point json.RawMessage `json:"point"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.Point == nil {
		return
	}
	if s.reg != nil {
		s.reg.Counter("musa_http_deprecated_total",
			"Requests using deprecated wire-format fields.",
			obs.L("field", "point")).Inc()
	}
	pointAliasOnce.Do(func() {
		errorLog.Printf(`deprecated: request used the legacy "point" key; ` +
			`send "arch" instead — "point" is removed in wire schema v4 (see DESIGN.md)`)
	})
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// The raw body is kept so a non-owner replica can forward it byte for
	// byte to the ring owner (routeSimulate below).
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var e musa.Experiment
	if err := json.Unmarshal(body, &e); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.noteDeprecatedAliases(body)
	if e.Kind != "" && e.Kind != musa.KindNode {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: /simulate runs %q experiments, got %q", musa.ErrBadKind, musa.KindNode, e.Kind))
		return
	}
	e.Kind = musa.KindNode
	if s.routeSimulate(w, r, e, body) {
		return
	}
	start := time.Now()
	res, err := s.c.Run(r.Context(), e)
	if err != nil {
		httpError(w, experimentStatus(err), err)
		return
	}
	m := res.Measurement
	writeJSON(w, http.StatusOK, map[string]any{
		"app":         m.App,
		"label":       m.Arch.Label(),
		"cached":      res.Cached,
		"elapsedMs":   float64(time.Since(start).Microseconds()) / 1e3,
		"measurement": m,
	})
}

func (s *Service) handleDSE(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var e musa.Experiment
	if err := json.Unmarshal(body, &e); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.noteDeprecatedAliases(body)
	// Stream-control fields ride alongside the experiment on the wire.
	var ctl struct {
		ProgressEvery int `json:"progressEvery"`
		// Summary suppresses per-measurement output in the final event.
		Summary bool `json:"summary"`
	}
	if err := json.Unmarshal(body, &ctl); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if e.Kind != "" && e.Kind != musa.KindSweep {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: /dse runs %q experiments, got %q", musa.ErrBadKind, musa.KindSweep, e.Kind))
		return
	}
	e.Kind = musa.KindSweep
	// Validate before committing to the 200 NDJSON stream: a malformed
	// request must fail with a plain 400, not a mid-stream error event.
	if err := e.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	every := ctl.ProgressEvery
	if every <= 0 {
		every = 50
	}

	// Stream NDJSON: progress events while the sweep runs, result last.
	// A failed encode (the client hung up) or a canceled request context
	// stops the stream: the ctx already cancels the sweep, and emitting
	// into a dead pipe would just burn encoder work until it finishes.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamErr error
	emit := func(v any) {
		if streamErr != nil {
			return
		}
		if err := r.Context().Err(); err != nil {
			streamErr = err
			return
		}
		if err := enc.Encode(v); err != nil {
			streamErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	var done, total, cached int
	res, err := s.c.RunStream(r.Context(), e, musa.Observer{
		Progress: func(d, t, c int) {
			done, total, cached = d, t, c
			if d%every == 0 || d == t {
				emit(map[string]any{"type": "progress", "done": d, "total": t, "cached": c})
			}
		},
	})
	if err != nil {
		emit(map[string]any{"type": "error", "error": err.Error(),
			"done": done, "total": total, "cached": cached})
		return
	}
	out := map[string]any{
		"type":      "result",
		"count":     len(res.Sweep.Measurements),
		"cached":    cached,
		"elapsedMs": float64(time.Since(start).Microseconds()) / 1e3,
	}
	if !ctl.Summary {
		out["measurements"] = res.Sweep.Measurements
	}
	emit(out)
}

// handleOptimize runs a successive-halving search and streams its life as
// NDJSON: cumulative probe progress, one "rung" event per completed ladder
// level, then the "result" event carrying the full OptimizeResult (Pareto
// frontier, recommendation, cost accounting). Like /dse, the request is
// validated before the 200 status commits the stream.
func (s *Service) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var e musa.Experiment
	if err := json.Unmarshal(body, &e); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.noteDeprecatedAliases(body)
	var ctl struct {
		ProgressEvery int `json:"progressEvery"`
	}
	if err := json.Unmarshal(body, &ctl); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if e.Kind != "" && e.Kind != musa.KindOptimize {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: /optimize runs %q experiments, got %q", musa.ErrBadKind, musa.KindOptimize, e.Kind))
		return
	}
	e.Kind = musa.KindOptimize
	if err := e.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	every := ctl.ProgressEvery
	if every <= 0 {
		every = 50
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamErr error
	emit := func(v any) {
		if streamErr != nil {
			return
		}
		if err := r.Context().Err(); err != nil {
			streamErr = err
			return
		}
		if err := enc.Encode(v); err != nil {
			streamErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	var done, total, cached int
	res, err := s.c.RunStream(r.Context(), e, musa.Observer{
		Progress: func(d, t, c int) {
			done, total, cached = d, t, c
			if d%every == 0 || d == t {
				emit(map[string]any{"type": "progress", "done": d, "total": t, "cached": c})
			}
		},
		Rung: func(rs musa.RungSummary) {
			emit(map[string]any{"type": "rung", "rung": rs})
		},
	})
	if err != nil {
		emit(map[string]any{"type": "error", "error": err.Error(),
			"done": done, "total": total, "cached": cached})
		return
	}
	emit(map[string]any{
		"type":      "result",
		"optimize":  res.Optimize,
		"cached":    cached,
		"elapsedMs": float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// handleShard executes a sweep subset on behalf of a fleet coordinator and
// returns the measurements as one plain JSON document: unlike the
// NDJSON-streaming /dse endpoint, a shard reply must be all-or-nothing so
// the coordinator can either merge it or re-dispatch the whole shard.
// Execution goes through the same Client as every other endpoint, so shards
// hit this worker's store and coalesce with its in-flight work.
func (s *Service) handleShard(w http.ResponseWriter, r *http.Request) {
	var e musa.Experiment
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if e.Kind != "" && e.Kind != musa.KindSweep {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%w: /shard runs %q experiments, got %q", musa.ErrBadKind, musa.KindSweep, e.Kind))
		return
	}
	e.Kind = musa.KindSweep
	start := time.Now()
	var cached int
	res, err := s.c.RunStream(r.Context(), e, musa.Observer{
		Progress: func(d, t, c int) { cached = c },
	})
	if err != nil {
		httpError(w, experimentStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":        len(res.Sweep.Measurements),
		"cached":       cached,
		"elapsedMs":    float64(time.Since(start).Microseconds()) / 1e3,
		"measurements": res.Sweep.Measurements,
	})
}

// maxArtifactBytes bounds one PUT /artifact upload: the largest legitimate
// artifact (a default-fidelity annotation) is a few tens of MB encoded. A
// variable only so tests can exercise the oversize rejection without
// shipping a quarter-gigabyte body.
var maxArtifactBytes int64 = 256 << 20

// handleArtifactGet serves one encoded artifact byte for byte — the read
// half of the fleet's artifact exchange, also handy for warming a fresh
// worker from a long-lived one.
func (s *Service) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidArtifactKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad artifact key %q", key))
		return
	}
	blob, ok := s.c.ArtifactBlob(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no artifact %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleArtifactPut stores a pushed artifact. The blob is validated at the
// boundary (schema version, kind, decodable payload) so a corrupt upload is
// refused with 400 instead of poisoning later sweeps; with the artifact
// cache disabled the endpoint answers 503.
func (s *Service) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidArtifactKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad artifact key %q", key))
		return
	}
	if !s.c.Snapshot().Artifacts.Enabled {
		httpError(w, http.StatusServiceUnavailable, errors.New("serve: artifact cache disabled"))
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if int64(len(blob)) > maxArtifactBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: artifact exceeds %d bytes", maxArtifactBytes))
		return
	}
	if err := s.c.ArtifactPut(key, blob); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad figure number: %w", err))
		return
	}
	valid := false
	for _, k := range musa.FigureNumbers() {
		valid = valid || k == n
	}
	if !valid {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown figure %d (have 1, 4-11)", n))
		return
	}
	q := r.URL.Query()
	var appNames []string
	if v := q.Get("apps"); v != "" {
		if n == 11 {
			// The Table II figure simulates its fixed application set;
			// silently ignoring the filter would misrepresent the data.
			httpError(w, http.StatusBadRequest, errors.New("serve: figure 11 does not support an apps filter"))
			return
		}
		appNames = strings.Split(v, ",")
	}
	if n == 4 {
		s.handleRankTimeline(w, r, appNames)
		return
	}
	intParam := func(key string) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("serve: bad %s: %w", key, err)
		}
		return i, nil
	}
	sample, err := intParam("sample")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	warmup, err := intParam("warmup")
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seed, err := intParam("seed")
	if err != nil || seed < 0 {
		if err == nil {
			err = fmt.Errorf("serve: bad seed: negative")
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}

	simOpts := musa.SimOptions{SampleInstrs: sample, WarmupInstrs: warmup, Seed: uint64(seed)}
	var d *musa.Sweep
	if n != 11 {
		// Every figure but the Table II one aggregates the sweep dataset;
		// repeat visits are store hits.
		res, err := s.c.Run(r.Context(), musa.Experiment{
			Kind: musa.KindSweep, Apps: appNames,
			Sample: sample, Warmup: warmup, Seed: uint64(seed),
		})
		if err != nil {
			httpError(w, experimentStatus(err), err)
			return
		}
		d = res.Sweep
	}
	fig, err := musa.Figure(d, n, simOpts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fig.WriteJSON(w)
}

// handleRankTimeline serves the Fig. 4-style cluster view:
//
//	GET /figures/4?app=lulesh&ranks=64&network=mn4&seed=1
//
// The burst trace of the requested application is replayed across the
// requested rank count and rendered as a per-rank breakdown table plus a
// text Gantt chart. No sweep runs; the replay is cheap enough to compute
// per request.
func (s *Service) handleRankTimeline(w http.ResponseWriter, r *http.Request, appNames []string) {
	q := r.URL.Query()
	appName := q.Get("app")
	if appName == "" && len(appNames) > 0 {
		appName = appNames[0]
	}
	if appName == "" {
		appName = "lulesh" // the paper's Fig. 4 subject
	}
	ranks := 64
	if v := q.Get("ranks"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad ranks %q", v))
			return
		}
		ranks = n
	}
	networkName := q.Get("network")
	if networkName == "" {
		networkName = "mn4"
	}
	network, err := musa.NetworkByName(networkName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var seed uint64
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad seed: %w", err))
			return
		}
		seed = n
	}
	fig, err := musa.RankTimeline(appName, ranks, network, musa.SimOptions{Seed: seed})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fig.WriteJSON(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorLog receives the full text of every 5xx error; swap it out in tests
// with SetErrorLog.
var errorLog = log.New(os.Stderr, "serve: ", log.LstdFlags)

// SetErrorLog redirects server-side error logging (nil discards it).
func SetErrorLog(l *log.Logger) {
	if l == nil {
		l = log.New(io.Discard, "", 0)
	}
	errorLog = l
}

// httpError writes the error reply. Client faults (4xx) echo the error text
// — those messages are validation feedback meant for the caller. Internal
// errors (5xx) are logged in full server-side and answered with the bare
// status text, so internals (paths, configuration, wrapped error chains)
// never leak onto the wire.
func httpError(w http.ResponseWriter, status int, err error) {
	msg := err.Error()
	if status >= 500 {
		errorLog.Printf("%d %s: %v", status, http.StatusText(status), err)
		msg = http.StatusText(status)
	}
	writeJSON(w, status, map[string]string{"error": msg})
}
