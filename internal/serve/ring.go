package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"musa"
	"musa/internal/obs"
	"musa/internal/ring"
)

// Ring face of one serve replica: deterministic /simulate ownership
// (non-owners proxy or 307-redirect to the owner so duplicate requests
// from any front door coalesce on one machine's single-flight), runtime
// membership updates over PUT /membership, a GET /healthz state machine
// (ok / draining / overloaded) for routers and load balancers, and load
// shedding through a bounded admission queue that answers 429 +
// Retry-After instead of letting an overload grow an unbounded queue.

// RingHopHeader marks a request already routed once by a ring peer. A
// replica receiving it executes locally whatever the ring says: during a
// membership change two replicas may briefly disagree about ownership,
// and one hop of imprecise placement beats a proxy loop.
const RingHopHeader = "X-Musa-Ring-Hop"

// admitResult is the outcome of one admission attempt.
type admitResult int

const (
	admitted admitResult = iota
	admitShed
	admitCanceled
)

// admission is the bounded front door of the heavy endpoints: at most
// `limit` requests execute concurrently, at most `queue` more wait, and
// everything beyond that is shed immediately with 429 + Retry-After. The
// bound is what turns an overload into fast, retryable feedback instead
// of a memory-backed queue collapse.
type admission struct {
	sem        chan struct{}
	queueDepth int64
	waiting    atomic.Int64
	retryAfter time.Duration
}

func newAdmission(limit, queue int, retryAfter time.Duration) *admission {
	if limit <= 0 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &admission{
		sem:        make(chan struct{}, limit),
		queueDepth: int64(queue),
		retryAfter: retryAfter,
	}
}

// acquire takes an execution slot, waiting in the bounded queue if
// necessary. It never blocks beyond the caller's context.
func (a *admission) acquire(ctx context.Context) admitResult {
	select {
	case a.sem <- struct{}{}:
		return admitted
	default:
	}
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		return admitShed
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return admitted
	case <-ctx.Done():
		return admitCanceled
	}
}

func (a *admission) release() { <-a.sem }

// saturated reports that the next unqueued request would be shed: every
// execution slot is taken and the wait queue is full. This is the
// "overloaded" healthz condition.
func (a *admission) saturated() bool {
	return len(a.sem) == cap(a.sem) && a.waiting.Load() >= a.queueDepth
}

// retryAfterSeconds is the Retry-After header value: whole seconds,
// rounded up so "0.3s" does not tell clients to retry immediately.
func (a *admission) retryAfterSeconds() string {
	s := int(a.retryAfter.Seconds())
	if time.Duration(s)*time.Second < a.retryAfter {
		s++
	}
	return strconv.Itoa(s)
}

// healthState is the replica's current healthz classification.
func (s *Service) healthState() ring.State {
	if s.draining.Load() {
		return ring.Draining
	}
	if s.adm != nil && s.adm.saturated() {
		return ring.Overloaded
	}
	return ring.Ok
}

// StartDraining flips the replica into the draining state: /healthz
// reports it (503, so routers and load balancers stop sending work), new
// heavy requests are refused with 503 + Retry-After, and everything
// already in flight — including streaming /dse responses — runs to
// completion under the server's graceful shutdown. Idempotent.
func (s *Service) StartDraining() { s.draining.Store(true) }

// gate wraps a heavy handler (simulate, dse, shard) with draining refusal
// and the bounded admission queue. route labels the shed counter.
func (s *Service) gate(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			s.shed(route, "draining")
			httpError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
			return
		}
		if s.adm != nil {
			switch s.adm.acquire(r.Context()) {
			case admitShed:
				w.Header().Set("Retry-After", s.adm.retryAfterSeconds())
				s.shed(route, "queue-full")
				httpError(w, http.StatusTooManyRequests,
					errors.New("serve: admission queue full, retry later"))
				return
			case admitCanceled:
				// The client gave up while queued; nothing useful to write.
				httpError(w, http.StatusServiceUnavailable, r.Context().Err())
				return
			case admitted:
				defer s.adm.release()
			}
		}
		h(w, r)
	}
}

// shed counts one refused request.
func (s *Service) shed(route, reason string) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("musa_serve_shed_total",
		"Requests refused by load shedding, by route and reason.",
		obs.L("route", route), obs.L("reason", reason)).Inc()
}

// ringResult counts one /simulate ownership decision.
func (s *Service) ringResult(result string) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("musa_ring_owner_requests_total",
		"Ring-routed requests by placement outcome.",
		obs.L("result", result)).Inc()
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := s.healthState()
	status := http.StatusOK
	if state != ring.Ok {
		// Non-200 takes the replica out of naive LB rotation; the body
		// still distinguishes draining (terminal) from overloaded
		// (transient) for ring-aware callers.
		status = http.StatusServiceUnavailable
	}
	c := s.c
	jobs := c.Snapshot().Jobs
	out := map[string]any{
		"status":   state.String(),
		"inFlight": jobs.InFlight,
		"maxJobs":  jobs.Max,
	}
	if s.adm != nil {
		out["admitted"] = len(s.adm.sem)
		out["admitLimit"] = cap(s.adm.sem)
		out["waiting"] = s.adm.waiting.Load()
		out["queueDepth"] = s.adm.queueDepth
	}
	if rg := c.Ring(); rg != nil {
		out["ring"] = map[string]any{"self": rg.Self(), "members": rg.Members()}
	}
	writeJSON(w, status, out)
}

func (s *Service) handleMembershipGet(w http.ResponseWriter, r *http.Request) {
	rg := s.c.Ring()
	if rg == nil {
		writeJSON(w, http.StatusOK, map[string]any{"self": "", "members": []ring.Member{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"self": rg.Self(), "members": rg.Members()})
}

// handleMembershipPut replaces the replica's view of the ring membership:
// the operational hook for scaling the tier without restarts. The body is
// {"members": ["http://h1:8080", ...]}; the reply echoes the resulting
// membership. Health states of retained members survive the update.
func (s *Service) handleMembershipPut(w http.ResponseWriter, r *http.Request) {
	rg := s.c.Ring()
	if rg == nil {
		httpError(w, http.StatusServiceUnavailable,
			errors.New("serve: no ring configured (start with -peers/-self)"))
		return
	}
	var body struct {
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body.Members) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("serve: empty membership"))
		return
	}
	for _, m := range body.Members {
		u, err := url.Parse(ring.Normalize(m))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("serve: bad member URL %q: want http(s)://host[:port]", m))
			return
		}
	}
	rg.SetMembers(body.Members)
	s.handleMembershipGet(w, r)
}

// peerDownCooldown is how long a proxy failure keeps a peer demoted
// before this replica optimistically tries it again. A variable so tests
// can shorten recovery.
var peerDownCooldown = 15 * time.Second

// markPeerDown demotes a peer after a failed proxy and schedules its
// optimistic recovery. Health is local knowledge (see internal/ring):
// only this replica reroutes around the failure.
func (s *Service) markPeerDown(rg *musa.Ring, peer string) {
	rg.SetState(peer, ring.Down)
	time.AfterFunc(peerDownCooldown, func() {
		if rg.StateOf(peer) == ring.Down {
			rg.SetState(peer, ring.Ok)
		}
	})
}

// routeSimulate applies ring ownership to one decoded /simulate request.
// It returns true when the request was fully answered here (proxied or
// redirected); false means the caller should execute locally — because
// this replica owns the key, the ring is absent, the request already
// hopped once, or the owner is unreachable (fallback).
func (s *Service) routeSimulate(w http.ResponseWriter, r *http.Request, e musa.Experiment, body []byte) bool {
	rg := s.c.Ring()
	if rg == nil || rg.Self() == "" || rg.Len() < 2 {
		return false
	}
	if r.Header.Get(RingHopHeader) != "" {
		// Already routed by a peer: own it here even if membership skew
		// says otherwise, so requests can never ping-pong.
		s.ringResult("local")
		return false
	}
	key, err := s.c.RouteKey(e)
	if err != nil {
		return false // normalization fails identically below, with a 400
	}
	owner := rg.Owner(key)
	if owner == "" || owner == rg.Self() {
		s.ringResult("local")
		return false
	}
	if s.ringRedirect {
		s.ringResult("redirect")
		w.Header().Set("Location", owner+"/simulate")
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true
	}
	if s.proxySimulate(w, r, owner, body) {
		s.ringResult("proxied")
		return true
	}
	// The owner is unreachable: demote it locally and serve the request
	// ourselves — correctness never depends on placement, only efficiency.
	s.markPeerDown(rg, owner)
	s.ringResult("fallback")
	return false
}

// proxySimulate forwards one /simulate request to the owner replica and
// copies the reply back verbatim. The trace header rides along, so the
// owner's span tree grafts under this request's span across the hop.
func (s *Service) proxySimulate(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	ctx, span := obs.StartSpan(r.Context(), "ring.proxy", obs.A("owner", owner))
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/simulate", bytes.NewReader(body))
	if err != nil {
		span.SetAttr("outcome", "error")
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RingHopHeader, "1")
	if hv := obs.SpanFrom(ctx).HeaderValue(); hv != "" {
		req.Header.Set(obs.TraceHeader, hv)
	}
	resp, err := s.proxyc.Do(req)
	if err != nil {
		span.SetAttr("outcome", "unreachable")
		return false
	}
	defer resp.Body.Close()
	// From here the reply is committed: owner-side errors (including its
	// own 429 shedding) pass through to the caller rather than triggering
	// a second, duplicate execution here.
	span.SetAttr("outcome", "proxied")
	span.SetAttr("status", strconv.Itoa(resp.StatusCode))
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}
