// Package serve is the HTTP face of the simulation pipeline: its handlers
// decode requests straight into musa.Experiment — the one validated request
// type of the public API — and execute them through musa.Client, which owns
// the content-addressed result store, single-flight coalescing of duplicate
// in-flight requests and the bounded job pool. cmd/musa-serve and the
// musa-dse CLI therefore share one pipeline and one cache.
package serve

import (
	"musa"
)

// Service wraps the shared musa.Client for the HTTP handlers.
type Service struct {
	c *musa.Client
}

// New returns a service executing requests through c. The client (and its
// store) stays owned by the caller; the service does not close it.
func New(c *musa.Client) *Service {
	return &Service{c: c}
}

// Client exposes the underlying client (the /stats endpoint reports its
// counters and store size).
func (s *Service) Client() *musa.Client { return s.c }
