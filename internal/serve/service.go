// Package serve is the simulation service layer: a job scheduler on top of
// dse.Run with single-flight coalescing of duplicate in-flight requests,
// bounded job concurrency, and incremental checkpointing of sweeps through
// the content-addressed result store (internal/store). The HTTP API of
// cmd/musa-serve (http.go) and the musa-dse CLI share this one pipeline.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"musa/internal/apps"
	"musa/internal/dse"
	"musa/internal/store"
)

// Config tunes a Service.
type Config struct {
	// Workers bounds dse.Run parallelism inside one job (0 = GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently executing simulation jobs across all
	// requests (0 = 2). Requests beyond the bound queue.
	MaxJobs int
	// SampleInstrs / WarmupInstrs / Seed are applied to requests that leave
	// the corresponding field zero (zero sample/warmup fall through to the
	// simulator defaults).
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64
}

// Stats counts what the service did since start.
type Stats struct {
	// Requests is the number of single-measurement requests served.
	Requests int64
	// StoreHits counts measurements served from the result store.
	StoreHits int64
	// Coalesced counts requests that piggybacked on an identical in-flight
	// computation instead of simulating again.
	Coalesced int64
	// Simulated counts measurements actually computed.
	Simulated int64
}

// call is one in-flight single-measurement computation that duplicate
// requests wait on.
type call struct {
	done chan struct{}
	m    dse.Measurement
	err  error
}

// Service schedules simulation jobs against a shared result store.
type Service struct {
	st  *store.Store
	cfg Config
	sem chan struct{}

	mu     sync.Mutex
	flight map[string]*call

	requests, storeHits, coalesced, simulated atomic.Int64
}

// New returns a service backed by st (which must be non-nil; the service
// does not close it).
func New(st *store.Store, cfg Config) *Service {
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	return &Service{
		st:     st,
		cfg:    cfg,
		sem:    make(chan struct{}, maxJobs),
		flight: map[string]*call{},
	}
}

// Store exposes the backing result store (read-mostly: the HTTP layer
// reports its size).
func (s *Service) Store() *store.Store { return s.st }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		StoreHits: s.storeHits.Load(),
		Coalesced: s.coalesced.Load(),
		Simulated: s.simulated.Load(),
	}
}

// fill applies the service defaults to a request and normalizes it.
func (s *Service) fill(r store.Request) store.Request {
	if r.SampleInstrs == 0 {
		r.SampleInstrs = s.cfg.SampleInstrs
	}
	if r.WarmupInstrs == 0 {
		r.WarmupInstrs = s.cfg.WarmupInstrs
	}
	if r.Seed == 0 {
		r.Seed = s.cfg.Seed
	}
	return r.Normalize()
}

// acquire takes a job slot, honoring cancellation while queued.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.sem }

// Simulate returns the measurement for one request, serving from the store
// when possible and coalescing duplicate in-flight requests into a single
// computation. The second return reports whether the result came from the
// store or an in-flight duplicate rather than a fresh simulation.
func (s *Service) Simulate(ctx context.Context, req store.Request) (dse.Measurement, bool, error) {
	s.requests.Add(1)
	req = s.fill(req)
	app, err := apps.ByName(req.App)
	if err != nil {
		return dse.Measurement{}, false, err
	}
	key := store.Key(req)
	if m, ok := s.st.Get(key); ok {
		s.storeHits.Add(1)
		return m, true, nil
	}

	// Single flight: the first request under a key computes; duplicates
	// arriving before it finishes wait on the same call.
	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-c.done:
			return c.m, true, c.err
		case <-ctx.Done():
			return dse.Measurement{}, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	// The leader computes under a context detached from its own request:
	// coalesced waiters (and the store) want the result even if the leader
	// disconnects, and a canceled leader must not hand its ctx error to
	// waiters whose contexts are live.
	c.m, c.err = s.simulateOne(context.WithoutCancel(ctx), app, req, key)
	s.mu.Lock()
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.m, false, c.err
}

// simulateOne runs a one-point sweep under a job slot and checkpoints the
// result.
func (s *Service) simulateOne(ctx context.Context, app *apps.Profile, req store.Request, key string) (dse.Measurement, error) {
	if err := s.acquire(ctx); err != nil {
		return dse.Measurement{}, err
	}
	defer s.release()
	d := dse.Run(dse.Options{
		Apps:         []*apps.Profile{app},
		Points:       []dse.ArchPoint{req.Arch},
		SampleInstrs: req.SampleInstrs,
		WarmupInstrs: req.WarmupInstrs,
		Workers:      1,
		Seed:         req.Seed,
	})
	if len(d.Measurements) != 1 {
		return dse.Measurement{}, fmt.Errorf("serve: expected 1 measurement, got %d", len(d.Measurements))
	}
	s.simulated.Add(1)
	m := d.Measurements[0]
	if err := s.st.Put(key, m); err != nil {
		return m, err
	}
	return m, nil
}

// SweepRequest describes a batch sweep.
type SweepRequest struct {
	// Apps restricts the sweep (nil = all five applications).
	Apps []string
	// Points restricts the sweep (nil = the full Table I grid).
	Points []dse.ArchPoint
	// SampleInstrs / WarmupInstrs / Seed follow the service defaults when
	// zero.
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64
}

// Progress is one sweep progress notification.
type Progress struct {
	// Done of Total measurements are complete; Cached of those were served
	// from the result store.
	Done, Total, Cached int
}

// Sweep runs the batch, serving finished points from the store and
// checkpointing each fresh measurement as it completes. Cancelling ctx
// aborts the sweep after the points in flight; the checkpoint makes a
// subsequent identical Sweep resume where this one stopped. The returned
// error is ctx.Err() on cancellation, or the first store write error.
func (s *Service) Sweep(ctx context.Context, req SweepRequest, progress func(Progress)) (*dse.Dataset, error) {
	base := s.fill(store.Request{
		SampleInstrs: req.SampleInstrs,
		WarmupInstrs: req.WarmupInstrs,
		Seed:         req.Seed,
	})
	var selected []*apps.Profile
	for _, name := range req.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		selected = append(selected, a)
	}

	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()

	opts := dse.Options{
		Apps:         selected,
		Points:       req.Points,
		SampleInstrs: base.SampleInstrs,
		WarmupInstrs: base.WarmupInstrs,
		Workers:      s.cfg.Workers,
		Seed:         base.Seed,
		Cancel:       ctx.Done(),
	}
	flush := store.Bind(s.st, base, &opts, false)
	// Decorate the store wiring with the service counters.
	var cached atomic.Int64
	lookup := opts.Lookup
	opts.Lookup = func(app string, p dse.ArchPoint) (dse.Measurement, bool) {
		m, ok := lookup(app, p)
		if ok {
			cached.Add(1)
			s.storeHits.Add(1)
		}
		return m, ok
	}
	checkpoint := opts.OnMeasurement
	opts.OnMeasurement = func(m dse.Measurement) {
		s.simulated.Add(1)
		checkpoint(m)
	}
	if progress != nil {
		opts.Progress = func(done, total int) {
			progress(Progress{Done: done, Total: total, Cached: int(cached.Load())})
		}
	}
	d := dse.Run(opts)
	if err := ctx.Err(); err != nil {
		return d, err
	}
	return d, flush()
}

// SortedApps returns the built-in application names in plotting order (the
// /apps endpoint and point listings rely on a stable order).
func SortedApps() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

// PointByIndex resolves an index into the full Table I grid.
func PointByIndex(i int) (dse.ArchPoint, error) {
	grid := dse.Enumerate()
	if i < 0 || i >= len(grid) {
		return dse.ArchPoint{}, fmt.Errorf("serve: point index %d out of range [0,%d)", i, len(grid))
	}
	return grid[i], nil
}
