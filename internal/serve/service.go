// Package serve is the simulation service layer: a job scheduler on top of
// dse.Run with single-flight coalescing of duplicate in-flight requests,
// bounded job concurrency, and incremental checkpointing of sweeps through
// the content-addressed result store (internal/store). The HTTP API of
// cmd/musa-serve (http.go) and the musa-dse CLI share this one pipeline.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"musa/internal/apps"
	"musa/internal/dse"
	"musa/internal/net"
	"musa/internal/store"
)

// Config tunes a Service.
type Config struct {
	// Workers bounds dse.Run parallelism inside one job (0 = GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently executing simulation jobs across all
	// requests (0 = 2). Requests beyond the bound queue.
	MaxJobs int
	// SampleInstrs / WarmupInstrs / Seed are applied to requests that leave
	// the corresponding field zero (zero sample/warmup fall through to the
	// simulator defaults).
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64

	// ReplayRanks sets the default cluster-stage rank counts per
	// measurement (nil = 64 and 256); NoReplay disables the replay stage
	// by default. Requests can override both.
	ReplayRanks []int
	NoReplay    bool
	// Network names the default interconnect model ("" = "mn4").
	Network string
}

// Stats counts what the service did since start.
type Stats struct {
	// Requests is the number of single-measurement requests served.
	Requests int64
	// StoreHits counts measurements served from the result store.
	StoreHits int64
	// Coalesced counts requests that piggybacked on an identical in-flight
	// computation instead of simulating again.
	Coalesced int64
	// Simulated counts measurements actually computed.
	Simulated int64
}

// call is one in-flight single-measurement computation that duplicate
// requests wait on.
type call struct {
	done chan struct{}
	m    dse.Measurement
	err  error
}

// Service schedules simulation jobs against a shared result store.
type Service struct {
	st  *store.Store
	cfg Config
	sem chan struct{}
	// replay is the normalized default replay configuration (per-request
	// overrides start from it); network is the resolved default model,
	// valid even when the replay default is disabled, so rank-list
	// overrides on a NoReplay server still hash and replay consistently.
	replay  dse.ReplayConfig
	network net.Model

	mu     sync.Mutex
	flight map[string]*call

	requests, storeHits, coalesced, simulated atomic.Int64
}

// ResolveNetwork maps a network scenario name onto its model ("" = the
// default "mn4").
func ResolveNetwork(name string) (net.Model, error) {
	if name == "" {
		name = "mn4"
	}
	return net.ByName(name)
}

// New returns a service backed by st (which must be non-nil; the service
// does not close it). It fails on an unresolvable default network name.
func New(st *store.Store, cfg Config) (*Service, error) {
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	network, err := ResolveNetwork(cfg.Network)
	if err != nil {
		return nil, err
	}
	return &Service{
		st:  st,
		cfg: cfg,
		sem: make(chan struct{}, maxJobs),
		replay: dse.ReplayConfig{
			Disable: cfg.NoReplay,
			Ranks:   cfg.ReplayRanks,
			Network: network,
		}.Normalized(),
		network: network,
		flight:  map[string]*call{},
	}, nil
}

// Replay exposes the service's default replay configuration (the /stats
// endpoint reports it).
func (s *Service) Replay() dse.ReplayConfig { return s.replay }

// Store exposes the backing result store (read-mostly: the HTTP layer
// reports its size).
func (s *Service) Store() *store.Store { return s.st }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		StoreHits: s.storeHits.Load(),
		Coalesced: s.coalesced.Load(),
		Simulated: s.simulated.Load(),
	}
}

// fill applies the service defaults to a request and normalizes it. A nil
// ReplayRanks picks up the service's replay defaults; an explicit empty
// slice means node-only and stays that way.
func (s *Service) fill(r store.Request) store.Request {
	if r.SampleInstrs == 0 {
		r.SampleInstrs = s.cfg.SampleInstrs
	}
	if r.WarmupInstrs == 0 {
		r.WarmupInstrs = s.cfg.WarmupInstrs
	}
	if r.Seed == 0 {
		r.Seed = s.cfg.Seed
	}
	if r.ReplayRanks == nil && !s.replay.Disable {
		r.ReplayRanks = s.replay.Ranks
	}
	if len(r.ReplayRanks) > 0 && r.Network == (net.Model{}) {
		// s.network, not s.replay.Network: the latter is zeroed on a
		// NoReplay server, which would make /simulate and /dse hash the
		// same mn4-replayed measurement to different keys.
		r.Network = s.network
	}
	return r.Normalize()
}

// replayOf reconstructs the runner's replay configuration from a filled
// request.
func replayOf(r store.Request) dse.ReplayConfig {
	return dse.ReplayConfig{
		Disable: len(r.ReplayRanks) == 0,
		Ranks:   r.ReplayRanks,
		Network: r.Network,
	}.Normalized()
}

// acquire takes a job slot, honoring cancellation while queued.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.sem }

// Simulate returns the measurement for one request, serving from the store
// when possible and coalescing duplicate in-flight requests into a single
// computation. The second return reports whether the result came from the
// store or an in-flight duplicate rather than a fresh simulation.
func (s *Service) Simulate(ctx context.Context, req store.Request) (dse.Measurement, bool, error) {
	s.requests.Add(1)
	req = s.fill(req)
	app, err := apps.ByName(req.App)
	if err != nil {
		return dse.Measurement{}, false, err
	}
	key := store.Key(req)
	if m, ok := s.st.Get(key); ok {
		s.storeHits.Add(1)
		return m, true, nil
	}

	// Single flight: the first request under a key computes; duplicates
	// arriving before it finishes wait on the same call.
	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-c.done:
			return c.m, true, c.err
		case <-ctx.Done():
			return dse.Measurement{}, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	// The leader computes under a context detached from its own request:
	// coalesced waiters (and the store) want the result even if the leader
	// disconnects, and a canceled leader must not hand its ctx error to
	// waiters whose contexts are live.
	c.m, c.err = s.simulateOne(context.WithoutCancel(ctx), app, req, key)
	s.mu.Lock()
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.m, false, c.err
}

// simulateOne runs a one-point sweep under a job slot and checkpoints the
// result.
func (s *Service) simulateOne(ctx context.Context, app *apps.Profile, req store.Request, key string) (dse.Measurement, error) {
	if err := s.acquire(ctx); err != nil {
		return dse.Measurement{}, err
	}
	defer s.release()
	d := dse.Run(dse.Options{
		Apps:         []*apps.Profile{app},
		Points:       []dse.ArchPoint{req.Arch},
		SampleInstrs: req.SampleInstrs,
		WarmupInstrs: req.WarmupInstrs,
		Workers:      1,
		Seed:         req.Seed,
		Replay:       replayOf(req),
	})
	if len(d.Measurements) != 1 {
		return dse.Measurement{}, fmt.Errorf("serve: expected 1 measurement, got %d", len(d.Measurements))
	}
	s.simulated.Add(1)
	m := d.Measurements[0]
	if err := s.st.Put(key, m); err != nil {
		return m, err
	}
	return m, nil
}

// SweepRequest describes a batch sweep.
type SweepRequest struct {
	// Apps restricts the sweep (nil = all five applications).
	Apps []string
	// Points restricts the sweep (nil = the full Table I grid).
	Points []dse.ArchPoint
	// SampleInstrs / WarmupInstrs / Seed follow the service defaults when
	// zero.
	SampleInstrs int64
	WarmupInstrs int64
	Seed         uint64

	// ReplayRanks overrides the cluster-stage rank counts (nil = service
	// default); NoReplay disables the replay stage for this sweep; Network
	// names the interconnect model ("" = service default).
	ReplayRanks []int
	NoReplay    bool
	Network     string
}

// Progress is one sweep progress notification.
type Progress struct {
	// Done of Total measurements are complete; Cached of those were served
	// from the result store.
	Done, Total, Cached int
}

// Sweep runs the batch, serving finished points from the store and
// checkpointing each fresh measurement as it completes. Cancelling ctx
// aborts the sweep after the points in flight; the checkpoint makes a
// subsequent identical Sweep resume where this one stopped. The returned
// error is ctx.Err() on cancellation, or the first store write error.
func (s *Service) Sweep(ctx context.Context, req SweepRequest, progress func(Progress)) (*dse.Dataset, error) {
	// Resolve the sweep's replay configuration: request overrides layered
	// over the service defaults. An explicit rank list enables the replay
	// stage even on a NoReplay server, mirroring the /simulate path.
	rc := s.replay
	if req.NoReplay {
		rc = dse.ReplayConfig{Disable: true}
	} else {
		if req.ReplayRanks != nil {
			if err := dse.ValidateReplayRanks(req.ReplayRanks); err != nil {
				return nil, err
			}
			rc.Ranks = req.ReplayRanks
			rc.Disable = false
			if rc.Network == (net.Model{}) {
				rc.Network = s.network // zeroed when the default is NoReplay
			}
		}
		if req.Network != "" {
			network, err := ResolveNetwork(req.Network)
			if err != nil {
				return nil, err
			}
			rc.Network = network
		}
		rc = rc.Normalized()
	}
	base := s.fill(store.Request{
		SampleInstrs: req.SampleInstrs,
		WarmupInstrs: req.WarmupInstrs,
		Seed:         req.Seed,
		ReplayRanks:  append([]int{}, rc.Ranks...), // empty (not nil) when disabled
		Network:      rc.Network,
	})
	var selected []*apps.Profile
	for _, name := range req.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		selected = append(selected, a)
	}

	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()

	opts := dse.Options{
		Apps:         selected,
		Points:       req.Points,
		SampleInstrs: base.SampleInstrs,
		WarmupInstrs: base.WarmupInstrs,
		Workers:      s.cfg.Workers,
		Seed:         base.Seed,
		Cancel:       ctx.Done(),
		Replay:       rc,
	}
	flush := store.Bind(s.st, base, &opts, false)
	// Decorate the store wiring with the service counters.
	var cached atomic.Int64
	lookup := opts.Lookup
	opts.Lookup = func(app string, p dse.ArchPoint) (dse.Measurement, bool) {
		m, ok := lookup(app, p)
		if ok {
			cached.Add(1)
			s.storeHits.Add(1)
		}
		return m, ok
	}
	checkpoint := opts.OnMeasurement
	opts.OnMeasurement = func(m dse.Measurement) {
		s.simulated.Add(1)
		checkpoint(m)
	}
	if progress != nil {
		opts.Progress = func(done, total int) {
			progress(Progress{Done: done, Total: total, Cached: int(cached.Load())})
		}
	}
	d := dse.Run(opts)
	if err := ctx.Err(); err != nil {
		return d, err
	}
	return d, flush()
}

// SortedApps returns the built-in application names in plotting order (the
// /apps endpoint and point listings rely on a stable order).
func SortedApps() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

// PointByIndex resolves an index into the full Table I grid.
func PointByIndex(i int) (dse.ArchPoint, error) {
	grid := dse.Enumerate()
	if i < 0 || i >= len(grid) {
		return dse.ArchPoint{}, fmt.Errorf("serve: point index %d out of range [0,%d)", i, len(grid))
	}
	return grid[i], nil
}
