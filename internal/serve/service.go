// Package serve is the HTTP face of the simulation pipeline: its handlers
// decode requests straight into musa.Experiment — the one validated request
// type of the public API — and execute them through musa.Client, which owns
// the content-addressed result store, single-flight coalescing of duplicate
// in-flight requests and the bounded job pool. cmd/musa-serve and the
// musa-dse CLI therefore share one pipeline and one cache.
package serve

import (
	"net/http"
	"sync/atomic"

	"musa"
	"musa/internal/obs"
)

// Service wraps the shared musa.Client for the HTTP handlers, plus the
// replica-local serve-tier state: the bounded admission queue, the
// draining flag, and the ring routing mode. The ring itself lives on the
// client (musa.ClientOptions.Ring) so the artifact layer and the serve
// handlers share one membership view.
type Service struct {
	c *musa.Client

	// Serve-tier state, configured by NewHandler from its Options.
	adm          *admission
	ringRedirect bool
	draining     atomic.Bool
	reg          *obs.Registry
	proxyc       *http.Client
}

// New returns a service executing requests through c. The client (and its
// store) stays owned by the caller; the service does not close it.
func New(c *musa.Client) *Service {
	return &Service{c: c, proxyc: http.DefaultClient}
}

// Client exposes the underlying client (the /stats endpoint reports its
// counters and store size).
func (s *Service) Client() *musa.Client { return s.c }
