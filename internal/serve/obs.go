package serve

import (
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"musa/internal/obs"
)

// Observability skin of the HTTP API: every request is wrapped in a trace
// span (grafted under a coordinator's dispatch span when the X-Musa-Trace
// header is present), counted and timed per route, and optionally access-
// logged. The middleware reads the matched route from http.Request.Pattern
// after the mux has dispatched, so metrics label by pattern ("POST /shard"),
// never by raw path — an attacker probing random URLs cannot mint unbounded
// metric series.

// handlerConfig collects the NewHandler options.
type handlerConfig struct {
	reg          *obs.Registry
	rec          *obs.Recorder
	pprof        bool
	accessLog    *log.Logger
	admitLimit   int
	admitQueue   int
	retryAfter   time.Duration
	ringRedirect bool
}

// Option configures NewHandler.
type Option func(*handlerConfig)

// WithAdmission bounds the heavy endpoints (POST /simulate, /dse, /shard):
// at most limit requests execute concurrently, at most queue more wait,
// and the rest are shed with 429 + Retry-After. limit <= 0 disables
// admission control (the library default; cmd/musa-serve enables it).
func WithAdmission(limit, queue int) Option {
	return func(c *handlerConfig) { c.admitLimit, c.admitQueue = limit, queue }
}

// WithRetryAfter sets the Retry-After hint on shed responses (default 1s).
func WithRetryAfter(d time.Duration) Option {
	return func(c *handlerConfig) { c.retryAfter = d }
}

// WithRingRedirect answers non-owned /simulate requests with a 307 to the
// owner replica instead of proxying server-side. Cheaper for the replica,
// but requires redirect-following clients.
func WithRingRedirect() Option { return func(c *handlerConfig) { c.ringRedirect = true } }

// WithPprof exposes the runtime profiler under GET /debug/pprof/. Off by
// default: profiles reveal memory contents, so the operator opts in
// (musa-serve -pprof).
func WithPprof() Option { return func(c *handlerConfig) { c.pprof = true } }

// WithAccessLog logs one line per completed request to l.
func WithAccessLog(l *log.Logger) Option { return func(c *handlerConfig) { c.accessLog = l } }

// WithRegistry directs the handler's metrics (and GET /metrics) to reg
// instead of the process-wide default registry.
func WithRegistry(reg *obs.Registry) Option { return func(c *handlerConfig) { c.reg = reg } }

// WithRecorder directs the handler's spans (and GET /debug/trace) to rec
// instead of the process-wide default ring.
func WithRecorder(rec *obs.Recorder) Option { return func(c *handlerConfig) { c.rec = rec } }

// respWriter captures the status code and body size of a response, and
// forwards Flush so streaming handlers (POST /dse's NDJSON events) still
// reach the client incrementally through the middleware.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher whatever the underlying writer supports, so
// the handleDSE flusher type-assertion always finds one; flushing an
// unbuffered writer is a no-op.
func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass folds a status code into its Prometheus label ("2xx", "4xx").
func statusClass(status int) string {
	return strconv.Itoa(status/100) + "xx"
}

// instrument wraps the routing mux with the request span, the per-route
// metrics and the access log.
func instrument(next http.Handler, cfg *handlerConfig) http.Handler {
	inFlight := cfg.reg.Gauge("musa_http_requests_in_flight",
		"HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.WithRecorder(r.Context(), cfg.rec)
		if tid, sid, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
			ctx = obs.ContextWithRemote(ctx, tid, sid)
		}
		ctx, span := obs.StartSpan(ctx, "http.request",
			obs.A("method", r.Method), obs.A("path", r.URL.Path))
		inFlight.Add(1)
		start := time.Now()
		rw := &respWriter{ResponseWriter: w}
		// The mux sets r.Pattern on this request in place, so the matched
		// route is readable here once ServeHTTP returns.
		r = r.WithContext(ctx)
		next.ServeHTTP(rw, r)
		dur := time.Since(start)
		inFlight.Add(-1)
		status := rw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		cfg.reg.Counter("musa_http_requests_total",
			"HTTP requests served, by route and status class.",
			obs.L("route", route), obs.L("code", statusClass(status))).Inc()
		cfg.reg.Histogram("musa_http_request_duration_seconds",
			"HTTP request duration by route.", nil, obs.L("route", route)).
			Observe(dur.Seconds())
		span.SetAttr("route", route)
		span.SetAttr("status", strconv.Itoa(status))
		span.End()
		if cfg.accessLog != nil {
			cfg.accessLog.Printf("%s %s %d %dB %s route=%q trace=%s",
				r.Method, r.URL.Path, status, rw.bytes,
				dur.Round(time.Microsecond), route, span.HeaderValue())
		}
	})
}

// registerObsRoutes adds the observability endpoints to the mux.
func registerObsRoutes(mux *http.ServeMux, cfg *handlerConfig) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.reg.WritePrometheus(w)
	})
	// The recorded span ring: NDJSON by default, ?format=chrome for a
	// chrome://tracing / Perfetto-loadable document.
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			cfg.rec.WriteChromeTrace(w)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.rec.WriteNDJSON(w)
	})
	if cfg.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}
