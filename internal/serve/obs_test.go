package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"musa/internal/obs"
)

// obsServer is testServer with an isolated registry and span ring, so
// assertions about counters and spans see only this test's traffic.
func obsServer(t *testing.T) (*httptest.Server, *Service, *obs.Registry, *obs.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(4096)
	svc := testService(t, t.TempDir())
	ts := httptest.NewServer(NewHandler(svc, WithRegistry(reg), WithRecorder(rec)))
	t.Cleanup(ts.Close)
	return ts, svc, reg, rec
}

// promLine matches one exposition sample: name, optional label set, value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// parseProm strictly parses a Prometheus text exposition body: every sample
// line must match the grammar and belong to a family declared by a # TYPE
// line above it. Returns sample values keyed by "name{labels}".
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %q", ln+1, line)
		}
		name := m[1]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, m[3], err)
		}
		samples[name+m[2]] = v
	}
	return samples
}

// TestMetricsEndpoint drives real traffic through the handler and asserts
// GET /metrics renders it in valid Prometheus text format: per-route HTTP
// histograms, request counters and the bridged client/store/artifact
// counters all present.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, _, _ := obsServer(t)

	if code := getJSON(t, ts.URL+"/apps", nil); code != http.StatusOK {
		t.Fatalf("GET /apps = %d", code)
	}
	var sim map[string]any
	if code := postJSON(t, ts.URL+"/simulate", `{"app":"lulesh","pointIndex":0}`, &sim); code != http.StatusOK {
		t.Fatalf("POST /simulate = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, ct := readBody(t, resp), resp.Header.Get("Content-Type")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type = %q", ct)
	}
	samples := parseProm(t, body)

	if v := samples[`musa_http_requests_total{code="2xx",route="GET /apps"}`]; v != 1 {
		t.Fatalf("GET /apps request counter = %v, want 1", v)
	}
	if v := samples[`musa_http_request_duration_seconds_count{route="POST /simulate"}`]; v != 1 {
		t.Fatalf("/simulate duration count = %v, want 1", v)
	}
	if v := samples[`musa_http_request_duration_seconds_bucket{route="POST /simulate",le="+Inf"}`]; v != 1 {
		t.Fatalf("/simulate +Inf bucket = %v, want 1", v)
	}
	// The bridged client counters: the fresh simulate was a store miss, then
	// a simulation.
	if v := samples[`musa_store_misses_total`]; v != 1 {
		t.Fatalf("store misses = %v, want 1", v)
	}
	if v := samples[`musa_client_simulated_total`]; v != 1 {
		t.Fatalf("simulated = %v, want 1", v)
	}
	for _, name := range []string{
		`musa_store_hits_total`,
		`musa_store_entries`,
		`musa_http_requests_in_flight`,
		`musa_artifact_hits_total{kind="hit-rates"}`,
		`musa_artifact_bytes_total{direction="written"}`,
	} {
		if _, ok := samples[name]; !ok {
			t.Fatalf("metric %s absent from /metrics", name)
		}
	}
	// The dse stage histogram flows through the default registry (package
	// global), not the per-test one; its presence is asserted by the obs and
	// CLI layers. Here the scrape-format invariant matters: every histogram's
	// +Inf bucket equals its _count.
	for k, v := range samples {
		if i := strings.Index(k, `_bucket{`); i >= 0 && strings.Contains(k, `le="+Inf"`) {
			base := k[:i]
			lbl := k[i+len(`_bucket`):]
			lbl = strings.Replace(lbl, `le="+Inf",`, "", 1)
			lbl = strings.Replace(lbl, `,le="+Inf"`, "", 1)
			lbl = strings.Replace(lbl, `{le="+Inf"}`, "", 1)
			if c, ok := samples[base+"_count"+lbl]; ok && c != v {
				t.Fatalf("%s +Inf bucket %v != count %v", base, v, c)
			}
		}
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTracePropagation sends a request carrying X-Musa-Trace and asserts the
// whole server-side span tree — request span and the client.run span under
// it — grafts into the remote trace.
func TestTracePropagation(t *testing.T) {
	ts, _, _, rec := obsServer(t)

	const traceID, parentID = "00000000000000aa", "00000000000000bb"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/simulate",
		strings.NewReader(`{"app":"lulesh","pointIndex":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID+":"+parentID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /simulate = %d", resp.StatusCode)
	}

	var reqSpan, runSpan *obs.Span
	spans := rec.Spans()
	for i := range spans {
		switch spans[i].Name {
		case "http.request":
			reqSpan = &spans[i]
		case "client.run":
			runSpan = &spans[i]
		}
	}
	if reqSpan == nil || runSpan == nil {
		t.Fatalf("missing spans: request=%v run=%v (have %d spans)", reqSpan, runSpan, len(spans))
	}
	if reqSpan.TraceID != traceID || reqSpan.Parent != parentID {
		t.Fatalf("request span trace=%s parent=%s, want %s/%s",
			reqSpan.TraceID, reqSpan.Parent, traceID, parentID)
	}
	if runSpan.TraceID != traceID || runSpan.Parent != reqSpan.SpanID {
		t.Fatalf("client.run span trace=%s parent=%s, want %s/%s",
			runSpan.TraceID, runSpan.Parent, traceID, reqSpan.SpanID)
	}
	// The matched route is attached after dispatch.
	var route string
	for _, a := range reqSpan.Attrs {
		if a.Key == "route" {
			route = a.Value
		}
	}
	if route != "POST /simulate" {
		t.Fatalf("request span route attr = %q", route)
	}
}

// TestDebugTraceEndpoint checks both export formats of the span ring.
func TestDebugTraceEndpoint(t *testing.T) {
	ts, _, _, _ := obsServer(t)
	if code := getJSON(t, ts.URL+"/apps", nil); code != http.StatusOK {
		t.Fatal("GET /apps failed")
	}

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	found := false
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var span struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("NDJSON line %q: %v", line, err)
		}
		found = found || span.Name == "http.request"
	}
	if !found {
		t.Fatal("/debug/trace NDJSON holds no http.request span")
	}

	resp, err = http.Get(ts.URL + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(readBody(t, resp)), &doc); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 || doc.TraceEvents[0].Ph != "X" {
		t.Fatalf("chrome trace events malformed: %+v", doc.TraceEvents)
	}
}

// TestArtifactErrorPaths exercises the PUT/GET /artifact rejection paths —
// malformed key, mis-keyed envelope, oversized body — and asserts the
// artifact-cache counters do not advance for any of them.
func TestArtifactErrorPaths(t *testing.T) {
	ts, svc, _, _ := obsServer(t)
	before := svc.Client().Snapshot().Artifacts.Stats

	put := func(key, body string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/artifact/"+key, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	keyA := strings.Repeat("aa", 32)
	keyB := strings.Repeat("bb", 32)

	// Malformed keys: wrong length, non-hex, uppercase hex.
	for _, bad := range []string{"zz", keyA[:40], strings.ToUpper(keyA)} {
		if code := getJSON(t, ts.URL+"/artifact/"+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("GET bad key %q = %d, want 400", bad, code)
		}
		if code := put(bad, "{}"); code != http.StatusBadRequest {
			t.Fatalf("PUT bad key %q = %d, want 400", bad, code)
		}
	}

	// A well-formed envelope bound to a different key must be refused: the
	// content address is the integrity check of the whole exchange.
	misKeyed := fmt.Sprintf(`{"schema":1,"key":%q,"kind":"latency-model","data":{}}`, keyB)
	if code := put(keyA, misKeyed); code != http.StatusBadRequest {
		t.Fatalf("PUT mis-keyed envelope = %d, want 400", code)
	}

	// Oversized body: shrink the cap rather than shipping 256 MB.
	defer func(old int64) { maxArtifactBytes = old }(maxArtifactBytes)
	maxArtifactBytes = 64
	if code := put(keyA, strings.Repeat("x", 100)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("PUT oversized body = %d, want 413", code)
	}

	if after := svc.Client().Snapshot().Artifacts.Stats; after != before {
		t.Fatalf("artifact counters advanced on error paths:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestHTTPErrorSanitizesInternal asserts the satellite contract of
// httpError: 4xx messages reach the client verbatim (validation feedback),
// 5xx bodies carry only the status text while the full error goes to the
// server log.
func TestHTTPErrorSanitizes(t *testing.T) {
	var logBuf bytes.Buffer
	SetErrorLog(log.New(&logBuf, "", 0))
	defer SetErrorLog(nil)

	secret := fmt.Errorf("pipeline exploded at /var/lib/musa/cache: permission denied")

	rr := httptest.NewRecorder()
	httpError(rr, http.StatusInternalServerError, secret)
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["error"] != http.StatusText(http.StatusInternalServerError) {
		t.Fatalf("500 body leaked %q", body["error"])
	}
	if !strings.Contains(logBuf.String(), secret.Error()) {
		t.Fatalf("500 error not logged server-side: %q", logBuf.String())
	}

	rr = httptest.NewRecorder()
	httpError(rr, http.StatusBadRequest, fmt.Errorf("bad sample count"))
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["error"] != "bad sample count" {
		t.Fatalf("400 body = %q, want the verbatim message", body["error"])
	}
}

// TestMiddlewarePreservesFlusher asserts streaming handlers behind the
// instrumentation middleware still see an http.Flusher — the contract the
// /dse NDJSON stream depends on.
func TestMiddlewarePreservesFlusher(t *testing.T) {
	cfg := &handlerConfig{reg: obs.NewRegistry(), rec: obs.NewRecorder(16)}
	sawFlusher := false
	h := instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		w.Write([]byte("x"))
		if ok {
			f.Flush()
		}
	}), cfg)
	rr := httptest.NewRecorder() // httptest.ResponseRecorder implements Flusher
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/anything", nil))
	if !sawFlusher {
		t.Fatal("middleware hid http.Flusher from the handler")
	}
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
}
