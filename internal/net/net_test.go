package net

import (
	"math"
	"testing"

	"musa/internal/apps"
	"musa/internal/trace"
)

func model() Model { return MareNostrum4() }

func computeOnly(ranks int, durNs float64) *trace.Burst {
	b := &trace.Burst{App: "t", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < ranks; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: durNs},
		}})
	}
	return b
}

func TestModelValidate(t *testing.T) {
	if err := model().Validate(); err != nil {
		t.Error(err)
	}
	if (Model{}).Validate() == nil {
		t.Error("zero model validated")
	}
}

func TestComputeOnlyReplay(t *testing.T) {
	res := Replay(computeOnly(4, 1000), model(), nil)
	if res.MakespanNs != 1000 {
		t.Errorf("makespan = %v, want 1000", res.MakespanNs)
	}
	if e := res.AvgParallelEfficiency(); math.Abs(e-1) > 1e-9 {
		t.Errorf("efficiency = %v, want 1", e)
	}
	if res.MPIFraction() != 0 {
		t.Errorf("MPI fraction = %v, want 0", res.MPIFraction())
	}
}

func TestComputeScale(t *testing.T) {
	res := Replay(computeOnly(4, 1000), model(), func(rank int, d float64) float64 { return d / 2 })
	if res.MakespanNs != 500 {
		t.Errorf("scaled makespan = %v, want 500", res.MakespanNs)
	}
}

func TestPingPong(t *testing.T) {
	// Rank 0 sends 1 MB to rank 1; rank 1 receives then computes.
	b := &trace.Burst{App: "pp"}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{{Kind: trace.EvSend, Peer: 1, Bytes: 1 << 20}}},
		{Rank: 1, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 0, Bytes: 1 << 20}}},
	}
	m := model()
	res := Replay(b, m, nil)
	wantWire := m.transferNs(1 << 20)
	if res.MakespanNs < wantWire {
		t.Errorf("makespan %v below wire time %v", res.MakespanNs, wantWire)
	}
	if res.Ranks[1].P2PNs <= 0 {
		t.Error("receiver recorded no P2P wait")
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	// Rank 1 posts the recv first (rank 0 computes long before sending):
	// the receiver must wait for compute + transfer.
	b := &trace.Burst{App: "late", Regions: []trace.RegionInfo{{Name: "r"}}}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 50000},
			{Kind: trace.EvSend, Peer: 1, Bytes: 4096},
		}},
		{Rank: 1, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 0, Bytes: 4096}}},
	}
	res := Replay(b, model(), nil)
	if res.Ranks[1].FinishNs < 50000 {
		t.Errorf("receiver finished at %v, before sender even computed", res.Ranks[1].FinishNs)
	}
	if res.Ranks[1].P2PNs < 50000 {
		t.Errorf("receiver wait %v does not cover sender compute", res.Ranks[1].P2PNs)
	}
}

func TestRendezvousSenderBlocksUntilRecvPosted(t *testing.T) {
	// Regression for the rendezvous semantics bug: the receiver posts its
	// receive late (after a long compute), and the sender — whose message
	// is far above the eager threshold — must block until the matching
	// receive is posted. The old replay only charged the sender LatencyNs
	// and moved on.
	const lateNs = 500000
	m := model()
	b := &trace.Burst{App: "rdv", Regions: []trace.RegionInfo{{Name: "r"}}}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.EvSend, Peer: 1, Bytes: 1 << 20}, // rendezvous
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: lateNs},
			{Kind: trace.EvRecv, Peer: 0, Bytes: 1 << 20},
		}},
	}
	res := Replay(b, m, nil)
	// The sender's clock must advance to the match point (the receive is
	// posted at lateNs) plus the handshake latency.
	wantSender := lateNs + m.LatencyNs
	if math.Abs(res.Ranks[0].FinishNs-wantSender) > 1e-6 {
		t.Errorf("sender finished at %v, want %v (blocked until the late receive)",
			res.Ranks[0].FinishNs, wantSender)
	}
	if res.Ranks[0].P2PNs < lateNs {
		t.Errorf("sender P2P time %v does not cover the rendezvous block (want >= %v)",
			res.Ranks[0].P2PNs, float64(lateNs))
	}
	// The transfer starts at the match point, not at the send post.
	wantRecv := lateNs + m.transferNs(1<<20)
	if math.Abs(res.Ranks[1].FinishNs-wantRecv) > 1e-6 {
		t.Errorf("receiver finished at %v, want %v", res.Ranks[1].FinishNs, wantRecv)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	// Below the eager threshold the sender must still complete without the
	// receiver being ready.
	m := model()
	b := &trace.Burst{App: "eager", Regions: []trace.RegionInfo{{Name: "r"}}}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.EvSend, Peer: 1, Bytes: 1024},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 500000},
			{Kind: trace.EvRecv, Peer: 0, Bytes: 1024},
		}},
	}
	res := Replay(b, m, nil)
	if res.Ranks[0].FinishNs > m.LatencyNs {
		t.Errorf("eager sender finished at %v, should not block on the receiver",
			res.Ranks[0].FinishNs)
	}
}

func TestBothRendezvousSendsDeadlock(t *testing.T) {
	// Two ranks issuing blocking rendezvous sends at each other before any
	// receive is a genuine MPI deadlock; the replay must detect it rather
	// than let the senders sail through.
	b := &trace.Burst{App: "dl"}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.EvSend, Peer: 1, Bytes: 1 << 20},
			{Kind: trace.EvRecv, Peer: 1, Bytes: 1 << 20},
		}},
		{Rank: 1, Events: []trace.Event{
			{Kind: trace.EvSend, Peer: 0, Bytes: 1 << 20},
			{Kind: trace.EvRecv, Peer: 0, Bytes: 1 << 20},
		}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mutual blocking rendezvous sends")
		}
	}()
	Replay(b, model(), nil)
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	// A full ring of combined sendrecv exchanges above the eager threshold
	// — the pattern plain blocking sends would deadlock on — must replay,
	// and the makespan must stay close to one transfer (the exchanges
	// proceed concurrently, not as an O(ranks) unwind chain).
	const ranks = 8
	m := model()
	b := &trace.Burst{App: "ring"}
	for r := 0; r < ranks; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvSendRecv, Peer: (r + 1) % ranks, RecvPeer: (r + ranks - 1) % ranks, Bytes: 1 << 20},
		}})
	}
	res := Replay(b, m, nil)
	want := m.transferNs(1 << 20)
	if math.Abs(res.MakespanNs-want) > 1e-6 {
		t.Errorf("ring exchange makespan %v, want one concurrent transfer %v", res.MakespanNs, want)
	}
}

func TestCollectiveSynchronizes(t *testing.T) {
	// Ranks with unequal compute meeting at a barrier: everyone leaves
	// together; fast ranks accumulate collective wait (the Fig. 4 effect).
	b := &trace.Burst{App: "bar", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < 4; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: float64(1000 * (r + 1))},
			{Kind: trace.EvBarrier},
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
		}})
	}
	res := Replay(b, model(), nil)
	if res.Ranks[0].CollectiveNs < 2900 {
		t.Errorf("fast rank waited %v, want >= ~3000", res.Ranks[0].CollectiveNs)
	}
	if res.Ranks[3].CollectiveNs > res.Ranks[0].CollectiveNs {
		t.Error("slowest rank waited longer than fastest")
	}
	// All ranks finish together (same post-barrier compute).
	for r := 1; r < 4; r++ {
		if math.Abs(res.Ranks[r].FinishNs-res.Ranks[0].FinishNs) > 1e-9 {
			t.Errorf("rank %d finish %v != rank 0 finish %v", r, res.Ranks[r].FinishNs, res.Ranks[0].FinishNs)
		}
	}
}

func TestMultipleCollectiveGenerations(t *testing.T) {
	b := &trace.Burst{App: "gens", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < 3; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
			{Kind: trace.EvAllReduce, Bytes: 8},
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
			{Kind: trace.EvAllReduce, Bytes: 8},
		}})
	}
	res := Replay(b, model(), nil)
	if res.MakespanNs <= 200 {
		t.Errorf("makespan = %v, collectives free?", res.MakespanNs)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Recv with no matching send must panic, not hang.
	b := &trace.Burst{App: "dead"}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 1, Bytes: 64}}},
		{Rank: 1, Events: []trace.Event{}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unmatched recv")
		}
	}()
	Replay(b, model(), nil)
}

func TestAppTraceReplays(t *testing.T) {
	// End-to-end: a synthesized application burst trace replays cleanly and
	// imbalance shows up as collective waiting. Odd and tiny rank counts
	// exercise the ring-wrap corners of the halo exchange.
	for _, ranks := range []int{2, 3, 5, 32} {
		for _, p := range apps.All() {
			b := apps.BurstTrace(p, ranks, 5)
			res := Replay(b, model(), nil)
			if res.MakespanNs <= 0 {
				t.Fatalf("%s/%d: empty replay", p.Name, ranks)
			}
			eff := res.AvgParallelEfficiency()
			if eff <= 0 || eff > 1 {
				t.Errorf("%s/%d: efficiency %v out of range", p.Name, ranks, eff)
			}
		}
	}
}

func TestNamedModels(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown model name resolved")
	}
}

func TestImbalanceCausesBarrierWaitShape(t *testing.T) {
	// LULESH (high rank imbalance) must lose more time at collectives than
	// HYDRO (low imbalance) — the Fig. 4 story.
	lul := Replay(apps.BurstTrace(apps.LULESH(), 64, 7), model(), nil)
	hyd := Replay(apps.BurstTrace(apps.Hydro(), 64, 7), model(), nil)
	if lul.MPIFraction() <= hyd.MPIFraction() {
		t.Errorf("lulesh MPI frac %v <= hydro %v", lul.MPIFraction(), hyd.MPIFraction())
	}
	if hyd.AvgParallelEfficiency() <= lul.AvgParallelEfficiency() {
		t.Errorf("hydro full-app efficiency %v <= lulesh %v",
			hyd.AvgParallelEfficiency(), lul.AvgParallelEfficiency())
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]float64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %v, want %v", n, got, want)
		}
	}
}

func BenchmarkReplay256Ranks(b *testing.B) {
	tr := apps.BurstTrace(apps.BTMZ(), 256, 1)
	m := model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, m, nil)
	}
}
