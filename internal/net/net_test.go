package net

import (
	"math"
	"testing"

	"musa/internal/apps"
	"musa/internal/trace"
)

func model() Model { return MareNostrum4() }

func computeOnly(ranks int, durNs float64) *trace.Burst {
	b := &trace.Burst{App: "t", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < ranks; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: durNs},
		}})
	}
	return b
}

func TestModelValidate(t *testing.T) {
	if err := model().Validate(); err != nil {
		t.Error(err)
	}
	if (Model{}).Validate() == nil {
		t.Error("zero model validated")
	}
}

func TestComputeOnlyReplay(t *testing.T) {
	res := Replay(computeOnly(4, 1000), model(), nil)
	if res.MakespanNs != 1000 {
		t.Errorf("makespan = %v, want 1000", res.MakespanNs)
	}
	if e := res.AvgParallelEfficiency(); math.Abs(e-1) > 1e-9 {
		t.Errorf("efficiency = %v, want 1", e)
	}
	if res.MPIFraction() != 0 {
		t.Errorf("MPI fraction = %v, want 0", res.MPIFraction())
	}
}

func TestComputeScale(t *testing.T) {
	res := Replay(computeOnly(4, 1000), model(), func(rank int, d float64) float64 { return d / 2 })
	if res.MakespanNs != 500 {
		t.Errorf("scaled makespan = %v, want 500", res.MakespanNs)
	}
}

func TestPingPong(t *testing.T) {
	// Rank 0 sends 1 MB to rank 1; rank 1 receives then computes.
	b := &trace.Burst{App: "pp"}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{{Kind: trace.EvSend, Peer: 1, Bytes: 1 << 20}}},
		{Rank: 1, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 0, Bytes: 1 << 20}}},
	}
	m := model()
	res := Replay(b, m, nil)
	wantWire := m.transferNs(1 << 20)
	if res.MakespanNs < wantWire {
		t.Errorf("makespan %v below wire time %v", res.MakespanNs, wantWire)
	}
	if res.Ranks[1].P2PNs <= 0 {
		t.Error("receiver recorded no P2P wait")
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	// Rank 1 posts the recv first (rank 0 computes long before sending):
	// the receiver must wait for compute + transfer.
	b := &trace.Burst{App: "late", Regions: []trace.RegionInfo{{Name: "r"}}}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 50000},
			{Kind: trace.EvSend, Peer: 1, Bytes: 4096},
		}},
		{Rank: 1, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 0, Bytes: 4096}}},
	}
	res := Replay(b, model(), nil)
	if res.Ranks[1].FinishNs < 50000 {
		t.Errorf("receiver finished at %v, before sender even computed", res.Ranks[1].FinishNs)
	}
	if res.Ranks[1].P2PNs < 50000 {
		t.Errorf("receiver wait %v does not cover sender compute", res.Ranks[1].P2PNs)
	}
}

func TestCollectiveSynchronizes(t *testing.T) {
	// Ranks with unequal compute meeting at a barrier: everyone leaves
	// together; fast ranks accumulate collective wait (the Fig. 4 effect).
	b := &trace.Burst{App: "bar", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < 4; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: float64(1000 * (r + 1))},
			{Kind: trace.EvBarrier},
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
		}})
	}
	res := Replay(b, model(), nil)
	if res.Ranks[0].CollectiveNs < 2900 {
		t.Errorf("fast rank waited %v, want >= ~3000", res.Ranks[0].CollectiveNs)
	}
	if res.Ranks[3].CollectiveNs > res.Ranks[0].CollectiveNs {
		t.Error("slowest rank waited longer than fastest")
	}
	// All ranks finish together (same post-barrier compute).
	for r := 1; r < 4; r++ {
		if math.Abs(res.Ranks[r].FinishNs-res.Ranks[0].FinishNs) > 1e-9 {
			t.Errorf("rank %d finish %v != rank 0 finish %v", r, res.Ranks[r].FinishNs, res.Ranks[0].FinishNs)
		}
	}
}

func TestMultipleCollectiveGenerations(t *testing.T) {
	b := &trace.Burst{App: "gens", Regions: []trace.RegionInfo{{Name: "r"}}}
	for r := 0; r < 3; r++ {
		b.Ranks = append(b.Ranks, trace.RankTrace{Rank: r, Events: []trace.Event{
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
			{Kind: trace.EvAllReduce, Bytes: 8},
			{Kind: trace.EvCompute, RegionID: 0, DurationNs: 100},
			{Kind: trace.EvAllReduce, Bytes: 8},
		}})
	}
	res := Replay(b, model(), nil)
	if res.MakespanNs <= 200 {
		t.Errorf("makespan = %v, collectives free?", res.MakespanNs)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Recv with no matching send must panic, not hang.
	b := &trace.Burst{App: "dead"}
	b.Ranks = []trace.RankTrace{
		{Rank: 0, Events: []trace.Event{{Kind: trace.EvRecv, Peer: 1, Bytes: 64}}},
		{Rank: 1, Events: []trace.Event{}},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unmatched recv")
		}
	}()
	Replay(b, model(), nil)
}

func TestAppTraceReplays(t *testing.T) {
	// End-to-end: a synthesized application burst trace replays cleanly and
	// imbalance shows up as collective waiting.
	for _, p := range apps.All() {
		b := apps.BurstTrace(p, 32, 5)
		res := Replay(b, model(), nil)
		if res.MakespanNs <= 0 {
			t.Fatalf("%s: empty replay", p.Name)
		}
		eff := res.AvgParallelEfficiency()
		if eff <= 0 || eff > 1 {
			t.Errorf("%s: efficiency %v out of range", p.Name, eff)
		}
	}
}

func TestImbalanceCausesBarrierWaitShape(t *testing.T) {
	// LULESH (high rank imbalance) must lose more time at collectives than
	// HYDRO (low imbalance) — the Fig. 4 story.
	lul := Replay(apps.BurstTrace(apps.LULESH(), 64, 7), model(), nil)
	hyd := Replay(apps.BurstTrace(apps.Hydro(), 64, 7), model(), nil)
	if lul.MPIFraction() <= hyd.MPIFraction() {
		t.Errorf("lulesh MPI frac %v <= hydro %v", lul.MPIFraction(), hyd.MPIFraction())
	}
	if hyd.AvgParallelEfficiency() <= lul.AvgParallelEfficiency() {
		t.Errorf("hydro full-app efficiency %v <= lulesh %v",
			hyd.AvgParallelEfficiency(), lul.AvgParallelEfficiency())
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]float64{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %v, want %v", n, got, want)
		}
	}
}

func BenchmarkReplay256Ranks(b *testing.B) {
	tr := apps.BurstTrace(apps.BTMZ(), 256, 1)
	m := model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, m, nil)
	}
}
