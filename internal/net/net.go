// Package net implements the Dimemas-like MPI replay engine of MUSA: it
// replays each rank's burst-trace event sequence — compute bursts (whose
// durations detailed simulation has already rescaled) interleaved with MPI
// operations — against a simple network model with per-link bandwidth,
// end-to-end latency, eager/rendezvous point-to-point semantics and
// log-tree collectives. The output is the application makespan plus the
// per-rank time breakdown the paper visualizes in Figure 4.
package net

import (
	"fmt"

	"musa/internal/sim"
	"musa/internal/trace"
)

// Model is the network performance model (Dimemas' linear model plus a
// per-node injection constraint).
type Model struct {
	// LatencyNs is the end-to-end message latency (software + wire).
	LatencyNs float64
	// BandwidthBps is the per-link (per rank pair) bandwidth in bytes/sec.
	BandwidthBps float64
	// EagerBytes is the eager/rendezvous threshold: messages up to this
	// size complete without the receiver being ready.
	EagerBytes int64
	// CollectiveLatencyNs is the per-hop software cost of a collective.
	CollectiveLatencyNs float64
}

// MareNostrum4 returns a model with bandwidth and latency similar to the
// Marenostrum IV interconnect the paper simulates (100 Gb/s-class fabric,
// ~1.3 us MPI latency).
func MareNostrum4() Model {
	return Model{
		LatencyNs:           1300,
		BandwidthBps:        12.5e9,
		EagerBytes:          16 * 1024,
		CollectiveLatencyNs: 900,
	}
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.LatencyNs < 0 || m.BandwidthBps <= 0 {
		return fmt.Errorf("net: bad model %+v", m)
	}
	return nil
}

// transferNs returns the wire time of one message.
func (m Model) transferNs(bytes int64) float64 {
	return m.LatencyNs + float64(bytes)/m.BandwidthBps*1e9
}

// RankStats is the per-rank time breakdown of a replay.
type RankStats struct {
	ComputeNs    float64
	P2PNs        float64 // blocked in sends/recvs (excluding overlap)
	CollectiveNs float64 // waiting at collectives (load imbalance shows here)
	FinishNs     float64
}

// Result is the outcome of a network replay.
type Result struct {
	MakespanNs float64
	Ranks      []RankStats
}

// AvgParallelEfficiency returns mean(compute) / makespan: the fraction of
// the run spent computing, averaged over ranks.
func (r Result) AvgParallelEfficiency() float64 {
	if r.MakespanNs <= 0 || len(r.Ranks) == 0 {
		return 0
	}
	var c float64
	for _, rs := range r.Ranks {
		c += rs.ComputeNs
	}
	return c / float64(len(r.Ranks)) / r.MakespanNs
}

// MPIFraction returns the mean fraction of time spent in MPI (p2p +
// collectives).
func (r Result) MPIFraction() float64 {
	if r.MakespanNs <= 0 || len(r.Ranks) == 0 {
		return 0
	}
	var m float64
	for _, rs := range r.Ranks {
		m += rs.P2PNs + rs.CollectiveNs
	}
	return m / float64(len(r.Ranks)) / r.MakespanNs
}

// ComputeScale lets the replay rescale traced compute durations, e.g. with
// the node-level speedup obtained from detailed simulation. The function
// receives the rank and the traced duration and returns the replay duration.
type ComputeScale func(rank int, tracedNs float64) float64

// Replay simulates the burst trace against the network model. scale may be
// nil, in which case traced compute durations are replayed unchanged (pure
// burst mode).
//
// Semantics, following Dimemas' replay model:
//   - compute events occupy the rank for their (scaled) duration;
//   - sends are non-blocking up to EagerBytes, then rendezvous: the sender
//     blocks until the matching receive has been posted;
//   - receives block until the message has fully arrived;
//   - collectives are synchronizing: every rank waits for the last one,
//     then pays a log2(ranks) tree cost.
func Replay(b *trace.Burst, m Model, scale ComputeScale) Result {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if err := b.Validate(); err != nil {
		panic(err)
	}
	n := len(b.Ranks)
	res := Result{Ranks: make([]RankStats, n)}

	// Replay is performed with a sequential algorithm over per-rank event
	// cursors (a discrete-event relaxation): point-to-point matching uses
	// FIFO channels per (src, dst) pair, collectives use generation
	// barriers. Each rank keeps a local clock.
	type message struct {
		sendTime float64 // time the send was posted
		bytes    int64
		recvd    bool
	}
	channels := map[[2]int][]*message{}
	clock := make([]float64, n)
	cursor := make([]int, n)
	// Collective bookkeeping: per generation, rank -> arrival time. All
	// collectives are global, so ranks pass generations in lockstep.
	collArrive := []map[int]float64{}
	collGen := make([]int, n)

	// Iterate until all cursors are exhausted. Process ranks round-robin;
	// a rank blocks when it needs a message that has not been sent yet or a
	// collective that has not gathered everyone — then we move on and come
	// back. Deterministic because matching is FIFO.
	remaining := 0
	for _, rt := range b.Ranks {
		remaining += len(rt.Events)
	}
	for remaining > 0 {
		progressed := false
		for r := 0; r < n; r++ {
			for cursor[r] < len(b.Ranks[r].Events) {
				ev := b.Ranks[r].Events[cursor[r]]
				switch ev.Kind {
				case trace.EvCompute:
					d := ev.DurationNs
					if scale != nil {
						d = scale(r, d)
					}
					clock[r] += d
					res.Ranks[r].ComputeNs += d

				case trace.EvSend:
					key := [2]int{r, ev.Peer}
					msg := &message{sendTime: clock[r], bytes: ev.Bytes}
					channels[key] = append(channels[key], msg)
					if ev.Bytes > m.EagerBytes {
						// Rendezvous: cannot complete until matched; we
						// model it as the send completing at the max of
						// both clocks plus transfer (resolved lazily by
						// the receiver; the sender pays latency now and
						// the receiver repairs ordering via its own wait).
						clock[r] += m.LatencyNs
						res.Ranks[r].P2PNs += m.LatencyNs
					} else {
						clock[r] += m.LatencyNs / 2 // eager injection cost
						res.Ranks[r].P2PNs += m.LatencyNs / 2
					}

				case trace.EvRecv:
					key := [2]int{ev.Peer, r}
					q := channels[key]
					if len(q) == 0 {
						// Sender has not posted yet: block this rank and
						// try other ranks first.
						goto nextRank
					}
					msg := q[0]
					channels[key] = q[1:]
					arrive := msg.sendTime + m.transferNs(msg.bytes)
					if arrive > clock[r] {
						res.Ranks[r].P2PNs += arrive - clock[r]
						clock[r] = arrive
					}

				case trace.EvAllReduce, trace.EvBarrier, trace.EvBcast:
					gen := collGen[r]
					for len(collArrive) <= gen {
						collArrive = append(collArrive, map[int]float64{})
					}
					if _, ok := collArrive[gen][r]; !ok {
						collArrive[gen][r] = clock[r]
					}
					if len(collArrive[gen]) < n {
						// Not everyone has arrived; this rank is blocked.
						goto nextRank
					}
					// Everyone arrived: release at max + tree cost.
					maxT := 0.0
					for _, t := range collArrive[gen] {
						if t > maxT {
							maxT = t
						}
					}
					cost := m.CollectiveLatencyNs * log2ceil(n)
					if ev.Kind != trace.EvBarrier {
						cost += m.transferNs(ev.Bytes) * log2ceil(n) / 4
					}
					release := maxT + cost
					// Release every rank still waiting at this generation.
					for rr := 0; rr < n; rr++ {
						if collGen[rr] == gen && isAtCollective(b, rr, cursor[rr]) {
							if release > clock[rr] {
								res.Ranks[rr].CollectiveNs += release - clock[rr]
								clock[rr] = release
							}
							collGen[rr]++
							cursor[rr]++
							remaining--
							progressed = true
						}
					}
					continue // cursor already advanced for r too
				}
				cursor[r]++
				remaining--
				progressed = true
			}
		nextRank:
			continue
		}
		if !progressed {
			panic("net: replay deadlock — mismatched sends/recvs or collectives")
		}
	}

	for r := 0; r < n; r++ {
		res.Ranks[r].FinishNs = clock[r]
		if clock[r] > res.MakespanNs {
			res.MakespanNs = clock[r]
		}
	}
	return res
}

// isAtCollective reports whether rank r's event at cursor c is a collective.
func isAtCollective(b *trace.Burst, r, c int) bool {
	if c >= len(b.Ranks[r].Events) {
		return false
	}
	return b.Ranks[r].Events[c].Kind.IsCollective()
}

func log2ceil(n int) float64 {
	c := 0.0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}

// Stub use of sim to keep the dependency explicit for future event-driven
// extensions; the relaxation above is equivalent for this event vocabulary.
var _ = sim.Nanosecond
