// Package net implements the Dimemas-like MPI replay engine of MUSA: it
// replays each rank's burst-trace event sequence — compute bursts (whose
// durations detailed simulation has already rescaled) interleaved with MPI
// operations — against a simple network model with per-link bandwidth,
// end-to-end latency, eager/rendezvous point-to-point semantics and
// log-tree collectives. The output is the application makespan plus the
// per-rank time breakdown the paper visualizes in Figure 4.
package net

import (
	"context"
	"fmt"
	"math"
	"sort"

	"musa/internal/sim"
	"musa/internal/trace"
)

// Model is the network performance model (Dimemas' linear model plus a
// per-node injection constraint).
type Model struct {
	// LatencyNs is the end-to-end message latency (software + wire).
	LatencyNs float64
	// BandwidthBps is the per-link (per rank pair) bandwidth in bytes/sec.
	BandwidthBps float64
	// EagerBytes is the eager/rendezvous threshold: messages up to this
	// size complete without the receiver being ready.
	EagerBytes int64
	// CollectiveLatencyNs is the per-hop software cost of a collective.
	CollectiveLatencyNs float64
}

// MareNostrum4 returns a model with bandwidth and latency similar to the
// Marenostrum IV interconnect the paper simulates (100 Gb/s-class fabric,
// ~1.3 us MPI latency).
func MareNostrum4() Model {
	return Model{
		LatencyNs:           1300,
		BandwidthBps:        12.5e9,
		EagerBytes:          16 * 1024,
		CollectiveLatencyNs: 900,
	}
}

// HDR200 returns a 200 Gb/s InfiniBand HDR-class fabric: double the MN4
// per-link bandwidth at slightly lower latency.
func HDR200() Model {
	return Model{
		LatencyNs:           1000,
		BandwidthBps:        25e9,
		EagerBytes:          16 * 1024,
		CollectiveLatencyNs: 700,
	}
}

// Ethernet10G returns a commodity 10 GbE cluster interconnect: an order of
// magnitude less bandwidth and ~10 us MPI latency, the pessimistic end of
// the network scenario axis.
func Ethernet10G() Model {
	return Model{
		LatencyNs:           10000,
		BandwidthBps:        1.25e9,
		EagerBytes:          16 * 1024,
		CollectiveLatencyNs: 6000,
	}
}

// namedModels maps scenario names onto network models. "mn4" is the
// paper's MareNostrum IV fabric and the default everywhere.
func namedModels() map[string]Model {
	return map[string]Model{
		"mn4":    MareNostrum4(),
		"hdr200": HDR200(),
		"eth10":  Ethernet10G(),
	}
}

// ByName resolves a named network scenario ("mn4", "hdr200", "eth10").
func ByName(name string) (Model, error) {
	if m, ok := namedModels()[name]; ok {
		return m, nil
	}
	return Model{}, fmt.Errorf("net: unknown network model %q (have %v)", name, ModelNames())
}

// ModelNames lists the named network scenarios in sorted order.
func ModelNames() []string {
	var names []string
	for n := range namedModels() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.LatencyNs < 0 || m.BandwidthBps <= 0 {
		return fmt.Errorf("net: bad model %+v", m)
	}
	return nil
}

// transferNs returns the wire time of one message.
func (m Model) transferNs(bytes int64) float64 {
	return m.LatencyNs + float64(bytes)/m.BandwidthBps*1e9
}

// RankStats is the per-rank time breakdown of a replay.
type RankStats struct {
	ComputeNs    float64
	P2PNs        float64 // blocked in sends/recvs (excluding overlap)
	CollectiveNs float64 // waiting at collectives (load imbalance shows here)
	FinishNs     float64
}

// Result is the outcome of a network replay.
type Result struct {
	MakespanNs float64
	Ranks      []RankStats
}

// AvgParallelEfficiency returns mean(compute) / makespan: the fraction of
// the run spent computing, averaged over ranks.
func (r Result) AvgParallelEfficiency() float64 {
	if r.MakespanNs <= 0 || len(r.Ranks) == 0 {
		return 0
	}
	var c float64
	for _, rs := range r.Ranks {
		c += rs.ComputeNs
	}
	return c / float64(len(r.Ranks)) / r.MakespanNs
}

// MPIFraction returns the mean fraction of time spent in MPI (p2p +
// collectives).
func (r Result) MPIFraction() float64 {
	if r.MakespanNs <= 0 || len(r.Ranks) == 0 {
		return 0
	}
	var m float64
	for _, rs := range r.Ranks {
		m += rs.P2PNs + rs.CollectiveNs
	}
	return m / float64(len(r.Ranks)) / r.MakespanNs
}

// ComputeScale lets the replay rescale traced compute durations, e.g. with
// the node-level speedup obtained from detailed simulation. The function
// receives the rank and the traced duration and returns the replay duration.
type ComputeScale func(rank int, tracedNs float64) float64

// Replay simulates the burst trace against the network model. scale may be
// nil, in which case traced compute durations are replayed unchanged (pure
// burst mode).
//
// Semantics, following Dimemas' replay model:
//   - compute events occupy the rank for their (scaled) duration;
//   - sends are non-blocking up to EagerBytes, then rendezvous: the sender
//     blocks until the matching receive has been posted;
//   - receives block until the message has fully arrived;
//   - collectives are synchronizing: every rank waits for the last one,
//     then pays a log2(ranks) tree cost.
func Replay(b *trace.Burst, m Model, scale ComputeScale) Result {
	res, _ := ReplayCtx(context.Background(), b, m, scale)
	return res
}

// ReplayCtx is Replay with a cancellation checkpoint at every relaxation
// pass: when ctx is canceled mid-replay the partial state is discarded and
// ctx.Err() returned, so a canceled sweep does not block on a large replay.
// Trace or model validation failures still panic — they are programmer
// errors, not user input (callers validate requests before replaying).
func ReplayCtx(ctx context.Context, b *trace.Burst, m Model, scale ComputeScale) (Result, error) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if err := b.Validate(); err != nil {
		panic(err)
	}
	n := len(b.Ranks)
	res := Result{Ranks: make([]RankStats, n)}

	// Replay is performed with a sequential algorithm over per-rank event
	// cursors (a discrete-event relaxation): point-to-point matching is FIFO
	// per directed (src, dst) pair — recv #i consumes send #i — and
	// collectives are global barriers. Each rank keeps a local clock.
	type sendMsg struct {
		sendTime float64 // sender clock when the send was posted
		bytes    int64
	}
	// pairState records the posted sends and receive-post times of one
	// directed pair. Slices only grow and are consumed by index, so there
	// is no per-message allocation, no map reassignment per event, and no
	// q[1:] re-slicing that would pin a growing backing array.
	type pairState struct {
		sends     []sendMsg
		recvPosts []float64
	}
	channels := map[[2]int]*pairState{}
	pair := func(key [2]int) *pairState {
		ps := channels[key]
		if ps == nil {
			ps = &pairState{}
			channels[key] = ps
		}
		return ps
	}
	clock := make([]float64, n)
	cursor := make([]int, n)
	// posted[r] records that rank r's current (blocked) event has already
	// registered itself — its send/recv sits at pair index postIdx[r]
	// (and, for EvSendRecv, its receive half at postRecvIdx[r]), or its
	// collective arrival has been counted. Cleared when the cursor
	// advances.
	posted := make([]bool, n)
	postIdx := make([]int, n)
	postRecvIdx := make([]int, n)
	// Collective bookkeeping. Releases are all-at-once, so at any moment a
	// single collective generation is active across every rank.
	collTime := make([]float64, n)
	collCount := 0

	// Iterate until all cursors are exhausted. Process ranks round-robin;
	// a rank blocks when it needs a peer that has not progressed far enough
	// — then we move on and come back. Deterministic because matching is
	// FIFO and postings are monotone.
	remaining := 0
	for _, rt := range b.Ranks {
		remaining += len(rt.Events)
	}
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		progressed := false
		for r := 0; r < n; r++ {
			for cursor[r] < len(b.Ranks[r].Events) {
				ev := b.Ranks[r].Events[cursor[r]]
				switch ev.Kind {
				case trace.EvCompute:
					d := ev.DurationNs
					if scale != nil {
						d = scale(r, d)
					}
					clock[r] += d
					res.Ranks[r].ComputeNs += d

				case trace.EvSend:
					ps := pair([2]int{r, ev.Peer})
					if !posted[r] {
						posted[r] = true
						postIdx[r] = len(ps.sends)
						ps.sends = append(ps.sends, sendMsg{sendTime: clock[r], bytes: ev.Bytes})
						progressed = true // new information for the peer
					}
					if ev.Bytes > m.EagerBytes {
						// Rendezvous: the send blocks until the matching
						// receive has been posted, then completes after the
						// handshake latency.
						i := postIdx[r]
						if len(ps.recvPosts) <= i {
							goto nextRank
						}
						done := math.Max(clock[r], ps.recvPosts[i]) + m.LatencyNs
						res.Ranks[r].P2PNs += done - clock[r]
						clock[r] = done
					} else {
						clock[r] += m.LatencyNs / 2 // eager injection cost
						res.Ranks[r].P2PNs += m.LatencyNs / 2
					}
					posted[r] = false

				case trace.EvRecv:
					ps := pair([2]int{ev.Peer, r})
					if !posted[r] {
						posted[r] = true
						postIdx[r] = len(ps.recvPosts)
						ps.recvPosts = append(ps.recvPosts, clock[r])
						progressed = true // unblocks a rendezvous sender
					}
					{
						i := postIdx[r]
						if len(ps.sends) <= i {
							// Sender has not posted yet: block this rank
							// and try other ranks first.
							goto nextRank
						}
						msg := ps.sends[i]
						arrive := msg.sendTime + m.transferNs(msg.bytes)
						if msg.bytes > m.EagerBytes {
							// Rendezvous transfer starts at the match point.
							arrive = math.Max(msg.sendTime, ps.recvPosts[i]) + m.transferNs(msg.bytes)
						}
						if arrive > clock[r] {
							res.Ranks[r].P2PNs += arrive - clock[r]
							clock[r] = arrive
						}
					}
					posted[r] = false

				case trace.EvSendRecv:
					// Combined exchange: the receive from RecvPeer is
					// posted at entry, concurrently with the send to Peer
					// (MPI_Sendrecv / pre-posted MPI_Irecv). The event
					// completes when both halves do.
					{
						sp := pair([2]int{r, ev.Peer})
						rp := pair([2]int{ev.RecvPeer, r})
						if !posted[r] {
							posted[r] = true
							postIdx[r] = len(sp.sends)
							postRecvIdx[r] = len(rp.recvPosts)
							sp.sends = append(sp.sends, sendMsg{sendTime: clock[r], bytes: ev.Bytes})
							rp.recvPosts = append(rp.recvPosts, clock[r])
							progressed = true
						}
						si, ri := postIdx[r], postRecvIdx[r]
						var sendDone float64
						if ev.Bytes > m.EagerBytes {
							// Rendezvous send half: blocks until the peer
							// posts the matching receive.
							if len(sp.recvPosts) <= si {
								goto nextRank
							}
							sendDone = math.Max(clock[r], sp.recvPosts[si]) + m.LatencyNs
						} else {
							sendDone = clock[r] + m.LatencyNs/2
						}
						// Receive half: blocks until the matching send is
						// posted and the message has fully arrived.
						if len(rp.sends) <= ri {
							goto nextRank
						}
						msg := rp.sends[ri]
						arrive := msg.sendTime + m.transferNs(msg.bytes)
						if msg.bytes > m.EagerBytes {
							arrive = math.Max(msg.sendTime, rp.recvPosts[ri]) + m.transferNs(msg.bytes)
						}
						done := math.Max(sendDone, arrive)
						if done > clock[r] {
							res.Ranks[r].P2PNs += done - clock[r]
							clock[r] = done
						}
					}
					posted[r] = false

				case trace.EvAllReduce, trace.EvBarrier, trace.EvBcast:
					if !posted[r] {
						posted[r] = true
						collTime[r] = clock[r]
						collCount++
						progressed = true
					}
					if collCount < n {
						// Not everyone has arrived; this rank is blocked.
						goto nextRank
					}
					// Everyone arrived: release at max + tree cost.
					maxT := 0.0
					for _, t := range collTime {
						if t > maxT {
							maxT = t
						}
					}
					cost := m.CollectiveLatencyNs * log2ceil(n)
					if ev.Kind != trace.EvBarrier {
						cost += m.transferNs(ev.Bytes) * log2ceil(n) / 4
					}
					release := maxT + cost
					// Release every rank: collCount == n means all of them
					// are waiting at this collective.
					for rr := 0; rr < n; rr++ {
						if release > clock[rr] {
							res.Ranks[rr].CollectiveNs += release - clock[rr]
							clock[rr] = release
						}
						posted[rr] = false
						cursor[rr]++
						remaining--
					}
					collCount = 0
					progressed = true
					continue // cursor already advanced for r too
				}
				cursor[r]++
				remaining--
				progressed = true
			}
		nextRank:
			continue
		}
		if !progressed {
			panic("net: replay deadlock — mismatched sends/recvs or collectives")
		}
	}

	for r := 0; r < n; r++ {
		res.Ranks[r].FinishNs = clock[r]
		if clock[r] > res.MakespanNs {
			res.MakespanNs = clock[r]
		}
	}
	return res, nil
}

func log2ceil(n int) float64 {
	c := 0.0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}

// Stub use of sim to keep the dependency explicit for future event-driven
// extensions; the relaxation above is equivalent for this event vocabulary.
var _ = sim.Nanosecond
