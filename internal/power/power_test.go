package power

import (
	"math"
	"testing"

	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/isa"
)

// mixActivity builds a representative HPC activity: per second and per core,
// opsPerCore fused ops split over a typical class mix. fpLanes is the lane
// count of FP ops (vector width / 64).
func mixActivity(cores int, duration, opsPerCorePerSec float64, fpLanes int) Activity {
	a := Activity{Duration: duration}
	total := opsPerCorePerSec * duration * float64(cores)
	// Mix: 30% FP, 25% load, 10% store, 25% int, 10% branch.
	fpOps := 0.30 * total / float64(fpLanes) // fused: fewer ops, same lanes
	a.Ops[isa.FPAdd] = int64(fpOps * 0.5)
	a.Ops[isa.FPMul] = int64(fpOps * 0.5)
	a.Lanes[isa.FPAdd] = int64(0.30 * total * 0.5)
	a.Lanes[isa.FPMul] = int64(0.30 * total * 0.5)
	a.Ops[isa.Load] = int64(0.25 * total / float64(fpLanes))
	a.Lanes[isa.Load] = a.Ops[isa.Load]
	a.Ops[isa.Store] = int64(0.10 * total / float64(fpLanes))
	a.Lanes[isa.Store] = a.Ops[isa.Store]
	a.Ops[isa.IntALU] = int64(0.25 * total)
	a.Lanes[isa.IntALU] = a.Ops[isa.IntALU]
	a.Ops[isa.Branch] = int64(0.10 * total)
	a.Lanes[isa.Branch] = a.Ops[isa.Branch]
	a.L1Accesses = a.Ops[isa.Load] + a.Ops[isa.Store]
	a.L2Accesses = a.L1Accesses / 10
	a.L3Accesses = a.L2Accesses / 5
	// DRAM traffic at realistic node rates (Fig. 1: ~0.5 GReq/s per node).
	a.DRAM = dram.CommandStats{
		Act: int64(0.2e9 * duration), Pre: int64(0.2e9 * duration),
		Rd: int64(0.4e9 * duration), Wr: int64(0.15e9 * duration), Ref: int64(duration / 7.8e-6),
	}
	return a
}

func nodeParams(core cpu.Config, cores, vecBits int, freq float64, l2MB, l3MB float64, dimms int) NodeParams {
	return NodeParams{
		Cores:       cores,
		Core:        CoreParams{Config: core, VectorBits: vecBits, FreqGHz: freq},
		L2PerCoreMB: l2MB,
		L3TotalMB:   l3MB,
		DIMMs:       dimms,
	}
}

func TestVoltageCorners(t *testing.T) {
	if v := VoltageAt(2.0); math.Abs(v-VRef) > 1e-9 {
		t.Errorf("V(2.0) = %v, want %v", v, VRef)
	}
	if VoltageAt(3.0) <= VoltageAt(1.5) {
		t.Error("voltage not increasing with frequency")
	}
}

func TestValidate(t *testing.T) {
	good := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores validated")
	}
	bad2 := good
	bad2.Core.VectorBits = 0
	if bad2.Validate() == nil {
		t.Error("zero vector width validated")
	}
}

func TestZeroDuration(t *testing.T) {
	p := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	b := NodePower(p, Activity{})
	if b.Total() != 0 {
		t.Errorf("zero-duration power = %v", b)
	}
}

func TestNodePowerPlausibleRange(t *testing.T) {
	// A 64-core medium node at 2 GHz running flat out should land in the
	// plausible server-socket envelope (roughly 80-350 W).
	p := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	a := mixActivity(64, 1.0, 3e9, 2)
	b := NodePower(p, a)
	if b.Total() < 80 || b.Total() > 350 {
		t.Errorf("node power = %v, outside plausible range", b)
	}
	if b.CoreL1 <= 0 || b.L2L3 <= 0 || b.Memory <= 0 {
		t.Errorf("non-positive component: %+v", b)
	}
}

func TestVectorWidthPowerRatio(t *testing.T) {
	// Paper: 512-bit units raise Core+L1 power ~60% over 128-bit (Fig. 5b).
	// Same lane work, fused ops at 8 lanes, and the paper's average 1.4x
	// speedup (shorter duration).
	base := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	wide := base
	wide.Core.VectorBits = 512

	a128 := mixActivity(64, 1.0, 3e9, 2)
	a512 := mixActivity(64, 1.0/1.4, 3e9*1.4, 8) // same total lane work

	// This synthetic mix under-represents the non-fused work of real
	// streams, so the band here is wide; the authoritative +60% check runs
	// on full application sweeps (BenchmarkFigure5VectorWidth, see
	// EXPERIMENTS.md).
	p128 := NodePower(base, a128).CoreL1
	p512 := NodePower(wide, a512).CoreL1
	ratio := p512 / p128
	if ratio < 1.2 || ratio > 2.2 {
		t.Errorf("512/128 Core+L1 power ratio = %v, want roughly 1.6", ratio)
	}
}

func TestOoOPowerOrdering(t *testing.T) {
	// Paper Fig. 7b: lowend ~50% of aggressive; medium/high ~80%.
	a := mixActivity(64, 1.0, 3e9, 2)
	powers := map[string]float64{}
	for _, cfg := range cpu.AllConfigs() {
		p := nodeParams(cfg, 64, 128, 2.0, 0.5, 64, 8)
		// Slower cores do less work per second; fold in rough relative IPC
		// (paper: lowend ~0.65x of aggressive performance).
		scale := map[string]float64{"lowend": 0.65, "medium": 0.95, "high": 0.97, "aggressive": 1.0}[cfg.Name]
		act := mixActivity(64, 1.0, 3e9*scale, 2)
		powers[cfg.Name] = NodePower(p, act).CoreL1
		_ = a
	}
	if !(powers["lowend"] < powers["medium"] && powers["medium"] < powers["high"] && powers["high"] < powers["aggressive"]) {
		t.Errorf("core power not ordered: %v", powers)
	}
	lowRatio := powers["lowend"] / powers["aggressive"]
	if lowRatio < 0.35 || lowRatio > 0.70 {
		t.Errorf("lowend/aggressive = %v, want ~0.5", lowRatio)
	}
	medRatio := powers["medium"] / powers["aggressive"]
	if medRatio < 0.65 || medRatio > 0.95 {
		t.Errorf("medium/aggressive = %v, want ~0.8", medRatio)
	}
}

func TestFrequencyPowerScaling(t *testing.T) {
	// Paper Fig. 9b: 2x clock -> ~2.5x node power (and 2x performance).
	mk := func(freq float64) float64 {
		p := nodeParams(cpu.Medium(), 64, 128, freq, 0.5, 64, 8)
		// Performance scales linearly: same work in half the time at 3 GHz.
		a := mixActivity(64, 1.5/freq, 3e9*freq/1.5, 2)
		b := NodePower(p, a)
		return b.CoreL1 + b.L2L3 // chip power; DRAM unaffected by core clock
	}
	ratio := mk(3.0) / mk(1.5)
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("3.0/1.5 GHz chip power ratio = %v, want ~2.5", ratio)
	}
}

func TestChannelDoublingDRAMPower(t *testing.T) {
	// Paper Fig. 8b: populating 8 channels ~doubles DRAM power but the node
	// total grows only ~10-20%.
	p4 := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	p8 := p4
	p8.DIMMs = 16
	a := mixActivity(64, 1.0, 3e9, 2)
	b4 := NodePower(p4, a)
	b8 := NodePower(p8, a)
	dramRatio := b8.Memory / b4.Memory
	if dramRatio < 1.5 || dramRatio > 2.1 {
		t.Errorf("8ch/4ch DRAM power = %v, want ~2", dramRatio)
	}
	nodeRatio := b8.Total() / b4.Total()
	if nodeRatio < 1.02 || nodeRatio > 1.30 {
		t.Errorf("8ch/4ch node power = %v, want ~1.1", nodeRatio)
	}
}

func TestCacheSizePowerGrows(t *testing.T) {
	// Paper Fig. 6b: cache component grows steeply with size.
	a := mixActivity(64, 1.0, 3e9, 2)
	small := NodePower(nodeParams(cpu.Medium(), 64, 128, 2.0, 0.25, 32, 8), a)
	mid := NodePower(nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8), a)
	big := NodePower(nodeParams(cpu.Medium(), 64, 128, 2.0, 1.0, 96, 8), a)
	if !(small.L2L3 < mid.L2L3 && mid.L2L3 < big.L2L3) {
		t.Errorf("cache power not monotone: %v %v %v", small.L2L3, mid.L2L3, big.L2L3)
	}
	// Capacity grows 48 -> 96 -> 160 MB across the three Table I configs;
	// leakage-dominated power tracks capacity (paper: 5% -> 10% -> 20% of a
	// shrinking node total).
	if mid.L2L3 < 1.8*small.L2L3 {
		t.Errorf("64M:512K / 32M:256K cache power = %v, want ~2x", mid.L2L3/small.L2L3)
	}
	if big.L2L3 < 1.55*mid.L2L3 {
		t.Errorf("96M:1M / 64M:512K cache power = %v, want ~1.67x", big.L2L3/mid.L2L3)
	}
}

func TestIdleCoresStillLeak(t *testing.T) {
	// The co-design lesson of the paper: idle cores burn leakage. Halving
	// activity must NOT halve power.
	p := nodeParams(cpu.Medium(), 64, 128, 2.0, 0.5, 64, 8)
	full := NodePower(p, mixActivity(64, 1.0, 3e9, 2))
	half := NodePower(p, mixActivity(32, 1.0, 3e9, 2)) // only 32 cores busy
	if half.Total() >= full.Total() {
		t.Fatal("less activity should cost less power")
	}
	if half.Total() < 0.55*full.Total() {
		t.Errorf("half-active node at %v of full power; leakage floor missing", half.Total()/full.Total())
	}
}

func TestActivityHelpers(t *testing.T) {
	var a Activity
	var r cpu.Result
	r.ClassOps[isa.FPAdd] = 10
	r.ClassLanes[isa.FPAdd] = 20
	r.L1.Accesses = 5
	a.AddCoreResult(r)
	a.AddCoreResult(r)
	if a.Ops[isa.FPAdd] != 20 || a.Lanes[isa.FPAdd] != 40 || a.L1Accesses != 10 {
		t.Errorf("AddCoreResult: %+v", a)
	}
	a.DRAM = dram.CommandStats{Act: 100, Rd: 200}
	a.Scale(0.5)
	if a.Ops[isa.FPAdd] != 10 || a.DRAM.Act != 50 || a.DRAM.Rd != 100 {
		t.Errorf("Scale: %+v", a)
	}
}

func TestEnergyAndBreakdownHelpers(t *testing.T) {
	b := Breakdown{CoreL1: 100, L2L3: 20, Memory: 10}
	if b.Total() != 130 {
		t.Errorf("Total = %v", b.Total())
	}
	if got := b.Scale(2).Total(); got != 260 {
		t.Errorf("Scale = %v", got)
	}
	if EnergyJ(b, 10) != 1300 {
		t.Errorf("EnergyJ = %v", EnergyJ(b, 10))
	}
	if b.String() == "" {
		t.Error("empty String")
	}
}
