// Package power models node power: a McPAT-like analytic model for cores and
// caches (per-structure dynamic energy plus leakage under 22 nm voltage/
// frequency scaling) and a DRAMPower-like model converting DRAM command
// counts into DIMM energy. The constants are calibrated so the power ratios
// the paper reports hold: 512-bit FPUs add ~60% core power over 128-bit,
// low-end cores consume ~50% of aggressive ones, doubling DDR4 channels
// roughly doubles DRAM power but only ~10% of node power, and doubling the
// clock multiplies node power by ~2.5x (Figures 5b, 7b, 8b, 9b).
package power

import (
	"fmt"
	"math"

	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/isa"
)

// VRef is the supply voltage at which the energy constants are specified
// (the 2.0 GHz operating point of the 22 nm model).
const VRef = 0.85

// VoltageAt returns the 22 nm supply voltage for a clock frequency, linear
// between the 1.5 GHz and 3.0 GHz corners (the paper feeds McPAT adequate
// voltage for each frequency step).
func VoltageAt(freqGHz float64) float64 {
	return 0.50 + 0.175*freqGHz
}

// Per-op base dynamic energies in picojoules at VRef, including the fetch/
// decode/rename/issue overhead share attributable to one micro-op.
var opEnergyPJ = [isa.NumClasses]float64{
	isa.IntALU: 90,
	isa.IntMul: 210,
	isa.FPAdd:  250,
	isa.FPMul:  320,
	isa.FPDiv:  1400,
	isa.FPFMA:  400,
	isa.Load:   290,
	isa.Store:  290,
	isa.Branch: 70,
}

// FP vector energy split: a W-lane FP op costs
// fpOpBase*base + fpLane*base per lane, so a 2-lane (128-bit) op costs
// exactly its base energy and wider ops grow sub-linearly per lane.
const (
	fpOpBase = 0.3
	fpLane   = 0.35
)

// Cache access energies (pJ at VRef) and leakage densities (W/MB at VRef).
const (
	l1AccessPJ   = 110
	l2AccessPJ   = 80
	l3AccessPJ   = 150
	cacheLeakWMB = 0.10
)

// DRAM energy constants (per DIMM or per command, datasheet-flavored).
const (
	dimmBackgroundW = 1.5   // precharge/active standby average per DIMM
	actPreEnergyNJ  = 12.0  // one ACT+PRE pair
	rdEnergyNJ      = 8.0   // one 64B read burst
	wrEnergyNJ      = 8.5   // one 64B write burst
	refEnergyNJ     = 120.0 // one refresh command
)

// CoreParams describes the physical core configuration being estimated.
type CoreParams struct {
	Config     cpu.Config
	VectorBits int     // FPU datapath width
	FreqGHz    float64 // core clock
}

// structEnergyPJ is the per-op structure overhead (rename/ROB/scheduler),
// growing with ROB depth and machine width.
func structEnergyPJ(c cpu.Config) float64 {
	return 210 + 90*math.Log2(float64(c.ROB)) + 65*float64(c.IssueWidth)
}

// coreLeakageW returns one core's leakage at VRef, dominated by SRAM
// structures and the (width-scaled) FP datapath.
func coreLeakageW(c cpu.Config, vectorBits int) float64 {
	w := float64(vectorBits) / 128
	return 0.05 +
		0.0005*float64(c.ROB) +
		0.0007*float64(c.IntRF+c.FPRF) +
		0.02*float64(c.ALUs) +
		0.15*float64(c.FPUs)*w
}

// dynScale converts dynamic energy at VRef to the operating point: E ~ V^2.
func dynScale(freqGHz float64) float64 {
	v := VoltageAt(freqGHz)
	return (v * v) / (VRef * VRef)
}

// leakScale converts leakage at VRef to the operating point: P ~ V.
func leakScale(freqGHz float64) float64 {
	return VoltageAt(freqGHz) / VRef
}

// Activity aggregates the simulation activity of one node over Duration.
type Activity struct {
	Duration float64 // seconds of simulated execution

	Ops   [isa.NumClasses]int64 // fused ops executed, all cores
	Lanes [isa.NumClasses]int64 // scalar lanes executed, all cores

	L1Accesses int64
	L2Accesses int64
	L3Accesses int64

	DRAM dram.CommandStats
}

// AddCoreResult accumulates one core's simulation result into the activity.
func (a *Activity) AddCoreResult(r cpu.Result) {
	for c := 0; c < int(isa.NumClasses); c++ {
		a.Ops[c] += r.ClassOps[c]
		a.Lanes[c] += r.ClassLanes[c]
	}
	a.L1Accesses += r.L1.Accesses
	a.L2Accesses += r.L2.Accesses
	a.L3Accesses += r.L3.Accesses
}

// Scale multiplies all event counts by k (used to extrapolate a sampled
// region to the full execution).
func (a *Activity) Scale(k float64) {
	for c := 0; c < int(isa.NumClasses); c++ {
		a.Ops[c] = int64(float64(a.Ops[c]) * k)
		a.Lanes[c] = int64(float64(a.Lanes[c]) * k)
	}
	a.L1Accesses = int64(float64(a.L1Accesses) * k)
	a.L2Accesses = int64(float64(a.L2Accesses) * k)
	a.L3Accesses = int64(float64(a.L3Accesses) * k)
	a.DRAM.Act = int64(float64(a.DRAM.Act) * k)
	a.DRAM.Pre = int64(float64(a.DRAM.Pre) * k)
	a.DRAM.Rd = int64(float64(a.DRAM.Rd) * k)
	a.DRAM.Wr = int64(float64(a.DRAM.Wr) * k)
	a.DRAM.Ref = int64(float64(a.DRAM.Ref) * k)
}

// NodeParams describes the node hardware for power estimation.
type NodeParams struct {
	Cores       int
	Core        CoreParams
	L2PerCoreMB float64
	L3TotalMB   float64
	DIMMs       int
}

// Validate reports parameter errors.
func (p NodeParams) Validate() error {
	if p.Cores <= 0 || p.DIMMs < 0 {
		return fmt.Errorf("power: cores=%d dimms=%d", p.Cores, p.DIMMs)
	}
	if p.Core.FreqGHz <= 0 || p.Core.VectorBits < 64 {
		return fmt.Errorf("power: freq=%v vector=%d", p.Core.FreqGHz, p.Core.VectorBits)
	}
	return nil
}

// Breakdown is the three-component power split the paper plots (Figures
// 5b-9b): Core+L1, L2+L3 cache, and Memory, in watts.
type Breakdown struct {
	CoreL1 float64
	L2L3   float64
	Memory float64
}

// Total returns the node power in watts.
func (b Breakdown) Total() float64 { return b.CoreL1 + b.L2L3 + b.Memory }

// Scale returns the breakdown multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{CoreL1: b.CoreL1 * k, L2L3: b.L2L3 * k, Memory: b.Memory * k}
}

func (b Breakdown) String() string {
	return fmt.Sprintf("core+L1=%.1fW L2+L3=%.1fW mem=%.1fW total=%.1fW",
		b.CoreL1, b.L2L3, b.Memory, b.Total())
}

// NodePower estimates the average node power over the activity window.
// Leakage is charged for every core for the full duration — idle cores leak,
// which is exactly the energy-efficiency hazard the paper's scaling analysis
// highlights — while dynamic power follows the recorded event counts.
func NodePower(p NodeParams, a Activity) Breakdown {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if a.Duration <= 0 {
		return Breakdown{}
	}
	ds := dynScale(p.Core.FreqGHz)
	ls := leakScale(p.Core.FreqGHz)

	// --- Core + L1 ---
	var dynPJ float64
	structPJ := structEnergyPJ(p.Core.Config)
	for c := 0; c < int(isa.NumClasses); c++ {
		ops := float64(a.Ops[c])
		if ops == 0 {
			continue
		}
		base := opEnergyPJ[c]
		if isa.Class(c).IsFP() {
			dynPJ += base * (fpOpBase*ops + fpLane*float64(a.Lanes[c]))
		} else {
			dynPJ += base * ops
		}
		dynPJ += structPJ * ops
	}
	dynPJ += l1AccessPJ * float64(a.L1Accesses)
	coreDynW := dynPJ * 1e-12 * ds / a.Duration
	coreLeakW := coreLeakageW(p.Core.Config, p.Core.VectorBits) * ls * float64(p.Cores)

	// --- L2 + L3 ---
	cacheDynPJ := l2AccessPJ*float64(a.L2Accesses) + l3AccessPJ*float64(a.L3Accesses)
	cacheMB := p.L2PerCoreMB*float64(p.Cores) + p.L3TotalMB
	cacheW := cacheDynPJ*1e-12*ds/a.Duration + cacheLeakWMB*cacheMB*ls

	// --- Memory ---
	dramDynNJ := actPreEnergyNJ*float64(a.DRAM.Act) +
		rdEnergyNJ*float64(a.DRAM.Rd) +
		wrEnergyNJ*float64(a.DRAM.Wr) +
		refEnergyNJ*float64(a.DRAM.Ref)
	memW := dramDynNJ*1e-9/a.Duration + dimmBackgroundW*float64(p.DIMMs)

	return Breakdown{
		CoreL1: coreDynW + coreLeakW,
		L2L3:   cacheW,
		Memory: memW,
	}
}

// EnergyJ returns energy-to-solution in joules for a run of the given
// duration at the given breakdown.
func EnergyJ(b Breakdown, durationSeconds float64) float64 {
	return b.Total() * durationSeconds
}
