package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"musa/internal/apps"
	"musa/internal/dram"
	"musa/internal/node"
	"musa/internal/obs"
	"musa/internal/trace"
)

// This file is the artifact layer of the sweep runner: the expensive
// intermediates a sweep builds on the way to its measurements — annotated
// detailed samples, fitted DRAM load-latency curves, synthesized burst
// traces — addressed by content so they can be cached across runs, served
// over HTTP and shipped to fleet workers. The paper's central economy is
// reuse (one traced execution feeds burst-mode scaling and detailed node
// simulation, §II); the artifact layer makes that reuse durable and
// process-spanning instead of per-Run.

// ArtifactSchemaVersion identifies the artifact key derivation and the
// serialized artifact encodings. It is bumped whenever a key document, the
// application-profile encoding or an artifact wire format changes shape, so
// stale caches are refused rather than silently misread (see
// store.ArtifactCache).
const ArtifactSchemaVersion = 1

// ArtifactKind names one cached intermediate in key documents, wire
// envelopes and per-kind statistics.
type ArtifactKind string

const (
	// ArtifactAnnotation is a node.Annotation: one warmed, cache-annotated
	// detailed sample shared by every timing variant of an annotation group.
	ArtifactAnnotation ArtifactKind = "annotation"
	// ArtifactLatencyModel is a dram.LatencyModel: the fitted load-latency
	// curve of one (application, channels, memory kind).
	ArtifactLatencyModel ArtifactKind = "latency-model"
	// ArtifactBurst is a trace.Burst: the synthesized coarse-grain MPI
	// trace of one (application, rank count) replayed by the cluster stage.
	ArtifactBurst ArtifactKind = "burst-trace"
)

// ArtifactProvider serves and persists sweep artifacts. dse.Run consults it
// before building an artifact and hands freshly built ones back; providers
// decide durability (in-memory, on disk, remote). Implementations must be
// safe for concurrent use. Values passed in and handed out are shared, not
// copied: callers and providers alike must treat them as immutable.
//
// Reusing a provided artifact is bitwise-equivalent to rebuilding it — the
// keys encode every build input, including the application profile by
// content — so a warm run produces measurements byte-identical to a cold
// one.
type ArtifactProvider interface {
	Annotation(key string) (node.Annotation, bool)
	PutAnnotation(key string, a node.Annotation)
	LatencyModel(key string) (dram.LatencyModel, bool)
	PutLatencyModel(key string, m dram.LatencyModel)
	Burst(key string) (*trace.Burst, bool)
	PutBurst(key string, b *trace.Burst)
}

// AppHash returns the content address of an application profile: the hex
// SHA-256 of its JSON encoding. Artifact keys embed it instead of the
// profile's name, so retuning a built-in model or registering a different
// custom profile under the same name invalidates exactly the artifacts it
// affects.
func AppHash(app *apps.Profile) string {
	b, err := json.Marshal(app)
	if err != nil {
		// Profile is a tree of plain exported fields; Marshal cannot fail.
		panic(fmt.Sprintf("dse: marshal profile %q: %v", app.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// artifactKeyDoc is the canonical key document of one artifact; its JSON
// encoding is hashed into the artifact key. Field order is fixed and the
// schema version is embedded, mirroring the canonical-experiment encoding
// behind the result-store keys (see TestArtifactKeyGolden).
type artifactKeyDoc struct {
	V        int          `json:"v"`
	Kind     ArtifactKind `json:"kind"`
	App      string       `json:"app"` // AppHash, not the name
	Group    *AnnGroup    `json:"group,omitempty"`
	Channels int          `json:"channels,omitempty"`
	Mem      string       `json:"mem,omitempty"`
	Policy   string       `json:"policy,omitempty"`
	Ranks    int          `json:"ranks,omitempty"`
	Sample   int64        `json:"sample,omitempty"`
	Warmup   int64        `json:"warmup,omitempty"`
	Seed     uint64       `json:"seed"`
}

func (d artifactKeyDoc) key() string {
	b, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("dse: marshal artifact key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// AnnotationKey returns the content address of the shared annotation of one
// (application, annotation group) at the given fidelity and seed. appHash
// is AppHash of the profile. Implicit fidelity is resolved through
// apps.EffectiveFidelity — the same rule node.BuildAnnotation simulates
// with and shardExperiment materializes on the fleet wire — so a run that
// leaves fidelity implicit and one that spells out the defaults address
// the same artifact.
func AnnotationKey(appHash string, g AnnGroup, sample, warmup int64, seed uint64) string {
	sample, warmup = apps.EffectiveFidelity(sample, warmup)
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactAnnotation, App: appHash,
		Group: &g, Sample: sample, Warmup: warmup, Seed: seed,
	}.key()
}

// LatencyModelKey returns the content address of the fitted DRAM
// load-latency curve of one (application, channel count, memory kind). The
// curve depends on the application's locality profile (via appHash), the
// memory configuration and the seed — not on sample sizes.
func LatencyModelKey(appHash string, channels int, mem MemKind, seed uint64) string {
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactLatencyModel, App: appHash,
		Channels: channels, Mem: mem.String(), Policy: dram.FRFCFS.String(),
		Seed: seed,
	}.key()
}

// BurstKey returns the content address of the synthesized burst trace of
// one (application, rank count, seed).
func BurstKey(appHash string, ranks int, seed uint64) string {
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactBurst, App: appHash,
		Ranks: ranks, Seed: seed,
	}.key()
}

// runArtifacts is the run-local artifact front of one dse.Run: the
// in-memory per-kind maps earlier revisions captured in closures, made
// explicit and layered over the optional cross-run ArtifactProvider.
// Latency models and burst traces are built at most once per run whatever
// the provider does; annotations are never duplicated within a run because
// each annotation group is walked by exactly one worker.
type runArtifacts struct {
	backing        ArtifactProvider // nil = run-local only
	seed           uint64
	sample, warmup int64

	// One mutex per kind, as with the closure-captured maps this replaces:
	// a latency-model fit held under latMu must not stall the replay hot
	// path's burst lookups (one per measurement per rank count).
	hashMu  sync.Mutex
	hashes  map[string]string // app name -> content hash
	latMu   sync.Mutex
	lat     map[string]*dram.LatencyModel // artifact key -> fitted curve
	burstMu sync.Mutex
	bursts  map[string]*trace.Burst // artifact key -> parsed trace
}

func newRunArtifacts(o Options) *runArtifacts {
	return &runArtifacts{
		backing: o.Artifacts,
		seed:    o.Seed, sample: o.SampleInstrs, warmup: o.WarmupInstrs,
		hashes: map[string]string{},
		lat:    map[string]*dram.LatencyModel{},
		bursts: map[string]*trace.Burst{},
	}
}

// appHash memoizes AppHash per application.
func (r *runArtifacts) appHash(app *apps.Profile) string {
	r.hashMu.Lock()
	defer r.hashMu.Unlock()
	h, ok := r.hashes[app.Name]
	if !ok {
		h = AppHash(app)
		r.hashes[app.Name] = h
	}
	return h
}

// latencyModel returns the fitted DRAM curve for (app, channels, mem
// kind), consulting the run front, then the provider, then building.
// Duplicate concurrent requests serialize on latMu, so each curve is
// built (or decoded) once per run. ctx parents the stage span: only the
// run-front miss — a real fit or a cache decode — is traced and timed, not
// every per-point lookup.
func (r *runArtifacts) latencyModel(ctx context.Context, app *apps.Profile, ch int, mem MemKind) *dram.LatencyModel {
	key := LatencyModelKey(r.appHash(app), ch, mem, r.seed)
	r.latMu.Lock()
	defer r.latMu.Unlock()
	if m := r.lat[key]; m != nil {
		return m
	}
	_, span := obs.StartSpan(ctx, "dse.latency-fit",
		obs.A("app", app.Name), obs.AInt("channels", ch), obs.A("mem", mem.String()))
	start := time.Now()
	defer span.End()
	if r.backing != nil {
		if m, ok := r.backing.LatencyModel(key); ok {
			span.SetAttr("source", "cache")
			r.lat[key] = &m
			return &m
		}
	}
	span.SetAttr("source", "built")
	m := node.BuildLatencyModel(app, dram.Config{Spec: mem.Spec(), Channels: ch}, dram.FRFCFS, r.seed)
	observeStage(StageLatencyFit, start)
	r.lat[key] = &m
	if r.backing != nil {
		r.backing.PutLatencyModel(key, m)
	}
	return &m
}

// burst returns the shared burst trace for (app, ranks) — replay only
// reads it, so every worker replays the same instance. As with
// latencyModel, only the run-front miss is traced.
func (r *runArtifacts) burst(ctx context.Context, app *apps.Profile, ranks int) *trace.Burst {
	key := BurstKey(r.appHash(app), ranks, r.seed)
	r.burstMu.Lock()
	defer r.burstMu.Unlock()
	if b := r.bursts[key]; b != nil {
		return b
	}
	_, span := obs.StartSpan(ctx, "dse.burst-synthesis",
		obs.A("app", app.Name), obs.AInt("ranks", ranks))
	start := time.Now()
	defer span.End()
	if r.backing != nil {
		if b, ok := r.backing.Burst(key); ok {
			span.SetAttr("source", "cache")
			r.bursts[key] = b
			return b
		}
	}
	span.SetAttr("source", "built")
	b := apps.BurstTrace(app, ranks, r.seed)
	observeStage(StageBurstSynthesis, start)
	r.bursts[key] = b
	if r.backing != nil {
		r.backing.PutBurst(key, b)
	}
	return b
}

// annotation returns the shared annotation of one (app, group), consulting
// the provider before building. build runs without any lock held —
// annotating a sample is the most expensive artifact, and within a run
// each group is walked by exactly one worker, so duplicate builds cannot
// happen. The stage span covers the cache decode or the build, whichever
// ran; the stage histogram counts only real builds, so its observation
// count reads as "annotation passes executed" — a cache or ring-peer hit
// leaves it untouched.
func (r *runArtifacts) annotation(ctx context.Context, app *apps.Profile, g AnnGroup, build func() node.Annotation) *node.Annotation {
	_, span := obs.StartSpan(ctx, "dse.annotate", obs.A("app", app.Name))
	start := time.Now()
	defer span.End()
	if r.backing == nil {
		span.SetAttr("source", "built")
		a := build()
		observeStage(StageAnnotate, start)
		return &a
	}
	key := AnnotationKey(r.appHash(app), g, r.sample, r.warmup, r.seed)
	if a, ok := r.backing.Annotation(key); ok {
		span.SetAttr("source", "cache")
		return &a
	}
	span.SetAttr("source", "built")
	a := build()
	observeStage(StageAnnotate, start)
	r.backing.PutAnnotation(key, a)
	return &a
}
