package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"musa/internal/apps"
	"musa/internal/dram"
	"musa/internal/node"
	"musa/internal/obs"
	"musa/internal/trace"
)

// This file is the artifact layer of the sweep runner: the expensive
// intermediates a sweep builds on the way to its measurements, addressed by
// content so they can be cached across runs, served over HTTP and shipped
// to fleet workers. The per-point pipeline is factored into staged
// sub-results, each keyed by exactly the inputs that can change it:
//
//	fused trace      (app, vector width, fidelity, seed)        run-local
//	hit-rate table   (app, cores, vector width, cache, fidelity, seed)
//	DRAM curve       (app, channels, memory kind, seed)
//	burst trace      (app, rank count, seed)
//
// so an 864-point sweep computes each stage once per distinct stage-key
// instead of once per point. The paper's central economy is reuse (one
// traced execution feeds burst-mode scaling and detailed node simulation,
// §II); the artifact layer makes that reuse durable and process-spanning.
// Fused traces stay run-local: they are the bulkiest stage and the cheapest
// to rebuild per byte, so persisting them would spend store and replication
// bandwidth to save the least time — the persistent kinds are the compact
// derived tables.

// ArtifactSchemaVersion identifies the artifact key derivation and the
// serialized artifact encodings. It is bumped whenever a key document, the
// application-profile encoding or an artifact wire format changes shape, so
// stale caches are refused rather than silently misread (see
// store.ArtifactCache). v2 replaced the full-annotation artifact with the
// per-(app, cache-config) hit-rate table.
const ArtifactSchemaVersion = 2

// ArtifactKind names one cached intermediate in key documents, wire
// envelopes and per-kind statistics.
type ArtifactKind string

const (
	// ArtifactHitRates is a node.HitRateTable: the resolved cache level of
	// every sample memory access of one (application, cores, vector width,
	// cache configuration). Overlaid on the run-local fused trace it
	// reconstructs the shared annotation of an annotation group bit-for-bit
	// — every timing and memory variant of the group reuses it.
	ArtifactHitRates ArtifactKind = "hit-rates"
	// ArtifactLatencyModel is a dram.LatencyModel: the fitted load-latency
	// curve of one (application, channels, memory kind).
	ArtifactLatencyModel ArtifactKind = "latency-model"
	// ArtifactBurst is a trace.Burst: the synthesized coarse-grain MPI
	// trace of one (application, rank count) replayed by the cluster stage.
	ArtifactBurst ArtifactKind = "burst-trace"
)

// ArtifactProvider serves and persists sweep artifacts. dse.Run consults it
// before building an artifact and hands freshly built ones back; providers
// decide durability (in-memory, on disk, remote). Implementations must be
// safe for concurrent use. Values passed in and handed out are shared, not
// copied: callers and providers alike must treat them as immutable.
//
// Reusing a provided artifact is bitwise-equivalent to rebuilding it — the
// keys encode every build input, including the application profile by
// content — so a warm run produces measurements byte-identical to a cold
// one (pinned by the golden-dataset digest test).
type ArtifactProvider interface {
	HitRates(key string) (node.HitRateTable, bool)
	PutHitRates(key string, t node.HitRateTable)
	LatencyModel(key string) (dram.LatencyModel, bool)
	PutLatencyModel(key string, m dram.LatencyModel)
	Burst(key string) (*trace.Burst, bool)
	PutBurst(key string, b *trace.Burst)
}

// AppHash returns the content address of an application profile: the hex
// SHA-256 of its JSON encoding. Artifact keys embed it instead of the
// profile's name, so retuning a built-in model or registering a different
// custom profile under the same name invalidates exactly the artifacts it
// affects.
func AppHash(app *apps.Profile) string {
	b, err := json.Marshal(app)
	if err != nil {
		// Profile is a tree of plain exported fields; Marshal cannot fail.
		panic(fmt.Sprintf("dse: marshal profile %q: %v", app.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CacheGroup identifies configurations whose cache behavior is identical:
// same core count (L3 partition), vector width (fused footprints) and cache
// configuration. It is AnnGroup without the memory kind — memory latency
// enters the pipeline only at timing replay, after the hierarchy walk — so
// annotation groups that differ only in memory share one hit-rate table.
type CacheGroup struct {
	Cores int
	Vec   int
	Cache string
}

// CacheGroup returns the group's cache-behavior signature.
func (g AnnGroup) CacheGroup() CacheGroup {
	return CacheGroup{Cores: g.Cores, Vec: g.Vec, Cache: g.Cache}
}

// CacheGroup returns the point's cache-behavior signature.
func (p ArchPoint) CacheGroup() CacheGroup { return p.AnnGroup().CacheGroup() }

// artifactKeyDoc is the canonical key document of one artifact; its JSON
// encoding is hashed into the artifact key. Field order is fixed and the
// schema version is embedded, mirroring the canonical-experiment encoding
// behind the result-store keys (see TestArtifactKeyGolden).
type artifactKeyDoc struct {
	V        int          `json:"v"`
	Kind     ArtifactKind `json:"kind"`
	App      string       `json:"app"` // AppHash, not the name
	Group    *CacheGroup  `json:"group,omitempty"`
	Channels int          `json:"channels,omitempty"`
	Mem      string       `json:"mem,omitempty"`
	Policy   string       `json:"policy,omitempty"`
	Ranks    int          `json:"ranks,omitempty"`
	Sample   int64        `json:"sample,omitempty"`
	Warmup   int64        `json:"warmup,omitempty"`
	Seed     uint64       `json:"seed"`
}

func (d artifactKeyDoc) key() string {
	b, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("dse: marshal artifact key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HitRateKey returns the content address of the hit-rate table of one
// (application, cache group) at the given fidelity and seed. appHash is
// AppHash of the profile. Implicit fidelity is resolved through
// apps.EffectiveFidelity — the same rule node.BuildFusedTrace simulates
// with and shardExperiment materializes on the fleet wire — so a run that
// leaves fidelity implicit and one that spells out the defaults address
// the same artifact.
func HitRateKey(appHash string, g CacheGroup, sample, warmup int64, seed uint64) string {
	sample, warmup = apps.EffectiveFidelity(sample, warmup)
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactHitRates, App: appHash,
		Group: &g, Sample: sample, Warmup: warmup, Seed: seed,
	}.key()
}

// LatencyModelKey returns the content address of the fitted DRAM
// load-latency curve of one (application, channel count, memory kind). The
// curve depends on the application's locality profile (via appHash), the
// memory configuration and the seed — not on sample sizes.
func LatencyModelKey(appHash string, channels int, mem MemKind, seed uint64) string {
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactLatencyModel, App: appHash,
		Channels: channels, Mem: mem.String(), Policy: dram.FRFCFS.String(),
		Seed: seed,
	}.key()
}

// BurstKey returns the content address of the synthesized burst trace of
// one (application, rank count, seed).
func BurstKey(appHash string, ranks int, seed uint64) string {
	return artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactBurst, App: appHash,
		Ranks: ranks, Seed: seed,
	}.key()
}

// Residency bounds of the run-local stage fronts. Fused traces are the
// bulkiest stage (tens of MB at full fidelity), but only the current
// application's vector widths — at most three — are live at once, plus a
// straggling worker on the previous application near a sort boundary.
// Combined annotations are bounded above by one application's cache groups
// (27 on the Table I grid) — groups are dispatched in sorted order, so by
// the time an entry falls this far behind the FIFO head no group can need
// it again. Evicting early is safe either way: a re-request rebuilds (or
// re-fetches) the stage, trading time, never bytes.
const (
	maxRunScalarTraces = 2
	maxRunFusedTraces  = 8
	maxRunAnnotations  = 32
)

// runArtifacts is the run-local artifact front of one dse.Run: bounded
// in-memory per-stage maps layered over the optional cross-run
// ArtifactProvider. Each stage is built at most once per distinct stage-key
// per run (a per-key sync.Once), whatever the provider does and however
// many groups or points share the key.
type runArtifacts struct {
	backing        ArtifactProvider // nil = run-local only
	seed           uint64
	sample, warmup int64

	// One mutex per kind, as with the closure-captured maps this replaces:
	// a latency-model fit held under latMu must not stall the replay hot
	// path's burst lookups (one per measurement per rank count).
	hashMu  sync.Mutex
	hashes  map[string]string // app name -> content hash
	latMu   sync.Mutex
	lat     map[string]*dram.LatencyModel // artifact key -> fitted curve
	burstMu sync.Mutex
	bursts  map[string]*trace.Burst // artifact key -> parsed trace

	scalMu    sync.Mutex
	scalars   map[string]*scalarEntry // app name -> scalar window
	scalOrder []string
	fuseMu    sync.Mutex
	fused     map[fusedKey]*fusedEntry
	fuseOrder []fusedKey
	annMu     sync.Mutex
	anns      map[string]*annEntry // hit-rate key -> combined annotation
	annOrder  []string
}

// fusedKey addresses a run-local fused trace. The application is identified
// by name: within one run a name maps to one profile.
type fusedKey struct {
	app string
	vec int
}

// fusedEntry / annEntry are once-guarded slots: the map insert under the
// kind mutex is cheap, the build runs outside it, and concurrent requests
// for the same key block on the once instead of duplicating work.
type fusedEntry struct {
	once sync.Once
	ft   *node.FusedTrace
}

type scalarEntry struct {
	once sync.Once
	st   node.ScalarTrace
}

type annEntry struct {
	once sync.Once
	ann  *node.Annotation
}

func newRunArtifacts(o Options) *runArtifacts {
	return &runArtifacts{
		backing: o.Artifacts,
		seed:    o.Seed, sample: o.SampleInstrs, warmup: o.WarmupInstrs,
		hashes:  map[string]string{},
		lat:     map[string]*dram.LatencyModel{},
		bursts:  map[string]*trace.Burst{},
		scalars: map[string]*scalarEntry{},
		fused:   map[fusedKey]*fusedEntry{},
		anns:    map[string]*annEntry{},
	}
}

// appHash memoizes AppHash per application.
func (r *runArtifacts) appHash(app *apps.Profile) string {
	r.hashMu.Lock()
	defer r.hashMu.Unlock()
	h, ok := r.hashes[app.Name]
	if !ok {
		h = AppHash(app)
		r.hashes[app.Name] = h
	}
	return h
}

// latencyModel returns the fitted DRAM curve for (app, channels, mem
// kind), consulting the run front, then the provider, then building.
// Duplicate concurrent requests serialize on latMu, so each curve is
// built (or decoded) once per run. ctx parents the stage span: only the
// run-front miss — a real fit or a cache decode — is traced and timed, not
// every per-point lookup.
func (r *runArtifacts) latencyModel(ctx context.Context, app *apps.Profile, ch int, mem MemKind) *dram.LatencyModel {
	key := LatencyModelKey(r.appHash(app), ch, mem, r.seed)
	r.latMu.Lock()
	defer r.latMu.Unlock()
	if m := r.lat[key]; m != nil {
		return m
	}
	_, span := obs.StartSpan(ctx, "dse.latency-fit",
		obs.A("app", app.Name), obs.AInt("channels", ch), obs.A("mem", mem.String()))
	start := time.Now()
	defer span.End()
	if r.backing != nil {
		if m, ok := r.backing.LatencyModel(key); ok {
			span.SetAttr("source", "cache")
			r.lat[key] = &m
			return &m
		}
	}
	span.SetAttr("source", "built")
	m := node.BuildLatencyModel(app, dram.Config{Spec: mem.Spec(), Channels: ch}, dram.FRFCFS, r.seed)
	observeStage(StageLatencyFit, start)
	r.lat[key] = &m
	if r.backing != nil {
		r.backing.PutLatencyModel(key, m)
	}
	return &m
}

// burst returns the shared burst trace for (app, ranks) — replay only
// reads it, so every worker replays the same instance. As with
// latencyModel, only the run-front miss is traced.
func (r *runArtifacts) burst(ctx context.Context, app *apps.Profile, ranks int) *trace.Burst {
	key := BurstKey(r.appHash(app), ranks, r.seed)
	r.burstMu.Lock()
	defer r.burstMu.Unlock()
	if b := r.bursts[key]; b != nil {
		return b
	}
	_, span := obs.StartSpan(ctx, "dse.burst-synthesis",
		obs.A("app", app.Name), obs.AInt("ranks", ranks))
	start := time.Now()
	defer span.End()
	if r.backing != nil {
		if b, ok := r.backing.Burst(key); ok {
			span.SetAttr("source", "cache")
			r.bursts[key] = b
			return b
		}
	}
	span.SetAttr("source", "built")
	b := apps.BurstTrace(app, ranks, r.seed)
	observeStage(StageBurstSynthesis, start)
	r.bursts[key] = b
	if r.backing != nil {
		r.backing.PutBurst(key, b)
	}
	return b
}

// fusedTrace returns the run-local fused trace of (app, vector width),
// building it at most once per key. Fused traces are never persisted (see
// the file comment); the stage histogram counts real stream generations,
// so its observation count reads as "fused traces built".
func (r *runArtifacts) fusedTrace(ctx context.Context, app *apps.Profile, vec int) *node.FusedTrace {
	k := fusedKey{app.Name, vec}
	r.fuseMu.Lock()
	e := r.fused[k]
	if e == nil {
		e = &fusedEntry{}
		r.fused[k] = e
		r.fuseOrder = append(r.fuseOrder, k)
		for len(r.fuseOrder) > maxRunFusedTraces {
			delete(r.fused, r.fuseOrder[0])
			r.fuseOrder = r.fuseOrder[1:]
		}
	}
	r.fuseMu.Unlock()
	e.once.Do(func() {
		_, span := obs.StartSpan(ctx, "dse.fuse",
			obs.A("app", app.Name), obs.AInt("vec", vec))
		defer span.End()
		start := time.Now()
		e.ft = node.FuseScalarTrace(r.scalarTrace(app), app, vec, r.seed)
		observeStage(StageFuse, start)
	})
	return e.ft
}

// scalarTrace returns the run-local scalar instruction window of one
// application (fidelity and seed are fixed per run). Every vector width
// fuses the identical scalar sequence, so generating it once per
// application removes the generator from all but the first fuse. The bound
// is small — groups are dispatched sorted by application, so older windows
// cannot be needed again.
func (r *runArtifacts) scalarTrace(app *apps.Profile) node.ScalarTrace {
	r.scalMu.Lock()
	e := r.scalars[app.Name]
	if e == nil {
		e = &scalarEntry{}
		r.scalars[app.Name] = e
		r.scalOrder = append(r.scalOrder, app.Name)
		for len(r.scalOrder) > maxRunScalarTraces {
			delete(r.scalars, r.scalOrder[0])
			r.scalOrder = r.scalOrder[1:]
		}
	}
	r.scalMu.Unlock()
	e.once.Do(func() {
		e.st = node.BuildScalarTrace(app, r.sample, r.warmup, r.seed)
	})
	return e.st
}

// annotation returns the shared annotation of one (app, group): the fused
// trace overlaid with the group's hit-rate table, consulting the provider
// for the table before walking the caches. Each hit-rate key is resolved at
// most once per run — annotation groups that differ only in memory kind
// block on the same once instead of re-walking. The stage histogram counts
// only real cache walks, so its observation count reads as "hit-rate tables
// built" — a run-front, cache or ring-peer hit leaves it untouched.
func (r *runArtifacts) annotation(ctx context.Context, app *apps.Profile, g AnnGroup, cfg node.Config) *node.Annotation {
	key := HitRateKey(r.appHash(app), g.CacheGroup(), r.sample, r.warmup, r.seed)
	r.annMu.Lock()
	e := r.anns[key]
	if e == nil {
		e = &annEntry{}
		r.anns[key] = e
		r.annOrder = append(r.annOrder, key)
		for len(r.annOrder) > maxRunAnnotations {
			delete(r.anns, r.annOrder[0])
			r.annOrder = r.annOrder[1:]
		}
	}
	r.annMu.Unlock()
	e.once.Do(func() {
		_, span := obs.StartSpan(ctx, "dse.annotate", obs.A("app", app.Name))
		defer span.End()
		ft := r.fusedTrace(ctx, app, g.Vec)
		if r.backing != nil {
			if hrt, ok := r.backing.HitRates(key); ok {
				if ann, match := node.CombineAnnotation(ft, hrt); match {
					span.SetAttr("source", "cache")
					ann.Memo = node.NewTimingMemo()
					e.ann = &ann
					return
				}
			}
		}
		span.SetAttr("source", "built")
		start := time.Now()
		ann, hrt := node.AnnotateTrace(ft, cfg)
		observeStage(StageAnnotate, start)
		ann.Memo = node.NewTimingMemo()
		e.ann = &ann
		if r.backing != nil {
			r.backing.PutHitRates(key, hrt)
		}
	})
	return e.ann
}
