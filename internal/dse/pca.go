package dse

import (
	"fmt"

	"musa/internal/stats"
)

// PCAFor reproduces the paper's principal component analysis (§V-C, Fig. 10)
// for one application: the 64-core, 2 GHz slice of the design space, with
// five variables — OoO capacity (ROB entries), number of memory channels,
// SIMD width, cache size, and the execution time of the simulation.
func PCAFor(d *Dataset, app string) (*stats.PCAResult, error) {
	labels := []string{"OoO struct.", "Mem. BW", "FPU", "Cache size", "Exec. time"}
	var data [][]float64
	for _, m := range d.ByApp(app) {
		a := m.Arch
		if a.Cores != 64 || a.FreqGHz != 2.0 || a.Mem != DDR4 {
			continue
		}
		data = append(data, []float64{
			float64(a.Core.ROB),
			float64(a.Channels),
			float64(a.VectorBits),
			float64(a.Cache.L3MB),
			m.TimeNs,
		})
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("dse: only %d observations for %s PCA (need the 64-core 2 GHz slice)", len(data), app)
	}
	return stats.PCA(labels, data)
}
