package dse

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunFullyDeterministic is the property that makes content-addressed
// result caching sound: two runs of the same request produce identical
// measurements across every field, bit for bit. (TestRunDeterministic in
// dse_test.go only spot-checks TimeNs on a small subset.)
func TestRunFullyDeterministic(t *testing.T) {
	o := testOpts()
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000
	a := Run(context.Background(), o)
	b := Run(context.Background(), o)
	if len(a.Measurements) == 0 {
		t.Fatal("empty sweep")
	}
	if !reflect.DeepEqual(a.Measurements, b.Measurements) {
		for i := range a.Measurements {
			if !reflect.DeepEqual(a.Measurements[i], b.Measurements[i]) {
				t.Fatalf("measurement %d differs between identical runs:\n%+v\nvs\n%+v",
					i, a.Measurements[i], b.Measurements[i])
			}
		}
		t.Fatal("datasets differ between identical runs")
	}
}

// TestLookupServesWithoutSimulating checks the cache read path: when every
// point is served by Lookup, nothing is simulated and the dataset matches
// the fresh run.
func TestLookupServesWithoutSimulating(t *testing.T) {
	o := testOpts()
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000

	cache := map[string]Measurement{}
	var mu sync.Mutex
	o.OnMeasurement = func(m Measurement) {
		mu.Lock()
		cache[m.App+"|"+m.Arch.Label()] = m
		mu.Unlock()
	}
	fresh := Run(context.Background(), o)
	if len(cache) != len(fresh.Measurements) {
		t.Fatalf("OnMeasurement saw %d of %d measurements", len(cache), len(fresh.Measurements))
	}

	var simulated atomic.Int64
	o.OnMeasurement = func(Measurement) { simulated.Add(1) }
	o.Lookup = func(app string, p ArchPoint) (Measurement, bool) {
		mu.Lock()
		defer mu.Unlock()
		m, ok := cache[app+"|"+p.Label()]
		return m, ok
	}
	cached := Run(context.Background(), o)
	if n := simulated.Load(); n != 0 {
		t.Fatalf("fully cached run simulated %d points", n)
	}
	if !reflect.DeepEqual(fresh.Measurements, cached.Measurements) {
		t.Fatal("cached dataset differs from fresh dataset")
	}
}

// TestPartialLookupMatchesFresh serves only every other point from the
// cache, so annotation groups are entered at arbitrary offsets — the lazily
// built annotation must still reproduce the fresh measurements exactly.
func TestPartialLookupMatchesFresh(t *testing.T) {
	o := testOpts()
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000

	cache := map[string]Measurement{}
	var mu sync.Mutex
	o.OnMeasurement = func(m Measurement) {
		mu.Lock()
		cache[m.App+"|"+m.Arch.Label()] = m
		mu.Unlock()
	}
	fresh := Run(context.Background(), o)
	o.OnMeasurement = nil

	var flip atomic.Int64
	o.Lookup = func(app string, p ArchPoint) (Measurement, bool) {
		if flip.Add(1)%2 == 0 {
			return Measurement{}, false
		}
		mu.Lock()
		defer mu.Unlock()
		m, ok := cache[app+"|"+p.Label()]
		return m, ok
	}
	mixed := Run(context.Background(), o)
	if !reflect.DeepEqual(fresh.Measurements, mixed.Measurements) {
		t.Fatal("half-cached dataset differs from fresh dataset")
	}
}

// TestCancelStopsEarlyAndCheckpoints cancels the context partway through
// and checks that Run returns only the checkpointed subset.
func TestCancelStopsEarlyAndCheckpoints(t *testing.T) {
	o := testOpts()
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000
	o.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	o.OnMeasurement = func(Measurement) {
		if seen.Add(1) == 5 {
			cancel()
		}
	}
	d := Run(ctx, o)
	total := len(testOpts().Apps) * len(testOpts().Points)
	if len(d.Measurements) >= total {
		t.Fatalf("canceled run still completed all %d points", total)
	}
	if int64(len(d.Measurements)) != seen.Load() {
		t.Fatalf("dataset has %d measurements but %d were checkpointed",
			len(d.Measurements), seen.Load())
	}
}
