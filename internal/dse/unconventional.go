package dse

import (
	"musa/internal/apps"
	"musa/internal/cpu"
	"musa/internal/node"
)

// UnconventionalRow is one row of Table II / Fig. 11: a named configuration
// with its performance, power and energy relative to the DSE-Best baseline.
type UnconventionalRow struct {
	App       string
	Label     string
	Arch      ArchPoint
	TimeNs    float64
	PowerW    float64
	EnergyJ   float64
	RelPerf   float64 // baseline time / this time
	RelPower  float64
	RelEnergy float64
	// EnergyKnown is false for HBM (the paper cannot report HBM energy
	// either, for lack of public power data).
	EnergyKnown bool
}

// unconvEntry is one Table II configuration.
type unconvEntry struct {
	label       string
	arch        ArchPoint
	energyKnown bool
}

// unconvSpec pairs an application with its Table II configurations; the
// first entry is the DSE-Best baseline.
type unconvSpec struct {
	app  *apps.Profile
	rows []unconvEntry
}

func tableII() []unconvSpec {
	cache96 := CacheConfigs()[2]
	cache64 := CacheConfigs()[1]
	mk := func(core cpu.Config, vec int, cache CacheCfg, ch int, mem MemKind) ArchPoint {
		return ArchPoint{Cores: 64, Core: core, FreqGHz: 2.0, VectorBits: vec, Cache: cache, Channels: ch, Mem: mem}
	}
	return []unconvSpec{
		{
			// SPMZ: push SIMD width beyond the sweep (Vector+ 1024-bit,
			// Vector++ 2048-bit) while trimming what barely matters for it.
			app: apps.SPMZ(),
			rows: []unconvEntry{
				{"Best-DSE", mk(cpu.Aggressive(), 512, cache96, 8, DDR4), true},
				{"Vector+", mk(cpu.High(), 1024, cache64, 4, DDR4), true},
				{"Vector++", mk(cpu.High(), 2048, cache64, 4, DDR4), true},
			},
		},
		{
			// LULESH: narrow FPUs, moderate cores, double-then-HBM memory.
			app: apps.LULESH(),
			rows: []unconvEntry{
				{"Best-DSE", mk(cpu.High(), 512, cache96, 8, DDR4), true},
				{"MEM+", mk(cpu.Medium(), 64, cache64, 16, DDR4), true},
				{"MEM++", mk(cpu.Medium(), 64, cache64, 16, HBM), false},
			},
		},
	}
}

// Unconventional simulates the Table II application-specific configurations
// and returns the Fig. 11 rows, normalized to each application's Best-DSE.
func Unconventional(sampleInstrs, warmupInstrs int64, seed uint64) []UnconventionalRow {
	var out []UnconventionalRow
	for _, spec := range tableII() {
		var baseIdx int
		for i, r := range spec.rows {
			cfg := r.arch.NodeConfig(sampleInstrs, warmupInstrs, seed)
			res := node.Simulate(spec.app, cfg)
			row := UnconventionalRow{
				App:         spec.app.Name,
				Label:       r.label,
				Arch:        r.arch,
				TimeNs:      res.ComputeNs,
				PowerW:      res.Power.Total(),
				EnergyJ:     res.EnergyJ,
				EnergyKnown: r.energyKnown,
			}
			if i == 0 {
				row.RelPerf, row.RelPower, row.RelEnergy = 1, 1, 1
				out = append(out, row)
				baseIdx = len(out) - 1
			} else {
				base := out[baseIdx]
				row.RelPerf = base.TimeNs / row.TimeNs
				row.RelPower = row.PowerW / base.PowerW
				row.RelEnergy = row.EnergyJ / base.EnergyJ
				out = append(out, row)
			}
		}
	}
	return out
}
