package dse

import (
	"fmt"

	"musa/internal/stats"
)

// Feature identifies one swept architectural dimension.
type Feature int

// The five swept features of §V-B.
const (
	FeatVector Feature = iota
	FeatCache
	FeatOoO
	FeatChannels
	FeatFreq
)

func (f Feature) String() string {
	switch f {
	case FeatVector:
		return "vector"
	case FeatCache:
		return "cache"
	case FeatOoO:
		return "ooo"
	case FeatChannels:
		return "channels"
	case FeatFreq:
		return "freq"
	}
	return "?"
}

// Values returns the sweep values of the feature, baseline first, matching
// the paper's normalization baselines (128-bit, 32M:256K, aggressive OoO,
// 4 channels, 1.5 GHz).
func (f Feature) Values() []string {
	switch f {
	case FeatVector:
		return []string{"128", "256", "512"}
	case FeatCache:
		return []string{"32M:256K", "64M:512K", "96M:1M"}
	case FeatOoO:
		return []string{"aggressive", "lowend", "high", "medium"}
	case FeatChannels:
		return []string{"4chDDR4", "8chDDR4"}
	case FeatFreq:
		return []string{"1.5", "2.0", "2.5", "3.0"}
	}
	return nil
}

// Baseline returns the normalization baseline value.
func (f Feature) Baseline() string { return f.Values()[0] }

// valueOf extracts the feature value label of a configuration.
func (f Feature) valueOf(a ArchPoint) string {
	switch f {
	case FeatVector:
		return fmt.Sprintf("%d", a.VectorBits)
	case FeatCache:
		return a.Cache.Label
	case FeatOoO:
		return a.Core.Name
	case FeatChannels:
		return fmt.Sprintf("%dch%s", a.Channels, a.Mem)
	case FeatFreq:
		return fmt.Sprintf("%.1f", a.FreqGHz)
	}
	return ""
}

// keyExcluding renders a configuration identity with the feature dimension
// masked, used to pair each configuration with its baseline partner.
func (f Feature) keyExcluding(a ArchPoint) string {
	masked := a
	switch f {
	case FeatVector:
		masked.VectorBits = 0
	case FeatCache:
		masked.Cache = CacheCfg{}
	case FeatOoO:
		masked.Core.Name = ""
	case FeatChannels:
		masked.Channels = 0
		masked.Mem = DDR4
	case FeatFreq:
		masked.FreqGHz = 0
	}
	return fmt.Sprintf("%d|%s|%.1f|%d|%s|%d|%d",
		masked.Cores, masked.Core.Name, masked.FreqGHz, masked.VectorBits,
		masked.Cache.Label, masked.Channels, masked.Mem)
}

// Metric extracts the quantity being normalized from a measurement.
type Metric func(Measurement) float64

// Standard metrics.
func MetricTime(m Measurement) float64    { return m.TimeNs }
func MetricPower(m Measurement) float64   { return m.Power.Total() }
func MetricEnergy(m Measurement) float64  { return m.EnergyJ }
func MetricCoreL1W(m Measurement) float64 { return m.Power.CoreL1 }
func MetricL2L3W(m Measurement) float64   { return m.Power.L2L3 }
func MetricMemW(m Measurement) float64    { return m.Power.Memory }

// Bar is one aggregated bar of a paper figure: the mean (and standard
// deviation) of the per-pair ratios for one (application, feature value).
type Bar struct {
	App   string
	Value string
	Mean  float64
	Std   float64
	N     int
}

// NormalizedBars implements the paper's quantification methodology (§V-B):
// every configuration with the given feature value is normalized against the
// configuration sharing all other parameters but the baseline feature value,
// and the per-pair ratios are averaged. invert=true turns time ratios into
// speedups (baseline/value); invert=false reports value/baseline (power,
// energy). coresFilter restricts to one socket width (32 or 64; 0 = all).
func NormalizedBars(ms []Measurement, f Feature, metric Metric, invert bool, coresFilter int) []Bar {
	// Index baseline partners.
	base := map[string]Measurement{}
	for _, m := range ms {
		if coresFilter > 0 && m.Arch.Cores != coresFilter {
			continue
		}
		if f.valueOf(m.Arch) == f.Baseline() {
			base[m.App+"|"+f.keyExcluding(m.Arch)] = m
		}
	}

	ratios := map[string]map[string][]float64{} // app -> value -> ratios
	for _, m := range ms {
		if coresFilter > 0 && m.Arch.Cores != coresFilter {
			continue
		}
		v := f.valueOf(m.Arch)
		b, ok := base[m.App+"|"+f.keyExcluding(m.Arch)]
		if !ok {
			continue
		}
		bm, vm := metric(b), metric(m)
		if bm <= 0 || vm <= 0 {
			continue
		}
		r := vm / bm
		if invert {
			r = bm / vm
		}
		if ratios[m.App] == nil {
			ratios[m.App] = map[string][]float64{}
		}
		ratios[m.App][v] = append(ratios[m.App][v], r)
	}

	var out []Bar
	for _, app := range appOrder(ms) {
		for _, v := range f.Values() {
			rs := ratios[app][v]
			if len(rs) == 0 {
				continue
			}
			s := stats.Summarize(rs)
			out = append(out, Bar{App: app, Value: v, Mean: s.Mean, Std: s.StdDev, N: s.N})
		}
	}
	return out
}

// appOrder returns the distinct applications in the paper's plotting order.
func appOrder(ms []Measurement) []string {
	order := []string{"hydro", "spmz", "btmz", "spec3d", "lulesh"}
	present := map[string]bool{}
	for _, m := range ms {
		present[m.App] = true
	}
	var out []string
	for _, a := range order {
		if present[a] {
			out = append(out, a)
		}
	}
	for a := range present {
		found := false
		for _, o := range out {
			if o == a {
				found = true
			}
		}
		if !found {
			out = append(out, a)
		}
	}
	return out
}

// Fig1Row is one application's characterization row (Fig. 1), extended
// with the cluster-level metrics of the multi-scale loop (zero when the
// replay stage was disabled).
type Fig1Row struct {
	App           string
	Cores         int
	L1MPKI        float64
	L2MPKI        float64
	L3MPKI        float64
	GMemReqPerSec float64
	// EndToEndNs / MPIFraction / ParallelEff are the full-application
	// replay metrics at the sweep's largest replayed rank count.
	EndToEndNs  float64
	MPIFraction float64
	ParallelEff float64
}

// Figure1 extracts the runtime-statistics characterization at the reference
// configuration (medium core, 2 GHz, 128-bit, 64M:512K, 4-channel DDR4) for
// 32- and 64-core sockets.
func Figure1(d *Dataset) []Fig1Row {
	var out []Fig1Row
	for _, cores := range []int{32, 64} {
		for _, app := range appOrder(d.Measurements) {
			for _, m := range d.ByApp(app) {
				a := m.Arch
				if a.Cores == cores && a.Core.Name == "medium" && a.FreqGHz == 2.0 &&
					a.VectorBits == 128 && a.Cache.Label == "64M:512K" && a.Channels == 4 && a.Mem == DDR4 {
					out = append(out, Fig1Row{
						App: app, Cores: cores,
						L1MPKI: m.L1MPKI, L2MPKI: m.L2MPKI, L3MPKI: m.L3MPKI,
						GMemReqPerSec: m.GMemReqPerSec,
						EndToEndNs:    m.EndToEndNs,
						MPIFraction:   m.MPIFraction,
						ParallelEff:   m.ParallelEff,
					})
				}
			}
		}
	}
	return out
}

// BestConfig returns the fastest measurement for an application under the
// given filter (nil = no filter).
func BestConfig(d *Dataset, app string, filter func(ArchPoint) bool) (Measurement, bool) {
	var best Measurement
	found := false
	for _, m := range d.ByApp(app) {
		if filter != nil && !filter(m.Arch) {
			continue
		}
		if !found || m.TimeNs < best.TimeNs {
			best = m
			found = true
		}
	}
	return best, found
}
