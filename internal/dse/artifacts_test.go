package dse

import (
	"strings"
	"testing"

	"musa/internal/apps"
)

// TestArtifactKeyGolden pins the artifact key schema byte for byte —
// mirroring the schema-v3 golden test of the canonical experiment
// encoding. A change here is an artifact schema change and must come with
// an ArtifactSchemaVersion bump (stale artifact caches are refused by the
// store, not misread). The golden profile is a fixed literal, immune to
// retuning of the built-in application models.
func TestArtifactKeyGolden(t *testing.T) {
	p := &apps.Profile{Name: "golden", MispredictRate: 0.01, Iterations: 2}
	hash := AppHash(p)
	const wantHash = "230d96f2e2555ddd662d5f1d8c6537f3958a77289ccc9dd0dc0eda86a0e174f1"
	if hash != wantHash {
		t.Fatalf("AppHash drifted: got %s want %s", hash, wantHash)
	}

	g := AnnGroup{Cores: 64, Vec: 128, Cache: "64M:512K", Mem: DDR4}
	golden := []struct {
		name string
		key  string
		want string
	}{
		{"annotation", AnnotationKey(hash, g, 20000, 40000, 1), "a1c803633bb66cfe2735c0a5dac6b2eff8ff12b50d4b428043209995b5d10bc1"},
		// Implicit fidelity normalizes to the package defaults, so the
		// explicit spelling shares the key.
		{"annotation-defaults", AnnotationKey(hash, g, 0, 0, 1),
			AnnotationKey(hash, g, apps.SampleSize, 2*apps.SampleSize, 1)},
		{"latency-model", LatencyModelKey(hash, 4, DDR4, 1), "2741e03a20f3dc0ed947eb3540fdffb2783f41cafb5149ae4c98ee2fd5980c54"},
		{"burst", BurstKey(hash, 64, 1), "dadfdfe04f30495d69e5f7ddd81a7bce43ddb59d3c3128abfff6dd2d36c1821e"},
	}
	for _, c := range golden {
		if c.key != c.want {
			t.Errorf("%s key drifted: got %s want %s", c.name, c.key, c.want)
		}
	}

	// The key docs behind the hashes are pinned too: field order and
	// defaults-made-explicit are the schema.
	doc := artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactAnnotation, App: hash,
		Group: &g, Sample: 20000, Warmup: 40000, Seed: 1,
	}
	if doc.key() != golden[0].key {
		t.Fatal("AnnotationKey diverges from its documented key doc")
	}
}

// TestArtifactKeyDiscriminates checks that every build input an artifact
// depends on flows into its address.
func TestArtifactKeyDiscriminates(t *testing.T) {
	h1 := AppHash(apps.LULESH())
	h2 := AppHash(apps.Hydro())
	if h1 == h2 {
		t.Fatal("two applications share a content hash")
	}
	if len(h1) != 64 || strings.ToLower(h1) != h1 {
		t.Fatalf("AppHash %q is not lowercase hex sha-256", h1)
	}
	g := AnnGroup{Cores: 64, Vec: 128, Cache: "64M:512K", Mem: DDR4}
	g2 := g
	g2.Vec = 256
	base := AnnotationKey(h1, g, 0, 0, 1)
	for name, other := range map[string]string{
		"app":    AnnotationKey(h2, g, 0, 0, 1),
		"group":  AnnotationKey(h1, g2, 0, 0, 1),
		"sample": AnnotationKey(h1, g, 1000, 0, 1),
		"seed":   AnnotationKey(h1, g, 0, 0, 2),
		"kind":   LatencyModelKey(h1, 4, DDR4, 1),
	} {
		if other == base {
			t.Errorf("annotation key ignores %s", name)
		}
	}
	if LatencyModelKey(h1, 4, DDR4, 1) == LatencyModelKey(h1, 8, DDR4, 1) {
		t.Error("latency key ignores channels")
	}
	if LatencyModelKey(h1, 4, DDR4, 1) == LatencyModelKey(h1, 4, HBM, 1) {
		t.Error("latency key ignores memory kind")
	}
	if BurstKey(h1, 64, 1) == BurstKey(h1, 256, 1) {
		t.Error("burst key ignores ranks")
	}
}
