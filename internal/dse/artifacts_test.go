package dse

import (
	"strings"
	"testing"

	"musa/internal/apps"
)

// TestArtifactKeyGolden pins the artifact key schema byte for byte —
// mirroring the schema-v3 golden test of the canonical experiment
// encoding. A change here is an artifact schema change and must come with
// an ArtifactSchemaVersion bump (stale artifact caches are refused by the
// store, not misread). The golden profile is a fixed literal, immune to
// retuning of the built-in application models.
func TestArtifactKeyGolden(t *testing.T) {
	p := &apps.Profile{Name: "golden", MispredictRate: 0.01, Iterations: 2}
	hash := AppHash(p)
	const wantHash = "230d96f2e2555ddd662d5f1d8c6537f3958a77289ccc9dd0dc0eda86a0e174f1"
	if hash != wantHash {
		t.Fatalf("AppHash drifted: got %s want %s", hash, wantHash)
	}

	g := CacheGroup{Cores: 64, Vec: 128, Cache: "64M:512K"}
	golden := []struct {
		name string
		key  string
		want string
	}{
		{"hit-rates", HitRateKey(hash, g, 20000, 40000, 1), "0d1531fab98c5181f3a7ab988cbbb5022182ba38e8e4931eafd2df76c597792a"},
		// Implicit fidelity normalizes to the package defaults, so the
		// explicit spelling shares the key.
		{"hit-rates-defaults", HitRateKey(hash, g, 0, 0, 1),
			HitRateKey(hash, g, apps.SampleSize, 2*apps.SampleSize, 1)},
		{"latency-model", LatencyModelKey(hash, 4, DDR4, 1), "7de2c36a39c8a94122a5d489cbf41cc2585b4e82fa09a2e4c32a90f47ba98b33"},
		{"burst", BurstKey(hash, 64, 1), "8ca5866e7887075a9854289aec7e641c9cd3ae6b0c36b735f4635d0599ce9bad"},
	}
	for _, c := range golden {
		if c.key != c.want {
			t.Errorf("%s key drifted: got %s want %s", c.name, c.key, c.want)
		}
	}

	// The key docs behind the hashes are pinned too: field order and
	// defaults-made-explicit are the schema.
	doc := artifactKeyDoc{
		V: ArtifactSchemaVersion, Kind: ArtifactHitRates, App: hash,
		Group: &g, Sample: 20000, Warmup: 40000, Seed: 1,
	}
	if doc.key() != golden[0].key {
		t.Fatal("HitRateKey diverges from its documented key doc")
	}
}

// TestArtifactKeyDiscriminates checks that every build input an artifact
// depends on flows into its address — and that the one deliberately
// excluded input, the memory kind, does not: annotation groups that differ
// only in memory share a hit-rate table.
func TestArtifactKeyDiscriminates(t *testing.T) {
	h1 := AppHash(apps.LULESH())
	h2 := AppHash(apps.Hydro())
	if h1 == h2 {
		t.Fatal("two applications share a content hash")
	}
	if len(h1) != 64 || strings.ToLower(h1) != h1 {
		t.Fatalf("AppHash %q is not lowercase hex sha-256", h1)
	}
	g := CacheGroup{Cores: 64, Vec: 128, Cache: "64M:512K"}
	g2 := g
	g2.Vec = 256
	base := HitRateKey(h1, g, 0, 0, 1)
	for name, other := range map[string]string{
		"app":    HitRateKey(h2, g, 0, 0, 1),
		"group":  HitRateKey(h1, g2, 0, 0, 1),
		"sample": HitRateKey(h1, g, 1000, 0, 1),
		"seed":   HitRateKey(h1, g, 0, 0, 2),
		"kind":   LatencyModelKey(h1, 4, DDR4, 1),
	} {
		if other == base {
			t.Errorf("hit-rate key ignores %s", name)
		}
	}
	for _, mem := range []MemKind{DDR4, HBM} {
		ag := AnnGroup{Cores: g.Cores, Vec: g.Vec, Cache: g.Cache, Mem: mem}
		if got := HitRateKey(h1, ag.CacheGroup(), 0, 0, 1); got != base {
			t.Errorf("hit-rate key depends on memory kind %s", mem)
		}
	}
	if LatencyModelKey(h1, 4, DDR4, 1) == LatencyModelKey(h1, 8, DDR4, 1) {
		t.Error("latency key ignores channels")
	}
	if LatencyModelKey(h1, 4, DDR4, 1) == LatencyModelKey(h1, 4, HBM, 1) {
		t.Error("latency key ignores memory kind")
	}
	if BurstKey(h1, 64, 1) == BurstKey(h1, 256, 1) {
		t.Error("burst key ignores ranks")
	}
}
