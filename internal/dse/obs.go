package dse

import (
	"time"

	"musa/internal/obs"
)

// Observability wiring of the sweep pipeline. Stage names are the contract
// between the runner's instrumentation, the musa-dse -v breakdown table and
// the dashboards scraping /metrics: every expensive phase of a sweep point
// shows up under exactly one of these.
const (
	// StageFuse is the fused-trace build of one (application, vector width):
	// detailed stream generation plus macro-op fusion for the warmup and
	// sample windows.
	StageFuse = "fuse"
	// StageAnnotate is the shared cache-hierarchy walk of a cache group (one
	// warmed hit-rate table per distinct (application, cores, vector width,
	// cache configuration)).
	StageAnnotate = "annotate"
	// StageLatencyFit is the DRAM load-latency curve fit of one
	// (application, channels, memory kind).
	StageLatencyFit = "latency-fit"
	// StageBurstSynthesis is the coarse-grain MPI burst-trace synthesis of
	// one (application, rank count).
	StageBurstSynthesis = "burst-synthesis"
	// StageNodeSim is the detailed node simulation of one sweep point.
	StageNodeSim = "node-sim"
	// StageReplay is the cluster-level MPI replay of one sweep point across
	// every configured rank count.
	StageReplay = "replay"
)

// StageMetric is the per-stage duration histogram every Stage* constant
// labels; its per-series sum/count feed the musa-dse -v breakdown.
const StageMetric = "musa_dse_stage_seconds"

// observeStage records one stage execution into the default registry.
func observeStage(stage string, start time.Time) {
	obs.DefaultRegistry().Histogram(StageMetric,
		"Time spent per dse pipeline stage.", nil, obs.L("stage", stage)).
		Observe(time.Since(start).Seconds())
}

// countPoint advances the per-sweep-point outcome counter.
func countPoint(result string) {
	obs.DefaultRegistry().Counter("musa_dse_points_total",
		"Sweep points completed, by how the measurement was obtained.",
		obs.L("result", result)).Inc()
}
