package dse

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"musa/internal/apps"
	"musa/internal/net"
	"musa/internal/node"
	"musa/internal/obs"
	"musa/internal/power"
)

// ClusterStat is the cluster-level outcome of one MPI replay: the node
// measurement's burst trace rescaled by the measured node speedup and
// replayed across Ranks MPI ranks against the network model.
type ClusterStat struct {
	Ranks       int
	EndToEndNs  float64 // full-application makespan across all ranks
	MPIFraction float64 // mean fraction of the run spent in MPI
	ParallelEff float64 // mean(compute)/makespan across ranks
}

// Measurement is one (application, configuration) simulation outcome.
type Measurement struct {
	App  string
	Arch ArchPoint

	// TimeNs is the per-rank compute time of the full traced execution —
	// the performance metric every figure normalizes.
	TimeNs float64
	// IPC is the sampled core's retired instructions per cycle.
	IPC float64
	// Power is the average node power breakdown during compute.
	Power power.Breakdown
	// EnergyJ is node energy-to-solution over the compute phase.
	EnergyJ float64

	L1MPKI, L2MPKI, L3MPKI float64
	// GMemReqPerSec is the node DRAM request rate (Fig. 1).
	GMemReqPerSec float64
	ActiveCores   float64
	MemLatencyNs  float64
	OfferedBW     float64

	// Cluster holds the MPI-replay outcome at each configured rank count
	// (ascending; empty when the replay stage is disabled).
	Cluster []ClusterStat `json:",omitempty"`
	// EndToEndNs / MPIFraction / ParallelEff mirror the Cluster entry at
	// the largest replayed rank count — the paper's 256-rank full-app
	// metric (zero when the replay stage is disabled).
	EndToEndNs  float64
	MPIFraction float64
	ParallelEff float64
}

// DefaultReplayRanks is the default rank-count axis of the cluster stage:
// one mid-size job and the paper's 256-rank full-application replay.
func DefaultReplayRanks() []int { return []int{64, 256} }

// MaxReplayRanks bounds the per-replay rank count accepted from external
// input (flags, HTTP requests): a 4096-rank burst trace is the largest the
// replay stage synthesizes in reasonable time and memory.
const MaxReplayRanks = 4096

// ValidateReplayRanks checks a cluster-stage rank-count list from external
// input: at most 16 entries, each in [2, MaxReplayRanks].
func ValidateReplayRanks(ranks []int) error {
	if len(ranks) > 16 {
		return fmt.Errorf("dse: %d replay rank counts (max 16)", len(ranks))
	}
	for _, n := range ranks {
		if n < 2 || n > MaxReplayRanks {
			return fmt.Errorf("dse: replay rank count %d out of range [2, %d]", n, MaxReplayRanks)
		}
	}
	return nil
}

// ReplayConfig configures the cluster-level MPI replay that follows each
// node-level measurement.
type ReplayConfig struct {
	// Disable skips the replay stage entirely (node-only sweep).
	Disable bool
	// Ranks are the MPI rank counts replayed per point
	// (nil = DefaultReplayRanks).
	Ranks []int
	// Network is the interconnect model (zero value = net.MareNostrum4()).
	Network net.Model
}

// Normalized returns the canonical form of the config: defaults applied,
// rank counts sorted ascending, and everything zeroed when disabled. The
// result store hashes the normalized form into its request keys.
func (c ReplayConfig) Normalized() ReplayConfig {
	if c.Disable || (c.Ranks != nil && len(c.Ranks) == 0) {
		// An explicit empty rank list means "no replays" too.
		return ReplayConfig{Disable: true}
	}
	if c.Ranks == nil {
		c.Ranks = DefaultReplayRanks()
	} else {
		// Sorted and deduplicated: replaying the same rank count twice is
		// pure waste, and the result store hashes the canonical list.
		c.Ranks = append([]int(nil), c.Ranks...)
		slices.Sort(c.Ranks)
		c.Ranks = slices.Compact(c.Ranks)
	}
	if c.Network == (net.Model{}) {
		c.Network = net.MareNostrum4()
	}
	return c
}

// Options configures a sweep run.
type Options struct {
	// Apps to simulate; nil means all five.
	Apps []*apps.Profile
	// Points to sweep; nil means the full 864-point Table I grid.
	Points []ArchPoint
	// SampleInstrs / WarmupInstrs override the detailed-sample sizes
	// (zero = package defaults). Tests use small values; the cmd tools and
	// benches use the defaults.
	SampleInstrs int64
	WarmupInstrs int64
	Workers      int
	Seed         uint64
	// Progress, if non-nil, receives completed measurement counts. Calls
	// are serialized: implementations may write to shared state or an
	// output stream without their own locking.
	Progress func(done, total int)

	// Lookup, if non-nil, is consulted before each point is simulated; on a
	// hit the returned measurement is reused and the point is not
	// recomputed. This is the result-store read path. Called concurrently
	// from workers.
	Lookup func(app string, p ArchPoint) (Measurement, bool)
	// OnMeasurement, if non-nil, receives each freshly simulated
	// measurement as soon as it completes (Lookup hits are not reported) —
	// the incremental-checkpoint write path. Called concurrently from
	// workers.
	OnMeasurement func(m Measurement)

	// Artifacts, if non-nil, backs the run's expensive intermediates
	// (hit-rate tables, DRAM latency models, burst traces): the runner consults
	// it before building each one and hands freshly built ones back, so
	// artifacts persist across runs and processes. Reuse is bitwise
	// equivalent to rebuilding — a warm run's measurements are
	// byte-identical to a cold run's. Nil keeps the intermediates run-local.
	Artifacts ArtifactProvider

	// Replay configures the cluster-level MPI replay appended to every
	// measurement (zero value = replay at 64 and 256 ranks against the
	// MareNostrum4 model).
	Replay ReplayConfig
}

func (o *Options) fill() {
	if o.Apps == nil {
		o.Apps = apps.All()
	}
	if o.Points == nil {
		o.Points = Enumerate()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Replay = o.Replay.Normalized()
}

// Dataset is the collected sweep output.
type Dataset struct {
	Measurements []Measurement
	byAppOnce    sync.Once
	byApp        map[string][]Measurement
}

// ByApp returns the measurements for one application. The per-app index is
// built on first use under a sync.Once, so concurrent readers (e.g. figure
// goroutines aggregating different applications) are safe.
func (d *Dataset) ByApp(app string) []Measurement {
	d.byAppOnce.Do(func() {
		d.byApp = map[string][]Measurement{}
		for _, m := range d.Measurements {
			d.byApp[m.App] = append(d.byApp[m.App], m)
		}
	})
	return d.byApp[app]
}

// AnnGroup identifies configurations that share cache behavior and can
// therefore share one annotation pass: same core count (L3 partition),
// vector width (fused footprints), cache configuration and memory kind
// (the latency model). The fleet shard planner groups dispatch units by
// it, so this is the one definition of "annotation group" — growing it
// here keeps remote shards exactly as efficient as the local runner.
type AnnGroup struct {
	Cores int
	Vec   int
	Cache string
	Mem   MemKind
}

// AnnGroup returns the point's annotation-group signature.
func (p ArchPoint) AnnGroup() AnnGroup {
	return AnnGroup{Cores: p.Cores, Vec: p.VectorBits, Cache: p.Cache.Label, Mem: p.Mem}
}

// annGroupKey scopes an annotation group to one application.
type annGroupKey struct {
	app string
	AnnGroup
}

// Run executes the sweep in parallel and returns the dataset, sorted
// deterministically (by app, then arch label). Canceling ctx aborts the
// sweep: workers finish the point in flight, skip the rest, and Run returns
// the partial dataset (combined with OnMeasurement checkpointing, a
// canceled sweep resumes where it left off). The caller observes the
// cancellation through ctx.Err().
func Run(ctx context.Context, opts Options) *Dataset {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.fill()

	// The sweep's root span: every pipeline-stage span below parents under
	// it, so a -trace-out dump shows the whole run as one tree. The point
	// total is attached once the groups are known.
	ctx, runSpan := obs.StartSpan(ctx, "dse.run",
		obs.AInt("apps", len(opts.Apps)), obs.AInt("workers", opts.Workers))
	defer runSpan.End()

	// The run-local artifact front: DRAM latency models per (app, channels,
	// mem kind) and one parsed burst trace per (app, ranks) are shared
	// across the whole sweep — replay only reads the trace, so every worker
	// replays the same instance with a per-point compute scale. With
	// opts.Artifacts set, the front is additionally backed by the
	// cross-run provider.
	art := newRunArtifacts(opts)

	// clusterStage fills the cluster-level fields of m: the burst trace's
	// compute durations are rescaled by the measured node speedup (the
	// multi-scale handoff of paper §II) and replayed at every configured
	// rank count. It reports false when ctx was canceled mid-replay — the
	// partially replayed measurement must be dropped, not checkpointed.
	clusterStage := func(pctx context.Context, m *Measurement, app *apps.Profile, res node.Result) bool {
		var tracedIter float64
		for _, spec := range app.Regions {
			tracedIter += spec.LaneWork() / apps.RefLaneThroughput * 1e9
		}
		if tracedIter <= 0 {
			return true
		}
		_, span := obs.StartSpan(pctx, "dse.replay",
			obs.AInt("rankCounts", len(opts.Replay.Ranks)))
		start := time.Now()
		defer func() { observeStage(StageReplay, start); span.End() }()
		scale := res.IterationNs / tracedIter
		rescale := func(rank int, traced float64) float64 { return traced * scale }
		m.Cluster = make([]ClusterStat, 0, len(opts.Replay.Ranks))
		for _, ranks := range opts.Replay.Ranks {
			rep, err := net.ReplayCtx(ctx, art.burst(pctx, app, ranks), opts.Replay.Network, rescale)
			if err != nil {
				return false
			}
			m.Cluster = append(m.Cluster, ClusterStat{
				Ranks:       ranks,
				EndToEndNs:  rep.MakespanNs,
				MPIFraction: rep.MPIFraction(),
				ParallelEff: rep.AvgParallelEfficiency(),
			})
		}
		// Ranks are sorted ascending; mirror the largest replay.
		last := m.Cluster[len(m.Cluster)-1]
		m.EndToEndNs = last.EndToEndNs
		m.MPIFraction = last.MPIFraction
		m.ParallelEff = last.ParallelEff
		return true
	}

	// Group points by annotation key.
	groups := map[annGroupKey][]ArchPoint{}
	appByName := map[string]*apps.Profile{}
	for _, a := range opts.Apps {
		appByName[a.Name] = a
		for _, p := range opts.Points {
			k := annGroupKey{a.Name, p.AnnGroup()}
			groups[k] = append(groups[k], p)
		}
	}
	keys := make([]annGroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.app != b.app {
			return a.app < b.app
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		if a.Vec != b.Vec {
			return a.Vec < b.Vec
		}
		return a.Cache < b.Cache
	})

	total := 0
	for _, k := range keys {
		total += len(groups[k])
	}
	runSpan.SetAttr("points", fmt.Sprint(total))

	jobs := make(chan annGroupKey)
	results := make(chan []Measurement)
	var done int
	var doneMu sync.Mutex

	canceled := func() bool { return ctx.Err() != nil }
	bump := func() {
		// The counter advances whether or not anyone listens, so every
		// consumer (Progress today, artifact-cache statistics and /stats
		// tomorrow) sees the same correct count. The callback runs under
		// the lock so Progress calls are serialized and monotonic for the
		// consumer.
		doneMu.Lock()
		done++
		if opts.Progress != nil {
			opts.Progress(done, total)
		}
		doneMu.Unlock()
	}

	worker := func() {
		for k := range jobs {
			app := appByName[k.app]
			points := groups[k]
			// The shared annotation is built lazily from the group's first
			// non-cached point: a fully cached group never pays for it.
			var ann *node.Annotation

			ms := make([]Measurement, 0, len(points))
			for _, p := range points {
				if canceled() {
					break
				}
				pctx, psp := obs.StartSpan(ctx, "dse.point",
					obs.A("app", k.app), obs.A("arch", p.Label()))
				if opts.Lookup != nil {
					if m, ok := opts.Lookup(k.app, p); ok {
						ms = append(ms, m)
						countPoint("cached")
						psp.SetAttr("result", "cached")
						psp.End()
						bump()
						continue
					}
				}
				cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.Seed)
				if ann == nil {
					ann = art.annotation(pctx, app, k.AnnGroup, cfg)
				}
				cfg.LatModel = art.latencyModel(pctx, app, p.Channels, p.Mem)
				_, simSpan := obs.StartSpan(pctx, "dse.node-sim")
				simStart := time.Now()
				res := node.SimulateAnnotated(app, cfg, *ann)
				observeStage(StageNodeSim, simStart)
				simSpan.End()
				l1, l2, l3 := res.MPKI()
				m := Measurement{
					App:           app.Name,
					Arch:          p,
					TimeNs:        res.ComputeNs,
					IPC:           res.CoreRes.IPC(),
					Power:         res.Power,
					EnergyJ:       res.EnergyJ,
					L1MPKI:        l1,
					L2MPKI:        l2,
					L3MPKI:        l3,
					GMemReqPerSec: res.GMemReqPerSec,
					ActiveCores:   res.AvgActiveCores,
					MemLatencyNs:  res.MemLatencyNs,
					OfferedBW:     res.OfferedBW,
				}
				if !opts.Replay.Disable && !clusterStage(pctx, &m, app, res) {
					psp.End()
					break // canceled mid-replay: drop the partial point
				}
				countPoint("simulated")
				psp.SetAttr("result", "simulated")
				psp.End()
				ms = append(ms, m)
				if opts.OnMeasurement != nil {
					opts.OnMeasurement(m)
				}
				bump()
			}
			results <- ms
		}
	}

	for w := 0; w < opts.Workers; w++ {
		go worker()
	}
	go func() {
		for _, k := range keys {
			jobs <- k
		}
		close(jobs)
	}()

	var all []Measurement
	for range keys {
		all = append(all, <-results...)
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].App != all[j].App {
			return all[i].App < all[j].App
		}
		return all[i].Arch.Label() < all[j].Arch.Label()
	})
	return &Dataset{Measurements: all}
}
