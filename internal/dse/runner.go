package dse

import (
	"runtime"
	"sort"
	"sync"

	"musa/internal/apps"
	"musa/internal/dram"
	"musa/internal/node"
	"musa/internal/power"
)

// Measurement is one (application, configuration) simulation outcome.
type Measurement struct {
	App  string
	Arch ArchPoint

	// TimeNs is the per-rank compute time of the full traced execution —
	// the performance metric every figure normalizes.
	TimeNs float64
	// Power is the average node power breakdown during compute.
	Power power.Breakdown
	// EnergyJ is node energy-to-solution over the compute phase.
	EnergyJ float64

	L1MPKI, L2MPKI, L3MPKI float64
	// GMemReqPerSec is the node DRAM request rate (Fig. 1).
	GMemReqPerSec float64
	ActiveCores   float64
	MemLatencyNs  float64
	OfferedBW     float64
}

// Options configures a sweep run.
type Options struct {
	// Apps to simulate; nil means all five.
	Apps []*apps.Profile
	// Points to sweep; nil means the full 864-point Table I grid.
	Points []ArchPoint
	// SampleInstrs / WarmupInstrs override the detailed-sample sizes
	// (zero = package defaults). Tests use small values; the cmd tools and
	// benches use the defaults.
	SampleInstrs int64
	WarmupInstrs int64
	Workers      int
	Seed         uint64
	// Progress, if non-nil, receives completed measurement counts. Calls
	// are serialized: implementations may write to shared state or an
	// output stream without their own locking.
	Progress func(done, total int)

	// Lookup, if non-nil, is consulted before each point is simulated; on a
	// hit the returned measurement is reused and the point is not
	// recomputed. This is the result-store read path. Called concurrently
	// from workers.
	Lookup func(app string, p ArchPoint) (Measurement, bool)
	// OnMeasurement, if non-nil, receives each freshly simulated
	// measurement as soon as it completes (Lookup hits are not reported) —
	// the incremental-checkpoint write path. Called concurrently from
	// workers.
	OnMeasurement func(m Measurement)
	// Cancel, if non-nil, aborts the sweep when closed: workers finish the
	// point in flight, skip the rest, and Run returns the partial dataset.
	// Combined with OnMeasurement checkpointing, a canceled sweep resumes
	// where it left off.
	Cancel <-chan struct{}
}

func (o *Options) fill() {
	if o.Apps == nil {
		o.Apps = apps.All()
	}
	if o.Points == nil {
		o.Points = Enumerate()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Dataset is the collected sweep output.
type Dataset struct {
	Measurements []Measurement
	byApp        map[string][]Measurement
}

// ByApp returns the measurements for one application.
func (d *Dataset) ByApp(app string) []Measurement {
	if d.byApp == nil {
		d.byApp = map[string][]Measurement{}
		for _, m := range d.Measurements {
			d.byApp[m.App] = append(d.byApp[m.App], m)
		}
	}
	return d.byApp[app]
}

// annGroupKey identifies configurations that share cache behavior and can
// therefore share one annotation pass: same application, core count (L3
// partition), vector width (fused footprints) and cache configuration.
type annGroupKey struct {
	app   string
	cores int
	vec   int
	cache string
	mem   MemKind // spec only matters for the latency model, grouped too
}

// Run executes the sweep in parallel and returns the dataset, sorted
// deterministically (by app, then arch label).
func Run(opts Options) *Dataset {
	opts.fill()

	// Pre-build DRAM latency models per (app, channels, mem kind).
	type lmKey struct {
		app string
		ch  int
		mem MemKind
	}
	lms := map[lmKey]*dram.LatencyModel{}
	var lmMu sync.Mutex
	latModel := func(app *apps.Profile, ch int, mem MemKind) *dram.LatencyModel {
		k := lmKey{app.Name, ch, mem}
		lmMu.Lock()
		defer lmMu.Unlock()
		if m, ok := lms[k]; ok {
			return m
		}
		m := node.BuildLatencyModel(app, dram.Config{Spec: mem.Spec(), Channels: ch}, dram.FRFCFS, opts.Seed)
		lms[k] = &m
		return &m
	}

	// Group points by annotation key.
	groups := map[annGroupKey][]ArchPoint{}
	appByName := map[string]*apps.Profile{}
	for _, a := range opts.Apps {
		appByName[a.Name] = a
		for _, p := range opts.Points {
			k := annGroupKey{a.Name, p.Cores, p.VectorBits, p.Cache.Label, p.Mem}
			groups[k] = append(groups[k], p)
		}
	}
	keys := make([]annGroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.app != b.app {
			return a.app < b.app
		}
		if a.cores != b.cores {
			return a.cores < b.cores
		}
		if a.vec != b.vec {
			return a.vec < b.vec
		}
		return a.cache < b.cache
	})

	total := 0
	for _, k := range keys {
		total += len(groups[k])
	}

	jobs := make(chan annGroupKey)
	results := make(chan []Measurement)
	var done int
	var doneMu sync.Mutex

	canceled := func() bool {
		// A nil Cancel channel never selects; default wins.
		select {
		case <-opts.Cancel:
			return true
		default:
			return false
		}
	}
	bump := func() {
		if opts.Progress != nil {
			// The callback runs under the lock so Progress calls are
			// serialized and monotonic for the consumer.
			doneMu.Lock()
			done++
			opts.Progress(done, total)
			doneMu.Unlock()
		}
	}

	worker := func() {
		for k := range jobs {
			app := appByName[k.app]
			points := groups[k]
			// The shared annotation is built lazily from the group's first
			// non-cached point: a fully cached group never pays for it.
			var ann *node.Annotation

			ms := make([]Measurement, 0, len(points))
			for _, p := range points {
				if canceled() {
					break
				}
				if opts.Lookup != nil {
					if m, ok := opts.Lookup(k.app, p); ok {
						ms = append(ms, m)
						bump()
						continue
					}
				}
				cfg := p.NodeConfig(opts.SampleInstrs, opts.WarmupInstrs, opts.Seed)
				if ann == nil {
					a := node.BuildAnnotation(app, cfg)
					ann = &a
				}
				cfg.LatModel = latModel(app, p.Channels, p.Mem)
				res := node.SimulateAnnotated(app, cfg, *ann)
				l1, l2, l3 := res.MPKI()
				m := Measurement{
					App:           app.Name,
					Arch:          p,
					TimeNs:        res.ComputeNs,
					Power:         res.Power,
					EnergyJ:       res.EnergyJ,
					L1MPKI:        l1,
					L2MPKI:        l2,
					L3MPKI:        l3,
					GMemReqPerSec: res.GMemReqPerSec,
					ActiveCores:   res.AvgActiveCores,
					MemLatencyNs:  res.MemLatencyNs,
					OfferedBW:     res.OfferedBW,
				}
				ms = append(ms, m)
				if opts.OnMeasurement != nil {
					opts.OnMeasurement(m)
				}
				bump()
			}
			results <- ms
		}
	}

	for w := 0; w < opts.Workers; w++ {
		go worker()
	}
	go func() {
		for _, k := range keys {
			jobs <- k
		}
		close(jobs)
	}()

	var all []Measurement
	for range keys {
		all = append(all, <-results...)
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].App != all[j].App {
			return all[i].App < all[j].App
		}
		return all[i].Arch.Label() < all[j].Arch.Label()
	})
	return &Dataset{Measurements: all}
}
