// Package dse implements the paper's design-space exploration: the Table I
// parameter grid (864 configurations), a parallel sweep runner that reuses
// cache annotations and DRAM latency models across configurations, the
// normalization/averaging methodology of §V-B, and the aggregations behind
// every evaluation figure (Figs. 5-11, Table II) plus the PCA of §V-C.
package dse

import (
	"fmt"

	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/node"
	"musa/internal/rts"
)

// CacheCfg is one Table I cache configuration (shared L3 : private L2).
type CacheCfg struct {
	Label string
	L2KB  int
	L3MB  int
}

// CacheConfigs returns the three Table I cache points.
func CacheConfigs() []CacheCfg {
	return []CacheCfg{
		{Label: "32M:256K", L2KB: 256, L3MB: 32},
		{Label: "64M:512K", L2KB: 512, L3MB: 64},
		{Label: "96M:1M", L2KB: 1024, L3MB: 96},
	}
}

// Frequencies returns the Table I clock grid in GHz.
func Frequencies() []float64 { return []float64{1.5, 2.0, 2.5, 3.0} }

// VectorWidths returns the Table I SIMD grid in bits.
func VectorWidths() []int { return []int{128, 256, 512} }

// CoreCounts returns the Table I per-socket core counts.
func CoreCounts() []int { return []int{1, 32, 64} }

// ChannelCounts returns the Table I DDR4 channel options.
func ChannelCounts() []int { return []int{4, 8} }

// MemKind selects the DRAM standard (Table II's MEM++ uses HBM).
type MemKind int

const (
	DDR4 MemKind = iota
	HBM
)

func (m MemKind) String() string {
	if m == HBM {
		return "HBM"
	}
	return "DDR4"
}

// Spec returns the dram.Spec for the kind.
func (m MemKind) Spec() dram.Spec {
	if m == HBM {
		return dram.HBM2()
	}
	return dram.DDR4_2333()
}

// ArchPoint is one architectural configuration of the sweep.
type ArchPoint struct {
	Cores      int
	Core       cpu.Config
	FreqGHz    float64
	VectorBits int
	Cache      CacheCfg
	Channels   int
	Mem        MemKind
}

// Label renders the configuration compactly.
func (a ArchPoint) Label() string {
	return fmt.Sprintf("%dc/%s/%.1fGHz/%db/%s/%dch%s",
		a.Cores, a.Core.Name, a.FreqGHz, a.VectorBits, a.Cache.Label, a.Channels, a.Mem)
}

// NodeConfig converts the point into a node simulator configuration.
func (a ArchPoint) NodeConfig(sampleInstrs, warmupInstrs int64, seed uint64) node.Config {
	return node.Config{
		Cores:        a.Cores,
		Core:         a.Core,
		FreqGHz:      a.FreqGHz,
		VectorBits:   a.VectorBits,
		L2KBPerCore:  a.Cache.L2KB,
		L3MBTotal:    a.Cache.L3MB,
		Mem:          dram.Config{Spec: a.Mem.Spec(), Channels: a.Channels},
		DRAMPolicy:   dram.FRFCFS,
		DispatchNs:   100,
		RTSPolicy:    rts.FIFOCentral,
		SampleInstrs: sampleInstrs,
		WarmupInstrs: warmupInstrs,
		Seed:         seed,
	}
}

// Enumerate returns the full Table I design space: 3 core counts x 4 core
// types x 4 frequencies x 3 vector widths x 3 cache configs x 2 channel
// counts = 864 configurations.
func Enumerate() []ArchPoint {
	var out []ArchPoint
	for _, cores := range CoreCounts() {
		for _, core := range cpu.AllConfigs() {
			for _, f := range Frequencies() {
				for _, v := range VectorWidths() {
					for _, c := range CacheConfigs() {
						for _, ch := range ChannelCounts() {
							out = append(out, ArchPoint{
								Cores: cores, Core: core, FreqGHz: f,
								VectorBits: v, Cache: c, Channels: ch, Mem: DDR4,
							})
						}
					}
				}
			}
		}
	}
	return out
}
