package dse

import (
	"context"
	"testing"

	"musa/internal/apps"
	"musa/internal/cpu"
)

// testOpts returns a reduced-size sweep: two applications over a small but
// structurally complete grid so the pairing/normalization logic is fully
// exercised without the cost of the 864-point production sweep.
func testOpts() Options {
	var pts []ArchPoint
	for _, cores := range []int{32, 64} {
		for _, core := range []cpu.Config{cpu.Medium(), cpu.Aggressive()} {
			for _, v := range VectorWidths() {
				for _, c := range CacheConfigs()[:2] {
					for _, ch := range ChannelCounts() {
						pts = append(pts, ArchPoint{
							Cores: cores, Core: core, FreqGHz: 2.0,
							VectorBits: v, Cache: c, Channels: ch, Mem: DDR4,
						})
					}
				}
			}
		}
	}
	return Options{
		Apps:         []*apps.Profile{apps.SPMZ(), apps.LULESH()},
		Points:       pts,
		SampleInstrs: 60000,
		WarmupInstrs: 200000,
		Workers:      4,
		Seed:         1,
	}
}

func TestEnumerateIs864(t *testing.T) {
	pts := Enumerate()
	if len(pts) != 864 {
		t.Fatalf("design space has %d points, want 864 (Table I)", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		l := p.Label()
		if seen[l] {
			t.Fatalf("duplicate point %s", l)
		}
		seen[l] = true
	}
}

func TestArchPointNodeConfig(t *testing.T) {
	p := Enumerate()[0]
	cfg := p.NodeConfig(1000, 2000, 7)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SampleInstrs != 1000 || cfg.Seed != 7 {
		t.Errorf("config plumbing: %+v", cfg)
	}
}

func TestFeatureValues(t *testing.T) {
	for _, f := range []Feature{FeatVector, FeatCache, FeatOoO, FeatChannels, FeatFreq} {
		vs := f.Values()
		if len(vs) < 2 {
			t.Errorf("%v has %d values", f, len(vs))
		}
		if f.Baseline() != vs[0] {
			t.Errorf("%v baseline mismatch", f)
		}
		if f.String() == "?" {
			t.Errorf("feature %d unprintable", f)
		}
	}
}

func TestReplayConfigNormalized(t *testing.T) {
	def := ReplayConfig{}.Normalized()
	if def.Disable || len(def.Ranks) != 2 || def.Ranks[0] != 64 || def.Ranks[1] != 256 {
		t.Errorf("default replay config = %+v", def)
	}
	if def.Network.BandwidthBps <= 0 {
		t.Errorf("default network not filled: %+v", def.Network)
	}
	sorted := ReplayConfig{Ranks: []int{128, 16}}.Normalized()
	if sorted.Ranks[0] != 16 || sorted.Ranks[1] != 128 {
		t.Errorf("ranks not sorted: %v", sorted.Ranks)
	}
	for _, c := range []ReplayConfig{{Disable: true}, {Ranks: []int{}}} {
		if n := c.Normalized(); !n.Disable || n.Ranks != nil {
			t.Errorf("%+v should normalize to disabled, got %+v", c, n)
		}
	}
}

// TestClusterMetricsProperty is the cluster-stage invariant: in a reduced
// sweep, every measurement carries replay results at every configured rank
// count, the end-to-end makespan dominates the node compute time, and the
// derived fractions are sane.
func TestClusterMetricsProperty(t *testing.T) {
	o := testOpts()
	o.Points = o.Points[:6]
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000
	d := Run(context.Background(), o)
	if len(d.Measurements) == 0 {
		t.Fatal("empty sweep")
	}
	for _, m := range d.Measurements {
		if len(m.Cluster) != 2 {
			t.Fatalf("%s %s: %d cluster entries, want 2", m.App, m.Arch.Label(), len(m.Cluster))
		}
		for _, c := range m.Cluster {
			if c.EndToEndNs < m.TimeNs {
				t.Errorf("%s %s @%d ranks: EndToEndNs %v < TimeNs %v",
					m.App, m.Arch.Label(), c.Ranks, c.EndToEndNs, m.TimeNs)
			}
			if c.MPIFraction < 0 || c.MPIFraction > 1 {
				t.Errorf("%s %s @%d ranks: MPI fraction %v", m.App, m.Arch.Label(), c.Ranks, c.MPIFraction)
			}
			if c.ParallelEff <= 0 || c.ParallelEff > 1 {
				t.Errorf("%s %s @%d ranks: parallel efficiency %v", m.App, m.Arch.Label(), c.Ranks, c.ParallelEff)
			}
		}
		if m.EndToEndNs != m.Cluster[1].EndToEndNs || m.MPIFraction != m.Cluster[1].MPIFraction {
			t.Errorf("%s %s: top-level fields do not mirror the largest rank count", m.App, m.Arch.Label())
		}
	}
}

// TestReplayDisabled checks the node-only path leaves the cluster fields
// zero.
func TestReplayDisabled(t *testing.T) {
	o := testOpts()
	o.Points = o.Points[:2]
	o.SampleInstrs = 20000
	o.WarmupInstrs = 40000
	o.Replay = ReplayConfig{Disable: true}
	d := Run(context.Background(), o)
	for _, m := range d.Measurements {
		if m.Cluster != nil || m.EndToEndNs != 0 || m.MPIFraction != 0 || m.ParallelEff != 0 {
			t.Fatalf("replay-disabled measurement has cluster data: %+v", m)
		}
	}
}

func TestRunAndNormalize(t *testing.T) {
	d := Run(context.Background(), testOpts())
	want := len(testOpts().Points) * 2
	if len(d.Measurements) != want {
		t.Fatalf("%d measurements, want %d", len(d.Measurements), want)
	}
	for _, m := range d.Measurements {
		if m.TimeNs <= 0 || m.EnergyJ <= 0 || m.Power.Total() <= 0 {
			t.Fatalf("degenerate measurement %s %s: %+v", m.App, m.Arch.Label(), m)
		}
	}
	if len(d.ByApp("spmz")) != len(testOpts().Points) {
		t.Errorf("ByApp size %d", len(d.ByApp("spmz")))
	}

	// Vector speedups: spmz must gain substantially at 512-bit, lulesh must
	// not (Fig. 5a shape).
	bars := NormalizedBars(d.Measurements, FeatVector, MetricTime, true, 64)
	get := func(app, v string) float64 {
		for _, b := range bars {
			if b.App == app && b.Value == v {
				return b.Mean
			}
		}
		t.Fatalf("missing bar %s/%s", app, v)
		return 0
	}
	if s := get("spmz", "512"); s < 1.25 {
		t.Errorf("spmz 512-bit speedup = %v", s)
	}
	if s := get("lulesh", "512"); s > 1.10 {
		t.Errorf("lulesh 512-bit speedup = %v", s)
	}
	if b := get("spmz", "128"); b != 1 {
		t.Errorf("baseline bar = %v, want 1", b)
	}

	// Channel speedups: lulesh gains, spmz does not (Fig. 8a shape).
	chBars := NormalizedBars(d.Measurements, FeatChannels, MetricTime, true, 64)
	for _, b := range chBars {
		if b.App == "lulesh" && b.Value == "8chDDR4" && b.Mean < 1.2 {
			t.Errorf("lulesh 8ch speedup = %v", b.Mean)
		}
	}

	// Memory power roughly doubles with channels (Fig. 8b shape).
	memBars := NormalizedBars(d.Measurements, FeatChannels, MetricMemW, false, 64)
	for _, b := range memBars {
		if b.Value == "8chDDR4" && (b.Mean < 1.4 || b.Mean > 2.2) {
			t.Errorf("%s mem power ratio = %v, want ~2", b.App, b.Mean)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	opts := testOpts()
	opts.Apps = []*apps.Profile{apps.BTMZ()}
	opts.Points = opts.Points[:6]
	a := Run(context.Background(), opts)
	b := Run(context.Background(), opts)
	if len(a.Measurements) != len(b.Measurements) {
		t.Fatal("sizes differ")
	}
	for i := range a.Measurements {
		if a.Measurements[i].TimeNs != b.Measurements[i].TimeNs {
			t.Fatalf("measurement %d differs across runs", i)
		}
	}
}

func TestBestConfig(t *testing.T) {
	d := Run(context.Background(), testOpts())
	best, ok := BestConfig(d, "spmz", func(a ArchPoint) bool { return a.Cores == 64 })
	if !ok {
		t.Fatal("no best config")
	}
	if best.Arch.Cores != 64 {
		t.Error("filter ignored")
	}
	for _, m := range d.ByApp("spmz") {
		if m.Arch.Cores == 64 && m.TimeNs < best.TimeNs {
			t.Error("best is not minimal")
		}
	}
	if _, ok := BestConfig(d, "nope", nil); ok {
		t.Error("found best for unknown app")
	}
}

func TestPCAFor(t *testing.T) {
	d := Run(context.Background(), testOpts())
	res, err := PCAFor(d, "lulesh")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loadings) != 5 {
		t.Fatalf("%d components", len(res.Loadings))
	}
	// Execution time must load on PC0 (it varies most with the swept
	// parameters), and for LULESH memory bandwidth must oppose it.
	pc0 := res.Loadings[0]
	idx := map[string]int{}
	for i, l := range res.Labels {
		idx[l] = i
	}
	if pc0[idx["Exec. time"]]*pc0[idx["Mem. BW"]] >= 0 {
		t.Errorf("lulesh PC0: time %v and BW %v not opposed",
			pc0[idx["Exec. time"]], pc0[idx["Mem. BW"]])
	}
	if _, err := PCAFor(d, "unknown"); err == nil {
		t.Error("PCA for unknown app succeeded")
	}
}

func TestFigure1Rows(t *testing.T) {
	// Figure1 needs the reference configuration present.
	var pts []ArchPoint
	for _, cores := range []int{32, 64} {
		pts = append(pts, ArchPoint{
			Cores: cores, Core: cpu.Medium(), FreqGHz: 2.0, VectorBits: 128,
			Cache: CacheConfigs()[1], Channels: 4, Mem: DDR4,
		})
	}
	d := Run(context.Background(), Options{
		Apps:         []*apps.Profile{apps.Hydro(), apps.SPMZ()},
		Points:       pts,
		SampleInstrs: 60000,
		WarmupInstrs: 200000,
		Seed:         1,
	})
	rows := Figure1(d)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.L1MPKI <= 0 {
			t.Errorf("%s/%dc: zero MPKI", r.App, r.Cores)
		}
	}
}

func TestUnconventionalShapes(t *testing.T) {
	rows := Unconventional(60000, 200000, 1)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	byLabel := map[string]UnconventionalRow{}
	for _, r := range rows {
		byLabel[r.App+"/"+r.Label] = r
	}
	// Vector++ must beat Vector+ in performance but cost much more power
	// (Fig. 11 left).
	vp := byLabel["spmz/Vector+"]
	vpp := byLabel["spmz/Vector++"]
	if vpp.RelPerf <= vp.RelPerf {
		t.Errorf("Vector++ perf %v <= Vector+ %v", vpp.RelPerf, vp.RelPerf)
	}
	if vpp.RelPower <= vp.RelPower {
		t.Errorf("Vector++ power %v <= Vector+ %v", vpp.RelPower, vp.RelPower)
	}
	// MEM+ must cut LULESH energy (paper: -47%).
	mp := byLabel["lulesh/MEM+"]
	if mp.RelEnergy >= 1.0 {
		t.Errorf("MEM+ energy ratio = %v, want < 1", mp.RelEnergy)
	}
	// MEM++ is faster than MEM+ (HBM latency) and flagged energy-unknown.
	mpp := byLabel["lulesh/MEM++"]
	if mpp.RelPerf <= mp.RelPerf*0.95 {
		t.Errorf("MEM++ perf %v not above MEM+ %v", mpp.RelPerf, mp.RelPerf)
	}
	if mpp.EnergyKnown {
		t.Error("MEM++ energy should be flagged unknown (no public HBM power data)")
	}
}

func TestMemKind(t *testing.T) {
	if DDR4.String() == HBM.String() {
		t.Error("mem kinds indistinct")
	}
	if DDR4.Spec().Name == HBM.Spec().Name {
		t.Error("specs indistinct")
	}
}
