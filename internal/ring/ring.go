// Package ring turns N musa-serve replicas into one logical service by
// deterministic key ownership: rendezvous (highest-random-weight) hashing
// maps every content-addressed key — result-store keys, artifact keys —
// onto an owner replica, so duplicate requests arriving at any front door
// converge on one machine's single-flight and one artifact cache instead
// of N redundant computations. Membership is a flat set of replica base
// URLs; every participant (replica, fleet coordinator, L7 router) derives
// the same owner from the same membership without coordination, and a
// membership change of one replica only remaps the keys that replica
// owned — the rendezvous property that makes rolling restarts cheap.
//
// Ownership is overlaid with local health knowledge: each process marks
// members it observed failing (or advertising /healthz degradation), and
// the fallback ordering demotes degraded members behind healthy ones
// without changing the hash. Health is deliberately local, not gossiped:
// when everyone is healthy every process agrees on the owner, and when a
// process sees a member down it alone reroutes until the member recovers.
package ring

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// State is one member's locally observed health.
type State int32

const (
	// Ok is a healthy member: eligible as owner.
	Ok State = iota
	// Overloaded is a member shedding load (healthz "overloaded"): still
	// preferred over draining or down members — its queue drains in
	// seconds and moving its keys would forfeit coalescing — but demoted
	// behind healthy ones.
	Overloaded
	// Draining is a member finishing in-flight work before shutdown: new
	// work routes elsewhere.
	Draining
	// Down is a member that failed a request or probe entirely.
	Down
)

// String returns the healthz wire name of the state.
func (s State) String() string {
	switch s {
	case Ok:
		return "ok"
	case Overloaded:
		return "overloaded"
	case Draining:
		return "draining"
	case Down:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ParseState maps a healthz wire name back onto its State.
func ParseState(s string) (State, error) {
	switch s {
	case "ok":
		return Ok, nil
	case "overloaded":
		return Overloaded, nil
	case "draining":
		return Draining, nil
	case "down":
		return Down, nil
	}
	return Down, fmt.Errorf("ring: unknown state %q", s)
}

// Member is one replica and its locally observed state.
type Member struct {
	URL   string `json:"url"`
	State string `json:"state"`
}

// Ring is a rendezvous-hashed membership set. The zero value is unusable;
// construct with New. All methods are safe for concurrent use.
type Ring struct {
	self string

	mu      sync.RWMutex
	members []string // sorted, unique, normalized (no trailing slash)
	state   map[string]State
}

// Normalize canonicalizes one member URL the way the ring stores it: the
// trailing slash is dropped so "http://h:80/" and "http://h:80" name the
// same member on every process.
func Normalize(member string) string {
	return strings.TrimRight(strings.TrimSpace(member), "/")
}

// New builds a ring over members. self names this process's own entry
// (empty for pure routers and coordinators that are not themselves
// replicas); it need not appear in members. Duplicates and empty entries
// are dropped.
func New(self string, members []string) *Ring {
	r := &Ring{self: Normalize(self), state: map[string]State{}}
	r.SetMembers(members)
	return r
}

// Self returns this process's own member URL ("" when not a replica).
func (r *Ring) Self() string { return r.self }

// SetMembers replaces the membership. States of retained members survive;
// new members start Ok. The slice is normalized, deduplicated and sorted.
func (r *Ring) SetMembers(members []string) {
	seen := map[string]bool{}
	var clean []string
	for _, m := range members {
		m = Normalize(m)
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		clean = append(clean, m)
	}
	sort.Strings(clean)
	r.mu.Lock()
	defer r.mu.Unlock()
	state := make(map[string]State, len(clean))
	for _, m := range clean {
		state[m] = r.state[m] // absent -> Ok (zero value)
	}
	r.members = clean
	r.state = state
}

// Members returns the membership with each member's observed state,
// sorted by URL.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, len(r.members))
	for i, m := range r.members {
		out[i] = Member{URL: m, State: r.state[m].String()}
	}
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// SetState records a member's observed health. Unknown members are
// ignored (a stale probe must not resurrect a removed member).
func (r *Ring) SetState(member string, s State) {
	member = Normalize(member)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.state[member]; ok {
		r.state[member] = s
	}
}

// StateOf returns a member's observed state (Down for non-members).
func (r *Ring) StateOf(member string) State {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.state[Normalize(member)]
	if !ok {
		return Down
	}
	return s
}

// score is the rendezvous weight of (member, key): FNV-1a over both with
// a separator, finalized through splitmix64 so near-identical inputs
// (sequential ports, shared key prefixes) still spread uniformly. The
// function is the cross-process ownership contract — every participant
// must compute identical scores — so it is frozen here rather than
// delegated to anything runtime- or architecture-dependent.
func score(member, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(member); i++ {
		h = (h ^ uint64(member[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("ab","c") != ("a","bc")
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Order returns the full fallback order for key: every member sorted by
// descending rendezvous score, then stably demoted by observed state
// (Ok, Overloaded, Draining, Down). With uniform health the order is
// identical on every process; degraded members sink only in the eyes of
// whoever observed the degradation.
func (r *Ring) Order(key string) []string {
	r.mu.RLock()
	type ranked struct {
		url   string
		score uint64
		state State
	}
	rs := make([]ranked, len(r.members))
	for i, m := range r.members {
		rs[i] = ranked{url: m, score: score(m, key), state: r.state[m]}
	}
	r.mu.RUnlock()
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].state != rs[b].state {
			return rs[a].state < rs[b].state
		}
		if rs[a].score != rs[b].score {
			return rs[a].score > rs[b].score
		}
		return rs[a].url < rs[b].url // total order even on score collision
	})
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = x.url
	}
	return out
}

// Owner returns the key's owner: the highest-scoring member among the
// healthiest state class ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// OwnsLocally reports whether this process should execute key itself:
// it is the owner, it has no self identity to proxy from, or the ring is
// empty. A non-member self (coordinator, router) never owns locally.
func (r *Ring) OwnsLocally(key string) bool {
	if r.self == "" {
		return true
	}
	owner := r.Owner(key)
	return owner == "" || owner == r.self
}
