package ring

import (
	"fmt"
	"testing"
)

func urls(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func TestOwnerDeterministicAcrossInstances(t *testing.T) {
	a := New("http://replica-0:8080", urls(5))
	b := New("", urls(5)) // a coordinator sees the same owners
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%s) differs across instances: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestOwnerDistributionRoughlyUniform(t *testing.T) {
	r := New("", urls(4))
	count := map[string]int{}
	const n = 4000
	for _, k := range keys(n) {
		count[r.Owner(k)]++
	}
	if len(count) != 4 {
		t.Fatalf("keys landed on %d of 4 members: %v", len(count), count)
	}
	for m, c := range count {
		// Each member should take ~25%; 15-35% tolerates hash variance at
		// this sample size while catching any systematic skew.
		if c < n*15/100 || c > n*35/100 {
			t.Errorf("member %s owns %d of %d keys (want ~%d)", m, c, n, n/4)
		}
	}
}

// TestMinimalRemapOnMembershipChange is the rendezvous property: removing
// one member remaps only the keys it owned, everything else keeps its
// owner.
func TestMinimalRemapOnMembershipChange(t *testing.T) {
	full := New("", urls(5))
	smaller := New("", urls(5)[:4]) // replica-4 removed
	moved := 0
	for _, k := range keys(1000) {
		before, after := full.Owner(k), smaller.Owner(k)
		if before == "http://replica-4:8080" {
			if after == before {
				t.Fatalf("key %s still owned by removed member", k)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed member changed owner", moved)
	}
}

func TestHealthDemotesOwner(t *testing.T) {
	r := New("", urls(3))
	k := keys(1)[0]
	owner := r.Owner(k)
	order := r.Order(k)
	if order[0] != owner {
		t.Fatalf("Order[0] = %s, Owner = %s", order[0], owner)
	}
	r.SetState(owner, Down)
	if got := r.Owner(k); got == owner {
		t.Fatalf("down member %s still owns %s", owner, k)
	} else if got != order[1] {
		t.Fatalf("fallback owner = %s, want next-in-order %s", got, order[1])
	}
	// Overloaded members sink below Ok but above Draining and Down.
	r.SetState(owner, Ok)
	r.SetState(order[1], Overloaded)
	r.SetState(order[2], Draining)
	wantTail := []string{order[1], order[2]}
	gotOrder := r.Order(k)
	if gotOrder[0] != owner || gotOrder[1] != wantTail[0] || gotOrder[2] != wantTail[1] {
		t.Fatalf("state-ranked order = %v, want [%s %s %s]", gotOrder, owner, wantTail[0], wantTail[1])
	}
	// Recovery restores the original rendezvous order.
	r.SetState(order[1], Ok)
	r.SetState(order[2], Ok)
	if got := r.Owner(k); got != owner {
		t.Fatalf("owner after recovery = %s, want %s", got, owner)
	}
}

func TestSetMembersKeepsStates(t *testing.T) {
	r := New("", urls(3))
	r.SetState("http://replica-1:8080", Down)
	r.SetMembers(append(urls(3), "http://replica-9:8080"))
	if got := r.StateOf("http://replica-1:8080"); got != Down {
		t.Errorf("retained member state = %v, want Down", got)
	}
	if got := r.StateOf("http://replica-9:8080"); got != Ok {
		t.Errorf("new member state = %v, want Ok", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	// A state report for a removed member must not resurrect it.
	r.SetMembers(urls(2))
	r.SetState("http://replica-2:8080", Ok)
	if r.Len() != 2 {
		t.Errorf("Len after shrink = %d, want 2", r.Len())
	}
	if got := r.StateOf("http://replica-2:8080"); got != Down {
		t.Errorf("non-member state = %v, want Down", got)
	}
}

func TestNormalizeAndDedup(t *testing.T) {
	r := New("http://a:1/", []string{"http://a:1", "http://a:1/", " http://b:2/ ", ""})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (deduped, empties dropped)", r.Len())
	}
	if r.Self() != "http://a:1" {
		t.Errorf("Self = %q, want normalized http://a:1", r.Self())
	}
	if !r.OwnsLocally("anything") && r.Owner("anything") == "http://a:1" {
		t.Error("OwnsLocally disagrees with Owner")
	}
}

func TestEmptyRing(t *testing.T) {
	r := New("", nil)
	if got := r.Owner("k"); got != "" {
		t.Errorf("Owner on empty ring = %q, want \"\"", got)
	}
	if !r.OwnsLocally("k") {
		t.Error("empty ring must execute locally")
	}
	if got := len(r.Order("k")); got != 0 {
		t.Errorf("Order on empty ring has %d entries", got)
	}
}

func TestStateRoundTrip(t *testing.T) {
	for _, s := range []State{Ok, Overloaded, Draining, Down} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("ParseState(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseState("nope"); err == nil {
		t.Error("ParseState accepted garbage")
	}
}
