// Package node is the node-level detailed simulator: it composes the
// runtime-system scheduler (rts), the out-of-order core model (cpu), the
// cache hierarchy (cache) and the DRAM model (dram) into MUSA's detailed
// simulation mode for one compute node.
//
// Following the paper's methodology, one representative sample (one rank,
// one iteration worth of instructions) is simulated at instruction level;
// its IPC rescales the burst trace's task durations, which are then replayed
// through the runtime-system simulator at the configured core count. Shared
// memory bandwidth is resolved by a fixed-point iteration: core throughput
// determines offered bandwidth, the DRAM load-latency curve determines the
// effective memory latency, which feeds back into core throughput.
package node

import (
	"fmt"
	"math"
	"sync"

	"musa/internal/apps"
	"musa/internal/cache"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/isa"
	"musa/internal/power"
	"musa/internal/rts"
	"musa/internal/xrand"
)

// Config is the full architectural configuration of one compute node.
type Config struct {
	Cores      int
	Core       cpu.Config
	FreqGHz    float64
	VectorBits int

	L2KBPerCore int // private L2 size
	L3MBTotal   int // shared L3 size

	Mem        dram.Config
	DRAMPolicy dram.SchedPolicy

	// Runtime system parameters.
	DispatchNs float64
	RTSPolicy  rts.Policy

	// SampleInstrs is the detailed-sample length in scalar micro-ops.
	SampleInstrs int64
	// WarmupInstrs streams through the caches before measurement begins;
	// when zero it defaults to 2x SampleInstrs (enough to cover the largest
	// cacheable working sets of the five applications at the default
	// sample size).
	WarmupInstrs int64
	Seed         uint64

	// DisableContention turns off the bandwidth fixed point (ablation).
	DisableContention bool

	// LatModel optionally supplies a prebuilt DRAM load-latency curve for
	// this (application, memory) pair; the DSE driver caches these across
	// the sweep. When nil, Simulate builds one.
	LatModel *dram.LatencyModel
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("node: %d cores", c.Cores)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("node: frequency %v", c.FreqGHz)
	}
	if c.VectorBits < 64 {
		return fmt.Errorf("node: vector width %d", c.VectorBits)
	}
	if c.L2KBPerCore <= 0 || c.L3MBTotal <= 0 {
		return fmt.Errorf("node: cache sizes %dKB/%dMB", c.L2KBPerCore, c.L3MBTotal)
	}
	return c.Mem.Validate()
}

// DIMMs returns the DIMM population (two per channel, as in the paper's
// 4-channel/64 GB and 8-channel/128 GB setups).
func (c Config) DIMMs() int { return 2 * c.Mem.Channels }

// l2Params returns associativity and latency for a private L2 size, per
// Table I (256kB/8w/9cy, 512kB/16w/11cy, 1MB/16w/13cy), extrapolating two
// cycles per doubling for unconventional sizes.
func l2Params(kb int) (assoc, latency int) {
	switch kb {
	case 256:
		return 8, 9
	case 512:
		return 16, 11
	case 1024:
		return 16, 13
	}
	lat := 9 + int(math.Round(2*math.Log2(float64(kb)/256)))
	if lat < 5 {
		lat = 5
	}
	return 16, lat
}

// l3Params returns associativity and latency for the shared L3 size, per
// Table I (32MB/68cy, 64MB/70cy, 96MB/72cy).
func l3Params(mb int) (assoc, latency int) {
	switch mb {
	case 32:
		return 16, 68
	case 64:
		return 16, 70
	case 96:
		return 16, 72
	}
	lat := 68 + int(math.Round(2*math.Log2(float64(mb)/32)))
	if lat < 40 {
		lat = 40
	}
	return 16, lat
}

// hierarchy builds one core's cache stack. The shared L3 is modeled as an
// equal per-core partition (MUSA samples a single rank in detailed mode).
func (c Config) hierarchy(memLatNs float64) *cache.Hierarchy {
	l2a, l2l := l2Params(c.L2KBPerCore)
	l3a, l3l := l3Params(c.L3MBTotal)
	l3Share := c.L3MBTotal * 1024 * 1024 / c.Cores
	// Keep the partition a power-of-two set count: round down to one.
	l3Share = 1 << uint(math.Floor(math.Log2(float64(l3Share))))
	if l3Share < 256*1024 {
		l3Share = 256 * 1024
	}
	return cache.NewHierarchy(cache.HierarchyConfig{
		L1:              cache.Config{Name: "L1", SizeBytes: 32 * 1024, Assoc: 8, LatencyCycle: 4},
		L2:              cache.Config{Name: "L2", SizeBytes: c.L2KBPerCore * 1024, Assoc: l2a, LatencyCycle: l2l},
		L3:              cache.Config{Name: "L3", SizeBytes: l3Share, Assoc: l3a, LatencyCycle: l3l},
		MemLatencyCycle: int(math.Round(memLatNs * c.FreqGHz)),
	})
}

// Result is the outcome of a node-level detailed simulation.
type Result struct {
	// Sample core simulation at the bandwidth fixed point.
	CoreRes cpu.Result
	// LaneThroughput is scalar lanes per second per busy core.
	LaneThroughput float64
	// MemLatencyNs is the converged effective memory latency.
	MemLatencyNs float64
	// OfferedBW is the node's converged DRAM demand (bytes/second).
	OfferedBW float64
	// Fixed-point iterations taken.
	Iterations int

	// Schedules holds one runtime-system schedule per region.
	Schedules []rts.Schedule
	// RegionDurNs is each region's makespan on this node.
	RegionDurNs []float64
	// IterationNs is the per-timestep compute duration (sum of regions).
	IterationNs float64
	// ComputeNs is the full per-rank compute time (all iterations).
	ComputeNs float64
	// AvgActiveCores is the schedule-weighted mean busy core count.
	AvgActiveCores float64

	// GMemReqPerSec is node DRAM line requests per second (Fig. 1 metric).
	GMemReqPerSec float64

	// Power is the average node power over the compute phase; EnergyJ is
	// power times compute time.
	Power   power.Breakdown
	EnergyJ float64
}

// MPKI returns L1/L2/L3 misses per kilo-instruction of the sample, with the
// fused-op instruction count as denominator (Fig. 1).
func (r Result) MPKI() (l1, l2, l3 float64) {
	n := r.CoreRes.Instructions
	return r.CoreRes.L1.MPKI(n), r.CoreRes.L2.MPKI(n), r.CoreRes.L3.MPKI(n)
}

// Annotation bundles a reusable annotated sample with the hierarchy
// configuration it was produced under. The DSE runner shares one Annotation
// across every (OoO, frequency, channel, memory) variant of the same
// (application, cores, vector width, cache) group — cache behavior does not
// depend on timing.
type Annotation struct {
	Ann     cpu.AnnotateResult
	HierCfg cache.HierarchyConfig

	// Memo, when set, caches timing replays across every simulation sharing
	// this annotation (see TimingMemo). The sweep runner sets it on the
	// annotations it shares between points.
	Memo *TimingMemo
}

// TimingMemo caches timing-replay results across the simulations that share
// one annotation. RunTiming is a pure function of (core config, annotation,
// level latencies); points of one annotation group frequently replay
// identical triples — for example, memory variants that only differ in
// channel count start their bandwidth fixed point from the same unloaded
// latency — so the replay is done once and the result is reused verbatim.
type TimingMemo struct {
	mu sync.Mutex
	m  map[timingKey]cpu.Result
}

type timingKey struct {
	core cpu.Config
	lat  cpu.LevelLatencies
}

// NewTimingMemo returns an empty memo.
func NewTimingMemo() *TimingMemo {
	return &TimingMemo{m: make(map[timingKey]cpu.Result)}
}

func (tm *TimingMemo) get(core cpu.Config, lat cpu.LevelLatencies) (cpu.Result, bool) {
	tm.mu.Lock()
	r, ok := tm.m[timingKey{core, lat}]
	tm.mu.Unlock()
	return r, ok
}

func (tm *TimingMemo) put(core cpu.Config, lat cpu.LevelLatencies, r cpu.Result) {
	tm.mu.Lock()
	tm.m[timingKey{core, lat}] = r
	tm.mu.Unlock()
}

// FusedTrace is the cache-independent stage of annotation building: the
// fused detailed-sample stream with branch-mispredict outcomes pre-drawn,
// plus the warm window's memory accesses. It depends only on (application,
// vector width, fidelity, seed) — every cache configuration of an
// application at one vector width replays the same trace — so the sweep
// runner builds it once per such key instead of once per annotation group.
// All slices are immutable once built and may be aliased by the annotations
// derived from it.
type FusedTrace struct {
	// WarmOps is the warm window's fused memory accesses in stream order.
	WarmOps []WarmOp
	// SampleOps is the sample window's fused memory accesses in stream
	// order; Idx locates each in the timing columns below.
	SampleOps []SampleOp
	// Deps/Meta are the sample's timing columns in the cpu.AnnotateResult
	// layout with cache levels still zero: overlaying a hit-rate table's
	// levels yields a complete annotated trace without revisiting the
	// instruction stream.
	Deps []uint32
	Meta []uint32
	// Counts are the trace's timing-independent aggregates, counted once
	// here and copied into every derived annotation.
	Counts cpu.TraceCounts
}

// WarmOp is one memory access of the warm window.
type WarmOp struct {
	Addr  uint64
	Size  uint16
	Write bool
}

// SampleOp is one memory access of the sample window.
type SampleOp struct {
	Addr  uint64
	Idx   int32 // position in the trace's timing columns
	Size  uint16
	Write bool
}

// HitRateTable is the cache-dependent stage of annotation building: the
// resolved hierarchy level of every sample memory access plus the window's
// cache statistics, for one (application, cores, vector width, cache
// configuration) — notably independent of the memory kind, whose latency
// enters only at timing replay. Overlaid on the matching FusedTrace it
// reconstructs the full Annotation bit-for-bit; at one byte per sample
// instruction it is the compact persistent form of an annotation.
type HitRateTable struct {
	Levels              []uint8 // cache.Level per sample instruction; 0 for non-memory ops
	L1, L2, L3          cache.Stats
	MemReads, MemWrites int64
	HierCfg             cache.HierarchyConfig
}

// ScalarTrace is the raw detailed scalar instruction window of one
// (application, fidelity, seed): the warm window followed by the sample
// window, before any width fusion. Every vector width of an application
// fuses the identical scalar sequence — only the fuser differs — so the
// sweep runner generates the scalar trace once and replays it per width.
type ScalarTrace struct {
	Instrs []isa.Instr
	// Warm is the number of leading instructions belonging to the warm
	// window; the rest are the sample window.
	Warm int64
}

// BuildScalarTrace generates the scalar warm+sample window of one
// (application, fidelity, seed).
func BuildScalarTrace(app *apps.Profile, sampleInstrs, warmupInstrs int64, seed uint64) ScalarTrace {
	sampleInstrs, warmupInstrs = apps.EffectiveFidelity(sampleInstrs, warmupInstrs)
	gen := apps.NewDetailedStream(app, seed)
	total := warmupInstrs + sampleInstrs
	instrs := make([]isa.Instr, 0, total)
	for int64(len(instrs)) < total {
		in, ok := gen.Next()
		if !ok {
			break
		}
		instrs = append(instrs, in)
	}
	return ScalarTrace{Instrs: instrs, Warm: min(warmupInstrs, int64(len(instrs)))}
}

// BuildFusedTrace generates and fuses the detailed instruction stream of one
// (application, vector width) at the given fidelity and seed. Branch
// mispredict outcomes are drawn here — they consume the same seed-derived
// random sequence whatever the cache configuration — so the cache walk
// (AnnotateTrace) is purely deterministic replay.
func BuildFusedTrace(app *apps.Profile, vectorBits int, sampleInstrs, warmupInstrs int64, seed uint64) *FusedTrace {
	return FuseScalarTrace(BuildScalarTrace(app, sampleInstrs, warmupInstrs, seed), app, vectorBits, seed)
}

// FuseScalarTrace fuses a scalar trace at one vector width. Consuming a
// prebuilt scalar window through slice streams is instruction-for-
// instruction identical to fusing the generator directly (BuildFusedTrace);
// it exists so the sweep runner can amortize generation across widths.
func FuseScalarTrace(st ScalarTrace, app *apps.Profile, vectorBits int, seed uint64) *FusedTrace {
	warmupInstrs := st.Warm
	sampleInstrs := int64(len(st.Instrs)) - warmupInstrs
	// The scalar budgets upper-bound the fused counts (fusion only shrinks a
	// stream), so the columns can be sized once instead of grown.
	ft := &FusedTrace{
		WarmOps:   make([]WarmOp, 0, warmupInstrs/2),
		SampleOps: make([]SampleOp, 0, sampleInstrs/2),
		Deps:      make([]uint32, 0, sampleInstrs),
		Meta:      make([]uint32, 0, sampleInstrs),
	}
	warm := isa.NewFuser(isa.NewSliceStream(st.Instrs[:warmupInstrs]), isa.DefaultFuserConfig(vectorBits))
	for {
		in, ok := warm.Next()
		if !ok {
			break
		}
		if in.Class.IsMem() {
			ft.WarmOps = append(ft.WarmOps, WarmOp{Addr: in.Addr, Size: in.Size, Write: in.Class == isa.Store})
		}
	}
	fu := isa.NewFuser(isa.NewSliceStream(st.Instrs[warmupInstrs:]), isa.DefaultFuserConfig(vectorBits))
	rng := xrand.New(seed ^ 0x5eed)
	rate := app.MispredictRate
	for {
		in, ok := fu.Next()
		if !ok {
			break
		}
		var flags uint8
		if in.Class == isa.Branch && rate > 0 && rng.Bernoulli(rate) {
			flags = cpu.FlagMispredict
		}
		if in.Class.IsMem() {
			ft.SampleOps = append(ft.SampleOps, SampleOp{
				Addr: in.Addr, Idx: int32(len(ft.Meta)), Size: in.Size, Write: in.Class == isa.Store,
			})
		}
		ft.Deps = append(ft.Deps, cpu.PackDeps(int64(len(ft.Meta)), in.Dep1, in.Dep2))
		ft.Meta = append(ft.Meta, cpu.PackMeta(in.Class, in.Lanes, 0, flags))
	}
	ft.Counts = cpu.CountMeta(ft.Meta)
	return ft
}

// AnnotateTrace replays a fused trace through cfg's cache hierarchy: the
// warm ops populate the caches, then each sample access resolves to its
// level. It returns both the combined annotation (ready for timing replay)
// and the hit-rate table that, overlaid on the same trace, reproduces it.
func AnnotateTrace(ft *FusedTrace, cfg Config) (Annotation, HitRateTable) {
	hier := cfg.hierarchy(0)
	for _, op := range ft.WarmOps {
		hier.Access(op.Addr, int(op.Size), op.Write)
	}
	hier.ResetStats()
	levels := make([]uint8, len(ft.Meta))
	meta := make([]uint32, len(ft.Meta))
	copy(meta, ft.Meta)
	for _, op := range ft.SampleOps {
		lvl, _ := hier.Access(op.Addr, int(op.Size), op.Write)
		levels[op.Idx] = uint8(lvl)
		meta[op.Idx] |= uint32(lvl) << cpu.MetaLevelShift
	}
	hrt := HitRateTable{
		Levels: levels,
		L1:     hier.L1Stats(), L2: hier.L2Stats(), L3: hier.L3Stats(),
		MemReads: hier.MemReads, MemWrites: hier.MemWrites,
		HierCfg: hier.Config(),
	}
	return combine(ft, meta, hrt), hrt
}

// CombineAnnotation overlays a hit-rate table on the fused trace it was
// built from, reconstructing the annotation without a cache walk — the
// warm-artifact path. It reports false on a length mismatch (a table from a
// different trace), which callers treat as a cache miss.
func CombineAnnotation(ft *FusedTrace, hrt HitRateTable) (Annotation, bool) {
	if len(hrt.Levels) != len(ft.Meta) {
		return Annotation{}, false
	}
	meta := make([]uint32, len(ft.Meta))
	for i, m := range ft.Meta {
		meta[i] = m | uint32(hrt.Levels[i])<<cpu.MetaLevelShift
	}
	return combine(ft, meta, hrt), true
}

// combine assembles the annotation from a trace's dependence column, the
// level-overlaid meta column and a hit-rate table's statistics. The
// dependence column and counts alias/copy the trace (immutable by
// contract); the level overlay never touches the class, lane or flag bytes,
// so the trace counts hold for the overlaid column too.
func combine(ft *FusedTrace, meta []uint32, hrt HitRateTable) Annotation {
	return Annotation{
		Ann: cpu.AnnotateResult{
			Deps: ft.Deps, Meta: meta, Counts: ft.Counts,
			L1: hrt.L1, L2: hrt.L2, L3: hrt.L3,
			MemReads: hrt.MemReads, MemWrites: hrt.MemWrites,
		},
		HierCfg: hrt.HierCfg,
	}
}

// BuildAnnotation warms the caches and annotates one detailed sample for
// the configuration's cache-relevant parameters (cores, vector width, cache
// sizes, sample sizes, seed) — the single-shot path; sweeps stage it
// through BuildFusedTrace + AnnotateTrace to share work across points.
func BuildAnnotation(app *apps.Profile, cfg Config) Annotation {
	ft := BuildFusedTrace(app, cfg.VectorBits, cfg.SampleInstrs, cfg.WarmupInstrs, cfg.Seed)
	ann, _ := AnnotateTrace(ft, cfg)
	return ann
}

// Simulate runs the detailed node simulation of app on cfg.
func Simulate(app *apps.Profile, cfg Config) Result {
	return SimulateAnnotated(app, cfg, BuildAnnotation(app, cfg))
}

// SimulateAnnotated runs the node simulation reusing a prebuilt annotation.
// The annotation must have been built for the same application, core count,
// vector width, cache configuration and seed.
func SimulateAnnotated(app *apps.Profile, cfg Config, annotation Annotation) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SampleInstrs <= 0 {
		cfg.SampleInstrs = apps.SampleSize
	}

	latModel := cfg.LatModel
	if latModel == nil {
		m := BuildLatencyModel(app, cfg.Mem, cfg.DRAMPolicy, cfg.Seed)
		latModel = &m
	}

	ann := annotation.Ann
	hcfg := annotation.HierCfg

	// --- Bandwidth-contention fixed point. ---
	memLatNs := latModel.LatencyNs(0) // unloaded latency
	var res Result
	var coreRes cpu.Result
	var lastLat cpu.LevelLatencies
	haveRun := false
	activeCores := float64(cfg.Cores)
	for iter := 0; iter < 6; iter++ {
		res.Iterations = iter + 1
		// The timing replay is a pure function of (core config, annotation,
		// level latencies), and within this loop only the latencies vary —
		// through the cycle-quantized memory term. Near convergence
		// successive iterations often quantize to the same table, so the
		// previous result is reused verbatim instead of replayed.
		lat := cpu.LatenciesFor(hcfg, memLatNs, cfg.FreqGHz)
		if !haveRun || lat != lastLat {
			if memo := annotation.Memo; memo != nil {
				var ok bool
				if coreRes, ok = memo.get(cfg.Core, lat); !ok {
					coreRes = cpu.RunTiming(cfg.Core, ann, lat)
					memo.put(cfg.Core, lat, coreRes)
				}
			} else {
				coreRes = cpu.RunTiming(cfg.Core, ann, lat)
			}
			lastLat, haveRun = lat, true
		}
		cyclesPerSec := cfg.FreqGHz * 1e9
		secs := float64(coreRes.Cycles) / cyclesPerSec
		perCoreBW := float64(coreRes.MemReads+coreRes.MemWrites) * cache.LineBytes / secs

		// Replay the runtime system to learn how many cores are busy.
		laneTp := float64(coreRes.LaneWork) / secs
		scheds, durs := replayRegions(app, cfg, laneTp)
		activeCores = scheduleActiveCores(scheds, durs)

		offered := perCoreBW * activeCores
		newLat := latModel.LatencyNs(offered)
		res.OfferedBW = offered
		res.Schedules = scheds
		res.RegionDurNs = durs
		if cfg.DisableContention {
			break
		}
		if math.Abs(newLat-memLatNs) < 1.0 { // converged within 1 ns
			memLatNs = newLat
			break
		}
		memLatNs = 0.5*memLatNs + 0.5*newLat
	}
	res.CoreRes = coreRes
	res.MemLatencyNs = memLatNs

	secs := float64(coreRes.Cycles) / (cfg.FreqGHz * 1e9)
	res.LaneThroughput = float64(coreRes.LaneWork) / secs
	res.AvgActiveCores = activeCores

	for _, d := range res.RegionDurNs {
		res.IterationNs += d
	}
	res.ComputeNs = res.IterationNs * float64(app.Iterations)

	// Node DRAM request rate (Fig. 1): per-core rate times busy cores.
	perCoreReqRate := float64(coreRes.MemReads+coreRes.MemWrites) / secs
	res.GMemReqPerSec = perCoreReqRate * activeCores

	res.Power, res.EnergyJ = estimatePower(app, cfg, coreRes, res)
	return res
}

// replayRegions rescales the burst task durations with the measured lane
// throughput and replays each region's task graph on the node's cores.
// Runtime dispatch costs stay in wall-clock ns (they come from the trace and
// do not scale with core frequency), reproducing the scheduling bottleneck
// HYDRO hits above 2.5 GHz.
//
// A zero, negative, NaN or infinite lane throughput (a degenerate core
// sample) would turn the scale factor into ±Inf/NaN and poison every
// downstream duration, energy and replay result; it is clamped to the
// reference throughput (scale 1) instead.
func replayRegions(app *apps.Profile, cfg Config, laneThroughput float64) ([]rts.Schedule, []float64) {
	if laneThroughput <= 0 || math.IsNaN(laneThroughput) || math.IsInf(laneThroughput, 0) {
		laneThroughput = apps.RefLaneThroughput
	}
	scale := apps.RefLaneThroughput / laneThroughput
	var scheds []rts.Schedule
	var durs []float64
	for ri := range app.Regions {
		g := app.RegionGraph(ri, cfg.Seed)
		g.SerialNs *= scale
		for i := range g.Tasks {
			g.Tasks[i].DurationNs *= scale
			g.Tasks[i].CriticalNs *= scale
		}
		s := rts.Simulate(g, rts.Options{
			Threads:    cfg.Cores,
			DispatchNs: cfg.DispatchNs,
			Policy:     cfg.RTSPolicy,
		})
		scheds = append(scheds, s)
		durs = append(durs, s.MakespanNs)
	}
	return scheds, durs
}

// scheduleActiveCores returns the makespan-weighted average busy core count.
func scheduleActiveCores(scheds []rts.Schedule, durs []float64) float64 {
	var busyNs, totalNs float64
	for i, s := range scheds {
		busyNs += s.AvgActiveThreads() * durs[i]
		totalNs += durs[i]
	}
	if totalNs == 0 {
		return 0
	}
	return busyNs / totalNs
}

// HierarchyForTest exposes hierarchy construction for debugging and tests.
func HierarchyForTest(cfg Config, memLatNs float64) *cache.Hierarchy {
	return cfg.hierarchy(memLatNs)
}

// dramVisibleProfile filters an application's locality profile down to the
// regions whose accesses actually reach DRAM (footprints beyond the on-chip
// caches), so the load-latency curve reflects the post-cache address mix
// rather than the raw one. If nothing qualifies, the largest region is kept.
func dramVisibleProfile(p cache.LocalityProfile) cache.LocalityProfile {
	const onChip = 2 * 1024 * 1024 // generous per-core L2+L3 share
	var out cache.LocalityProfile
	largest := 0
	for i, r := range p.Regions {
		if r.Bytes > p.Regions[largest].Bytes {
			largest = i
		}
		if r.Bytes > onChip {
			out.Regions = append(out.Regions, r)
		}
	}
	if len(out.Regions) == 0 {
		out.Regions = append(out.Regions, p.Regions[largest])
	}
	return out
}

// BuildLatencyModel measures the DRAM load-latency curve for an application
// and memory configuration (exported so the DSE driver can cache it).
func BuildLatencyModel(app *apps.Profile, mem dram.Config, policy dram.SchedPolicy, seed uint64) dram.LatencyModel {
	visible := dramVisibleProfile(app.Locality)
	mkSrc := func() dram.AddrSource {
		return cache.NewAddressGen(visible, xrand.New(seed^0xbeef))
	}
	return dram.BuildLatencyModel(mem, policy, mkSrc, 3000, seed)
}

// estimatePower extrapolates the sampled activity to the full per-rank
// execution and runs the power model.
func estimatePower(app *apps.Profile, cfg Config, coreRes cpu.Result, res Result) (power.Breakdown, float64) {
	var act power.Activity
	act.AddCoreResult(coreRes)

	// Scale sample counts to the node's full execution: all cores together
	// execute the rank's total lane work.
	totalLanes := app.LaneWorkPerRank()
	k := totalLanes / float64(coreRes.LaneWork)
	act.Scale(k) // extrapolate core/cache counts; DRAM counts set below
	act.Duration = res.ComputeNs * 1e-9

	// DRAM command profile: one open-loop run at the converged demand gives
	// command-per-request ratios; scale to the full request count.
	totalReqs := float64(coreRes.MemReads+coreRes.MemWrites) * k
	if totalReqs > 0 && act.Duration > 0 {
		src := cache.NewAddressGen(app.Locality, xrand.New(cfg.Seed^0xdead))
		offered := math.Max(res.OfferedBW, 1e6)
		ol := dram.RunOpenLoop(cfg.Mem, cfg.DRAMPolicy, offered, src, 2000, cfg.Seed)
		done := float64(ol.Stats.Reads + ol.Stats.Writes)
		if done > 0 {
			cs := totalReqs / done
			act.DRAM.Act = int64(float64(ol.Stats.Commands.Act) * cs)
			act.DRAM.Pre = int64(float64(ol.Stats.Commands.Pre) * cs)
			act.DRAM.Rd = int64(float64(ol.Stats.Commands.Rd) * cs)
			act.DRAM.Wr = int64(float64(ol.Stats.Commands.Wr) * cs)
		}
		act.DRAM.Ref = int64(act.Duration / 7.8e-6 * float64(cfg.Mem.Channels))
	}

	params := power.NodeParams{
		Cores: cfg.Cores,
		Core: power.CoreParams{
			Config:     cfg.Core,
			VectorBits: cfg.VectorBits,
			FreqGHz:    cfg.FreqGHz,
		},
		L2PerCoreMB: float64(cfg.L2KBPerCore) / 1024,
		L3TotalMB:   float64(cfg.L3MBTotal),
		DIMMs:       cfg.DIMMs(),
	}
	b := power.NodePower(params, act)
	return b, power.EnergyJ(b, act.Duration)
}
