// Package node is the node-level detailed simulator: it composes the
// runtime-system scheduler (rts), the out-of-order core model (cpu), the
// cache hierarchy (cache) and the DRAM model (dram) into MUSA's detailed
// simulation mode for one compute node.
//
// Following the paper's methodology, one representative sample (one rank,
// one iteration worth of instructions) is simulated at instruction level;
// its IPC rescales the burst trace's task durations, which are then replayed
// through the runtime-system simulator at the configured core count. Shared
// memory bandwidth is resolved by a fixed-point iteration: core throughput
// determines offered bandwidth, the DRAM load-latency curve determines the
// effective memory latency, which feeds back into core throughput.
package node

import (
	"fmt"
	"math"

	"musa/internal/apps"
	"musa/internal/cache"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/isa"
	"musa/internal/power"
	"musa/internal/rts"
	"musa/internal/xrand"
)

// Config is the full architectural configuration of one compute node.
type Config struct {
	Cores      int
	Core       cpu.Config
	FreqGHz    float64
	VectorBits int

	L2KBPerCore int // private L2 size
	L3MBTotal   int // shared L3 size

	Mem        dram.Config
	DRAMPolicy dram.SchedPolicy

	// Runtime system parameters.
	DispatchNs float64
	RTSPolicy  rts.Policy

	// SampleInstrs is the detailed-sample length in scalar micro-ops.
	SampleInstrs int64
	// WarmupInstrs streams through the caches before measurement begins;
	// when zero it defaults to 2x SampleInstrs (enough to cover the largest
	// cacheable working sets of the five applications at the default
	// sample size).
	WarmupInstrs int64
	Seed         uint64

	// DisableContention turns off the bandwidth fixed point (ablation).
	DisableContention bool

	// LatModel optionally supplies a prebuilt DRAM load-latency curve for
	// this (application, memory) pair; the DSE driver caches these across
	// the sweep. When nil, Simulate builds one.
	LatModel *dram.LatencyModel
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("node: %d cores", c.Cores)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("node: frequency %v", c.FreqGHz)
	}
	if c.VectorBits < 64 {
		return fmt.Errorf("node: vector width %d", c.VectorBits)
	}
	if c.L2KBPerCore <= 0 || c.L3MBTotal <= 0 {
		return fmt.Errorf("node: cache sizes %dKB/%dMB", c.L2KBPerCore, c.L3MBTotal)
	}
	return c.Mem.Validate()
}

// DIMMs returns the DIMM population (two per channel, as in the paper's
// 4-channel/64 GB and 8-channel/128 GB setups).
func (c Config) DIMMs() int { return 2 * c.Mem.Channels }

// l2Params returns associativity and latency for a private L2 size, per
// Table I (256kB/8w/9cy, 512kB/16w/11cy, 1MB/16w/13cy), extrapolating two
// cycles per doubling for unconventional sizes.
func l2Params(kb int) (assoc, latency int) {
	switch kb {
	case 256:
		return 8, 9
	case 512:
		return 16, 11
	case 1024:
		return 16, 13
	}
	lat := 9 + int(math.Round(2*math.Log2(float64(kb)/256)))
	if lat < 5 {
		lat = 5
	}
	return 16, lat
}

// l3Params returns associativity and latency for the shared L3 size, per
// Table I (32MB/68cy, 64MB/70cy, 96MB/72cy).
func l3Params(mb int) (assoc, latency int) {
	switch mb {
	case 32:
		return 16, 68
	case 64:
		return 16, 70
	case 96:
		return 16, 72
	}
	lat := 68 + int(math.Round(2*math.Log2(float64(mb)/32)))
	if lat < 40 {
		lat = 40
	}
	return 16, lat
}

// hierarchy builds one core's cache stack. The shared L3 is modeled as an
// equal per-core partition (MUSA samples a single rank in detailed mode).
func (c Config) hierarchy(memLatNs float64) *cache.Hierarchy {
	l2a, l2l := l2Params(c.L2KBPerCore)
	l3a, l3l := l3Params(c.L3MBTotal)
	l3Share := c.L3MBTotal * 1024 * 1024 / c.Cores
	// Keep the partition a power-of-two set count: round down to one.
	l3Share = 1 << uint(math.Floor(math.Log2(float64(l3Share))))
	if l3Share < 256*1024 {
		l3Share = 256 * 1024
	}
	return cache.NewHierarchy(cache.HierarchyConfig{
		L1:              cache.Config{Name: "L1", SizeBytes: 32 * 1024, Assoc: 8, LatencyCycle: 4},
		L2:              cache.Config{Name: "L2", SizeBytes: c.L2KBPerCore * 1024, Assoc: l2a, LatencyCycle: l2l},
		L3:              cache.Config{Name: "L3", SizeBytes: l3Share, Assoc: l3a, LatencyCycle: l3l},
		MemLatencyCycle: int(math.Round(memLatNs * c.FreqGHz)),
	})
}

// Result is the outcome of a node-level detailed simulation.
type Result struct {
	// Sample core simulation at the bandwidth fixed point.
	CoreRes cpu.Result
	// LaneThroughput is scalar lanes per second per busy core.
	LaneThroughput float64
	// MemLatencyNs is the converged effective memory latency.
	MemLatencyNs float64
	// OfferedBW is the node's converged DRAM demand (bytes/second).
	OfferedBW float64
	// Fixed-point iterations taken.
	Iterations int

	// Schedules holds one runtime-system schedule per region.
	Schedules []rts.Schedule
	// RegionDurNs is each region's makespan on this node.
	RegionDurNs []float64
	// IterationNs is the per-timestep compute duration (sum of regions).
	IterationNs float64
	// ComputeNs is the full per-rank compute time (all iterations).
	ComputeNs float64
	// AvgActiveCores is the schedule-weighted mean busy core count.
	AvgActiveCores float64

	// GMemReqPerSec is node DRAM line requests per second (Fig. 1 metric).
	GMemReqPerSec float64

	// Power is the average node power over the compute phase; EnergyJ is
	// power times compute time.
	Power   power.Breakdown
	EnergyJ float64
}

// MPKI returns L1/L2/L3 misses per kilo-instruction of the sample, with the
// fused-op instruction count as denominator (Fig. 1).
func (r Result) MPKI() (l1, l2, l3 float64) {
	n := r.CoreRes.Instructions
	return r.CoreRes.L1.MPKI(n), r.CoreRes.L2.MPKI(n), r.CoreRes.L3.MPKI(n)
}

// Annotation bundles a reusable annotated sample with the hierarchy
// configuration it was produced under. The DSE runner shares one Annotation
// across every (OoO, frequency, channel) variant of the same (application,
// cores, vector width, cache) group — cache behavior does not depend on
// timing.
type Annotation struct {
	Ann     cpu.AnnotateResult
	HierCfg cache.HierarchyConfig
}

// BuildAnnotation warms the caches and annotates one detailed sample for
// the configuration's cache-relevant parameters (cores, vector width, cache
// sizes, sample sizes, seed).
func BuildAnnotation(app *apps.Profile, cfg Config) Annotation {
	cfg.SampleInstrs, cfg.WarmupInstrs = apps.EffectiveFidelity(cfg.SampleInstrs, cfg.WarmupInstrs)
	return Annotation{
		Ann:     annotateSample(app, cfg),
		HierCfg: cfg.hierarchy(0).Config(),
	}
}

// Simulate runs the detailed node simulation of app on cfg.
func Simulate(app *apps.Profile, cfg Config) Result {
	return SimulateAnnotated(app, cfg, BuildAnnotation(app, cfg))
}

// SimulateAnnotated runs the node simulation reusing a prebuilt annotation.
// The annotation must have been built for the same application, core count,
// vector width, cache configuration and seed.
func SimulateAnnotated(app *apps.Profile, cfg Config, annotation Annotation) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.SampleInstrs <= 0 {
		cfg.SampleInstrs = apps.SampleSize
	}

	latModel := cfg.LatModel
	if latModel == nil {
		m := BuildLatencyModel(app, cfg.Mem, cfg.DRAMPolicy, cfg.Seed)
		latModel = &m
	}

	ann := annotation.Ann
	hcfg := annotation.HierCfg

	// --- Bandwidth-contention fixed point. ---
	memLatNs := latModel.LatencyNs(0) // unloaded latency
	var res Result
	var coreRes cpu.Result
	activeCores := float64(cfg.Cores)
	for iter := 0; iter < 6; iter++ {
		res.Iterations = iter + 1
		coreRes = cpu.RunTiming(cfg.Core, ann, cpu.LatenciesFor(hcfg, memLatNs, cfg.FreqGHz))
		cyclesPerSec := cfg.FreqGHz * 1e9
		secs := float64(coreRes.Cycles) / cyclesPerSec
		perCoreBW := float64(coreRes.MemReads+coreRes.MemWrites) * cache.LineBytes / secs

		// Replay the runtime system to learn how many cores are busy.
		laneTp := float64(coreRes.LaneWork) / secs
		scheds, durs := replayRegions(app, cfg, laneTp)
		activeCores = scheduleActiveCores(scheds, durs)

		offered := perCoreBW * activeCores
		newLat := latModel.LatencyNs(offered)
		res.OfferedBW = offered
		res.Schedules = scheds
		res.RegionDurNs = durs
		if cfg.DisableContention {
			break
		}
		if math.Abs(newLat-memLatNs) < 1.0 { // converged within 1 ns
			memLatNs = newLat
			break
		}
		memLatNs = 0.5*memLatNs + 0.5*newLat
	}
	res.CoreRes = coreRes
	res.MemLatencyNs = memLatNs

	secs := float64(coreRes.Cycles) / (cfg.FreqGHz * 1e9)
	res.LaneThroughput = float64(coreRes.LaneWork) / secs
	res.AvgActiveCores = activeCores

	for _, d := range res.RegionDurNs {
		res.IterationNs += d
	}
	res.ComputeNs = res.IterationNs * float64(app.Iterations)

	// Node DRAM request rate (Fig. 1): per-core rate times busy cores.
	perCoreReqRate := float64(coreRes.MemReads+coreRes.MemWrites) / secs
	res.GMemReqPerSec = perCoreReqRate * activeCores

	res.Power, res.EnergyJ = estimatePower(app, cfg, coreRes, res)
	return res
}

// annotateSample warms the hierarchy and annotates one detailed sample.
func annotateSample(app *apps.Profile, cfg Config) cpu.AnnotateResult {
	hier := cfg.hierarchy(0)
	gen := apps.NewDetailedStream(app, cfg.Seed)
	warm := &isa.LimitStream{S: gen, N: cfg.WarmupInstrs}
	cpu.Warm(isa.NewFuser(warm, isa.DefaultFuserConfig(cfg.VectorBits)), hier)
	src := &isa.LimitStream{S: gen, N: cfg.SampleInstrs}
	fu := isa.NewFuser(src, isa.DefaultFuserConfig(cfg.VectorBits))
	return cpu.Annotate(fu, hier, app.MispredictRate, cfg.Seed^0x5eed)
}

// replayRegions rescales the burst task durations with the measured lane
// throughput and replays each region's task graph on the node's cores.
// Runtime dispatch costs stay in wall-clock ns (they come from the trace and
// do not scale with core frequency), reproducing the scheduling bottleneck
// HYDRO hits above 2.5 GHz.
//
// A zero, negative, NaN or infinite lane throughput (a degenerate core
// sample) would turn the scale factor into ±Inf/NaN and poison every
// downstream duration, energy and replay result; it is clamped to the
// reference throughput (scale 1) instead.
func replayRegions(app *apps.Profile, cfg Config, laneThroughput float64) ([]rts.Schedule, []float64) {
	if laneThroughput <= 0 || math.IsNaN(laneThroughput) || math.IsInf(laneThroughput, 0) {
		laneThroughput = apps.RefLaneThroughput
	}
	scale := apps.RefLaneThroughput / laneThroughput
	var scheds []rts.Schedule
	var durs []float64
	for ri := range app.Regions {
		g := app.RegionGraph(ri, cfg.Seed)
		g.SerialNs *= scale
		for i := range g.Tasks {
			g.Tasks[i].DurationNs *= scale
			g.Tasks[i].CriticalNs *= scale
		}
		s := rts.Simulate(g, rts.Options{
			Threads:    cfg.Cores,
			DispatchNs: cfg.DispatchNs,
			Policy:     cfg.RTSPolicy,
		})
		scheds = append(scheds, s)
		durs = append(durs, s.MakespanNs)
	}
	return scheds, durs
}

// scheduleActiveCores returns the makespan-weighted average busy core count.
func scheduleActiveCores(scheds []rts.Schedule, durs []float64) float64 {
	var busyNs, totalNs float64
	for i, s := range scheds {
		busyNs += s.AvgActiveThreads() * durs[i]
		totalNs += durs[i]
	}
	if totalNs == 0 {
		return 0
	}
	return busyNs / totalNs
}

// HierarchyForTest exposes hierarchy construction for debugging and tests.
func HierarchyForTest(cfg Config, memLatNs float64) *cache.Hierarchy {
	return cfg.hierarchy(memLatNs)
}

// dramVisibleProfile filters an application's locality profile down to the
// regions whose accesses actually reach DRAM (footprints beyond the on-chip
// caches), so the load-latency curve reflects the post-cache address mix
// rather than the raw one. If nothing qualifies, the largest region is kept.
func dramVisibleProfile(p cache.LocalityProfile) cache.LocalityProfile {
	const onChip = 2 * 1024 * 1024 // generous per-core L2+L3 share
	var out cache.LocalityProfile
	largest := 0
	for i, r := range p.Regions {
		if r.Bytes > p.Regions[largest].Bytes {
			largest = i
		}
		if r.Bytes > onChip {
			out.Regions = append(out.Regions, r)
		}
	}
	if len(out.Regions) == 0 {
		out.Regions = append(out.Regions, p.Regions[largest])
	}
	return out
}

// BuildLatencyModel measures the DRAM load-latency curve for an application
// and memory configuration (exported so the DSE driver can cache it).
func BuildLatencyModel(app *apps.Profile, mem dram.Config, policy dram.SchedPolicy, seed uint64) dram.LatencyModel {
	visible := dramVisibleProfile(app.Locality)
	mkSrc := func() dram.AddrSource {
		return cache.NewAddressGen(visible, xrand.New(seed^0xbeef))
	}
	return dram.BuildLatencyModel(mem, policy, mkSrc, 3000, seed)
}

// estimatePower extrapolates the sampled activity to the full per-rank
// execution and runs the power model.
func estimatePower(app *apps.Profile, cfg Config, coreRes cpu.Result, res Result) (power.Breakdown, float64) {
	var act power.Activity
	act.AddCoreResult(coreRes)

	// Scale sample counts to the node's full execution: all cores together
	// execute the rank's total lane work.
	totalLanes := app.LaneWorkPerRank()
	k := totalLanes / float64(coreRes.LaneWork)
	act.Scale(k) // extrapolate core/cache counts; DRAM counts set below
	act.Duration = res.ComputeNs * 1e-9

	// DRAM command profile: one open-loop run at the converged demand gives
	// command-per-request ratios; scale to the full request count.
	totalReqs := float64(coreRes.MemReads+coreRes.MemWrites) * k
	if totalReqs > 0 && act.Duration > 0 {
		src := cache.NewAddressGen(app.Locality, xrand.New(cfg.Seed^0xdead))
		offered := math.Max(res.OfferedBW, 1e6)
		ol := dram.RunOpenLoop(cfg.Mem, cfg.DRAMPolicy, offered, src, 2000, cfg.Seed)
		done := float64(ol.Stats.Reads + ol.Stats.Writes)
		if done > 0 {
			cs := totalReqs / done
			act.DRAM.Act = int64(float64(ol.Stats.Commands.Act) * cs)
			act.DRAM.Pre = int64(float64(ol.Stats.Commands.Pre) * cs)
			act.DRAM.Rd = int64(float64(ol.Stats.Commands.Rd) * cs)
			act.DRAM.Wr = int64(float64(ol.Stats.Commands.Wr) * cs)
		}
		act.DRAM.Ref = int64(act.Duration / 7.8e-6 * float64(cfg.Mem.Channels))
	}

	params := power.NodeParams{
		Cores: cfg.Cores,
		Core: power.CoreParams{
			Config:     cfg.Core,
			VectorBits: cfg.VectorBits,
			FreqGHz:    cfg.FreqGHz,
		},
		L2PerCoreMB: float64(cfg.L2KBPerCore) / 1024,
		L3TotalMB:   float64(cfg.L3MBTotal),
		DIMMs:       cfg.DIMMs(),
	}
	b := power.NodePower(params, act)
	return b, power.EnergyJ(b, act.Duration)
}
