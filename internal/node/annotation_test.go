package node

import (
	"testing"

	"musa/internal/apps"
)

func TestSimulateAnnotatedMatchesSimulate(t *testing.T) {
	// Simulate must be exactly the composition of BuildAnnotation and
	// SimulateAnnotated — the DSE runner relies on this equivalence.
	app := apps.Spec3D()
	cfg := baseCfg()
	cfg.SampleInstrs = 60000
	cfg.WarmupInstrs = 200000
	direct := Simulate(app, cfg)
	ann := BuildAnnotation(app, cfg)
	reused := SimulateAnnotated(app, cfg, ann)
	if direct.ComputeNs != reused.ComputeNs || direct.EnergyJ != reused.EnergyJ {
		t.Fatalf("annotated path diverges: %v/%v vs %v/%v",
			direct.ComputeNs, direct.EnergyJ, reused.ComputeNs, reused.EnergyJ)
	}
}

func TestAnnotationReuseAcrossTimingVariants(t *testing.T) {
	// One annotation must serve different OoO/frequency variants: results
	// must differ (timing changed) while cache statistics stay identical.
	app := apps.BTMZ()
	cfg := baseCfg()
	cfg.SampleInstrs = 60000
	cfg.WarmupInstrs = 200000
	ann := BuildAnnotation(app, cfg)

	slow := cfg
	slow.FreqGHz = 1.5
	fast := cfg
	fast.FreqGHz = 3.0
	rs := SimulateAnnotated(app, slow, ann)
	rf := SimulateAnnotated(app, fast, ann)
	if rf.ComputeNs >= rs.ComputeNs {
		t.Errorf("3 GHz (%v) not faster than 1.5 GHz (%v)", rf.ComputeNs, rs.ComputeNs)
	}
	if rs.CoreRes.L1 != rf.CoreRes.L1 || rs.CoreRes.L2 != rf.CoreRes.L2 {
		t.Error("cache stats changed across timing-only variants")
	}
}

func TestL3PartitionRounding(t *testing.T) {
	// The per-core L3 partition must stay a valid power-of-two-set cache
	// for every Table I combination of cores and L3 size.
	for _, cores := range []int{1, 32, 64} {
		for _, l3 := range []int{32, 64, 96} {
			cfg := baseCfg()
			cfg.Cores = cores
			cfg.L3MBTotal = l3
			h := HierarchyForTest(cfg, 60) // panics on invalid config
			if h == nil {
				t.Fatal("nil hierarchy")
			}
		}
	}
}

func TestDramVisibleProfileFiltering(t *testing.T) {
	for _, app := range apps.All() {
		vis := dramVisibleProfile(app.Locality)
		if err := vis.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for _, r := range vis.Regions {
			if r.Bytes <= 2*1024*1024 && len(vis.Regions) > 1 {
				t.Errorf("%s: on-chip region %s (%d B) in DRAM-visible profile", app.Name, r.Name, r.Bytes)
			}
		}
	}
}
