package node

import (
	"math"
	"testing"

	"musa/internal/apps"
	"musa/internal/cpu"
	"musa/internal/dram"
	"musa/internal/rts"
)

// baseCfg is the mid-range configuration used as test baseline: medium core,
// 2 GHz, 128-bit SIMD, 64M:512K caches, 4-channel DDR4, 64 cores.
func baseCfg() Config {
	return Config{
		Cores:        64,
		Core:         cpu.Medium(),
		FreqGHz:      2.0,
		VectorBits:   128,
		L2KBPerCore:  512,
		L3MBTotal:    64,
		Mem:          dram.Config{Spec: dram.DDR4_2333(), Channels: 4},
		DRAMPolicy:   dram.FRFCFS,
		DispatchNs:   100,
		RTSPolicy:    rts.FIFOCentral,
		SampleInstrs: 200000,
		WarmupInstrs: 2000000,
		Seed:         1,
	}
}

func simFast(t *testing.T, app *apps.Profile, cfg Config) Result {
	t.Helper()
	return Simulate(app, cfg)
}

func TestValidate(t *testing.T) {
	if err := baseCfg().Validate(); err != nil {
		t.Error(err)
	}
	bad := baseCfg()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores validated")
	}
	bad2 := baseCfg()
	bad2.L2KBPerCore = 0
	if bad2.Validate() == nil {
		t.Error("zero L2 validated")
	}
}

func TestDIMMs(t *testing.T) {
	cfg := baseCfg()
	if cfg.DIMMs() != 8 {
		t.Errorf("4ch DIMMs = %d, want 8", cfg.DIMMs())
	}
}

func TestTableILatencies(t *testing.T) {
	cases := []struct{ kb, wantAssoc, wantLat int }{
		{256, 8, 9}, {512, 16, 11}, {1024, 16, 13},
	}
	for _, c := range cases {
		a, l := l2Params(c.kb)
		if a != c.wantAssoc || l != c.wantLat {
			t.Errorf("l2Params(%d) = %d/%d, want %d/%d", c.kb, a, l, c.wantAssoc, c.wantLat)
		}
	}
	for _, c := range []struct{ mb, wantLat int }{{32, 68}, {64, 70}, {96, 72}} {
		_, l := l3Params(c.mb)
		if l != c.wantLat {
			t.Errorf("l3Params(%d) latency = %d, want %d", c.mb, l, c.wantLat)
		}
	}
	// Extrapolation for unconventional sizes stays sane.
	if _, l := l2Params(2048); l <= 13 {
		t.Errorf("2MB L2 latency %d not above 1MB's", l)
	}
}

func TestSimulateBasics(t *testing.T) {
	res := simFast(t, apps.Hydro(), baseCfg())
	if res.ComputeNs <= 0 || res.IterationNs <= 0 {
		t.Fatalf("durations: %+v", res)
	}
	if res.LaneThroughput <= 0 {
		t.Error("no throughput")
	}
	if res.Power.Total() <= 0 || res.EnergyJ <= 0 {
		t.Error("no power/energy")
	}
	if res.AvgActiveCores <= 0 || res.AvgActiveCores > 64 {
		t.Errorf("active cores = %v", res.AvgActiveCores)
	}
	l1, l2, l3 := res.MPKI()
	if l1 <= 0 || l2 < 0 || l3 < 0 {
		t.Errorf("MPKI = %v/%v/%v", l1, l2, l3)
	}
}

func TestDeterminism(t *testing.T) {
	a := simFast(t, apps.BTMZ(), baseCfg())
	b := simFast(t, apps.BTMZ(), baseCfg())
	if a.ComputeNs != b.ComputeNs || a.EnergyJ != b.EnergyJ {
		t.Error("node simulation not deterministic")
	}
}

func TestMoreCoresFasterCompute(t *testing.T) {
	cfg1 := baseCfg()
	cfg1.Cores = 1
	cfg32 := baseCfg()
	cfg32.Cores = 32
	app := apps.Hydro()
	r1 := simFast(t, app, cfg1)
	r32 := simFast(t, app, cfg32)
	speedup := r1.ComputeNs / r32.ComputeNs
	if speedup < 10 {
		t.Errorf("32-core speedup = %v, want >> 1", speedup)
	}
}

func TestFrequencyScalesCompute(t *testing.T) {
	lo := baseCfg()
	lo.FreqGHz = 1.5
	hi := baseCfg()
	hi.FreqGHz = 3.0
	app := apps.BTMZ()
	rl := simFast(t, app, lo)
	rh := simFast(t, app, hi)
	sp := rl.ComputeNs / rh.ComputeNs
	if sp < 1.5 || sp > 2.2 {
		t.Errorf("2x frequency speedup = %v, want ~2 (btmz scales linearly, Fig. 9a)", sp)
	}
}

func TestLuleshBandwidthBound(t *testing.T) {
	// The Fig. 8 mechanism: LULESH at 64 cores gains substantially from 8
	// channels; HYDRO (low BW) does not.
	fourCh := baseCfg()
	eightCh := baseCfg()
	eightCh.Mem.Channels = 8

	lul4 := simFast(t, apps.LULESH(), fourCh)
	lul8 := simFast(t, apps.LULESH(), eightCh)
	lulSpeedup := lul4.ComputeNs / lul8.ComputeNs
	if lulSpeedup < 1.15 {
		t.Errorf("lulesh 8ch speedup = %v, want > 1.15", lulSpeedup)
	}

	hyd4 := simFast(t, apps.Hydro(), fourCh)
	hyd8 := simFast(t, apps.Hydro(), eightCh)
	hydSpeedup := hyd4.ComputeNs / hyd8.ComputeNs
	if hydSpeedup > 1.05 {
		t.Errorf("hydro 8ch speedup = %v, want ~1", hydSpeedup)
	}
}

func TestVectorWidthSpeedups(t *testing.T) {
	// Fig. 5a shape: SPMZ gains a lot from 512-bit, LULESH nothing.
	narrow := baseCfg()
	wide := baseCfg()
	wide.VectorBits = 512

	spm128 := simFast(t, apps.SPMZ(), narrow)
	spm512 := simFast(t, apps.SPMZ(), wide)
	spmSp := spm128.ComputeNs / spm512.ComputeNs
	if spmSp < 1.3 {
		t.Errorf("spmz 512-bit speedup = %v, want > 1.3", spmSp)
	}

	lul128 := simFast(t, apps.LULESH(), narrow)
	lul512 := simFast(t, apps.LULESH(), wide)
	lulSp := lul128.ComputeNs / lul512.ComputeNs
	if lulSp > 1.08 {
		t.Errorf("lulesh 512-bit speedup = %v, want ~1", lulSp)
	}
}

func TestOoOSensitivity(t *testing.T) {
	// Fig. 7a shape: Specfem3D suffers most on the low-end core.
	low := baseCfg()
	low.Core = cpu.LowEnd()
	agg := baseCfg()
	agg.Core = cpu.Aggressive()

	specLow := simFast(t, apps.Spec3D(), low)
	specAgg := simFast(t, apps.Spec3D(), agg)
	slowdown := specLow.ComputeNs / specAgg.ComputeNs
	if slowdown < 1.4 {
		t.Errorf("spec3d lowend/aggressive = %v, want > 1.4", slowdown)
	}
}

func TestHydroCacheKnee(t *testing.T) {
	// Fig. 6 / paper text: HYDRO's working set fits in 512 kB but not in
	// 256 kB; upgrading the L2 drops its L2 MPKI by ~4x.
	small := baseCfg()
	small.L2KBPerCore = 256
	small.L3MBTotal = 32
	big := baseCfg()

	rs := simFast(t, apps.Hydro(), small)
	rb := simFast(t, apps.Hydro(), big)
	_, l2s, _ := rs.MPKI()
	_, l2b, _ := rb.MPKI()
	if l2s < 2.5*l2b {
		t.Errorf("hydro L2 MPKI drop = %vx (from %v to %v), want >= ~4x", l2s/l2b, l2s, l2b)
	}
	if rs.ComputeNs <= rb.ComputeNs {
		t.Error("bigger caches did not speed HYDRO up")
	}
}

func TestContentionAblation(t *testing.T) {
	on := baseCfg()
	off := baseCfg()
	off.DisableContention = true
	app := apps.LULESH()
	ron := simFast(t, app, on)
	roff := simFast(t, app, off)
	if ron.ComputeNs < roff.ComputeNs {
		t.Error("contention model made LULESH faster")
	}
}

func TestReplayRegionsDegenerateThroughput(t *testing.T) {
	// A zero/NaN/Inf lane throughput must not poison the region durations
	// with +Inf/NaN scale factors; replayRegions clamps to the reference
	// throughput instead.
	app := apps.Hydro()
	cfg := baseCfg()
	for _, tp := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, durs := replayRegions(app, cfg, tp)
		if len(durs) == 0 {
			t.Fatalf("throughput %v: no regions replayed", tp)
		}
		for ri, d := range durs {
			if math.IsNaN(d) || math.IsInf(d, 0) || d <= 0 {
				t.Errorf("throughput %v: region %d duration %v not finite positive", tp, ri, d)
			}
		}
	}
}

func BenchmarkNodeSimulate(b *testing.B) {
	cfg := baseCfg()
	cfg.SampleInstrs = 30000
	app := apps.BTMZ()
	lm := BuildLatencyModel(app, cfg.Mem, cfg.DRAMPolicy, 1)
	cfg.LatModel = &lm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(app, cfg)
	}
}
