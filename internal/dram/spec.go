// Package dram implements the external memory simulator of the toolflow
// (the paper integrates Ramulator): a bank-level DDR4/HBM timing model with
// an FR-FCFS controller per channel, driven by the discrete-event kernel.
// It reports request latencies, achieved bandwidth, and the command counts
// that the power package (DRAMPower substitute) converts into energy.
package dram

import "fmt"

// Spec holds the timing and geometry parameters of one DRAM standard.
// All t* parameters are in memory-clock cycles (the clock runs at
// DataRateMTs/2 MHz for DDR devices).
type Spec struct {
	Name            string
	DataRateMTs     int // mega-transfers per second on the data bus
	BusBytes        int // data bus width per channel in bytes
	BanksPerChannel int
	RowBytes        int // row-buffer size in bytes

	TRCD  int // ACT -> RD/WR
	TCL   int // RD -> first data
	TRP   int // PRE -> ACT
	TRAS  int // ACT -> PRE
	TWR   int // end of write data -> PRE
	TRTP  int // RD -> PRE
	TBL   int // data burst length in clock cycles (burst 8 = 4 cycles DDR)
	TCCD  int // RD -> RD (same bank group; we use the long value)
	TRRD  int // ACT -> ACT, different banks
	TFAW  int // four-activate window
	TREFI int // average refresh interval
	TRFC  int // refresh cycle time
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if s.DataRateMTs <= 0 || s.BusBytes <= 0 || s.BanksPerChannel <= 0 || s.RowBytes <= 0 {
		return fmt.Errorf("dram %s: non-positive geometry", s.Name)
	}
	if s.TRCD <= 0 || s.TCL <= 0 || s.TRP <= 0 || s.TBL <= 0 {
		return fmt.Errorf("dram %s: non-positive core timing", s.Name)
	}
	return nil
}

// ClockPs returns the memory clock period in picoseconds. DDR devices
// transfer twice per clock, so the clock runs at DataRateMTs/2 MHz.
func (s Spec) ClockPs() int64 {
	return 2_000_000 / int64(s.DataRateMTs)
}

// PeakChannelBandwidth returns bytes/second of one channel's data bus.
func (s Spec) PeakChannelBandwidth() float64 {
	return float64(s.DataRateMTs) * 1e6 * float64(s.BusBytes)
}

// DDR4_2333 returns the DDR4-2333 speed bin used throughout the paper
// (Micron single-rank RDIMM timings, CL16).
func DDR4_2333() Spec {
	return Spec{
		Name:            "DDR4-2333",
		DataRateMTs:     2333,
		BusBytes:        8,
		BanksPerChannel: 16,
		RowBytes:        8192,
		TRCD:            16,
		TCL:             16,
		TRP:             16,
		TRAS:            39,
		TWR:             18,
		TRTP:            9,
		TBL:             4,
		TCCD:            4, // tCCD_S: the address mapping interleaves bank groups
		TRRD:            6,
		TFAW:            26,
		TREFI:           9100, // ~7.8us at 1166MHz
		TRFC:            410,  // ~350ns
	}
}

// HBM2 returns an HBM2 pseudo-channel spec: a narrower per-channel bus than
// a full HBM stack but at low latency, used for the MEM++ configuration
// (Table II). Sixteen of these channels give ~256 GB/s.
func HBM2() Spec {
	return Spec{
		Name:            "HBM2",
		DataRateMTs:     2000,
		BusBytes:        8,
		BanksPerChannel: 16,
		RowBytes:        2048,
		TRCD:            14,
		TCL:             14,
		TRP:             14,
		TRAS:            34,
		TWR:             16,
		TRTP:            5,
		TBL:             2, // burst 4 on a pseudo-channel
		TCCD:            2,
		TRRD:            4,
		TFAW:            16,
		TREFI:           3900,
		TRFC:            260,
	}
}
