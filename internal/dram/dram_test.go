package dram

import (
	"testing"

	"musa/internal/sim"
	"musa/internal/xrand"
)

func ddr4(ch int) Config { return Config{Spec: DDR4_2333(), Channels: ch} }

func TestSpecValidate(t *testing.T) {
	if err := DDR4_2333().Validate(); err != nil {
		t.Errorf("DDR4 spec invalid: %v", err)
	}
	if err := HBM2().Validate(); err != nil {
		t.Errorf("HBM2 spec invalid: %v", err)
	}
	bad := Spec{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Error("empty spec validated")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := ddr4(4).Validate(); err != nil {
		t.Errorf("4ch config invalid: %v", err)
	}
	if err := (Config{Spec: DDR4_2333(), Channels: 3}).Validate(); err == nil {
		t.Error("non-power-of-two channels validated")
	}
	if err := (Config{Spec: DDR4_2333(), Channels: 0}).Validate(); err == nil {
		t.Error("zero channels validated")
	}
}

func TestClockAndBandwidth(t *testing.T) {
	s := DDR4_2333()
	if got := s.ClockPs(); got != 857 {
		t.Errorf("DDR4-2333 clock = %d ps, want 857", got)
	}
	// 2333 MT/s * 8 B = 18.664 GB/s per channel.
	bw := s.PeakChannelBandwidth()
	if bw < 18.6e9 || bw > 18.7e9 {
		t.Errorf("peak channel BW = %v", bw)
	}
	if ddr4(4).PeakBandwidth() != 4*bw {
		t.Error("aggregate BW != channels * channel BW")
	}
}

func TestSingleReadLatency(t *testing.T) {
	var eng sim.Engine
	ctl := NewController(&eng, ddr4(1), FRFCFS)
	var done sim.Time
	ctl.Submit(&Request{Addr: 0, Arrive: 0, Done: func(at sim.Time) { done = at }})
	eng.Run()
	// Cold access: ACT + tRCD + tCL + tBL = (16+16+4)*857ps ~ 30.9 ns.
	want := sim.Time(36 * 857)
	if done != want {
		t.Errorf("cold read completes at %d ps, want %d", done, want)
	}
	if ctl.Stats.Commands.Act != 1 || ctl.Stats.Commands.Rd != 1 {
		t.Errorf("commands = %+v", ctl.Stats.Commands)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	run := func(second uint64) sim.Time {
		var eng sim.Engine
		ctl := NewController(&eng, ddr4(1), FRFCFS)
		var last sim.Time
		ctl.Submit(&Request{Addr: 0, Arrive: 0})
		ctl.Submit(&Request{Addr: second, Arrive: 0, Done: func(at sim.Time) { last = at }})
		eng.Run()
		return last
	}
	hit := run(64)           // same row, next line
	conflict := run(1 << 24) // same bank, different row
	if hit >= conflict {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hit, conflict)
	}
}

func TestRowHitRateSequential(t *testing.T) {
	res := RunOpenLoop(ddr4(1), FRFCFS, 2e9, NewStreamSource(), 4000, 1)
	if res.Stats.RowHitRate() < 0.9 {
		t.Errorf("sequential row hit rate = %v, want >0.9", res.Stats.RowHitRate())
	}
}

func TestStreamingApproachesPeak(t *testing.T) {
	cfg := ddr4(1)
	// Offer 130% of peak; achieved bandwidth should exceed 80% of peak for
	// a pure sequential stream (row hits, all channels busy).
	res := RunOpenLoop(cfg, FRFCFS, 1.3*cfg.PeakBandwidth(), NewStreamSource(), 20000, 2)
	if res.Utilization < 0.8 {
		t.Errorf("streaming utilization = %v, want > 0.8", res.Utilization)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	cfg := ddr4(1)
	low := RunOpenLoop(cfg, FRFCFS, 0.05*cfg.PeakBandwidth(), NewStreamSource(), 5000, 3)
	high := RunOpenLoop(cfg, FRFCFS, 1.2*cfg.PeakBandwidth(), NewStreamSource(), 5000, 3)
	if high.AvgLatency <= low.AvgLatency {
		t.Errorf("latency does not grow with load: low=%v high=%v", low.AvgLatency, high.AvgLatency)
	}
}

func TestMoreChannelsMoreBandwidth(t *testing.T) {
	// Offer the same heavy load to 4 and 8 channels: 8 channels must achieve
	// roughly double the bandwidth (the Fig. 8 mechanism).
	offered := 1.2 * ddr4(8).PeakBandwidth()
	r4 := RunOpenLoop(ddr4(4), FRFCFS, offered, NewStreamSource(), 40000, 4)
	r8 := RunOpenLoop(ddr4(8), FRFCFS, offered, NewStreamSource(), 40000, 4)
	ratio := r8.AchievedBW / r4.AchievedBW
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("8ch/4ch bandwidth ratio = %v, want ~2", ratio)
	}
}

func TestHBMLowerLatencyThanDDR4(t *testing.T) {
	load := 4e9
	ddr := RunOpenLoop(ddr4(1), FRFCFS, load, NewStreamSource(), 5000, 5)
	hbm := RunOpenLoop(Config{Spec: HBM2(), Channels: 1}, FRFCFS, load, NewStreamSource(), 5000, 5)
	if hbm.AvgLatency >= ddr.AvgLatency {
		t.Errorf("HBM latency %v >= DDR4 latency %v", hbm.AvgLatency, ddr.AvgLatency)
	}
}

type randSource struct{ rng *xrand.RNG }

func (r *randSource) Next() (uint64, bool) {
	return uint64(r.rng.Int63n(1<<30)) &^ 63, false
}

func TestFRFCFSBeatsFCFSOnMixedTraffic(t *testing.T) {
	// Random traffic arriving in bursts: FR-FCFS should achieve at least as
	// much bandwidth as FCFS (typically more via row-hit reordering).
	mk := func() AddrSource { return &randSource{rng: xrand.New(99)} }
	cfg := ddr4(1)
	fr := RunOpenLoop(cfg, FRFCFS, 0.9*cfg.PeakBandwidth(), mk(), 20000, 6)
	fc := RunOpenLoop(cfg, FCFS, 0.9*cfg.PeakBandwidth(), mk(), 20000, 6)
	if fr.AchievedBW < fc.AchievedBW*0.98 {
		t.Errorf("FR-FCFS BW %v < FCFS BW %v", fr.AchievedBW, fc.AchievedBW)
	}
}

func TestRefreshHappens(t *testing.T) {
	// Run long enough to cross several tREFI periods.
	res := RunOpenLoop(ddr4(1), FRFCFS, 1e9, NewStreamSource(), 60000, 7)
	if res.Stats.Commands.Ref == 0 {
		t.Error("no refresh commands issued")
	}
}

func TestCommandAccounting(t *testing.T) {
	res := RunOpenLoop(ddr4(2), FRFCFS, 5e9, NewStreamSource(), 2000, 8)
	c := res.Stats.Commands
	if c.Rd+c.Wr != res.Stats.Reads+res.Stats.Writes {
		t.Errorf("CAS commands %d != requests %d", c.Rd+c.Wr, res.Stats.Reads+res.Stats.Writes)
	}
	if c.Act == 0 {
		t.Error("no activates")
	}
	if c.Pre > c.Act {
		t.Errorf("more precharges (%d) than activates (%d)", c.Pre, c.Act)
	}
}

func TestAddrMappingStripesChannels(t *testing.T) {
	var eng sim.Engine
	ctl := NewController(&eng, ddr4(4), FRFCFS)
	seen := map[int]bool{}
	for i := uint64(0); i < 16; i++ {
		ch, _, _ := ctl.mapAddr(i * 64)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Errorf("sequential lines hit %d/4 channels", len(seen))
	}
}

func TestLatencyModel(t *testing.T) {
	cfg := ddr4(1)
	m := BuildLatencyModel(cfg, FRFCFS, func() AddrSource { return NewStreamSource() }, 4000, 11)
	lo := m.LatencyNs(0.01 * m.PeakBW)
	hi := m.LatencyNs(1.1 * m.PeakBW)
	if lo <= 0 || hi <= lo {
		t.Errorf("latency model not monotone: lo=%v hi=%v", lo, hi)
	}
	over := m.LatencyNs(3 * m.PeakBW)
	if over <= hi {
		t.Errorf("overload latency %v not beyond saturation %v", over, hi)
	}
	if m.SustainableBW() <= 0.5*m.PeakBW {
		t.Errorf("sustainable BW = %v of peak %v", m.SustainableBW(), m.PeakBW)
	}
}

func TestQuickSelect(t *testing.T) {
	xs := []sim.Time{5, 1, 9, 3, 7}
	if got := quickSelect(append([]sim.Time(nil), xs...), 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := quickSelect(append([]sim.Time(nil), xs...), 4); got != 9 {
		t.Errorf("max = %v", got)
	}
	if got := quickSelect(append([]sim.Time(nil), xs...), 2); got != 5 {
		t.Errorf("median = %v", got)
	}
}

func BenchmarkControllerStreaming(b *testing.B) {
	cfg := ddr4(4)
	var eng sim.Engine
	ctl := NewController(&eng, cfg, FRFCFS)
	src := NewStreamSource()
	gap := sim.FromSeconds(64 / cfg.PeakBandwidth())
	t := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, w := src.Next()
		t += gap
		if t < eng.Now() {
			t = eng.Now()
		}
		eng.At(t, func(sim.Time) { ctl.Submit(&Request{Addr: addr, Write: w, Arrive: t}) })
		eng.RunUntil(t)
	}
	eng.Run()
}
